"""Program objects: the simulator's "OpenCL compiler".

``Program(context, source).build()`` plays the role of
``clBuildProgram``: it parses the generator's metadata header, constructs
and verifies the executable plan for the kernel kind it finds (the GEMM
kernel of :mod:`repro.codegen.emitter` or the pack/transpose kernels of
:mod:`repro.codegen.packers`), checks the kernel against every device
resource limit, and applies the device-specific quirks the paper
reports.  Kernels that fail here are exactly the candidates the paper's
tuner "does not count".
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from repro.clsim.context import Context
from repro.codegen.emitter import KERNEL_NAME, parse_any_meta
from repro.codegen.packers import PACK_KERNEL_NAME, PACK_TILE, PackPlan
from repro.codegen.params import KernelParams
from repro.codegen.plan import KernelPlan, build_plan
from repro.errors import BuildError, ParameterError, ResourceError
from repro.perfmodel.model import check_resources

__all__ = ["Program"]

#: Memoized static-analysis verdicts, keyed by ``KernelParams.cache_key``
#: — a tuple of rendered ERROR diagnostics, empty when the plan is safe.
_ANALYSIS_VERDICTS: Dict[tuple, tuple] = {}


class Program:
    """A program object (``cl_program`` analogue)."""

    def __init__(self, context: Context, source: str, from_binary: bool = False):
        self.context = context
        self.source = source
        #: Programs re-created from binaries carry only the metadata
        #: "blob", not compilable source; the linter does not apply.
        self.from_binary = from_binary
        self._built = False
        self._kernels: Dict[str, object] = {}
        self._params: Optional[KernelParams] = None
        self._plan: Optional[KernelPlan] = None
        self._pack_plan: Optional[PackPlan] = None
        self.build_log = ""

    # -- metadata exposed after build -------------------------------------
    @property
    def params(self) -> KernelParams:
        if self._params is None:
            raise BuildError("program is not built (or is not a GEMM program)")
        return self._params

    @property
    def plan(self) -> KernelPlan:
        if self._plan is None:
            raise BuildError("program is not built (or is not a GEMM program)")
        return self._plan

    @property
    def pack_plan(self) -> PackPlan:
        if self._pack_plan is None:
            raise BuildError("program is not built (or is not a pack program)")
        return self._pack_plan

    @property
    def kernel_kind(self) -> str:
        """'gemm' or 'pack' (after a successful build)."""
        if self._plan is not None:
            return "gemm"
        if self._pack_plan is not None:
            return "pack"
        raise BuildError("program is not built")

    # ----------------------------------------------------------------------
    def build(self, options: str = "") -> "Program":
        """Compile the source for every context device.

        Raises :class:`~repro.errors.BuildError` (or its subclass
        :class:`~repro.errors.ResourceError`) with a populated
        ``build_log`` on failure, mirroring ``CL_BUILD_PROGRAM_FAILURE``.
        """
        log_lines = [f"build options: {options!r}" if options else "build options: none"]
        self._inject_build_faults(log_lines)
        try:
            meta = parse_any_meta(self.source)
        except BuildError as exc:
            self.build_log = "\n".join(log_lines + [str(exc)])
            raise
        from repro.codegen.lint import lint_source

        diagnostics = [] if self.from_binary else lint_source(self.source)
        if diagnostics:
            err = BuildError(
                "source failed structural checks: " + "; ".join(diagnostics)
            )
            self.build_log = "\n".join(log_lines + [str(err)])
            raise err
        kind = meta.get("kernel")
        try:
            if kind == KERNEL_NAME:
                self._build_gemm(meta, log_lines)
            elif kind == PACK_KERNEL_NAME:
                self._build_pack(meta, log_lines)
            else:
                raise BuildError(f"unknown generated kernel kind {kind!r}")
        except BuildError as exc:
            self.build_log = "\n".join(log_lines + [str(exc)])
            raise
        self._built = True
        self.build_log = "\n".join(log_lines)
        return self

    def _inject_build_faults(self, log_lines: list) -> None:
        """Consult the context's fault injector before compiling.

        Mirrors a flaky compiler: the injected failure (transient or
        permanent) lands in ``build_log`` exactly like a real diagnostic.
        """
        injector = self.context.fault_injector
        if injector is None:
            return
        key = hashlib.blake2b(self.source.encode(), digest_size=8).hexdigest()
        for device in self.context.devices:
            try:
                injector.check_build(device.codename, key)
            except BuildError as exc:
                self.build_log = "\n".join(log_lines + [exc.build_log])
                raise
            except Exception as exc:
                self.build_log = "\n".join(log_lines + [str(exc)])
                raise

    def _build_gemm(self, meta: dict, log_lines: list) -> None:
        from repro.clsim.kernel import Kernel

        try:
            params = KernelParams.from_dict(meta["params"])
            plan = build_plan(params)
        except (ParameterError, KeyError, TypeError) as exc:
            raise BuildError(f"plan verification failed: {exc}") from exc
        self._analyze_gemm(params, log_lines)
        for device in self.context.devices:
            spec = device.spec
            if params.precision == "d" and not device.double_fp_config:
                raise BuildError(f"{spec.codename} does not support cl_khr_fp64")
            occ = check_resources(spec, params)  # may raise ResourceError
            log_lines.append(
                f"{spec.codename}: ok ({occ.workgroups_per_cu} work-group(s)/CU, "
                f"limited by {occ.limited_by})"
            )
        self._params = params
        self._plan = plan
        self._kernels[KERNEL_NAME] = Kernel(self, KERNEL_NAME)

    @staticmethod
    def _analyze_gemm(params: KernelParams, log_lines: list) -> None:
        """Static safety analysis of the kernel plan, alongside the lint.

        Proves the model-level properties (index bounds, staging races,
        barrier phases) a real compiler could not: an ERROR here means
        the generator produced an unsafe kernel, reported the way a
        compiler diagnostic would be.  The text-level source cross-checks
        are too slow for the build path and run in ``repro analyze``/CI
        instead.  Verdicts are memoized per parameter vector — stage-2
        size sweeps rebuild the same kernel many times.
        """
        key = params.cache_key()
        verdict = _ANALYSIS_VERDICTS.get(key)
        if verdict is None:
            from repro.analyze.bounds import check_bounds
            from repro.analyze.diagnostics import Severity
            from repro.analyze.races import check_races
            from repro.analyze.sites import build_model

            model = build_model(params)
            errors = [
                d for d in check_bounds(model) + check_races(model)
                if d.severity is Severity.ERROR
            ]
            verdict = tuple(d.render() for d in errors)
            _ANALYSIS_VERDICTS[key] = verdict
        if verdict:
            raise BuildError(
                "static analysis failed: " + "; ".join(verdict)
            )
        log_lines.append("static analysis: clean (bounds, races, phases)")

    def _build_pack(self, meta: dict, log_lines: list) -> None:
        from repro.clsim.kernel import PackKernel

        try:
            pack_plan = PackPlan.from_dict(meta["pack"])
        except (ParameterError, KeyError, TypeError, ValueError) as exc:
            raise BuildError(f"pack plan verification failed: {exc}") from exc
        wg = PACK_TILE * PACK_TILE
        for device in self.context.devices:
            spec = device.spec
            if pack_plan.precision == "d" and not device.double_fp_config:
                raise BuildError(f"{spec.codename} does not support cl_khr_fp64")
            if wg > spec.model.max_workgroup_size:
                raise ResourceError(
                    f"pack work-group size {wg} exceeds device limit "
                    f"{spec.model.max_workgroup_size} on {spec.codename}"
                )
            log_lines.append(f"{spec.codename}: ok (pack kernel)")
        self._pack_plan = pack_plan
        self._kernels[PACK_KERNEL_NAME] = PackKernel(self, PACK_KERNEL_NAME)

    # ----------------------------------------------------------------------
    def get_kernel(self, name: str):
        if not self._built:
            raise BuildError("program must be built before creating kernels")
        try:
            return self._kernels[name]
        except KeyError:
            raise BuildError(
                f"no kernel {name!r} in program (have {sorted(self._kernels)})"
            ) from None

    def __getattr__(self, name: str):
        # pyopencl style: program.gemm_atb / program.pack_operand
        if not name.startswith("_") and self._built and name in self._kernels:
            return self._kernels[name]
        raise AttributeError(name)

    def __repr__(self) -> str:
        state = "built" if self._built else "unbuilt"
        return f"<Program {state}, {len(self.source)} chars>"
