"""Functional execution of kernel plans.

Two execution paths produce bit-identical results (the test suite checks
this property-style):

* ``workgroup`` — faithful: iterates the work-group grid; for each
  work-group walks the algorithm's k-loop structure (BA's single loop,
  PL's prologue/body/epilogue, DB's alternating half-buffers), gathers
  tiles through the layout address functions, stages them through
  simulated local-memory arrays when the plan says so, accumulates
  through the work-item ownership permutations, and merges with
  alpha/beta.  Index-arithmetic mistakes anywhere in the stack produce
  numerically wrong output.
* ``fast`` — whole-matrix: unpacks the operands from their layouts and
  issues one BLAS-3 call.  Used for large benchmark problems where the
  faithful path's Python-level loops would dominate.

A third path, ``scalar``, interprets every work-item individually —
lane loops in pure Python, each work-item loading through the ownership
maps and accumulating its own private ``cpm`` block.  It is far too slow
for anything but tiny problems and exists as the gold standard the other
two paths are differentially tested against.

Within a work-group the work-items are vectorised as numpy axes — the
idiomatic way to simulate a data-parallel device on a CPU (everything in
a work-group is, by OpenCL semantics, observationally equivalent to any
interleaving that respects barriers; the plan verified barrier-free
ownership/staging disjointness at build time).
"""

from __future__ import annotations

import numpy as np

from repro.codegen.algorithms import Algorithm
from repro.codegen.layouts import tile_view
from repro.codegen.plan import KernelPlan
from repro.codegen.layouts import unpack_matrix
from repro.errors import LaunchError

__all__ = ["execute_plan", "ExecutionArrays"]


def _clipped_tile(
    flat: np.ndarray, K: int, X: int, kb: int, xb: int, bk: int, bx: int,
    dtype,
) -> np.ndarray:
    """A full ``bk x bx`` tile from an unpadded row-major operand.

    Edge tiles are zero-filled beyond the matrix — exactly what the
    guarded kernel's bounds-checked reads produce (out-of-range loads
    are skipped and the corresponding products never contribute).
    """
    mat = flat.reshape(K, X)
    k0, x0 = kb * bk, xb * bx
    piece = mat[k0:k0 + bk, x0:x0 + bx]
    if piece.shape == (bk, bx):
        return piece
    out = np.zeros((bk, bx), dtype=dtype)
    out[: piece.shape[0], : piece.shape[1]] = piece
    return out


class ExecutionArrays:
    """Validated, shaped views of the kernel's buffer arguments."""

    def __init__(
        self,
        plan: KernelPlan,
        a_flat: np.ndarray,
        b_flat: np.ndarray,
        c_flat: np.ndarray,
        M: int,
        N: int,
        K: int,
    ):
        dtype = plan.dtype
        for name, arr, n in (("A", a_flat, K * M), ("B", b_flat, K * N), ("C", c_flat, M * N)):
            if arr.dtype != dtype:
                raise LaunchError(
                    f"{name} buffer dtype {arr.dtype} does not match kernel "
                    f"precision {dtype}"
                )
            if arr.size != n:
                raise LaunchError(
                    f"{name} buffer has {arr.size} elements; kernel expects {n}"
                )
        self.a = a_flat
        self.b = b_flat
        self.c = c_flat.reshape(M, N)
        self.M, self.N, self.K = M, N, K


def execute_plan(
    plan: KernelPlan,
    arrays: ExecutionArrays,
    alpha: float,
    beta: float,
    mode: str = "workgroup",
    injector=None,
    device: str = "",
    fault_key: str = "",
) -> None:
    """Run the kernel over the buffers in-place.

    With a fault ``injector``, a firing ``result`` rule silently
    overwrites part of the output with NaNs after the (correct)
    computation — the simulated analogue of a device writing garbage
    without reporting an error, detectable only by functional
    verification downstream.
    """
    plan.check_problem(arrays.M, arrays.N, arrays.K)
    if mode == "fast":
        _execute_fast(plan, arrays, alpha, beta)
    elif mode == "workgroup":
        _execute_workgroups(plan, arrays, alpha, beta)
    elif mode == "scalar":
        _execute_scalar(plan, arrays, alpha, beta)
    else:
        raise LaunchError(f"unknown execution mode {mode!r}")
    if injector is not None and injector.corrupts_result(
        device, fault_key, params=plan.params
    ):
        _corrupt_result(plan, arrays)


def _corrupt_result(plan: KernelPlan, arrays: ExecutionArrays) -> None:
    """Silently poison one output tile (no exception, no log)."""
    p = plan.params
    arrays.c[: min(p.mwg, arrays.M), : min(p.nwg, arrays.N)] = np.nan


def _execute_fast(plan: KernelPlan, ar: ExecutionArrays, alpha, beta) -> None:
    p = plan.params
    at = unpack_matrix(ar.a, p.layout_a, ar.K, ar.M, p.kwg, p.mwg)
    b = unpack_matrix(ar.b, p.layout_b, ar.K, ar.N, p.kwg, p.nwg)
    ar.c *= plan.dtype.type(beta)
    ar.c += plan.dtype.type(alpha) * (at.T @ b)


def _gather_a(plan: KernelPlan, ar: ExecutionArrays, kb: int, mb: int) -> np.ndarray:
    p = plan.params
    if p.guard_edges:
        return _clipped_tile(ar.a, ar.K, ar.M, kb, mb, p.kwg, p.mwg, plan.dtype)
    return tile_view(ar.a, p.layout_a, kb, mb, ar.K, ar.M, p.kwg, p.mwg)


def _gather_b(plan: KernelPlan, ar: ExecutionArrays, kb: int, nb: int) -> np.ndarray:
    p = plan.params
    if p.guard_edges:
        return _clipped_tile(ar.b, ar.K, ar.N, kb, nb, p.kwg, p.nwg, plan.dtype)
    return tile_view(ar.b, p.layout_b, kb, nb, ar.K, ar.N, p.kwg, p.nwg)


class _WorkGroup:
    """State of one simulated work-group: local tiles and accumulators.

    The accumulator is kept in *ownership order*: axis 0 runs over
    (M-lane, owned-element) pairs, axis 1 over (N-lane, owned-element)
    pairs, exactly the private `cpm` register blocks of the emitted
    kernel concatenated over the work-group.
    """

    def __init__(self, plan: KernelPlan, mb: int, nb: int):
        self.plan = plan
        self.mb = mb
        self.nb = nb
        p = plan.params
        # Ownership permutations: tile index per (lane, element), flattened.
        self.rows = plan.row_permutation()
        self.cols = plan.col_permutation()
        self.acc = np.zeros((p.mwg, p.nwg), dtype=plan.dtype)
        # Simulated local memory (contents only; capacity was checked at
        # build time).  DB keeps two half-height buffers per matrix.
        self.alm: list[np.ndarray] = []
        self.blm: list[np.ndarray] = []

    def stage(self, which: str, tile: np.ndarray, slot: int = 0) -> None:
        """Cooperative copy of a (half-)tile into a local buffer slot."""
        target = self.alm if which == "a" else self.blm
        while len(target) <= slot:
            target.append(np.empty((0, 0), dtype=self.plan.dtype))
        target[slot] = np.ascontiguousarray(tile)

    def local(self, which: str, slot: int = 0) -> np.ndarray:
        return (self.alm if which == "a" else self.blm)[slot]

    def multiply_add(self, a_tile: np.ndarray, b_tile: np.ndarray) -> None:
        """acc += a_tile^T @ b_tile through the ownership permutations.

        ``a_tile`` is (k x Mwg), ``b_tile`` is (k x Nwg).  The columns
        are gathered in ownership order — the per-work-item private
        loads of the emitted kernel — and the result is scattered back
        the same way, so a wrong ownership map corrupts the output.
        """
        a_perm = a_tile[:, self.rows]
        b_perm = b_tile[:, self.cols]
        self.acc[np.ix_(self.rows, self.cols)] += a_perm.T @ b_perm

    def merge(self, ar: ExecutionArrays, alpha, beta) -> None:
        p = self.plan.params
        r0, c0 = self.mb * p.mwg, self.nb * p.nwg
        gi = r0 + self.rows
        gj = c0 + self.cols
        if p.guard_edges:
            # Guarded merge: out-of-range lanes write nothing.
            rsel = gi < ar.M
            csel = gj < ar.N
            if not rsel.any() or not csel.any():
                return
            cidx = np.ix_(gi[rsel], gj[csel])
            aidx = np.ix_(self.rows[rsel], self.cols[csel])
            ar.c[cidx] = alpha * self.acc[aidx] + beta * ar.c[cidx]
            return
        block = ar.c[r0 : r0 + p.mwg, c0 : c0 + p.nwg]
        idx = np.ix_(self.rows, self.cols)
        block[idx] = alpha * self.acc[idx] + beta * block[idx]


def _execute_scalar(plan: KernelPlan, ar: ExecutionArrays, alpha, beta) -> None:
    """Interpret every work-item individually (gold-standard path).

    Mirrors the emitted kernel line by line: each lane ``(i0, j0)`` of
    each work-group accumulates its private ``cpm[mwi][nwi]`` block by
    walking the k dimension in ``kwi`` steps through its ownership maps,
    then merges with alpha/beta.  O(lanes) Python loops — use only for
    tiny problems.
    """
    p = plan.params
    dtype = plan.dtype
    grid_m, grid_n = plan.workgroup_grid(ar.M, ar.N)
    row_owner = plan.row_owner  # (mdimc, mwi)
    col_owner = plan.col_owner  # (ndimc, nwi)
    for mb in range(grid_m):
        for nb in range(grid_n):
            # Local memory contents are tile copies; staging geometry was
            # verified at plan build, so gather the tiles once per group.
            tiles = [
                (_gather_a(plan, ar, kb, mb), _gather_b(plan, ar, kb, nb))
                for kb in range(_k_blocks(plan, ar.K))
            ]
            for i0 in range(p.mdimc):
                rows = row_owner[i0]
                for j0 in range(p.ndimc):
                    cols = col_owner[j0]
                    cpm = np.zeros((p.mwi, p.nwi), dtype=dtype)
                    for a_tile, b_tile in tiles:
                        for pwi in range(0, p.kwg, p.kwi):
                            # apm / bpm: the work-item's private fragments.
                            apm = a_tile[pwi:pwi + p.kwi][:, rows]
                            bpm = b_tile[pwi:pwi + p.kwi][:, cols]
                            cpm += apm.T @ bpm
                    gi = mb * p.mwg + rows
                    gj = nb * p.nwg + cols
                    rsel = gi < ar.M
                    csel = gj < ar.N
                    if not rsel.any() or not csel.any():
                        continue
                    cidx = np.ix_(gi[rsel], gj[csel])
                    ar.c[cidx] = (alpha * cpm[np.ix_(np.flatnonzero(rsel),
                                                     np.flatnonzero(csel))]
                                  + beta * ar.c[cidx])


def _execute_workgroups(plan: KernelPlan, ar: ExecutionArrays, alpha, beta) -> None:
    p = plan.params
    grid_m, grid_n = plan.workgroup_grid(ar.M, ar.N)
    runner = {
        Algorithm.BA: _run_ba,
        Algorithm.PL: _run_pl,
        Algorithm.DB: _run_db,
    }[p.algorithm]
    for mb in range(grid_m):
        for nb in range(grid_n):
            wg = _WorkGroup(plan, mb, nb)
            runner(plan, ar, wg)
            wg.merge(ar, alpha, beta)


def _tiles(plan: KernelPlan, ar: ExecutionArrays, wg: _WorkGroup, kb: int):
    return _gather_a(plan, ar, kb, wg.mb), _gather_b(plan, ar, kb, wg.nb)


def _k_blocks(plan: KernelPlan, K: int) -> int:
    p = plan.params
    return -(-K // p.kwg) if p.guard_edges else K // p.kwg


def _run_ba(plan: KernelPlan, ar: ExecutionArrays, wg: _WorkGroup) -> None:
    """Basic algorithm (paper Fig. 4): stage, barrier, compute, barrier."""
    p = plan.params
    for kb in range(_k_blocks(plan, ar.K)):
        a_tile, b_tile = _tiles(plan, ar, wg, kb)
        if p.shared_a:
            wg.stage("a", a_tile)
            a_src = wg.local("a")
        else:
            a_src = a_tile
        if p.shared_b:
            wg.stage("b", b_tile)
            b_src = wg.local("b")
        else:
            b_src = b_tile
        # barrier; inner pwi loop (fully unrolled in Kwi steps); barrier.
        wg.multiply_add(a_src, b_src)


def _run_pl(plan: KernelPlan, ar: ExecutionArrays, wg: _WorkGroup) -> None:
    """Software pipelining (paper Fig. 5).

    The body computes on the tiles staged in local memory while the
    *next* tiles travel global -> private; they are committed to local
    memory after a barrier.  Functionally: compute always uses the tiles
    staged in the previous step, and the epilogue consumes the last ones.
    """
    p = plan.params
    if not (p.shared_a or p.shared_b):
        _run_ba(plan, ar, wg)  # degenerate PL (no local memory): same order
        return
    n_iter = _k_blocks(plan, ar.K)
    # Prologue: stage tiles of k-block 0.
    a_tile, b_tile = _tiles(plan, ar, wg, 0)
    if p.shared_a:
        wg.stage("a", a_tile)
    if p.shared_b:
        wg.stage("b", b_tile)
    prefetch_a = prefetch_b = None
    for kb in range(n_iter - 1):
        # Prefetch next tiles into private staging...
        next_a, next_b = _tiles(plan, ar, wg, kb + 1)
        if p.shared_a:
            prefetch_a = np.ascontiguousarray(next_a)
        if p.shared_b:
            prefetch_b = np.ascontiguousarray(next_b)
        # ...compute on the currently staged tiles...
        cur_a = wg.local("a") if p.shared_a else _gather_a(plan, ar, kb, wg.mb)
        cur_b = wg.local("b") if p.shared_b else _gather_b(plan, ar, kb, wg.nb)
        wg.multiply_add(cur_a, cur_b)
        # ...barrier; commit the prefetch; barrier.
        if p.shared_a:
            wg.stage("a", prefetch_a)
        if p.shared_b:
            wg.stage("b", prefetch_b)
    # Epilogue: the last staged tiles.
    last = n_iter - 1
    cur_a = wg.local("a") if p.shared_a else _gather_a(plan, ar, last, wg.mb)
    cur_b = wg.local("b") if p.shared_b else _gather_b(plan, ar, last, wg.nb)
    wg.multiply_add(cur_a, cur_b)


def _run_db(plan: KernelPlan, ar: ExecutionArrays, wg: _WorkGroup) -> None:
    """Double buffering (paper Fig. 6).

    Each ``Kwg`` tile is processed as two half-height pieces; while one
    half-buffer is computed on, the other is being filled.  Buffer 0
    holds even halves, buffer 1 odd halves.
    """
    p = plan.params
    half = p.kwg // 2

    def halves(kb: int):
        a_tile, b_tile = _tiles(plan, ar, wg, kb)
        return (
            (a_tile[:half], a_tile[half:]),
            (b_tile[:half], b_tile[half:]),
        )

    def compute(a_half, b_half, slot):
        a_src = wg.local("a", slot) if p.shared_a else a_half
        b_src = wg.local("b", slot) if p.shared_b else b_half
        wg.multiply_add(a_src, b_src)

    n_iter = _k_blocks(plan, ar.K)
    # Prologue: fill slot 0 with the first half of k-block 0.
    (a0, a1), (b0, b1) = halves(0)
    if p.shared_a:
        wg.stage("a", a0, slot=0)
    if p.shared_b:
        wg.stage("b", b0, slot=0)
    for kb in range(n_iter):
        (a0, a1), (b0, b1) = halves(kb)
        # Load odd half into slot 1 while computing on slot 0.
        if p.shared_a:
            wg.stage("a", a1, slot=1)
        if p.shared_b:
            wg.stage("b", b1, slot=1)
        compute(a0, b0, slot=0)
        # Load the *next* block's even half into slot 0 while computing
        # on slot 1 (the epilogue has no next block).
        if kb + 1 < n_iter:
            (na0, _), (nb0, _) = halves(kb + 1)
            if p.shared_a:
                wg.stage("a", na0, slot=0)
            if p.shared_b:
                wg.stage("b", nb0, slot=0)
        compute(a1, b1, slot=1)
