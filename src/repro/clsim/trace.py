"""Command tracing and profiling reports.

A :class:`CommandTracer` attaches to a :class:`~repro.clsim.queue.CommandQueue`
and records every enqueued command with its simulated timestamps —
the simulator's counterpart of an OpenCL profiler (AMD's sprofile /
NVIDIA's nvprof era tools).  The collected trace renders as a timeline
and an aggregate profile, which is how one *sees* the copy-vs-kernel
split the paper discusses for the full GEMM implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.clsim.queue import CommandQueue, Event

__all__ = ["TraceRecord", "CommandTracer", "attach_tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced command."""

    index: int
    command: str
    start_ns: int
    end_ns: int
    label: str = ""

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns * 1e-6


class CommandTracer:
    """Records the commands of one queue.

    Use :func:`attach_tracer` (or the constructor) and read
    ``records``/``profile()``/``render()`` afterwards::

        tracer = attach_tracer(queue)
        ... enqueue work ...
        print(tracer.render())
    """

    def __init__(self, queue: CommandQueue):
        self.queue = queue
        self.records: List[TraceRecord] = []
        self._original_advance = queue._advance
        self._pending_label: Optional[str] = None
        queue._advance = self._traced_advance  # type: ignore[method-assign]
        self._active = True
        # The command name is known to the queue methods, not _advance;
        # wrap the public entry points to capture it.
        self._wrap(queue)

    # ------------------------------------------------------------------
    def _wrap(self, queue: CommandQueue) -> None:
        original_launch = queue.launch
        original_copy = queue.copy

        def launch(kernel, global_size, local_size, wait_for=None):
            self._pending_label = getattr(kernel, "name", type(kernel).__name__)
            try:
                return original_launch(kernel, global_size, local_size,
                                       wait_for=wait_for)
            finally:
                self._pending_label = None

        def copy(dest, src, wait_for=None):
            self._pending_label = "copy"
            try:
                return original_copy(dest, src, wait_for=wait_for)
            finally:
                self._pending_label = None

        queue.launch = launch  # type: ignore[method-assign]
        queue.copy = copy  # type: ignore[method-assign]
        self._original_launch = original_launch
        self._original_copy = original_copy

    def _traced_advance(self, seconds: float, engine: str = "compute",
                        wait_for=None):
        start, end = self._original_advance(seconds, engine, wait_for)
        if self._active:
            self.records.append(
                TraceRecord(
                    index=len(self.records),
                    command=self._pending_label or "command",
                    start_ns=start,
                    end_ns=end,
                )
            )
        return start, end

    def detach(self) -> None:
        """Stop tracing and restore the queue's original methods."""
        self._active = False
        self.queue._advance = self._original_advance  # type: ignore[method-assign]
        self.queue.launch = self._original_launch  # type: ignore[method-assign]
        self.queue.copy = self._original_copy  # type: ignore[method-assign]

    # -- reporting ---------------------------------------------------------
    @property
    def total_ns(self) -> int:
        if not self.records:
            return 0
        return self.records[-1].end_ns - self.records[0].start_ns

    def profile(self) -> Dict[str, Dict[str, float]]:
        """Aggregate time per command kind."""
        agg: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            entry = agg.setdefault(record.command, {"calls": 0, "ns": 0})
            entry["calls"] += 1
            entry["ns"] += record.duration_ns
        total = sum(e["ns"] for e in agg.values()) or 1
        for entry in agg.values():
            entry["share"] = entry["ns"] / total
        return agg

    def render(self, max_rows: int = 40) -> str:
        """Timeline plus aggregate profile as text."""
        lines = ["simulated command timeline:"]
        for record in self.records[:max_rows]:
            lines.append(
                f"  [{record.start_ns / 1e6:10.3f} ms .. {record.end_ns / 1e6:10.3f} ms] "
                f"{record.command:14s} {record.duration_ms:9.3f} ms"
            )
        if len(self.records) > max_rows:
            lines.append(f"  ... {len(self.records) - max_rows} more commands")
        lines.append("")
        lines.append("profile by command kind:")
        for command, entry in sorted(
            self.profile().items(), key=lambda kv: -kv[1]["ns"]
        ):
            lines.append(
                f"  {command:14s} {int(entry['calls']):4d} calls  "
                f"{entry['ns'] / 1e6:10.3f} ms  {entry['share']:6.1%}"
            )
        return "\n".join(lines)


def attach_tracer(queue: CommandQueue) -> CommandTracer:
    """Attach a tracer to a queue; call ``tracer.detach()`` when done."""
    return CommandTracer(queue)
