"""Deterministic fault injection for the simulated OpenCL runtime.

The paper's tuner runs against hardware that *fails*: kernels "failed in
code generation, compilation or testing are not counted" (Section III-F)
and an entire device/precision/algorithm combination — PL-DGEMM on
Bulldozer — faults at execution time (Section IV-A).  The simulator is
perfectly reliable, so this module supplies the missing chaos: a seeded
:class:`FaultPlan` describes *which* fault classes fire *where* and *how
often*, and a :class:`FaultInjector` turns the plan into reproducible
go/no-go decisions at each injection point in the stack.

Injection points (the "phases" a rule's ``kind`` selects):

====================  ====================================================
``build``             ``Program.build`` / the tuner's resource check —
                      raises :class:`~repro.errors.BuildError` or, when
                      transient, :class:`~repro.errors.TransientError`.
``launch``            kernel enqueue validation — raises
                      :class:`~repro.errors.LaunchError` / transient.
``device_lost``       whole-device failure mid-command — raises
                      :class:`~repro.errors.DeviceLostError`.
``timing``            multiplies one measurement's time by ``magnitude``
                      (an outlier spike; silent, no exception).
``result``            silently corrupts the output buffer with NaNs —
                      only functional verification can catch it.
``hang``              the command sleeps ``hang_seconds`` of real wall
                      clock; the resilience watchdog must kill it.
``zone_outage``       **correlated** whole-zone loss: every device
                      sharing the rule's zone tag raises
                      :class:`~repro.errors.DeviceLostError` for the
                      duration of the active window.
``brownout``          **correlated, sustained** timing degradation: every
                      device in the zone runs ``magnitude`` times slower
                      for the active window, without being lost.
====================  ====================================================

Every per-device decision is a pure function of ``(seed, rule, device,
key, attempt)`` — no shared RNG stream, no mutable state — so decisions
are identical regardless of evaluation order, worker count, or process
boundaries.  That property is what lets serial and parallel searches
under injection select the same winner, and it is load-bearing for the
chaos test suite.

The zone kinds (``zone_outage``, ``brownout``) are deliberately *more*
correlated: their decision hashes fold in only ``(seed, rule, kind,
zone, window epoch)`` — no device, no request key, no attempt, no salt
— so every device in the zone and every request inside the window see
the same verdict.  Independent per-device failures are what PR 2
modelled; these model the rack-loses-power / thermal-throttling failure
modes an elastic fleet has to survive.  Windows advance on the
*simulated* clock carried by :meth:`FaultInjector.at_time`; an injector
never handed a clock stays at epoch 0.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.errors import (
    BuildError,
    DeviceLostError,
    LaunchError,
    TransientError,
)

__all__ = [
    "FAULT_KINDS",
    "WINDOW_KINDS",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "CANNED_PLANS",
]

#: The fault taxonomy (see module docstring and docs/fault_injection.md).
FAULT_KINDS = ("build", "launch", "device_lost", "timing", "result", "hang",
               "zone_outage", "brownout")

#: Kinds whose decisions correlate across a zone and a time window
#: instead of rolling independently per device/request.
WINDOW_KINDS = ("zone_outage", "brownout")


@dataclass(frozen=True)
class FaultRule:
    """One class of injected fault with its firing probability.

    ``device`` / ``precision`` / ``algorithm`` restrict the rule to
    matching kernels (``None`` matches everything) — this is how the
    paper's Bulldozer PL-DGEMM failure is expressed as a plan instead of
    a hard-coded quirk.  ``transient`` faults clear on retry (the
    attempt number feeds the decision hash); persistent ones fire for
    every attempt at the same site.
    """

    kind: str
    rate: float
    device: Optional[str] = None
    precision: Optional[str] = None
    algorithm: Optional[str] = None
    transient: bool = True
    #: Timing-spike multiplier (``kind="timing"``) and the sustained
    #: slowdown factor of a ``brownout``.
    magnitude: float = 8.0
    #: Real wall-clock seconds a hung command sleeps (``kind="hang"``).
    hang_seconds: float = 0.25
    #: Zone tag the window kinds correlate over (``None``: every zone
    #: rolls its own correlated decision).
    zone: Optional[str] = None
    #: Correlation-window length in simulated seconds (window kinds):
    #: ``rate`` is the per-window probability that an episode *starts*.
    window_s: float = 0.05
    #: Windows one started episode stays active for (>= 1).
    duration_windows: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.kind in WINDOW_KINDS:
            if self.window_s <= 0.0:
                raise ValueError(
                    f"{self.kind} rules need window_s > 0, got {self.window_s}"
                )
            if self.duration_windows < 1:
                raise ValueError(
                    f"{self.kind} rules need duration_windows >= 1, "
                    f"got {self.duration_windows}"
                )

    def matches(self, device: str, params=None) -> bool:
        if self.device is not None and self.device != device:
            return False
        if params is not None:
            if self.precision is not None and params.precision != self.precision:
                return False
            if (
                self.algorithm is not None
                and params.algorithm.value != self.algorithm
            ):
                return False
        elif self.precision is not None or self.algorithm is not None:
            # Kernel-scoped rules need a kernel to match against.
            return False
        return True

    def to_dict(self) -> Dict:
        d = {"kind": self.kind, "rate": self.rate}
        for name in ("device", "precision", "algorithm", "zone"):
            if getattr(self, name) is not None:
                d[name] = getattr(self, name)
        if not self.transient:
            d["transient"] = False
        if self.kind in ("timing", "brownout"):
            d["magnitude"] = self.magnitude
        if self.kind == "hang":
            d["hang_seconds"] = self.hang_seconds
        if self.kind in WINDOW_KINDS:
            d["window_s"] = self.window_s
            d["duration_windows"] = self.duration_windows
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "FaultRule":
        return cls(**d)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable set of fault rules.

    Two injectors built from equal plans make identical decisions; a
    different ``seed`` reshuffles every decision while keeping the rates.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    #: ``(device, zone)`` pairs the window kinds correlate over.  A
    #: device absent from the mapping falls back to the catalog's
    #: default zone layout (:data:`repro.devices.catalog.DEVICE_ZONES`),
    #: then to the ``"default"`` zone — so ad-hoc device names used in
    #: tests still correlate with each other.
    zones: Tuple[Tuple[str, str], ...] = ()

    def zone_of(self, device: str) -> str:
        """The zone tag ``device`` belongs to under this plan."""
        for name, zone in self.zones:
            if name == device:
                return zone
        from repro.devices.catalog import DEVICE_ZONES

        return DEVICE_ZONES.get(device, "default")

    def to_dict(self) -> Dict:
        d = {"seed": self.seed, "rules": [r.to_dict() for r in self.rules]}
        if self.zones:
            d["zones"] = dict(self.zones)
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, d: Dict) -> "FaultPlan":
        return cls(
            seed=int(d.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(r) for r in d.get("rules", ())),
            zones=tuple(sorted(d.get("zones", {}).items())),
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def digest(self) -> str:
        """Stable identity digest (part of checkpoint fingerprints)."""
        return hashlib.blake2b(self.to_json().encode(), digest_size=8).hexdigest()

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a CLI spec.

        Accepted forms::

            build:0.1,launch:0.05,timing:0.1     # kind:rate pairs
            launch:1.0:bulldozer                 # kind:rate:device
            zone_outage:0.04:zone-amd            # window kind:rate:zone
            @plan.json                           # a serialised FaultPlan
            bulldozer-pl-dgemm                   # a canned plan by name

        ``kind:rate`` rules are transient; use a canned plan or a JSON
        file for persistent, kernel-scoped, or custom-window rules.  For
        the window kinds (``zone_outage``, ``brownout``) the optional
        third piece names the *zone* the rule correlates over instead of
        a device.  Rates are validated here: anything outside ``[0, 1]``
        is rejected with the offending spec fragment named, instead of
        silently mis-rolling every decision.
        """
        spec = spec.strip()
        if spec in CANNED_PLANS:
            return CANNED_PLANS[spec].with_seed(seed)
        if spec.startswith("@"):
            with open(spec[1:], encoding="utf-8") as fh:
                plan = cls.from_dict(json.load(fh))
            return plan if plan.seed or not seed else plan.with_seed(seed)
        rules = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            pieces = part.split(":")
            if len(pieces) not in (2, 3):
                raise ValueError(
                    f"bad fault spec {part!r} (want kind:rate[:device|:zone])"
                )
            kind = pieces[0]
            try:
                rate = float(pieces[1])
            except ValueError:
                raise ValueError(
                    f"bad fault spec {part!r}: rate {pieces[1]!r} is not "
                    f"a number"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"bad fault spec {part!r}: rate must be in [0, 1], "
                    f"got {rate}"
                )
            scope = pieces[2] if len(pieces) == 3 else None
            try:
                if kind in WINDOW_KINDS:
                    rules.append(FaultRule(kind=kind, rate=rate, zone=scope))
                else:
                    rules.append(FaultRule(kind=kind, rate=rate, device=scope))
            except ValueError as exc:
                raise ValueError(f"bad fault spec {part!r}: {exc}") from None
        if not rules:
            raise ValueError(f"fault spec {spec!r} contains no rules")
        return cls(seed=seed, rules=tuple(rules))


#: The paper's documented device failure, reproducible on demand:
#: "DGEMM kernels with PL algorithm always fail to execute on the
#: Bulldozer" (Section IV-A).  rate=1.0, persistent, kernel-scoped.
CANNED_PLANS: Dict[str, FaultPlan] = {
    "bulldozer-pl-dgemm": FaultPlan(
        rules=(
            FaultRule(
                kind="launch",
                rate=1.0,
                device="bulldozer",
                precision="d",
                algorithm="PL",
                transient=False,
            ),
        )
    ),
    # The serving layer's acceptance plan: >= 10% aggregate fault rate
    # mixing silent result corruption (only Freivalds catches it) with
    # launch flake and device loss.  `repro soak --inject-faults
    # serve-chaos` must still return zero wrong answers.
    "serve-chaos": FaultPlan(
        rules=(
            FaultRule(kind="result", rate=0.06),
            FaultRule(kind="launch", rate=0.04),
            FaultRule(kind="device_lost", rate=0.02),
            FaultRule(kind="timing", rate=0.03),
        )
    ),
    # The elastic-fleet acceptance plan: the serve-chaos independent
    # faults (slightly thinned) plus *correlated* chaos — zone outages
    # that take every device in a zone down for a sustained window, and
    # zone-wide brownouts that degrade timing without loss.  The churn
    # soak (`repro soak --fleet --inject-faults fleet-chaos`) must ride
    # these out with zero wrong answers while the autoscaler backfills
    # lost capacity from other zones.
    "fleet-chaos": FaultPlan(
        rules=(
            FaultRule(kind="result", rate=0.04),
            FaultRule(kind="launch", rate=0.03),
            FaultRule(kind="timing", rate=0.02),
            FaultRule(kind="zone_outage", rate=0.06, window_s=0.05,
                      duration_windows=2),
            FaultRule(kind="brownout", rate=0.05, magnitude=6.0,
                      window_s=0.05, duration_windows=3),
        )
    ),
}


@dataclass(frozen=True)
class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic fault decisions.

    Stateless and picklable: process-pool workers carry their own copy
    and still agree with the parent on every decision.  ``salt`` is
    folded into each decision hash — retry loops that re-run a whole
    phase (e.g. finalist verification) use :meth:`salted` so a persistent
    retry does not deterministically replay the identical fault.

    ``now_s`` is the injector's view of the simulated clock, advanced by
    :meth:`at_time`; only the window kinds (``zone_outage``,
    ``brownout``) read it.  Their decisions deliberately ignore the
    salt, the request key, and the attempt number — a zone is out for
    *everyone* inside the window, and retrying cannot clear it.
    """

    plan: FaultPlan
    salt: str = ""
    now_s: float = 0.0

    def salted(self, extra: str) -> "FaultInjector":
        return replace(self, salt=f"{self.salt}|{extra}")

    def at_time(self, now_s: float) -> "FaultInjector":
        """A copy whose window-kind decisions see simulated ``now_s``."""
        return replace(self, now_s=float(now_s))

    # -- decision core ---------------------------------------------------
    def _unit(self, rule_index: int, kind: str, device: str, key: str,
              attempt: int) -> float:
        payload = (
            f"{self.plan.seed}|{rule_index}|{kind}|{device}|{key}"
            f"|{attempt}|{self.salt}"
        ).encode()
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    def fires(
        self,
        kind: str,
        device: str,
        key: str,
        attempt: int = 0,
        params=None,
    ) -> Optional[FaultRule]:
        """The first matching rule that fires at this site, if any.

        Persistent rules ignore ``attempt`` (retrying cannot clear them);
        transient rules hash it in, so a retry re-rolls the decision.
        Window kinds ignore all of ``key``/``attempt``/``salt`` and
        decide per ``(zone, window epoch)`` instead — see
        :meth:`_window_unit`.
        """
        for index, rule in enumerate(self.plan.rules):
            if rule.kind != kind or not rule.matches(device, params):
                continue
            if rule.kind in WINDOW_KINDS:
                zone = self.plan.zone_of(device)
                if rule.zone is not None and rule.zone != zone:
                    continue
                if self._window_active(index, rule, zone):
                    return rule
                continue
            roll_attempt = attempt if rule.transient else 0
            if self._unit(index, kind, device, key, roll_attempt) < rule.rate:
                return rule
        return None

    # -- correlated window decisions -------------------------------------
    def _window_unit(self, rule_index: int, kind: str, zone: str,
                     epoch: int) -> float:
        """The correlated roll: no device, key, attempt, or salt — every
        device in ``zone`` and every request in window ``epoch`` agree."""
        payload = (
            f"{self.plan.seed}|{rule_index}|{kind}|zone:{zone}|epoch:{epoch}"
        ).encode()
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    def _window_active(self, rule_index: int, rule: FaultRule,
                       zone: str) -> bool:
        """Is an episode of ``rule`` active over ``zone`` at ``now_s``?

        An episode *starts* at window ``e`` with probability ``rate``
        and stays active for ``duration_windows`` windows, so the
        current window is active iff any of the last
        ``duration_windows`` windows rolled a start.
        """
        current = int(self.now_s / rule.window_s)
        first = max(0, current - rule.duration_windows + 1)
        for epoch in range(first, current + 1):
            if self._window_unit(rule_index, rule.kind, zone, epoch) < rule.rate:
                return True
        return False

    def active_windows(self, kind: str, zone: str,
                       until_s: float) -> list:
        """Merged ``[start_s, end_s)`` episodes of ``kind`` over ``zone``
        in ``[0, until_s)`` — the ground truth the churn soak's recovery
        accounting is stated against.
        """
        raw: list = []
        for index, rule in enumerate(self.plan.rules):
            if rule.kind != kind:
                continue
            if rule.zone is not None and rule.zone != zone:
                continue
            epochs = int(until_s / rule.window_s) + 1
            for epoch in range(epochs):
                if self._window_unit(index, kind, zone, epoch) < rule.rate:
                    raw.append((epoch * rule.window_s,
                                (epoch + rule.duration_windows) * rule.window_s))
        merged: list = []
        for start, end in sorted(raw):
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    # -- raise-style checks for the clsim / tuner layers -----------------
    def check_build(self, device: str, key: str, attempt: int = 0,
                    params=None) -> None:
        rule = self.fires("build", device, key, attempt, params)
        if rule is None:
            return
        message = f"injected build failure on {device} (fault plan)"
        if rule.transient:
            raise TransientError(message, fault_kind="build")
        exc = BuildError(message, build_log=f"{message}\nrule: {rule.to_dict()}")
        #: Marks the failure as plan-made, so it is never cached as a
        #: property of the kernel itself.
        exc.injected = True
        raise exc

    def check_launch(self, device: str, key: str, attempt: int = 0,
                     params=None) -> None:
        rule = self.fires("launch", device, key, attempt, params)
        if rule is not None:
            message = f"injected launch failure on {device} (fault plan)"
            if rule.transient:
                raise TransientError(message, fault_kind="launch")
            exc = LaunchError(message)
            exc.injected = True
            raise exc
        rule = self.fires("device_lost", device, key, attempt, params)
        if rule is not None:
            raise DeviceLostError(
                f"device {device} lost during command (fault plan)"
            )
        rule = self.fires("zone_outage", device, key, attempt, params)
        if rule is not None:
            raise DeviceLostError(
                f"device {device} lost: zone {self.plan.zone_of(device)} "
                f"outage (fault plan)"
            )

    def timing_factor(self, device: str, key: str, attempt: int = 0,
                      params=None) -> float:
        """Multiplier on one measurement's time (1.0 = clean).

        An independent ``timing`` spike and a correlated ``brownout``
        compound: a spike during a brownout is that much worse.
        """
        factor = 1.0
        rule = self.fires("timing", device, key, attempt, params)
        if rule is not None:
            factor *= rule.magnitude
        rule = self.fires("brownout", device, key, attempt, params)
        if rule is not None:
            factor *= rule.magnitude
        return factor

    def corrupts_result(self, device: str, key: str, attempt: int = 0,
                        params=None) -> bool:
        return self.fires("result", device, key, attempt, params) is not None

    def hang_seconds(self, device: str, key: str, attempt: int = 0,
                     params=None) -> float:
        """Wall-clock seconds this command hangs (0.0 = no hang)."""
        rule = self.fires("hang", device, key, attempt, params)
        return rule.hang_seconds if rule is not None else 0.0
