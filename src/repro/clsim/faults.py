"""Deterministic fault injection for the simulated OpenCL runtime.

The paper's tuner runs against hardware that *fails*: kernels "failed in
code generation, compilation or testing are not counted" (Section III-F)
and an entire device/precision/algorithm combination — PL-DGEMM on
Bulldozer — faults at execution time (Section IV-A).  The simulator is
perfectly reliable, so this module supplies the missing chaos: a seeded
:class:`FaultPlan` describes *which* fault classes fire *where* and *how
often*, and a :class:`FaultInjector` turns the plan into reproducible
go/no-go decisions at each injection point in the stack.

Injection points (the "phases" a rule's ``kind`` selects):

====================  ====================================================
``build``             ``Program.build`` / the tuner's resource check —
                      raises :class:`~repro.errors.BuildError` or, when
                      transient, :class:`~repro.errors.TransientError`.
``launch``            kernel enqueue validation — raises
                      :class:`~repro.errors.LaunchError` / transient.
``device_lost``       whole-device failure mid-command — raises
                      :class:`~repro.errors.DeviceLostError`.
``timing``            multiplies one measurement's time by ``magnitude``
                      (an outlier spike; silent, no exception).
``result``            silently corrupts the output buffer with NaNs —
                      only functional verification can catch it.
``hang``              the command sleeps ``hang_seconds`` of real wall
                      clock; the resilience watchdog must kill it.
====================  ====================================================

Every decision is a pure function of ``(seed, rule, device, key,
attempt)`` — no shared RNG stream, no mutable state — so decisions are
identical regardless of evaluation order, worker count, or process
boundaries.  That property is what lets serial and parallel searches
under injection select the same winner, and it is load-bearing for the
chaos test suite.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.errors import (
    BuildError,
    DeviceLostError,
    LaunchError,
    TransientError,
)

__all__ = [
    "FAULT_KINDS",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "CANNED_PLANS",
]

#: The fault taxonomy (see module docstring and docs/fault_injection.md).
FAULT_KINDS = ("build", "launch", "device_lost", "timing", "result", "hang")


@dataclass(frozen=True)
class FaultRule:
    """One class of injected fault with its firing probability.

    ``device`` / ``precision`` / ``algorithm`` restrict the rule to
    matching kernels (``None`` matches everything) — this is how the
    paper's Bulldozer PL-DGEMM failure is expressed as a plan instead of
    a hard-coded quirk.  ``transient`` faults clear on retry (the
    attempt number feeds the decision hash); persistent ones fire for
    every attempt at the same site.
    """

    kind: str
    rate: float
    device: Optional[str] = None
    precision: Optional[str] = None
    algorithm: Optional[str] = None
    transient: bool = True
    #: Timing-spike multiplier (``kind="timing"``).
    magnitude: float = 8.0
    #: Real wall-clock seconds a hung command sleeps (``kind="hang"``).
    hang_seconds: float = 0.25

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")

    def matches(self, device: str, params=None) -> bool:
        if self.device is not None and self.device != device:
            return False
        if params is not None:
            if self.precision is not None and params.precision != self.precision:
                return False
            if (
                self.algorithm is not None
                and params.algorithm.value != self.algorithm
            ):
                return False
        elif self.precision is not None or self.algorithm is not None:
            # Kernel-scoped rules need a kernel to match against.
            return False
        return True

    def to_dict(self) -> Dict:
        d = {"kind": self.kind, "rate": self.rate}
        for name in ("device", "precision", "algorithm"):
            if getattr(self, name) is not None:
                d[name] = getattr(self, name)
        if not self.transient:
            d["transient"] = False
        if self.kind == "timing":
            d["magnitude"] = self.magnitude
        if self.kind == "hang":
            d["hang_seconds"] = self.hang_seconds
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "FaultRule":
        return cls(**d)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable set of fault rules.

    Two injectors built from equal plans make identical decisions; a
    different ``seed`` reshuffles every decision while keeping the rates.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "rules": [r.to_dict() for r in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, d: Dict) -> "FaultPlan":
        return cls(
            seed=int(d.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(r) for r in d.get("rules", ())),
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def digest(self) -> str:
        """Stable identity digest (part of checkpoint fingerprints)."""
        return hashlib.blake2b(self.to_json().encode(), digest_size=8).hexdigest()

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a CLI spec.

        Accepted forms::

            build:0.1,launch:0.05,timing:0.1     # kind:rate pairs
            launch:1.0:bulldozer                 # kind:rate:device
            @plan.json                           # a serialised FaultPlan
            bulldozer-pl-dgemm                   # a canned plan by name

        ``kind:rate`` rules are transient; use a canned plan or a JSON
        file for persistent or kernel-scoped rules.
        """
        spec = spec.strip()
        if spec in CANNED_PLANS:
            return CANNED_PLANS[spec].with_seed(seed)
        if spec.startswith("@"):
            with open(spec[1:], encoding="utf-8") as fh:
                plan = cls.from_dict(json.load(fh))
            return plan if plan.seed or not seed else plan.with_seed(seed)
        rules = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            pieces = part.split(":")
            if len(pieces) not in (2, 3):
                raise ValueError(
                    f"bad fault spec {part!r} (want kind:rate[:device])"
                )
            kind, rate = pieces[0], float(pieces[1])
            device = pieces[2] if len(pieces) == 3 else None
            rules.append(FaultRule(kind=kind, rate=rate, device=device))
        if not rules:
            raise ValueError(f"fault spec {spec!r} contains no rules")
        return cls(seed=seed, rules=tuple(rules))


#: The paper's documented device failure, reproducible on demand:
#: "DGEMM kernels with PL algorithm always fail to execute on the
#: Bulldozer" (Section IV-A).  rate=1.0, persistent, kernel-scoped.
CANNED_PLANS: Dict[str, FaultPlan] = {
    "bulldozer-pl-dgemm": FaultPlan(
        rules=(
            FaultRule(
                kind="launch",
                rate=1.0,
                device="bulldozer",
                precision="d",
                algorithm="PL",
                transient=False,
            ),
        )
    ),
    # The serving layer's acceptance plan: >= 10% aggregate fault rate
    # mixing silent result corruption (only Freivalds catches it) with
    # launch flake and device loss.  `repro soak --inject-faults
    # serve-chaos` must still return zero wrong answers.
    "serve-chaos": FaultPlan(
        rules=(
            FaultRule(kind="result", rate=0.06),
            FaultRule(kind="launch", rate=0.04),
            FaultRule(kind="device_lost", rate=0.02),
            FaultRule(kind="timing", rate=0.03),
        )
    ),
}


@dataclass(frozen=True)
class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic fault decisions.

    Stateless and picklable: process-pool workers carry their own copy
    and still agree with the parent on every decision.  ``salt`` is
    folded into each decision hash — retry loops that re-run a whole
    phase (e.g. finalist verification) use :meth:`salted` so a persistent
    retry does not deterministically replay the identical fault.
    """

    plan: FaultPlan
    salt: str = ""

    def salted(self, extra: str) -> "FaultInjector":
        return FaultInjector(self.plan, salt=f"{self.salt}|{extra}")

    # -- decision core ---------------------------------------------------
    def _unit(self, rule_index: int, kind: str, device: str, key: str,
              attempt: int) -> float:
        payload = (
            f"{self.plan.seed}|{rule_index}|{kind}|{device}|{key}"
            f"|{attempt}|{self.salt}"
        ).encode()
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    def fires(
        self,
        kind: str,
        device: str,
        key: str,
        attempt: int = 0,
        params=None,
    ) -> Optional[FaultRule]:
        """The first matching rule that fires at this site, if any.

        Persistent rules ignore ``attempt`` (retrying cannot clear them);
        transient rules hash it in, so a retry re-rolls the decision.
        """
        for index, rule in enumerate(self.plan.rules):
            if rule.kind != kind or not rule.matches(device, params):
                continue
            roll_attempt = attempt if rule.transient else 0
            if self._unit(index, kind, device, key, roll_attempt) < rule.rate:
                return rule
        return None

    # -- raise-style checks for the clsim / tuner layers -----------------
    def check_build(self, device: str, key: str, attempt: int = 0,
                    params=None) -> None:
        rule = self.fires("build", device, key, attempt, params)
        if rule is None:
            return
        message = f"injected build failure on {device} (fault plan)"
        if rule.transient:
            raise TransientError(message, fault_kind="build")
        exc = BuildError(message, build_log=f"{message}\nrule: {rule.to_dict()}")
        #: Marks the failure as plan-made, so it is never cached as a
        #: property of the kernel itself.
        exc.injected = True
        raise exc

    def check_launch(self, device: str, key: str, attempt: int = 0,
                     params=None) -> None:
        rule = self.fires("launch", device, key, attempt, params)
        if rule is not None:
            message = f"injected launch failure on {device} (fault plan)"
            if rule.transient:
                raise TransientError(message, fault_kind="launch")
            exc = LaunchError(message)
            exc.injected = True
            raise exc
        rule = self.fires("device_lost", device, key, attempt, params)
        if rule is not None:
            raise DeviceLostError(
                f"device {device} lost during command (fault plan)"
            )

    def timing_factor(self, device: str, key: str, attempt: int = 0,
                      params=None) -> float:
        """Multiplier on one measurement's time (1.0 = clean)."""
        rule = self.fires("timing", device, key, attempt, params)
        return rule.magnitude if rule is not None else 1.0

    def corrupts_result(self, device: str, key: str, attempt: int = 0,
                        params=None) -> bool:
        return self.fires("result", device, key, attempt, params) is not None

    def hang_seconds(self, device: str, key: str, attempt: int = 0,
                     params=None) -> float:
        """Wall-clock seconds this command hangs (0.0 = no hang)."""
        rule = self.fires("hang", device, key, attempt, params)
        return rule.hang_seconds if rule is not None else 0.0
