"""Program binaries and a compile cache.

Real OpenCL applications avoid recompiling by retrieving program
binaries (``clGetProgramInfo(CL_PROGRAM_BINARIES)``) and re-creating
programs with ``clCreateProgramWithBinary``; a five-hour tuning run like
the paper's compiles tens of thousands of kernels and caches them.  The
simulator's "binary" is a compact serialized form of the validated
metadata (what a vendor blob effectively is for the plan-driven
executor), integrity-checked with a digest.

:class:`BinaryCache` is the corresponding on-disk compile cache, keyed
by source digest and device — the moral equivalent of AMD's and NVIDIA's
shader caches.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from typing import Dict, Optional

from repro.clsim.context import Context
from repro.clsim.program import Program
from repro.codegen.emitter import META_PREFIX
from repro.errors import BuildError
from repro.persist import atomic_write_bytes

__all__ = ["get_program_binary", "program_from_binary", "BinaryCache"]

_MAGIC = "REPROCL1"


def get_program_binary(program: Program) -> bytes:
    """Serialize a built program (``CL_PROGRAM_BINARIES`` analogue)."""
    if program.build_log == "" or not program._built:  # noqa: SLF001
        raise BuildError("program must be built before requesting its binary")
    meta_line = next(
        line for line in program.source.splitlines() if line.startswith(META_PREFIX)
    )
    payload = {
        "magic": _MAGIC,
        "meta": meta_line[len(META_PREFIX):],
        "source_digest": hashlib.blake2b(
            program.source.encode(), digest_size=16
        ).hexdigest(),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    digest = hashlib.blake2b(blob, digest_size=8).hexdigest().encode()
    return base64.b64encode(digest + b":" + blob)


def program_from_binary(context: Context, binary: bytes) -> Program:
    """Re-create and build a program from a binary
    (``clCreateProgramWithBinary`` analogue).

    Corrupt or foreign blobs raise :class:`BuildError`, as the real call
    would with ``CL_INVALID_BINARY``.
    """
    try:
        raw = base64.b64decode(binary, validate=True)
        digest, blob = raw.split(b":", 1)
        expect = hashlib.blake2b(blob, digest_size=8).hexdigest().encode()
        if digest != expect:
            raise BuildError("invalid binary: integrity digest mismatch")
        payload = json.loads(blob)
        if payload.get("magic") != _MAGIC:
            raise BuildError("invalid binary: wrong magic")
        source = META_PREFIX + payload["meta"] + "\n"
    except (ValueError, KeyError, TypeError) as exc:
        raise BuildError(f"invalid binary: {exc}") from exc
    return Program(context, source, from_binary=True).build()


class BinaryCache:
    """An on-disk compile cache keyed by (source, device).

    ``get_or_build`` returns a built program, compiling only on a miss;
    hits are counted so tests (and tuning loops) can observe the saving.
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        self._memory: Dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0
        if directory:
            os.makedirs(directory, exist_ok=True)

    def _key(self, source: str, device_codename: str) -> str:
        return hashlib.blake2b(
            f"{device_codename}\n{source}".encode(), digest_size=16
        ).hexdigest()

    def _path(self, key: str) -> Optional[str]:
        if not self.directory:
            return None
        return os.path.join(self.directory, f"{key}.clbin")

    def lookup(self, source: str, device_codename: str) -> Optional[bytes]:
        key = self._key(source, device_codename)
        if key in self._memory:
            return self._memory[key]
        path = self._path(key)
        if path and os.path.exists(path):
            with open(path, "rb") as fh:
                blob = fh.read()
            self._memory[key] = blob
            return blob
        return None

    def store(self, source: str, device_codename: str, binary: bytes) -> None:
        key = self._key(source, device_codename)
        self._memory[key] = binary
        path = self._path(key)
        if path:
            atomic_write_bytes(path, binary)

    def get_or_build(self, context: Context, source: str) -> Program:
        device = context.device.codename
        cached = self.lookup(source, device)
        if cached is not None:
            self.hits += 1
            return program_from_binary(context, cached)
        self.misses += 1
        program = Program(context, source).build()
        self.store(source, device, get_program_binary(program))
        return program

    def __len__(self) -> int:
        return len(self._memory)
