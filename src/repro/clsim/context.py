"""Simulated OpenCL contexts with global-memory accounting."""

from __future__ import annotations

from typing import List, Sequence

from repro.clsim.device import Device
from repro.errors import CLError

__all__ = ["Context"]


class Context:
    """An OpenCL context (``cl_context`` analogue) over one or more devices.

    Tracks buffer allocations against the smallest device's global
    memory, raising ``CLError`` on exhaustion — real tuners do hit
    out-of-memory on 1 GB boards (the paper's Cayman) at large N.
    """

    def __init__(self, devices: Sequence[Device], fault_injector=None):
        if not devices:
            raise CLError("a context needs at least one device")
        if not all(isinstance(d, Device) for d in devices):
            raise CLError("Context devices must be clsim.Device instances")
        self.devices: List[Device] = list(devices)
        #: Optional :class:`repro.clsim.faults.FaultInjector` consulted by
        #: program builds and command queues created on this context.
        #: ``None`` (the default) keeps the runtime perfectly reliable.
        self.fault_injector = fault_injector
        self._allocated_bytes = 0
        self._buffers: set = set()

    @property
    def device(self) -> Device:
        """The first device (convenience for single-device contexts)."""
        return self.devices[0]

    @property
    def allocated_bytes(self) -> int:
        return self._allocated_bytes

    @property
    def global_mem_capacity(self) -> int:
        return min(d.global_mem_size for d in self.devices)

    # -- allocation accounting (used by Buffer) --------------------------
    def _register_allocation(self, buf) -> None:
        if self._allocated_bytes + buf.size > self.global_mem_capacity:
            raise CLError(
                f"global memory exhausted: {self._allocated_bytes + buf.size} B "
                f"requested of {self.global_mem_capacity} B "
                f"on {self.device.codename}"
            )
        self._allocated_bytes += buf.size
        self._buffers.add(id(buf))

    def _unregister_allocation(self, buf) -> None:
        if id(buf) in self._buffers:
            self._buffers.discard(id(buf))
            self._allocated_bytes -= buf.size

    def __repr__(self) -> str:
        names = ",".join(d.codename for d in self.devices)
        return f"<Context [{names}] {self._allocated_bytes} B allocated>"
