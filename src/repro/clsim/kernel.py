"""Kernel objects: argument binding and launch validation."""

from __future__ import annotations

import numbers
from typing import Optional, Tuple

from repro.clsim.memory import Buffer, Image2D
from repro.errors import LaunchError

__all__ = ["Kernel", "PackKernel"]

#: Argument signature of every generated GEMM kernel:
#: (M, N, K, alpha, beta, agm, bgm, cgm).
_N_ARGS = 8


class Kernel:
    """A kernel object (``cl_kernel`` analogue) bound to a built program."""

    def __init__(self, program, name: str):
        self.program = program
        self.name = name
        self._args: Optional[tuple] = None

    @property
    def plan(self):
        return self.program.plan

    @property
    def params(self):
        return self.program.params

    def set_args(
        self,
        M: int,
        N: int,
        K: int,
        alpha: float,
        beta: float,
        agm: Buffer,
        bgm: Buffer,
        cgm: Buffer,
    ) -> None:
        """Bind the kernel arguments (``clSetKernelArg`` analogue)."""
        for label, v in (("M", M), ("N", N), ("K", K)):
            if not isinstance(v, numbers.Integral) or v <= 0:
                raise LaunchError(f"kernel size argument {label} must be a positive int")
        for label, v in (("alpha", alpha), ("beta", beta)):
            if not isinstance(v, numbers.Real):
                raise LaunchError(f"kernel scalar argument {label} must be a real number")
        operand_type = Image2D if self.params.use_images else Buffer
        for label, buf in (("agm", agm), ("bgm", bgm)):
            if not isinstance(buf, operand_type):
                raise LaunchError(
                    f"kernel argument {label} must be a clsim "
                    f"{operand_type.__name__} (the kernel was generated with "
                    f"use_images={self.params.use_images})"
                )
        if not isinstance(cgm, Buffer):
            raise LaunchError("kernel argument cgm must be a clsim Buffer")
        self._args = (int(M), int(N), int(K), float(alpha), float(beta), agm, bgm, cgm)

    @property
    def args(self) -> tuple:
        if self._args is None:
            raise LaunchError(f"kernel {self.name!r} has no arguments set")
        return self._args

    def expected_global_size(self) -> Tuple[int, int]:
        """The ND-range global size implied by the bound M, N arguments."""
        M, N = self.args[0], self.args[1]
        return self.plan.global_size(M, N)

    def validate_nd_range(
        self, global_size: Tuple[int, int], local_size: Tuple[int, int]
    ) -> None:
        """Check launch geometry against the plan (``clEnqueueNDRangeKernel``
        failure modes: bad work-group shape, non-divisible global size).

        Also the injection point for simulated enqueue failures: a fault
        plan with ``launch`` rules makes this raise exactly where a real
        runtime returns ``CL_OUT_OF_RESOURCES`` from the enqueue call.
        """
        injector = self.program.context.fault_injector
        if injector is not None:
            M, N, K = self.args[:3]
            injector.check_launch(
                self.program.context.device.codename,
                f"{self.name}|{M}x{N}x{K}|{tuple(global_size)}",
                params=self.params,
            )
        p = self.params
        if tuple(local_size) != (p.mdimc, p.ndimc):
            raise LaunchError(
                f"local size {tuple(local_size)} does not match the kernel's "
                f"reqd_work_group_size ({p.mdimc}, {p.ndimc})"
            )
        gs = tuple(global_size)
        if len(gs) != 2 or any(g <= 0 for g in gs):
            raise LaunchError(f"global size must be 2-D positive, got {gs}")
        if gs[0] % p.mdimc or gs[1] % p.ndimc:
            raise LaunchError(
                f"global size {gs} not divisible by local size ({p.mdimc}, {p.ndimc})"
            )
        if gs != self.expected_global_size():
            raise LaunchError(
                f"global size {gs} does not cover the bound problem "
                f"(expected {self.expected_global_size()})"
            )
        M, N, K = self.args[:3]
        self.plan.check_problem(M, N, K)

    def __repr__(self) -> str:
        return f"<Kernel {self.name!r} ({self.params.summary()})>"


class PackKernel:
    """A generated pack/transpose kernel (see :mod:`repro.codegen.packers`).

    Arguments: ``(srcRows, srcCols, kPadded, xPadded, src, dst)``.
    """

    N_ARGS = 6

    def __init__(self, program, name: str):
        self.program = program
        self.name = name
        self._args: Optional[tuple] = None

    @property
    def pack_plan(self):
        return self.program.pack_plan

    def set_args(
        self,
        src_rows: int,
        src_cols: int,
        k_padded: int,
        x_padded: int,
        src: Buffer,
        dst: Buffer,
    ) -> None:
        for label, v in (("srcRows", src_rows), ("srcCols", src_cols),
                         ("kPadded", k_padded), ("xPadded", x_padded)):
            if not isinstance(v, numbers.Integral) or v <= 0:
                raise LaunchError(f"pack argument {label} must be a positive int")
        for label, buf in (("src", src), ("dst", dst)):
            if not isinstance(buf, Buffer):
                raise LaunchError(f"pack argument {label} must be a clsim Buffer")
        plan = self.pack_plan
        esize = plan.dtype.itemsize
        if src.size < src_rows * src_cols * esize:
            raise LaunchError(
                f"src buffer ({src.size} B) smaller than srcRows*srcCols "
                f"({src_rows * src_cols * esize} B)"
            )
        if dst.size != k_padded * x_padded * esize:
            raise LaunchError(
                f"dst buffer ({dst.size} B) does not match packed extent "
                f"({k_padded * x_padded * esize} B)"
            )
        plan.check_destination(k_padded, x_padded)
        self._args = (int(src_rows), int(src_cols), int(k_padded),
                      int(x_padded), src, dst)

    @property
    def args(self) -> tuple:
        if self._args is None:
            raise LaunchError(f"pack kernel {self.name!r} has no arguments set")
        return self._args

    def expected_global_size(self):
        _, _, kp, xp, _, _ = self.args
        return self.pack_plan.global_size(kp, xp)

    def validate_nd_range(self, global_size, local_size) -> None:
        if tuple(local_size) != self.pack_plan.local_size():
            raise LaunchError(
                f"local size {tuple(local_size)} does not match the pack "
                f"kernel's reqd_work_group_size {self.pack_plan.local_size()}"
            )
        if tuple(global_size) != self.expected_global_size():
            raise LaunchError(
                f"global size {tuple(global_size)} does not cover the bound "
                f"destination (expected {self.expected_global_size()})"
            )

    def __repr__(self) -> str:
        p = self.pack_plan
        return (
            f"<PackKernel {p.layout.value} transpose={p.transpose} "
            f"blocks=({p.block_k},{p.block_x})>"
        )
