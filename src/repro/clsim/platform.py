"""Simulated OpenCL platforms.

One platform per vendor SDK in the catalog, each exposing its devices —
matching how ``clGetPlatformIDs`` presents AMD APP, NVIDIA CUDA and the
Intel SDK as separate platforms on a multi-vendor host.
"""

from __future__ import annotations

from typing import Dict, List

from repro.devices.catalog import CATALOG

__all__ = ["Platform", "get_platforms"]


class Platform:
    """A vendor OpenCL platform (``cl_platform_id`` analogue)."""

    def __init__(self, name: str, vendor: str, version: str, device_names: List[str]):
        self.name = name
        self.vendor = vendor
        self.version = version
        self._device_names = list(device_names)

    def get_devices(self) -> List["Device"]:
        """All devices of this platform (``clGetDeviceIDs`` analogue)."""
        from repro.clsim.device import Device

        return [Device(CATALOG[name], platform=self) for name in self._device_names]

    def __repr__(self) -> str:
        return f"<Platform {self.name!r} ({len(self._device_names)} devices)>"


def _build_platforms() -> List[Platform]:
    by_sdk: Dict[str, List[str]] = {}
    for name, spec in CATALOG.items():
        by_sdk.setdefault(spec.opencl_sdk.split()[0], []).append(name)
    platforms = []
    vendor_of = {"AMD": "Advanced Micro Devices, Inc.",
                 "CUDA": "NVIDIA Corporation",
                 "Intel": "Intel(R) Corporation"}
    for sdk, names in sorted(by_sdk.items()):
        platforms.append(
            Platform(
                name=f"{sdk} (simulated)",
                vendor=vendor_of.get(sdk, sdk),
                version="OpenCL 1.2 (repro-sim)",
                device_names=sorted(names),
            )
        )
    return platforms


def get_platforms() -> List[Platform]:
    """Enumerate simulated platforms (``clGetPlatformIDs`` analogue)."""
    return _build_platforms()
