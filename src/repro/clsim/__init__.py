"""A pyopencl-style OpenCL platform/runtime simulator.

This package stands in for the OpenCL runtimes of the paper's testbeds
(AMD APP, NVIDIA CUDA, Intel SDK).  It executes generated GEMM kernels
*functionally* — numerically correct results computed through the exact
blocking / ownership / layout structure of the kernel plan — and charges
*simulated time* from :mod:`repro.perfmodel`, so auto-tuning behaves as
it would on hardware (see DESIGN.md, "Substitutions").

The API intentionally mirrors pyopencl::

    import repro.clsim as cl

    device = cl.get_device("tahiti")
    ctx = cl.Context([device])
    queue = cl.CommandQueue(ctx, device, profiling=True)
    prog = cl.Program(ctx, kernel_source).build()
    kern = prog.gemm_atb
    kern.set_args(M, N, K, alpha, beta, a_buf, b_buf, c_buf)
    evt = cl.enqueue_nd_range_kernel(queue, kern, gsize, lsize)
    evt.wait()
    elapsed_s = evt.profile.duration * 1e-9
"""

from repro.clsim.platform import Platform, get_platforms
from repro.clsim.device import Device, get_device
from repro.clsim.context import Context
from repro.clsim.faults import FaultInjector, FaultPlan, FaultRule
from repro.clsim.memory import Buffer, Image2D, MemFlags
from repro.clsim.program import Program
from repro.clsim.kernel import Kernel
from repro.clsim.queue import (
    CommandQueue,
    Event,
    ExecutionMode,
    enqueue_copy,
    enqueue_nd_range_kernel,
)

__all__ = [
    "Platform",
    "get_platforms",
    "Device",
    "get_device",
    "Context",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "Buffer",
    "Image2D",
    "MemFlags",
    "Program",
    "Kernel",
    "CommandQueue",
    "Event",
    "ExecutionMode",
    "enqueue_copy",
    "enqueue_nd_range_kernel",
]
