"""Simulated global-memory buffer objects."""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.errors import CLError

__all__ = ["MemFlags", "Buffer", "Image2D"]


class MemFlags(enum.Flag):
    """``cl_mem_flags`` analogue."""

    READ_WRITE = enum.auto()
    READ_ONLY = enum.auto()
    WRITE_ONLY = enum.auto()
    COPY_HOST_PTR = enum.auto()
    ALLOC_HOST_PTR = enum.auto()


class Buffer:
    """A global-memory buffer object (``cl_mem`` analogue).

    Backed by a flat numpy array.  Creation is accounted against the
    context's device global-memory capacity; exceeding it raises
    ``CLError`` the way ``CL_MEM_OBJECT_ALLOCATION_FAILURE`` would.
    """

    def __init__(
        self,
        context,
        flags: MemFlags = MemFlags.READ_WRITE,
        size: int = 0,
        hostbuf: Optional[np.ndarray] = None,
        dtype=np.float32,
    ):
        if hostbuf is not None:
            arr = np.ascontiguousarray(hostbuf).reshape(-1)
            if MemFlags.COPY_HOST_PTR in flags:
                arr = arr.copy()
            self._array = arr
            self.size = arr.nbytes
        else:
            if size <= 0:
                raise CLError("Buffer needs a positive size or a hostbuf")
            dt = np.dtype(dtype)
            if size % dt.itemsize:
                raise CLError(
                    f"buffer size {size} is not a multiple of dtype size {dt.itemsize}"
                )
            self._array = np.zeros(size // dt.itemsize, dtype=dt)
            self.size = size
        self.flags = flags
        self.context = context
        context._register_allocation(self)

    @property
    def array(self) -> np.ndarray:
        """The backing store (device memory contents)."""
        return self._array

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    def read(self) -> np.ndarray:
        """Copy device contents to a fresh host array."""
        return self._array.copy()

    def write(self, data: np.ndarray) -> None:
        """Copy host data into the buffer (sizes must match)."""
        data = np.ascontiguousarray(data).reshape(-1)
        if data.nbytes != self.size:
            raise CLError(
                f"host data is {data.nbytes} B but buffer is {self.size} B"
            )
        self._array[:] = data.view(self._array.dtype)

    @property
    def flat_array(self) -> np.ndarray:
        """Flat view of the backing store (uniform with Image2D)."""
        return self._array

    def release(self) -> None:
        """Free the allocation (``clReleaseMemObject`` analogue)."""
        self.context._unregister_allocation(self)

    def __repr__(self) -> str:
        return f"<Buffer {self.size} B {self.dtype}>"


class Image2D:
    """A 2-D image object (``cl_mem`` image analogue).

    Single-channel images: ``CL_R``/``CL_FLOAT`` texels for single
    precision, and ``CL_RG``/``CL_UNSIGNED_INT32`` texels reinterpreted
    as doubles for double precision (OpenCL images have no native fp64
    format; generated kernels use the ``as_double(read_imageui(...).xy)``
    idiom).  Backed by a ``height x width`` array; rows are texture
    rows.  Images are read-only to kernels in this stack.
    """

    def __init__(
        self,
        context,
        width: int,
        height: int,
        dtype=np.float32,
        hostbuf: Optional[np.ndarray] = None,
    ):
        if width <= 0 or height <= 0:
            raise CLError(f"image dimensions must be positive, got {width}x{height}")
        dt = np.dtype(dtype)
        if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise CLError(f"unsupported image element type {dt}")
        if hostbuf is not None:
            arr = np.ascontiguousarray(hostbuf, dtype=dt)
            if arr.size != width * height:
                raise CLError(
                    f"hostbuf has {arr.size} elements; image needs {width * height}"
                )
            self._array = arr.reshape(height, width).copy()
        else:
            self._array = np.zeros((height, width), dtype=dt)
        self.width = width
        self.height = height
        self.size = self._array.nbytes
        self.context = context
        context._register_allocation(self)

    @property
    def array(self) -> np.ndarray:
        """The backing store as a ``height x width`` array."""
        return self._array

    @property
    def flat_array(self) -> np.ndarray:
        return self._array.reshape(-1)

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    def read(self) -> np.ndarray:
        return self._array.copy()

    def release(self) -> None:
        self.context._unregister_allocation(self)

    def __repr__(self) -> str:
        return f"<Image2D {self.width}x{self.height} {self.dtype}>"
