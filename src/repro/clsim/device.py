"""Simulated OpenCL devices."""

from __future__ import annotations

from typing import Optional

from repro.devices.catalog import get_device_spec
from repro.devices.specs import DeviceSpec, DeviceType, LocalMemType

__all__ = ["Device", "get_device"]


class Device:
    """An OpenCL device (``cl_device_id`` analogue) wrapping a spec.

    Exposes the subset of ``clGetDeviceInfo`` queries the GEMM stack
    uses, with pyopencl-style property names.
    """

    def __init__(self, spec: DeviceSpec, platform: Optional[object] = None):
        self.spec = spec
        self._platform = platform

    # -- clGetDeviceInfo analogues ---------------------------------------
    @property
    def name(self) -> str:
        return self.spec.product_name

    @property
    def vendor(self) -> str:
        return self.spec.vendor

    @property
    def type(self) -> DeviceType:
        return self.spec.device_type

    @property
    def max_compute_units(self) -> int:
        return self.spec.compute_units

    @property
    def max_clock_frequency(self) -> int:
        """MHz, as OpenCL reports it."""
        return int(self.spec.clock_ghz * 1000)

    @property
    def max_work_group_size(self) -> int:
        return self.spec.model.max_workgroup_size

    @property
    def local_mem_size(self) -> int:
        return self.spec.local_mem_bytes

    @property
    def local_mem_type(self) -> LocalMemType:
        return self.spec.local_mem_type

    @property
    def global_mem_size(self) -> int:
        return int(self.spec.global_mem_gb * (1 << 30))

    @property
    def double_fp_config(self) -> bool:
        """Whether cl_khr_fp64 is supported (all catalog devices)."""
        return True

    @property
    def platform(self):
        if self._platform is None:
            from repro.clsim.platform import get_platforms

            for plat in get_platforms():
                if any(d.spec.codename == self.spec.codename for d in plat.get_devices()):
                    self._platform = plat
                    break
        return self._platform

    # ---------------------------------------------------------------------
    @property
    def codename(self) -> str:
        return self.spec.codename

    def __eq__(self, other) -> bool:
        return isinstance(other, Device) and other.spec == self.spec

    def __hash__(self) -> int:
        return hash(self.spec.codename)

    def __repr__(self) -> str:
        return f"<Device {self.spec.codename!r} ({self.spec.product_name})>"


def get_device(name: str) -> Device:
    """Convenience lookup of a simulated device by catalog codename."""
    return Device(get_device_spec(name))
