"""Command queues, events and enqueue operations.

The queue executes in order and immediately (a blocking in-order queue).
Kernel launches run the plan functionally (:mod:`repro.clsim.executor`)
and record *simulated* timestamps from the performance model — profiling
an event therefore reports the time the kernel would have taken on the
real device, which is what the auto-tuner measures.

Execution modes
---------------
``WORKGROUP``   faithful per-work-group execution (default for problems
                up to ``workgroup_mode_limit`` multiply-add operations);
``FAST``        whole-matrix numpy execution (identical results, used
                for large benchmark sizes);
``TIMING_ONLY`` skip the numerics entirely and only charge model time —
                the tuner's stage-1 sweep over thousands of candidates
                uses this, then functionally verifies the finalists,
                mirroring how a real tuner trusts the device to compute
                and only checks the winners.
``AUTO``        pick WORKGROUP or FAST by problem size.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.clsim.context import Context
from repro.clsim.device import Device
from repro.clsim.executor import ExecutionArrays, execute_plan
from repro.clsim.kernel import Kernel
from repro.clsim.memory import Buffer
from repro.errors import CLError, LaunchError
from repro.perfmodel.model import (
    check_execution_quirks,
    estimate_copy_time,
    estimate_kernel_time,
    estimate_transfer_time,
)

__all__ = [
    "ExecutionMode",
    "EventProfile",
    "Event",
    "CommandQueue",
    "enqueue_nd_range_kernel",
    "enqueue_copy",
]


class ExecutionMode(enum.Enum):
    AUTO = "auto"
    WORKGROUP = "workgroup"
    FAST = "fast"
    TIMING_ONLY = "timing_only"


@dataclass(frozen=True)
class EventProfile:
    """``CL_PROFILING_COMMAND_*`` timestamps in simulated nanoseconds."""

    queued: int
    submit: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        """Kernel execution time in simulated nanoseconds."""
        return self.end - self.start


class Event:
    """A command event (``cl_event`` analogue)."""

    def __init__(self, command: str, profile: EventProfile, breakdown=None):
        self.command = command
        self._profile = profile
        #: Optional :class:`KernelCostBreakdown` for kernel events.
        self.breakdown = breakdown
        self._complete = True  # in-order blocking queue: done on return

    def wait(self) -> None:
        """Block until the command completes (no-op: queue is blocking)."""

    @property
    def profile(self) -> EventProfile:
        return self._profile

    @property
    def is_complete(self) -> bool:
        return self._complete

    def __repr__(self) -> str:
        return f"<Event {self.command} {self._profile.duration} ns>"


class CommandQueue:
    """An in-order command queue (``cl_command_queue`` analogue).

    Maintains a simulated device clock: each enqueued command advances
    it by the modelled duration, so back-to-back kernel events have
    non-overlapping, monotonically increasing timestamps.
    """

    def __init__(
        self,
        context: Context,
        device: Optional[Device] = None,
        profiling: bool = True,
        execution_mode: ExecutionMode = ExecutionMode.AUTO,
        workgroup_mode_limit: int = 1 << 26,
        measurement_noise: bool = True,
        out_of_order: bool = False,
    ):
        self.context = context
        self.device = device or context.device
        if self.device not in context.devices:
            raise CLError(
                f"device {self.device.codename} is not part of the context"
            )
        self.profiling = profiling
        self.execution_mode = execution_mode
        #: Problems with more multiply-adds than this fall back from the
        #: faithful work-group path to the fast path under AUTO.
        self.workgroup_mode_limit = workgroup_mode_limit
        self.measurement_noise = measurement_noise
        #: CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE analogue: commands on
        #: different engines (compute vs DMA) may overlap in simulated
        #: time unless ordered by event wait lists.
        self.out_of_order = out_of_order
        #: Simulated free-time of each hardware engine, in ns.
        self._engine_clock_ns = {"compute": 0, "transfer": 0}
        self._last_end_ns = 0
        #: Monotonic launch counter: makes every launch's fault-injection
        #: key unique, so a fault plan's rates apply per command.
        self._launch_seq = 0

    # ------------------------------------------------------------------
    def _advance(
        self,
        seconds: float,
        engine: str = "compute",
        wait_for: Optional[Tuple] = None,
    ) -> Tuple[int, int]:
        """Schedule one command on an engine; returns (start, end) ns.

        In-order queues serialise all commands; out-of-order queues only
        honour engine availability and explicit event dependencies —
        this is what lets a DMA transfer run under a kernel.
        """
        start = self._engine_clock_ns[engine]
        if not self.out_of_order:
            start = max(start, self._last_end_ns)
        for dep in wait_for or ():
            start = max(start, dep.profile.end)
        end = start + max(1, int(round(seconds * 1e9)))
        self._engine_clock_ns[engine] = end
        self._last_end_ns = max(self._last_end_ns, end)
        return start, end

    def _resolve_mode(self, M: int, N: int, K: int) -> ExecutionMode:
        if self.execution_mode is not ExecutionMode.AUTO:
            return self.execution_mode
        if M * N * K <= self.workgroup_mode_limit:
            return ExecutionMode.WORKGROUP
        return ExecutionMode.FAST

    def finish(self) -> None:
        """Block until all commands complete (no-op: blocking queue)."""

    @property
    def simulated_clock_ns(self) -> int:
        """Completion time of the last command on any engine."""
        return self._last_end_ns

    # ------------------------------------------------------------------
    def launch(
        self,
        kernel,
        global_size: Tuple[int, int],
        local_size: Tuple[int, int],
        wait_for: Optional[Tuple[Event, ...]] = None,
    ) -> Event:
        """Execute a bound kernel over the ND-range.

        ``wait_for`` lists events that must complete first (the OpenCL
        event wait list); only meaningful on out-of-order queues, where
        unordered commands may overlap in simulated time.
        """
        from repro.clsim.kernel import PackKernel

        if isinstance(kernel, PackKernel):
            return self._launch_pack(kernel, global_size, local_size, wait_for)
        kernel.validate_nd_range(global_size, local_size)
        M, N, K, alpha, beta, agm, bgm, cgm = kernel.args
        spec = self.device.spec
        params = kernel.params

        # Device-specific execution quirks (paper Section IV-A), e.g. the
        # Bulldozer PL-DGEMM execution failure.
        check_execution_quirks(spec, params)

        # Injected runtime faults: hangs (real wall-clock, for the
        # watchdog to kill), timing spikes, and silent result corruption.
        injector = self.context.fault_injector
        fault_key = ""
        seconds_factor = 1.0
        if injector is not None:
            self._launch_seq += 1
            fault_key = f"{M}x{N}x{K}|#{self._launch_seq}"
            dev = self.device.codename
            hang = injector.hang_seconds(dev, fault_key, params=params)
            if hang > 0.0:
                time.sleep(hang)
            seconds_factor = injector.timing_factor(dev, fault_key, params=params)

        breakdown = estimate_kernel_time(
            spec, params, M, N, K, noise=self.measurement_noise
        )

        mode = self._resolve_mode(M, N, K)
        if mode is not ExecutionMode.TIMING_ONLY:
            arrays = ExecutionArrays(
                kernel.plan, agm.flat_array, bgm.flat_array, cgm.flat_array, M, N, K
            )
            execute_plan(
                kernel.plan, arrays, alpha, beta, mode=mode.value,
                injector=injector, device=self.device.codename,
                fault_key=fault_key,
            )

        start, end = self._advance(
            breakdown.total_seconds * seconds_factor,
            engine="compute", wait_for=wait_for,
        )
        profile = EventProfile(queued=start, submit=start, start=start, end=end)
        return Event("ndrange_kernel", profile, breakdown=breakdown)

    def _launch_pack(self, kernel, global_size, local_size, wait_for=None) -> Event:
        """Execute a generated pack/transpose kernel."""
        from repro.perfmodel.model import estimate_pack_time

        kernel.validate_nd_range(global_size, local_size)
        src_rows, src_cols, k_padded, x_padded, src, dst = kernel.args
        plan = kernel.pack_plan
        esize = plan.dtype.itemsize
        seconds = estimate_pack_time(
            self.device.spec,
            read_bytes=float(src_rows * src_cols * esize),
            write_bytes=float(k_padded * x_padded * esize),
            transpose=plan.transpose,
            block_major=plan.layout.is_block_major,
        )
        mode = self._resolve_mode(src_rows, src_cols, 1)
        if mode is not ExecutionMode.TIMING_ONLY:
            packed = plan.execute(
                src.array.view(plan.dtype)[: src_rows * src_cols],
                src_rows, src_cols, k_padded, x_padded,
            )
            dst.array[:] = packed.view(dst.dtype)
        start, end = self._advance(seconds, engine="compute", wait_for=wait_for)
        return Event("pack_kernel", EventProfile(start, start, start, end))

    def copy(self, dest, src, wait_for: Optional[Tuple[Event, ...]] = None) -> Event:
        """Copy host<->device or device<->device (``clEnqueueCopy*``).

        Host transfers cross the interconnect (PCIe on the GPUs) on the
        DMA engine; device-to-device copies run at DRAM speed.
        """
        if isinstance(src, Buffer) and isinstance(dest, np.ndarray):
            flat = dest.reshape(-1)
            if flat.nbytes != src.size:
                raise CLError(
                    f"host destination is {flat.nbytes} B, buffer is {src.size} B"
                )
            flat[:] = src.array.view(flat.dtype)
            seconds = estimate_transfer_time(self.device.spec, float(src.size))
        elif isinstance(dest, Buffer) and isinstance(src, np.ndarray):
            dest.write(src)
            seconds = estimate_transfer_time(self.device.spec, float(dest.size))
        elif isinstance(dest, Buffer) and isinstance(src, Buffer):
            if dest.size != src.size:
                raise CLError("device-to-device copy requires equal sizes")
            dest.array[:] = src.array.view(dest.dtype)
            seconds = estimate_copy_time(self.device.spec, float(dest.size))
        else:
            raise CLError(
                "enqueue_copy needs (ndarray, Buffer), (Buffer, ndarray) or "
                "(Buffer, Buffer)"
            )
        start, end = self._advance(seconds, engine="transfer", wait_for=wait_for)
        return Event("copy", EventProfile(start, start, start, end))


def enqueue_nd_range_kernel(
    queue: CommandQueue,
    kernel: Kernel,
    global_size: Tuple[int, int],
    local_size: Tuple[int, int],
    wait_for: Optional[Tuple[Event, ...]] = None,
) -> Event:
    """pyopencl-style free function wrapping :meth:`CommandQueue.launch`."""
    return queue.launch(kernel, global_size, local_size, wait_for=wait_for)


def enqueue_copy(
    queue: CommandQueue, dest, src, wait_for: Optional[Tuple[Event, ...]] = None
) -> Event:
    """pyopencl-style free function wrapping :meth:`CommandQueue.copy`."""
    return queue.copy(dest, src, wait_for=wait_for)
