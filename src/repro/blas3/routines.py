"""Blocked GEMM-based Level-3 BLAS routines.

Each routine partitions its problem into ``nb``-sized panels so that the
O(N^3) work is performed by calls to a (simulated, tuned)
:class:`~repro.gemm.routine.GemmRoutine`, following the GEMM-based
Level-3 BLAS approach of Kågström et al. (the paper's reference [3]).
Diagonal-block work — small triangular multiplies/solves and symmetric
rank updates of at most ``nb x nb`` — runs directly and is charged a
modelled time, so the reported rates reflect what the full routine would
cost on the device.

Conventions follow the BLAS: ``side`` in {'L', 'R'}, ``uplo`` in
{'L', 'U'}, ``trans`` in {'N', 'T'}, ``diag`` in {'N', 'U'}.
Right-sided cases reduce to left-sided ones through the transposition
identity ``(B op(A))^T = op(A)^T B^T``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.codegen.params import KernelParams
from repro.errors import ReproError
from repro.gemm.routine import GemmRoutine, GemmTimings

__all__ = ["Blas3Timings", "Blas3Result", "Blas3"]


@dataclass
class Blas3Timings:
    """Aggregated simulated time of one Level-3 routine call."""

    gemm_s: float = 0.0
    diag_s: float = 0.0
    gemm_calls: int = 0
    diag_calls: int = 0

    @property
    def total_s(self) -> float:
        return self.gemm_s + self.diag_s

    def add_gemm(self, timings: GemmTimings) -> None:
        self.gemm_s += timings.total_s
        self.gemm_calls += 1

    def add_diag(self, seconds: float) -> None:
        self.diag_s += seconds
        self.diag_calls += 1


@dataclass(frozen=True)
class Blas3Result:
    """Result matrix plus performance accounting."""

    x: np.ndarray
    #: Useful floating-point operations of the routine (BLAS convention,
    #: counting the structure: SYRK and the triangular routines do half
    #: the work of an equivalent GEMM).
    flops: float
    timings: Blas3Timings

    @property
    def effective_gflops(self) -> float:
        return self.flops / self.timings.total_s / 1e9

    @property
    def gemm_fraction(self) -> float:
        """Share of time spent in the GEMM kernel path."""
        if self.timings.total_s == 0:
            return 0.0
        return self.timings.gemm_s / self.timings.total_s


def _check_flag(name: str, value: str, allowed: str) -> str:
    value = value.upper()
    if value not in allowed:
        raise ReproError(f"{name} must be one of {tuple(allowed)}, got {value!r}")
    return value


def _square(a: np.ndarray, name: str) -> int:
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ReproError(f"{name} must be a square matrix, got shape {a.shape}")
    return a.shape[0]


class Blas3:
    """GEMM-based SYMM / SYRK / TRMM / TRSM / POTRF on one device."""

    def __init__(
        self,
        gemm: Union[GemmRoutine, str],
        params: Optional[KernelParams] = None,
        block_size: Optional[int] = None,
    ):
        if isinstance(gemm, GemmRoutine):
            self.gemm = gemm
        else:
            from repro.api import tuned_gemm

            precision = params.precision if params is not None else "d"
            self.gemm = tuned_gemm(gemm, precision, params=params)
        lcm = self.gemm.params.lcm
        if block_size is None:
            # A panel width of a few blocking LCMs keeps the diagonal
            # work negligible while the GEMM calls stay efficient.
            block_size = lcm * max(1, 256 // lcm)
        if block_size % lcm:
            raise ReproError(
                f"block_size {block_size} must be a multiple of the kernel "
                f"blocking LCM ({lcm})"
            )
        self.block_size = block_size

    @property
    def dtype(self) -> np.dtype:
        return self.gemm.dtype

    @property
    def spec(self):
        return self.gemm.device.spec

    # -- internals --------------------------------------------------------
    def _diag_time(self, flops: float) -> float:
        """Modelled cost of one small diagonal-block operation.

        Small problems run far below peak (launch overhead, no blocking);
        a flat 20%-of-peak rate plus a launch overhead is a conservative
        stand-in and keeps diagonal work visible in the accounting.
        """
        peak = self.spec.peak_gflops(self.gemm.precision) * 1e9
        return flops / (0.20 * peak) + self.spec.model.launch_overhead_us * 1e-6

    def _gemm_into(
        self,
        timings: Blas3Timings,
        out: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        alpha: float,
        beta: float,
        transa: str = "N",
        transb: str = "N",
    ) -> None:
        """out <- alpha op(a) op(b) + beta out, through the device GEMM."""
        result = self.gemm(a, b, out if beta != 0.0 else None,
                           alpha=alpha, beta=beta, transa=transa, transb=transb)
        out[...] = result.c
        timings.add_gemm(result.timings)

    def _panels(self, n: int) -> List[Tuple[int, int]]:
        nb = self.block_size
        return [(i, min(i + nb, n)) for i in range(0, n, nb)]

    @staticmethod
    def _tri(a: np.ndarray, uplo: str, diag: str) -> np.ndarray:
        t = np.tril(a) if uplo == "L" else np.triu(a)
        if diag == "U":
            np.fill_diagonal(t, 1.0)
        return t

    # -- SYMM ---------------------------------------------------------------
    def symm(
        self,
        side: str,
        uplo: str,
        alpha: float,
        a: np.ndarray,
        b: np.ndarray,
        beta: float = 0.0,
        c: Optional[np.ndarray] = None,
    ) -> Blas3Result:
        """``C <- alpha A B + beta C`` (side='L') with symmetric ``A``.

        Only the ``uplo`` triangle of ``A`` is referenced; the other half
        is reflected during the panel staging (an O(N^2) copy, charged as
        diagonal work), after which all multiplication is GEMM.
        """
        side = _check_flag("side", side, "LR")
        uplo = _check_flag("uplo", uplo, "LU")
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        n = _square(a, "A")
        expected_b = (n, b.shape[1]) if side == "L" else (b.shape[0], n)
        if b.shape != expected_b:
            raise ReproError(f"B has shape {b.shape}, expected {expected_b}")
        out_shape = b.shape
        if beta != 0.0:
            if c is None:
                raise ReproError("beta != 0 requires a C operand")
            c = np.asarray(c, dtype=self.dtype)
            if c.shape != out_shape:
                raise ReproError(f"C has shape {c.shape}, expected {out_shape}")

        timings = Blas3Timings()
        # Reflect the referenced triangle into a full symmetric matrix
        # (panel staging; O(N^2) data movement).
        tri = np.tril(a) if uplo == "L" else np.triu(a)
        full = tri + tri.T - np.diag(np.diag(a))
        timings.add_diag(self._diag_time(float(n * n)))

        out = np.array(c, dtype=self.dtype, copy=True) if c is not None else \
            np.zeros(out_shape, dtype=self.dtype)
        if side == "L":
            self._gemm_into(timings, out, full, b, alpha, beta)
            flops = 2.0 * n * n * b.shape[1]
        else:
            self._gemm_into(timings, out, b, full, alpha, beta)
            flops = 2.0 * n * n * b.shape[0]
        return Blas3Result(out, flops, timings)

    # -- SYRK ---------------------------------------------------------------
    def syrk(
        self,
        uplo: str,
        trans: str,
        alpha: float,
        a: np.ndarray,
        beta: float = 0.0,
        c: Optional[np.ndarray] = None,
    ) -> Blas3Result:
        """``C <- alpha op(A) op(A)^T + beta C`` on the ``uplo`` triangle.

        Blocked by panel rows of C: each diagonal block is a small local
        rank-k update; each off-diagonal panel is one GEMM.  Only the
        requested triangle of the result is computed/updated (the other
        triangle of the returned array holds ``beta * C`` input values).
        """
        uplo = _check_flag("uplo", uplo, "LU")
        trans = _check_flag("trans", trans, "NT")
        a = np.asarray(a, dtype=self.dtype)
        if a.ndim != 2:
            raise ReproError("A must be 2-D")
        n, k = a.shape if trans == "N" else a.shape[::-1]
        if c is None:
            if beta != 0.0:
                raise ReproError("beta != 0 requires a C operand")
            c_work = np.zeros((n, n), dtype=self.dtype)
        else:
            c = np.asarray(c, dtype=self.dtype)
            _square(c, "C")
            if c.shape[0] != n:
                raise ReproError(f"C has shape {c.shape}, expected ({n}, {n})")
            # BLAS semantics: the opposite triangle is never referenced or
            # modified — the returned array keeps its input values there.
            c_work = np.array(c, copy=True)

        # Row panels of op(A).
        opa = a if trans == "N" else np.ascontiguousarray(a.T)
        timings = Blas3Timings()
        for pi, (i0, i1) in enumerate(self._panels(n)):
            block = opa[i0:i1]
            nb = i1 - i0
            # Diagonal block: small rank-k update on its triangle, local.
            update = alpha * (block @ block.T)
            idx = np.tril_indices(nb) if uplo == "L" else np.triu_indices(nb)
            diag_view = c_work[i0:i1, i0:i1]
            diag_view[idx] = beta * diag_view[idx] + update[idx]
            timings.add_diag(self._diag_time(float(nb * nb * k)))
            # Off-diagonal strip: one GEMM against all previous panels.
            if pi > 0 and uplo == "L":
                self._gemm_into(
                    timings, c_work[i0:i1, :i0], block, opa[:i0],
                    alpha, beta, transb="T",
                )
            elif pi > 0 and uplo == "U":
                self._gemm_into(
                    timings, c_work[:i0, i0:i1], opa[:i0], block,
                    alpha, beta, transb="T",
                )
        return Blas3Result(c_work, float(n * n * k), timings)

    # -- TRMM ---------------------------------------------------------------
    def trmm(
        self,
        side: str,
        uplo: str,
        transa: str,
        diag: str,
        alpha: float,
        a: np.ndarray,
        b: np.ndarray,
    ) -> Blas3Result:
        """``B <- alpha op(tri(A)) B`` (side='L') / ``alpha B op(tri(A))``.

        Blocked: each row panel of the result combines one small
        triangular-block multiply (local) with one GEMM over the
        rectangular part of the triangle.
        """
        side = _check_flag("side", side, "LR")
        uplo = _check_flag("uplo", uplo, "LU")
        transa = _check_flag("transa", transa, "NT")
        diag = _check_flag("diag", diag, "NU")
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        n = _square(a, "A")

        if side == "R":
            # B op(T) = (op(T)^T B^T)^T : reuse the left case with the
            # opposite transpose and flipped storage triangle.
            inner = self.trmm(
                "L", uplo, "T" if transa == "N" else "N", diag,
                alpha, a, np.ascontiguousarray(b.T),
            )
            return Blas3Result(
                np.ascontiguousarray(inner.x.T), inner.flops, inner.timings
            )

        if b.shape[0] != n:
            raise ReproError(f"B has shape {b.shape}; op(A) needs {n} rows")
        t = self._tri(a, uplo, diag)
        opt = t if transa == "N" else t.T
        # Effective triangle of op(T): transposition flips it.
        eff_uplo = uplo if transa == "N" else ("U" if uplo == "L" else "L")

        timings = Blas3Timings()
        out = np.empty_like(b)
        panels = self._panels(n)
        # Lower: row i depends on panels j <= i (old values) -> process
        # top-down is fine since we write into `out`, not `b`.
        for i0, i1 in panels:
            diag_block = opt[i0:i1, i0:i1]
            out[i0:i1] = alpha * (diag_block @ b[i0:i1])
            timings.add_diag(self._diag_time(float((i1 - i0) ** 2 * b.shape[1])))
            if eff_uplo == "L" and i0 > 0:
                self._gemm_into(
                    timings, out[i0:i1], opt[i0:i1, :i0], b[:i0], alpha, 1.0
                )
            elif eff_uplo == "U" and i1 < n:
                self._gemm_into(
                    timings, out[i0:i1], opt[i0:i1, i1:], b[i1:], alpha, 1.0
                )
        return Blas3Result(out, float(n * n * b.shape[1]), timings)

    # -- TRSM ---------------------------------------------------------------
    def trsm(
        self,
        side: str,
        uplo: str,
        transa: str,
        diag: str,
        alpha: float,
        a: np.ndarray,
        b: np.ndarray,
    ) -> Blas3Result:
        """Solve ``op(tri(A)) X = alpha B`` (side='L') for ``X``.

        Blocked forward/backward substitution: each panel needs one small
        triangular solve (local) after a GEMM update with the already
        solved panels — the standard LAPACK building block.
        """
        side = _check_flag("side", side, "LR")
        uplo = _check_flag("uplo", uplo, "LU")
        transa = _check_flag("transa", transa, "NT")
        diag = _check_flag("diag", diag, "NU")
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        n = _square(a, "A")

        if side == "R":
            inner = self.trsm(
                "L", uplo, "T" if transa == "N" else "N", diag,
                alpha, a, np.ascontiguousarray(b.T),
            )
            return Blas3Result(
                np.ascontiguousarray(inner.x.T), inner.flops, inner.timings
            )

        if b.shape[0] != n:
            raise ReproError(f"B has shape {b.shape}; op(A) needs {n} rows")
        t = self._tri(a, uplo, diag)
        opt = t if transa == "N" else t.T
        eff_uplo = uplo if transa == "N" else ("U" if uplo == "L" else "L")

        timings = Blas3Timings()
        x = alpha * b.astype(self.dtype, copy=True)
        panels = self._panels(n)
        order = panels if eff_uplo == "L" else panels[::-1]
        for i0, i1 in order:
            if eff_uplo == "L" and i0 > 0:
                # x_i -= T[i, :i] @ x[:i]  (already solved panels)
                self._gemm_into(timings, x[i0:i1], opt[i0:i1, :i0], x[:i0], -1.0, 1.0)
            elif eff_uplo == "U" and i1 < n:
                self._gemm_into(timings, x[i0:i1], opt[i0:i1, i1:], x[i1:], -1.0, 1.0)
            # Small triangular solve on the diagonal block.
            x[i0:i1] = np.linalg.solve(opt[i0:i1, i0:i1], x[i0:i1])
            timings.add_diag(self._diag_time(float((i1 - i0) ** 2 * x.shape[1])))
        return Blas3Result(x, float(n * n * b.shape[1]), timings)

    # -- POTRF (LAPACK layer demo) ------------------------------------------
    def potrf(self, a: np.ndarray, uplo: str = "L") -> Blas3Result:
        """Blocked Cholesky ``A = L L^T`` (returns ``L``; uplo='L' only).

        The right-looking LAPACK algorithm: factor the diagonal block
        locally, TRSM the panel below it, SYRK-update the trailing
        matrix — almost all time in GEMM-shaped work, which is exactly
        why GEMM performance dominates dense linear algebra (the paper's
        opening argument).
        """
        uplo = _check_flag("uplo", uplo, "L")
        a = np.asarray(a, dtype=self.dtype)
        n = _square(a, "A")
        work = np.array(a, copy=True)
        timings = Blas3Timings()
        for i0, i1 in self._panels(n):
            nb = i1 - i0
            # 1. local Cholesky of the diagonal block
            work[i0:i1, i0:i1] = np.linalg.cholesky(work[i0:i1, i0:i1])
            timings.add_diag(self._diag_time(float(nb**3) / 3.0))
            if i1 == n:
                break
            # 2. panel solve: A[i1:, i0:i1] <- A[i1:, i0:i1] L^{-T}
            ldiag = work[i0:i1, i0:i1]
            panel = np.linalg.solve(ldiag, work[i1:, i0:i1].T).T
            work[i1:, i0:i1] = panel
            timings.add_diag(self._diag_time(float(nb * nb * (n - i1))))
            # 3. trailing update: A[i1:, i1:] -= panel panel^T (GEMM-shaped)
            trailing = np.array(work[i1:, i1:], copy=True)
            self._gemm_into(timings, trailing, panel, panel, -1.0, 1.0, transb="T")
            work[i1:, i1:] = trailing
        result = np.tril(work)
        return Blas3Result(result, float(n**3) / 3.0, timings)
