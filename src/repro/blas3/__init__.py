"""GEMM-based Level-3 BLAS (and a LAPACK-style factorization).

The paper's opening motivation: GEMM "is a building block of LAPACK and
other Level-3 BLAS routines", citing Kågström, Ling & Van Loan's
GEMM-based Level-3 BLAS [3].  This package realises that claim on top of
the tuned GEMM routine: SYMM, SYRK, TRMM and TRSM are blocked so that
asymptotically all floating-point work flows through the simulated GEMM
kernel, with only small diagonal-block operations handled directly; a
blocked Cholesky factorization (POTRF) demonstrates the LAPACK layer.
"""

from repro.blas3.routines import (
    Blas3,
    Blas3Result,
    Blas3Timings,
)

__all__ = ["Blas3", "Blas3Result", "Blas3Timings"]
