"""Convenience entry points for the most common workflows."""

from __future__ import annotations

from typing import Optional, Union

from repro.codegen.params import KernelParams
from repro.codegen.space import SpaceRestrictions
from repro.devices.catalog import get_device_spec
from repro.devices.specs import DeviceSpec
from repro.gemm.routine import GemmRoutine
from repro.tuner.pretuned import pretuned_params
from repro.tuner.search import TuningConfig, TuningResult, tune

__all__ = ["autotune", "tuned_gemm"]


def autotune(
    device: Union[str, DeviceSpec],
    precision: str = "d",
    budget: Optional[int] = 4000,
    seed: int = 0,
    restrictions: Optional[SpaceRestrictions] = None,
) -> TuningResult:
    """Run the staged kernel search for one device and precision.

    ``budget=None`` explores the full heuristic space (tens of thousands
    of candidates, as in the paper's five-hour runs — a few seconds on
    the simulator).
    """
    config = TuningConfig(budget=budget, seed=seed)
    return tune(device, precision, config, restrictions)


def tuned_gemm(
    device: Union[str, DeviceSpec],
    precision: str = "d",
    params: Optional[KernelParams] = None,
    use_pretuned: bool = True,
    **routine_kwargs,
) -> GemmRoutine:
    """A ready-to-call GEMM routine for a device.

    Resolution order: explicit ``params`` if given; the shipped pretuned
    parameters if ``use_pretuned``; otherwise a fresh (default-budget)
    auto-tuning run.
    """
    spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
    if params is None:
        if use_pretuned:
            try:
                params = pretuned_params(spec.codename, precision)
            except KeyError:
                params = None
        if params is None:
            params = autotune(spec, precision).best.params
    if params.precision != precision:
        raise ValueError(
            f"params are for precision {params.precision!r}, requested {precision!r}"
        )
    return GemmRoutine(spec, params, **routine_kwargs)
