"""Convenience entry points for the most common workflows."""

from __future__ import annotations

import logging
from typing import Optional, Union

from repro.codegen.params import KernelParams
from repro.codegen.space import SpaceRestrictions
from repro.devices.catalog import get_device_spec
from repro.devices.specs import DeviceSpec
from repro.gemm.routine import GemmRoutine
from repro.obs import Observability
from repro.tuner.pretuned import pretuned_params
from repro.tuner.search import TuningConfig, TuningResult, tune

__all__ = ["autotune", "tuned_gemm", "serve", "observability"]

logger = logging.getLogger("repro.api")


def autotune(
    device: Union[str, DeviceSpec],
    precision: str = "d",
    budget: Optional[int] = 4000,
    seed: int = 0,
    restrictions: Optional[SpaceRestrictions] = None,
    obs: Optional[Observability] = None,
) -> TuningResult:
    """Run the staged kernel search for one device and precision.

    ``budget=None`` explores the full heuristic space (tens of thousands
    of candidates, as in the paper's five-hour runs — a few seconds on
    the simulator).  Pass ``obs=observability(seed)`` to record per-stage
    spans and search metrics.
    """
    config = TuningConfig(budget=budget, seed=seed)
    return tune(device, precision, config, restrictions, obs=obs)


def tuned_gemm(
    device: Union[str, DeviceSpec],
    precision: str = "d",
    params: Optional[KernelParams] = None,
    use_pretuned: bool = True,
    **routine_kwargs,
) -> GemmRoutine:
    """A ready-to-call GEMM routine for a device.

    Resolution order: explicit ``params`` if given; the shipped pretuned
    parameters if ``use_pretuned``; otherwise a fresh (default-budget)
    auto-tuning run.  The pretuned-to-autotune fallback is logged (a
    surprise multi-second tuning run on the request path should never be
    silent).
    """
    spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
    if params is None:
        if use_pretuned:
            try:
                params = pretuned_params(spec.codename, precision)
            except KeyError as exc:
                logger.warning(
                    "no pretuned kernel for %s/%s; falling back to a fresh "
                    "autotune run (%s)", spec.codename, precision, exc,
                )
                params = None
        if params is None:
            params = autotune(spec, precision).best.params
    if params.precision != precision:
        raise ValueError(
            f"params are for precision {params.precision!r}, requested {precision!r}"
        )
    return GemmRoutine(spec, params, **routine_kwargs)


def serve(
    devices: Union[str, DeviceSpec, "list"],
    precision: str = "d",
    **service_kwargs,
) -> "object":
    """A ready :class:`~repro.serve.GemmService` fronting the tuned kernels.

    The convenience constructor for the resilient serving layer: request
    validation, admission control, circuit breakers, the degradation
    ladder, and Freivalds result verification, with sensible defaults.
    Pass ``obs=observability(seed)`` to trace each request through the
    gates and mirror the service counters into a metrics registry.
    """
    from repro.serve import GemmService

    return GemmService(devices, precision, **service_kwargs)


def observability(seed: int = 0, trace_limit: Optional[int] = None) -> Observability:
    """An enabled telemetry bundle (tracer + metrics registry).

    Hand the same instance to :func:`serve`, :func:`autotune`,
    :class:`~repro.gemm.multidev.MultiDeviceGemm`, or
    :class:`~repro.gemm.dispatch.KernelSelector` to collect one unified
    trace/metrics view; see :mod:`repro.obs` and docs/observability.md.
    """
    return Observability(seed=seed, trace_limit=trace_limit)
