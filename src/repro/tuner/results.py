"""Persistence of tuning results.

Auto-tuning is expensive (the paper's full searches run "more than five
hours" per GEMM type per device), so tuned parameters are stored in a
JSON database keyed by (device, precision) and reloaded on demand — the
same pattern ATLAS and clBLAS use for their tuned parameter stores.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.codegen.params import KernelParams
from repro.persist import dump_json_atomic, load_json_checked
from repro.tuner.search import TuningResult

__all__ = ["TunedKernelRecord", "ResultsDatabase"]


@dataclass(frozen=True)
class TunedKernelRecord:
    """One tuned kernel: the winning parameters and their measurement.

    ``search_stats`` optionally records the provenance of the winner —
    the full :class:`~repro.tuner.search.TuningStats` accounting of the
    search that produced it (candidates generated/measured/pruned, cache
    traffic, per-stage timings).  Older databases without the field load
    with ``search_stats=None``.
    """

    device: str
    precision: str
    params: KernelParams
    gflops: float
    size: int
    search_stats: Optional[Dict] = None

    @property
    def strategy(self) -> str:
        """Which search strategy produced this winner.

        Read from the stored stats; records persisted before pluggable
        strategies existed are, by construction, exhaustive sweeps.
        """
        if self.search_stats is None:
            return "exhaustive"
        return str(self.search_stats.get("strategy", "exhaustive"))

    @property
    def transferred(self) -> bool:
        """Whether cross-device transfer warm-start fed the search."""
        return bool(
            self.search_stats
            and self.search_stats.get("strategy_transfer_seeds", 0)
        )

    def to_dict(self) -> Dict:
        d = {
            "device": self.device,
            "precision": self.precision,
            "params": self.params.to_dict(),
            "gflops": self.gflops,
            "size": self.size,
        }
        if self.search_stats is not None:
            d["search_stats"] = dict(self.search_stats)
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "TunedKernelRecord":
        stats = d.get("search_stats")
        return cls(
            device=str(d["device"]),
            precision=str(d["precision"]),
            params=KernelParams.from_dict(d["params"]),
            gflops=float(d["gflops"]),
            size=int(d["size"]),
            search_stats=dict(stats) if stats is not None else None,
        )

    @classmethod
    def from_result(cls, result: TuningResult) -> "TunedKernelRecord":
        return cls(
            device=result.device,
            precision=result.precision,
            params=result.best.params,
            gflops=result.best.gflops,
            size=result.best.size,
            search_stats=result.stats.as_dict(),
        )


class ResultsDatabase:
    """JSON-backed store of tuned kernels, keyed by (device, precision)."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._records: Dict[Tuple[str, str], TunedKernelRecord] = {}
        if path and os.path.exists(path):
            self.load(path)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._records

    def put(self, record: TunedKernelRecord) -> None:
        self._records[(record.device, record.precision)] = record

    def put_result(self, result: TuningResult) -> TunedKernelRecord:
        record = TunedKernelRecord.from_result(result)
        self.put(record)
        return record

    def get(self, device: str, precision: str) -> Optional[TunedKernelRecord]:
        return self._records.get((device, precision))

    def records(self):
        return list(self._records.values())

    # -- persistence -----------------------------------------------------
    def save(self, path: Optional[str] = None) -> str:
        path = path or self.path
        if not path:
            raise ValueError("no path given and database has no default path")
        payload = {
            "format": "repro-tuned-kernels/1",
            "records": [r.to_dict() for r in self._records.values()],
        }
        # Crash-safe write: tmp + fsync + atomic rename + checksum.
        dump_json_atomic(path, payload, indent=2)
        self.path = path
        return path

    def load(self, path: str) -> None:
        payload = load_json_checked(path)
        if payload is None:
            # Missing / truncated / corrupt (quarantined): empty database.
            self.path = path
            return
        if payload.get("format") != "repro-tuned-kernels/1":
            raise ValueError(f"{path} is not a tuned-kernel database")
        for entry in payload["records"]:
            self.put(TunedKernelRecord.from_dict(entry))
        self.path = path
