"""Post-tuning analysis: which parameters matter, and why.

The paper spends its Section IV-A discussing which generator parameters
drive performance on which device (local memory on Kepler, layouts on
AMD, algorithms on Cayman, ...).  This module turns one tuned kernel
into exactly that analysis: a one-at-a-time sensitivity sweep around the
winner, a model cost decomposition, and a rendered report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.codegen.params import KernelParams
from repro.devices.catalog import get_device_spec
from repro.devices.specs import DeviceSpec
from repro.errors import BuildError, LaunchError, ParameterError
from repro.perfmodel.model import estimate_kernel_time
from repro.tuner.refine import neighbors
from repro.tuner.search import TuningStats

__all__ = [
    "ParameterSensitivity",
    "KernelAnalysis",
    "analyze_kernel",
    "render_stats",
    "surrogate_sensitivities",
]


def render_stats(stats: TuningStats) -> str:
    """Render one search's observability counters as a text report.

    Covers the paper's candidate accounting plus the pipeline telemetry:
    per-stage wall-clock timings, candidate throughput, cache hit-rate,
    and checkpoint/resume activity.
    """
    lines = [
        "search telemetry:",
        f"  candidates   : {stats.generated} generated, {stats.measured} measured, "
        f"{stats.refined} refined",
        f"  pruned       : {stats.pruned} "
        f"(generation {stats.failed_generation}, build {stats.failed_build}, "
        f"launch {stats.failed_launch}); {stats.failed_validation} failed validation",
    ]
    if stats.static_rejects:
        by_rule = ", ".join(
            f"{rule} {count}"
            for rule, count in sorted(stats.static_rejects_by_rule.items())
        )
        lines.append(
            f"  static gate  : {stats.static_rejects} rejected "
            f"pre-measurement ({by_rule})"
        )
    if (
        stats.retries or stats.timeouts or stats.quarantined
        or stats.failed_transient or stats.faults_by_class
    ):
        by_class = ", ".join(
            f"{kind} {count}"
            for kind, count in sorted(stats.faults_by_class.items())
        ) or "none"
        lines.append(
            f"  resilience   : {stats.retries} retries, {stats.timeouts} timeouts, "
            f"{stats.quarantined} quarantined, "
            f"{stats.failed_transient} exhausted budgets; faults: {by_class}"
        )
    if stats.cache_hits or stats.cache_misses:
        lines.append(
            f"  cache        : {stats.cache_hit_rate:.1%} hit rate "
            f"({stats.cache_hits} hits, {stats.cache_misses} misses)"
        )
    if stats.checkpoints or stats.resumed:
        lines.append(
            f"  checkpoints  : {stats.checkpoints} written, "
            f"{stats.resumed} candidates resumed"
        )
    if stats.strategy_proposals or stats.strategy != "exhaustive":
        line = (
            f"  strategy     : {stats.strategy} "
            f"({stats.strategy_proposals} proposals"
        )
        if stats.strategy_refits:
            line += f", {stats.strategy_refits} model refits"
        if stats.strategy_transfer_seeds:
            line += f", {stats.strategy_transfer_seeds} transfer seeds"
        line += ")"
        if stats.strategy_early_stop:
            line += f"; early stop: {stats.strategy_early_stop}"
        lines.append(line)
    if stats.strategy_importance:
        ranked = sorted(
            stats.strategy_importance.items(), key=lambda kv: (-kv[1], kv[0])
        )
        lines.append(
            "  model import.: "
            + ", ".join(f"{family} {weight:.0%}" for family, weight in ranked[:5])
        )
    lines.append(
        f"  stage timing : stage1 {stats.stage1_s:.2f}s, "
        f"refine {stats.refine_s:.2f}s, sweep {stats.stage2_s:.2f}s, "
        f"verify {stats.verify_s:.2f}s "
        f"({stats.candidates_per_s:.0f} candidates/s overall)"
    )
    return "\n".join(lines)


@dataclass(frozen=True)
class ParameterSensitivity:
    """Effect of perturbing one parameter family away from the winner."""

    family: str
    #: Best GFlop/s among the family's one-step variations.
    best_variant_gflops: float
    #: Worst viable variation (how badly one can lose inside one step).
    worst_variant_gflops: float
    #: Number of viable one-step variations tried.
    variants: int

    def loss(self, reference: float) -> float:
        """Fraction of performance lost by the best one-step change.

        Near 0: the optimum is flat along this family.  Large: the
        winner's value of this parameter is load-bearing.
        """
        if reference <= 0:
            return 0.0
        return max(0.0, 1.0 - self.best_variant_gflops / reference)


#: Which KernelParams fields belong to which report family.
_FAMILIES: Dict[str, Tuple[str, ...]] = {
    "blocking": ("mwg", "nwg", "kwg"),
    "workgroup shape": ("mdimc", "ndimc"),
    "unrolling": ("kwi",),
    "vector width": ("vw",),
    "stride mode": ("stride",),
    "local memory": ("shared_a", "shared_b", "mdima", "ndimb"),
    "layouts": ("layout_a", "layout_b"),
    "algorithm": ("algorithm",),
    "memory objects": ("use_images",),
}


def _family_of(base: KernelParams, variant: KernelParams) -> Optional[str]:
    changed = {
        name
        for name in (
            "mwg", "nwg", "kwg", "mdimc", "ndimc", "kwi", "vw", "stride",
            "shared_a", "shared_b", "mdima", "ndimb", "layout_a", "layout_b",
            "algorithm", "use_images",
        )
        if getattr(base, name) != getattr(variant, name)
    }
    for family, fields in _FAMILIES.items():
        if changed and changed <= set(fields):
            return family
    return None  # multi-family change (e.g. shared toggle resetting mdima)


@dataclass
class KernelAnalysis:
    """Sensitivity + cost decomposition of one kernel on one device."""

    device: str
    params: KernelParams
    size: int
    gflops: float
    efficiency: float
    bound: str
    cost_factors: Dict[str, float]
    sensitivities: List[ParameterSensitivity] = field(default_factory=list)

    def ranked_sensitivities(self) -> List[ParameterSensitivity]:
        return sorted(
            self.sensitivities, key=lambda s: s.loss(self.gflops), reverse=True
        )

    def render(self) -> str:
        lines = [
            f"kernel analysis on {self.device} (N={self.size})",
            f"  {self.params.summary()}",
            f"  modelled rate : {self.gflops:.1f} GFlop/s "
            f"({self.efficiency:.0%} of peak), {self.bound}-bound",
            "",
            "  issue-efficiency factors (multiplicative):",
        ]
        for name, value in sorted(self.cost_factors.items(), key=lambda kv: kv[1]):
            lines.append(f"    {name:12s} {value:6.3f}")
        lines.append("")
        lines.append("  parameter sensitivity (loss from the best one-step change):")
        for s in self.ranked_sensitivities():
            lines.append(
                f"    {s.family:16s} loss {s.loss(self.gflops):6.1%}   "
                f"(best neighbour {s.best_variant_gflops:8.1f}, "
                f"worst {s.worst_variant_gflops:8.1f}, {s.variants} variants)"
            )
        return "\n".join(lines)


def surrogate_sensitivities(
    importance: Dict[str, float], reference: float
) -> List[ParameterSensitivity]:
    """The surrogate's learned feature importance as sensitivity rows.

    The regression forest's per-family variance-reduction shares
    (:meth:`SurrogateStrategy.family_importance`) are re-expressed in
    the same :class:`ParameterSensitivity` shape the one-at-a-time sweep
    produces, scaled against ``reference`` GFlop/s so that
    ``row.loss(reference)`` equals the family's importance share.  That
    puts the *model's* view of which parameters matter side by side with
    the *measured* view, directly comparable against the paper's
    Section III/IV claims.
    """
    from repro.tuner.strategies.encoding import FEATURE_FAMILIES

    feature_counts: Dict[str, int] = {}
    for family in FEATURE_FAMILIES.values():
        feature_counts[family] = feature_counts.get(family, 0) + 1
    rows = []
    for family, weight in sorted(
        importance.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        scaled = reference * (1.0 - min(1.0, max(0.0, weight)))
        rows.append(
            ParameterSensitivity(
                family=family,
                best_variant_gflops=scaled,
                worst_variant_gflops=scaled,
                variants=feature_counts.get(family, 0),
            )
        )
    return rows


def analyze_kernel(
    device: Union[str, DeviceSpec],
    params: KernelParams,
    size: Optional[int] = None,
) -> KernelAnalysis:
    """Analyse one kernel: cost factors and parameter sensitivities."""
    spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
    if size is None:
        base = 4096 if spec.is_gpu else 1536
        size = max(params.lcm, (base // params.lcm) * params.lcm)
        size = max(size, params.algorithm.min_k_iterations * params.kwg)

    breakdown = estimate_kernel_time(spec, params, size, size, size, noise=False)
    reference = breakdown.gflops

    per_family: Dict[str, List[float]] = {}
    for variant in neighbors(params, spec):
        family = _family_of(params, variant)
        if family is None:
            continue
        n = max(variant.lcm, (size // variant.lcm) * variant.lcm)
        n = max(n, variant.algorithm.min_k_iterations * variant.kwg)
        try:
            bd = estimate_kernel_time(spec, variant, n, n, n, noise=False)
        except (ParameterError, BuildError, LaunchError):
            # An infeasible neighbor, rejected by the pure perf model;
            # transient faults cannot originate here.
            continue
        per_family.setdefault(family, []).append(bd.gflops)

    sensitivities = [
        ParameterSensitivity(
            family=family,
            best_variant_gflops=max(values),
            worst_variant_gflops=min(values),
            variants=len(values),
        )
        for family, values in per_family.items()
    ]
    return KernelAnalysis(
        device=spec.codename,
        params=params,
        size=size,
        gflops=reference,
        efficiency=reference / spec.peak_gflops(params.precision),
        bound=breakdown.bound,
        cost_factors=dict(breakdown.alu_factors),
        sensitivities=sensitivities,
    )
