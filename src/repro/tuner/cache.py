"""Measurement cache: remembered kernel evaluations across tuning runs.

The paper's full searches take "more than five hours" per GEMM type per
device, and most of that time re-measures candidates that earlier runs
(or earlier stages of the same run) already evaluated.  CLTune and
GEMMbench both persist their raw measurements for exactly this reason.
This module is the corresponding layer *beneath*
:class:`~repro.tuner.results.ResultsDatabase`: where the results
database stores one winner per ``(device, precision)``, the measurement
cache stores every individual evaluation, keyed by

    ``(device, precision, params-digest, M x N x K, noise)``

so a warm re-run of ``repro tune`` performs zero re-measurements.

Failed evaluations are cached too — a candidate that failed resource
checks last run fails them this run as well, and replaying the cached
failure keeps the tuner's failure-category statistics identical between
cold and warm runs.

Entries are invalidated wholesale when the code generator version bumps
(the same kernel parameters may then emit different code, so old
measurements no longer describe the kernels being tuned).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.codegen.emitter import GENERATOR_VERSION
from repro.codegen.params import KernelParams
from repro.persist import dump_json_atomic, load_json_checked

__all__ = ["CacheStats", "CachedMeasurement", "MeasurementCache", "params_digest"]

CACHE_FORMAT = "repro-measurement-cache/1"


def params_digest(params: KernelParams) -> str:
    """Stable short digest of a kernel parameter vector."""
    return hashlib.blake2b(params.to_json().encode(), digest_size=12).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries dropped because they were recorded by another generator
    #: version (see :meth:`MeasurementCache.load`).
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        d = dict(self.__dict__)
        d["hit_rate"] = self.hit_rate
        return d


@dataclass(frozen=True)
class CachedMeasurement:
    """One remembered evaluation: a rate, or a categorised failure."""

    gflops: Optional[float] = None
    #: ``None`` for a successful measurement, else one of the paper's
    #: failure categories: ``"generation"``, ``"build"``, ``"launch"``.
    failure: Optional[str] = None
    #: Compiler diagnostics captured with a ``"build"`` failure, so warm
    #: runs replay the log without rebuilding the kernel.
    build_log: Optional[str] = None
    #: The full parameter vector (``KernelParams.to_dict()``) behind the
    #: digest in the key.  Optional — the digest suffices for replay —
    #: but with it a warm cache becomes *training data*: the surrogate
    #: strategy learns from these rows without re-measuring anything.
    params: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def to_jsonable(self):
        if self.ok and self.params is None:
            return self.gflops
        d: Dict = {}
        if self.ok:
            d["gflops"] = self.gflops
        else:
            d["failure"] = self.failure
        if self.build_log is not None:
            d["build_log"] = self.build_log
        if self.params is not None:
            d["params"] = self.params
        return d

    @classmethod
    def from_jsonable(cls, raw) -> "CachedMeasurement":
        if isinstance(raw, dict):
            log = raw.get("build_log")
            params = raw.get("params")
            if "failure" in raw:
                return cls(
                    failure=str(raw["failure"]),
                    build_log=str(log) if log is not None else None,
                    params=dict(params) if params is not None else None,
                )
            return cls(
                gflops=float(raw["gflops"]),
                params=dict(params) if params is not None else None,
            )
        return cls(gflops=float(raw))


class MeasurementCache:
    """JSON-backed store of individual kernel measurements."""

    def __init__(
        self,
        path: Optional[str] = None,
        generator_version: str = GENERATOR_VERSION,
    ):
        self.path = path
        self.generator_version = generator_version
        self._entries: Dict[str, CachedMeasurement] = {}
        self.stats = CacheStats()
        if path and os.path.exists(path):
            self.load(path)

    def __len__(self) -> int:
        return len(self._entries)

    # -- keying ----------------------------------------------------------
    @staticmethod
    def key(
        device: str,
        precision: str,
        params: KernelParams,
        M: int,
        N: int,
        K: int,
        noise: bool = True,
    ) -> str:
        return (
            f"{device}|{precision}|{params_digest(params)}"
            f"|{M}x{N}x{K}|{'n' if noise else 'exact'}"
        )

    # -- lookups ---------------------------------------------------------
    def get(
        self,
        device: str,
        precision: str,
        params: KernelParams,
        M: int,
        N: int,
        K: int,
        noise: bool = True,
    ) -> Optional[CachedMeasurement]:
        entry = self._entries.get(self.key(device, precision, params, M, N, K, noise))
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def put(
        self,
        device: str,
        precision: str,
        params: KernelParams,
        M: int,
        N: int,
        K: int,
        measurement: CachedMeasurement,
        noise: bool = True,
    ) -> None:
        self._entries[self.key(device, precision, params, M, N, K, noise)] = measurement
        self.stats.stores += 1

    def training_rows(
        self, device: str, precision: str, noise: bool = True
    ) -> List[Tuple[KernelParams, Optional[float]]]:
        """Surrogate training rows recoverable from this cache.

        Returns every entry for ``(device, precision, noise)`` that
        stored its full parameter vector, as ``(params, gflops-or-None)``
        pairs — ``None`` marks a cached failure, which teaches the model
        where the space is infeasible.  Entries measured at several
        shapes collapse to one row keeping the best rate.  Digest-only
        entries (written before parameter storage existed) are skipped.
        """
        prefix = f"{device}|{precision}|"
        suffix = f"|{'n' if noise else 'exact'}"
        best: Dict[str, Tuple[KernelParams, Optional[float]]] = {}
        for key in sorted(self._entries):
            if not (key.startswith(prefix) and key.endswith(suffix)):
                continue
            entry = self._entries[key]
            if entry.params is None:
                continue
            digest = key.split("|")[2]
            params = KernelParams.from_dict(entry.params)
            score = entry.gflops if entry.ok else None
            prior = best.get(digest)
            if prior is None or (
                score is not None and (prior[1] is None or score > prior[1])
            ):
                best[digest] = (params, score)
        return [best[d] for d in sorted(best)]

    # -- persistence -----------------------------------------------------
    def save(self, path: Optional[str] = None) -> str:
        path = path or self.path
        if not path:
            raise ValueError("no path given and cache has no default path")
        payload = {
            "format": CACHE_FORMAT,
            "generator": self.generator_version,
            "entries": {
                key: entry.to_jsonable() for key, entry in self._entries.items()
            },
        }
        # Crash-safe write: tmp + fsync + atomic rename + checksum, so a
        # SIGKILL mid-save never leaves an unloadable cache.
        dump_json_atomic(path, payload)
        self.path = path
        return path

    def load(self, path: str) -> None:
        payload = load_json_checked(path)
        if payload is None:
            # Missing / truncated / corrupt (now quarantined to
            # ``<path>.corrupt``): start with an empty cache.
            self.path = path
            return
        if payload.get("format") != CACHE_FORMAT:
            raise ValueError(f"{path} is not a measurement cache")
        entries = payload.get("entries", {})
        if payload.get("generator") != self.generator_version:
            # A different generator may emit different code for the same
            # parameters; its measurements are stale in bulk.
            self.stats.invalidated += len(entries)
            self.path = path
            return
        for key, raw in entries.items():
            self._entries[key] = CachedMeasurement.from_jsonable(raw)
        self.path = path
