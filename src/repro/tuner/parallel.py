"""Deterministic fan-out of candidate kernel evaluation.

The paper's search measures candidates one at a time; CLTune-style
auto-tuners fan the evaluation out over workers and merge results into a
persisted database.  This module provides that executor layer for
:class:`~repro.tuner.search.SearchEngine`: batches of ``(params, shape)``
tasks are dispatched over :mod:`concurrent.futures` workers and the
outcomes are returned **in task order**, regardless of completion order.
Because the simulator's measurement noise is a deterministic function of
``(device, params, size)``, a parallel search with the same seed and
budget scores every candidate identically to a serial one — and
therefore selects the identical winning kernel.

Failures are classified inside the worker into the paper's categories
(generation / build / launch) so outcomes cross the executor boundary as
plain data rather than exceptions.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.codegen.params import KernelParams
from repro.codegen.plan import build_plan
from repro.devices.specs import DeviceSpec
from repro.errors import BuildError, LaunchError, ParameterError
from repro.perfmodel.model import (
    check_execution_quirks,
    check_resources,
    estimate_kernel_time,
)

__all__ = ["EvalTask", "EvalOutcome", "CandidateEvaluator", "measure_once", "evaluate_candidate"]

#: Outcome failure categories, matching TuningStats counters.
FAILURE_GENERATION = "generation"
FAILURE_BUILD = "build"
FAILURE_LAUNCH = "launch"


@dataclass(frozen=True)
class EvalTask:
    """One candidate evaluation request."""

    params: KernelParams
    shape: Tuple[int, int, int]


@dataclass(frozen=True)
class EvalOutcome:
    """The result of one candidate evaluation (success or failure)."""

    params: KernelParams
    shape: Tuple[int, int, int]
    gflops: Optional[float] = None
    failure: Optional[str] = None
    #: True when the value came from a measurement cache, not a worker.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None


def measure_once(
    spec: DeviceSpec,
    params: KernelParams,
    M: int,
    N: int,
    K: int,
    noise: bool = True,
) -> float:
    """One simulated kernel measurement, in GFlop/s.

    Performs the same build/launch validation the simulator's compiler
    and queue would: structural plan verification, device resource
    checks, and execution quirks.  Raises the corresponding error.
    """
    build_plan(params)  # ParameterError -> failed generation
    check_resources(spec, params)  # ResourceError -> failed build
    check_execution_quirks(spec, params)  # LaunchError -> failed run
    return estimate_kernel_time(spec, params, M, N, K, noise=noise).gflops


def evaluate_candidate(
    spec: DeviceSpec, task: EvalTask, noise: bool = True
) -> EvalOutcome:
    """Measure one task, classifying failures into paper categories."""
    M, N, K = task.shape
    try:
        gflops = measure_once(spec, task.params, M, N, K, noise=noise)
    except ParameterError:
        return EvalOutcome(task.params, task.shape, failure=FAILURE_GENERATION)
    except BuildError:
        return EvalOutcome(task.params, task.shape, failure=FAILURE_BUILD)
    except LaunchError:
        return EvalOutcome(task.params, task.shape, failure=FAILURE_LAUNCH)
    return EvalOutcome(task.params, task.shape, gflops=gflops)


def _evaluate_star(args) -> EvalOutcome:
    """Top-level adapter so process pools can pickle the work item."""
    spec, task, noise = args
    return evaluate_candidate(spec, task, noise)


class CandidateEvaluator:
    """Evaluates task batches serially or over a worker pool.

    ``workers == 1`` evaluates inline (no pool, no overhead); ``workers
    > 1`` fans out over a thread pool (default) or, with
    ``kind="process"``, a process pool.  Either way
    :meth:`evaluate` returns outcomes in task order, which is what makes
    parallel searches reproduce serial ones exactly.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        noise: bool = True,
        workers: int = 1,
        kind: str = "thread",
    ):
        if kind not in ("thread", "process"):
            raise ValueError(f"kind must be 'thread' or 'process', got {kind!r}")
        self.spec = spec
        self.noise = noise
        self.workers = max(1, int(workers))
        self.kind = kind
        self._pool: Optional[Executor] = None

    # -- lifecycle -------------------------------------------------------
    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.kind == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-tune"
                )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "CandidateEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- evaluation ------------------------------------------------------
    def evaluate(self, tasks: Sequence[EvalTask]) -> List[EvalOutcome]:
        """Evaluate a batch, returning outcomes in task order."""
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1:
            return [evaluate_candidate(self.spec, t, self.noise) for t in tasks]
        pool = self._ensure_pool()
        work = [(self.spec, t, self.noise) for t in tasks]
        # Executor.map preserves input order regardless of completion order.
        return list(pool.map(_evaluate_star, work))
