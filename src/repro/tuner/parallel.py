"""Deterministic fan-out of candidate kernel evaluation.

The paper's search measures candidates one at a time; CLTune-style
auto-tuners fan the evaluation out over workers and merge results into a
persisted database.  This module provides that executor layer for
:class:`~repro.tuner.search.SearchEngine`: batches of ``(params, shape)``
tasks are dispatched over :mod:`concurrent.futures` workers and the
outcomes are returned **in task order**, regardless of completion order.
Because the simulator's measurement noise is a deterministic function of
``(device, params, size)``, a parallel search with the same seed and
budget scores every candidate identically to a serial one — and
therefore selects the identical winning kernel.

Failures are classified inside the worker into the paper's categories
(generation / build / launch) so outcomes cross the executor boundary as
plain data rather than exceptions.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.codegen.params import KernelParams
from repro.codegen.plan import build_plan
from repro.devices.specs import DeviceSpec
from repro.errors import (
    BuildError,
    LaunchError,
    MeasurementTimeout,
    ParameterError,
    TransientError,
)
from repro.perfmodel.model import (
    check_execution_quirks,
    check_resources,
    estimate_kernel_time,
)
from repro.tuner.resilience import (
    ResilienceConfig,
    call_with_timeout,
    robust_aggregate,
    run_with_retry,
)

__all__ = [
    "EvalTask",
    "EvalOutcome",
    "CandidateEvaluator",
    "measure_once",
    "evaluate_candidate",
    "evaluate_candidate_resilient",
]

#: Outcome failure categories, matching TuningStats counters.
FAILURE_GENERATION = "generation"
FAILURE_BUILD = "build"
FAILURE_LAUNCH = "launch"
#: Resilience-layer categories: the retry budget was exhausted.
FAILURE_TRANSIENT = "transient"
FAILURE_TIMEOUT = "timeout"


@dataclass(frozen=True)
class EvalTask:
    """One candidate evaluation request."""

    params: KernelParams
    shape: Tuple[int, int, int]


@dataclass(frozen=True)
class EvalOutcome:
    """The result of one candidate evaluation (success or failure)."""

    params: KernelParams
    shape: Tuple[int, int, int]
    gflops: Optional[float] = None
    failure: Optional[str] = None
    #: True when the value came from a measurement cache, not a worker.
    cached: bool = False
    #: Retries the resilience layer spent to produce this outcome.
    retries: int = 0
    #: Fault classes absorbed (retried or rejected) during evaluation —
    #: one entry per event, e.g. ``("build", "timing", "timing")``.
    faults: Tuple[str, ...] = ()
    #: Compiler diagnostics for ``failure="build"`` outcomes; round-trips
    #: through the measurement cache.
    build_log: Optional[str] = None
    #: True when the failure came from the fault plan, not the kernel —
    #: such failures are never persisted to the measurement cache.
    injected: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None


def measure_once(
    spec: DeviceSpec,
    params: KernelParams,
    M: int,
    N: int,
    K: int,
    noise: bool = True,
) -> float:
    """One simulated kernel measurement, in GFlop/s.

    Performs the same build/launch validation the simulator's compiler
    and queue would: structural plan verification, device resource
    checks, and execution quirks.  Raises the corresponding error.
    """
    build_plan(params)  # ParameterError -> failed generation
    check_resources(spec, params)  # ResourceError -> failed build
    check_execution_quirks(spec, params)  # LaunchError -> failed run
    return estimate_kernel_time(spec, params, M, N, K, noise=noise).gflops


def evaluate_candidate(
    spec: DeviceSpec, task: EvalTask, noise: bool = True
) -> EvalOutcome:
    """Measure one task, classifying failures into paper categories."""
    M, N, K = task.shape
    try:
        gflops = measure_once(spec, task.params, M, N, K, noise=noise)
    except ParameterError:
        return EvalOutcome(task.params, task.shape, failure=FAILURE_GENERATION)
    except BuildError as exc:
        return EvalOutcome(
            task.params, task.shape, failure=FAILURE_BUILD,
            build_log=exc.build_log,
        )
    except LaunchError:
        return EvalOutcome(task.params, task.shape, failure=FAILURE_LAUNCH)
    return EvalOutcome(task.params, task.shape, gflops=gflops)


def _task_fault_key(task: EvalTask) -> str:
    """Stable per-candidate injection key: params identity + shape."""
    M, N, K = task.shape
    return f"{task.params.to_json()}|{M}x{N}x{K}"


def evaluate_candidate_resilient(
    spec: DeviceSpec,
    task: EvalTask,
    noise: bool,
    injector,
    config: ResilienceConfig,
) -> EvalOutcome:
    """Measure one task under fault injection and resilience policies.

    One call owns the candidate's whole failure-handling story: injected
    build/launch/device-lost faults are retried with backoff (each retry
    re-rolls the deterministic fault decision via the attempt number),
    hung measurements are killed by the wall-clock watchdog and retried,
    and the timing samples are aggregated median-of-k with outlier
    rejection so spikes cannot bias the score.  Everything is a pure
    function of ``(spec, task, injector, config)`` — evaluation order and
    worker count cannot change the outcome.
    """
    M, N, K = task.shape
    key = _task_fault_key(task)
    device = spec.codename
    faults: List[str] = []
    used = {"retries": 0}

    def one_attempt(attempt: int) -> float:
        used["retries"] = attempt
        if injector is not None:
            injector.check_build(device, key, attempt, task.params)
            injector.check_launch(device, key, attempt, task.params)

        def measured() -> float:
            if injector is not None:
                hang = injector.hang_seconds(device, key, attempt, task.params)
                if hang > 0.0:
                    time.sleep(hang)
            return measure_once(spec, task.params, M, N, K, noise=noise)

        base = call_with_timeout(measured, config.measure_timeout_s)
        samples = max(1, config.samples)
        values = []
        for s in range(samples):
            factor = 1.0
            if injector is not None:
                factor = injector.timing_factor(
                    device, f"{key}|s{s}", attempt, task.params
                )
            # A spike multiplies the run's *time*, so it divides the rate.
            values.append(base / factor)
        rate, outliers = robust_aggregate(values, config.outlier_rel)
        faults.extend(["timing"] * outliers)
        return rate

    try:
        gflops = run_with_retry(one_attempt, config, on_fault=faults.append)
    except ParameterError:
        return EvalOutcome(task.params, task.shape, failure=FAILURE_GENERATION)
    except BuildError as exc:
        return EvalOutcome(
            task.params, task.shape, failure=FAILURE_BUILD,
            retries=used["retries"], faults=tuple(faults),
            build_log=exc.build_log, injected=getattr(exc, "injected", False),
        )
    except LaunchError as exc:
        return EvalOutcome(
            task.params, task.shape, failure=FAILURE_LAUNCH,
            retries=used["retries"], faults=tuple(faults),
            injected=getattr(exc, "injected", False),
        )
    except MeasurementTimeout:
        return EvalOutcome(
            task.params, task.shape, failure=FAILURE_TIMEOUT,
            retries=used["retries"], faults=tuple(faults), injected=True,
        )
    except TransientError:
        return EvalOutcome(
            task.params, task.shape, failure=FAILURE_TRANSIENT,
            retries=used["retries"], faults=tuple(faults), injected=True,
        )
    return EvalOutcome(
        task.params, task.shape, gflops=gflops,
        retries=used["retries"], faults=tuple(faults),
    )


def _evaluate_star(args) -> EvalOutcome:
    """Top-level adapter so process pools can pickle the work item."""
    spec, task, noise, injector, config = args
    if injector is not None or config is not None:
        return evaluate_candidate_resilient(
            spec, task, noise, injector, config or ResilienceConfig()
        )
    return evaluate_candidate(spec, task, noise)


class CandidateEvaluator:
    """Evaluates task batches serially or over a worker pool.

    ``workers == 1`` evaluates inline (no pool, no overhead); ``workers
    > 1`` fans out over a thread pool (default) or, with
    ``kind="process"``, a process pool.  Either way
    :meth:`evaluate` returns outcomes in task order, which is what makes
    parallel searches reproduce serial ones exactly.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        noise: bool = True,
        workers: int = 1,
        kind: str = "thread",
        injector=None,
        resilience: Optional[ResilienceConfig] = None,
    ):
        if kind not in ("thread", "process"):
            raise ValueError(f"kind must be 'thread' or 'process', got {kind!r}")
        self.spec = spec
        self.noise = noise
        self.workers = max(1, int(workers))
        self.kind = kind
        #: Optional :class:`repro.clsim.faults.FaultInjector`; with it (or
        #: an explicit resilience config) evaluation goes through the
        #: retry/watchdog/robust-timing path.  Both objects are immutable
        #: and picklable, so process pools agree with the parent.
        self.injector = injector
        self.resilience = resilience
        if injector is not None and resilience is None:
            self.resilience = ResilienceConfig()
        self._pool: Optional[Executor] = None
        # Guards lazy pool creation/teardown: evaluate() may be called
        # from a fleet worker thread while another thread closes the
        # evaluator (chaos soak churn), and an unguarded check-then-set
        # can leak a second executor.
        self._pool_lock = threading.Lock()

    @property
    def resilient(self) -> bool:
        return self.injector is not None or self.resilience is not None

    # -- lifecycle -------------------------------------------------------
    def _ensure_pool(self) -> Executor:
        with self._pool_lock:
            if self._pool is None:
                if self.kind == "process":
                    self._pool = ProcessPoolExecutor(max_workers=self.workers)
                else:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.workers, thread_name_prefix="repro-tune"
                    )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            # Shut down outside the lock: worker threads finishing their
            # last task must not deadlock against a closer holding it.
            pool.shutdown(wait=True)

    def __enter__(self) -> "CandidateEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- evaluation ------------------------------------------------------
    def evaluate(self, tasks: Sequence[EvalTask]) -> List[EvalOutcome]:
        """Evaluate a batch, returning outcomes in task order.

        Duplicate tasks within the batch (same params and shape — e.g.
        overlapping warm-start lists from a search strategy) are
        evaluated once and the outcome fanned out: every evaluation path
        is a pure function of ``(spec, task, injector, config)``, so the
        copies are indistinguishable from re-runs.
        """
        if not tasks:
            return []
        unique: dict = {}
        slots: List[int] = []  # per-task index into work_tasks
        work_tasks: List[EvalTask] = []
        for t in tasks:
            key = (t.params.cache_key(), t.shape)
            if key not in unique:
                unique[key] = len(work_tasks)
                work_tasks.append(t)
            slots.append(unique[key])
        if self.workers == 1 or len(work_tasks) == 1:
            results = [self._evaluate_one(t) for t in work_tasks]
        else:
            pool = self._ensure_pool()
            work = [
                (self.spec, t, self.noise, self.injector, self.resilience)
                for t in work_tasks
            ]
            # Executor.map preserves input order regardless of completion
            # order.
            results = list(pool.map(_evaluate_star, work))
        return [results[i] for i in slots]

    def _evaluate_one(self, task: EvalTask) -> EvalOutcome:
        if self.resilient:
            return evaluate_candidate_resilient(
                self.spec, task, self.noise, self.injector,
                self.resilience or ResilienceConfig(),
            )
        return evaluate_candidate(self.spec, task, self.noise)
