"""Pre-tuned kernel parameters shipped with the package.

Full searches take a while (the paper's ran for hours); examples,
benchmarks and downstream users normally start from these frozen results
of a full-budget search (``budget=None``) per device and precision, the
way clBLAS and ATLAS ship tuned parameter stores.  Regenerate with::

    python -m repro tune --device all --budget full --freeze

(placeholder values are replaced by the freeze step; see
``repro.cli``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.codegen.params import KernelParams

__all__ = ["PRETUNED", "pretuned_catalog", "pretuned_params"]

#: (device codename, precision) -> winning parameter dict from a frozen
#: full-budget search run.
_PRETUNED_RAW: Dict[Tuple[str, str], Dict] = {
    ('bulldozer', 'd'): {"precision": "d", "mwg": 32, "nwg": 96, "kwg": 48, "mdimc": 8, "ndimc": 16, "kwi": 24, "vw": 2, "stride": "-", "shared_a": True, "shared_b": False, "mdima": 32, "ndimb": 0, "layout_a": "RBL", "layout_b": "CBL", "algorithm": "DB"},
    ('bulldozer', 's'): {"precision": "s", "mwg": 16, "nwg": 96, "kwg": 192, "mdimc": 4, "ndimc": 24, "kwi": 24, "vw": 4, "stride": "-", "shared_a": False, "shared_b": False, "mdima": 0, "ndimb": 0, "layout_a": "RBL", "layout_b": "CBL", "algorithm": "PL"},
    ('cayman', 'd'): {"precision": "d", "mwg": 64, "nwg": 48, "kwg": 48, "mdimc": 8, "ndimc": 8, "kwi": 24, "vw": 2, "stride": "-", "shared_a": False, "shared_b": False, "mdima": 0, "ndimb": 0, "layout_a": "CBL", "layout_b": "CBL", "algorithm": "PL"},
    ('cayman', 's'): {"precision": "s", "mwg": 64, "nwg": 128, "kwg": 48, "mdimc": 16, "ndimc": 8, "kwi": 24, "vw": 4, "stride": "-", "shared_a": False, "shared_b": False, "mdima": 0, "ndimb": 0, "layout_a": "RBL", "layout_b": "CBL", "algorithm": "BA"},
    ('cypress', 'd'): {"precision": "d", "mwg": 128, "nwg": 96, "kwg": 48, "mdimc": 8, "ndimc": 24, "kwi": 24, "vw": 2, "stride": "-", "shared_a": False, "shared_b": False, "mdima": 0, "ndimb": 0, "layout_a": "CBL", "layout_b": "RBL", "algorithm": "PL"},
    ('cypress', 's'): {"precision": "s", "mwg": 96, "nwg": 128, "kwg": 48, "mdimc": 24, "ndimc": 8, "kwi": 16, "vw": 4, "stride": "-", "shared_a": False, "shared_b": False, "mdima": 0, "ndimb": 0, "layout_a": "CBL", "layout_b": "CBL", "algorithm": "PL"},
    ('fermi', 'd'): {"precision": "d", "mwg": 96, "nwg": 48, "kwg": 32, "mdimc": 32, "ndimc": 16, "kwi": 16, "vw": 1, "stride": "M,N", "shared_a": True, "shared_b": True, "mdima": 16, "ndimb": 16, "layout_a": "CBL", "layout_b": "RBL", "algorithm": "BA"},
    ('fermi', 's'): {"precision": "s", "mwg": 96, "nwg": 128, "kwg": 48, "mdimc": 24, "ndimc": 16, "kwi": 8, "vw": 2, "stride": "M,N", "shared_a": True, "shared_b": True, "mdima": 32, "ndimb": 8, "layout_a": "RBL", "layout_b": "RBL", "algorithm": "BA"},
    ('kepler', 'd'): {"precision": "d", "mwg": 128, "nwg": 48, "kwg": 32, "mdimc": 16, "ndimc": 16, "kwi": 16, "vw": 1, "stride": "M,N", "shared_a": True, "shared_b": True, "mdima": 16, "ndimb": 16, "layout_a": "CBL", "layout_b": "CBL", "algorithm": "PL"},
    ('kepler', 's'): {"precision": "s", "mwg": 128, "nwg": 96, "kwg": 16, "mdimc": 8, "ndimc": 16, "kwi": 8, "vw": 2, "stride": "M,N", "shared_a": True, "shared_b": True, "mdima": 32, "ndimb": 32, "layout_a": "CBL", "layout_b": "CBL", "algorithm": "BA"},
    ('sandybridge', 'd'): {"precision": "d", "mwg": 64, "nwg": 96, "kwg": 192, "mdimc": 16, "ndimc": 8, "kwi": 24, "vw": 4, "stride": "-", "shared_a": False, "shared_b": False, "mdima": 0, "ndimb": 0, "layout_a": "RBL", "layout_b": "CBL", "algorithm": "PL"},
    ('sandybridge', 's'): {"precision": "s", "mwg": 64, "nwg": 32, "kwg": 16, "mdimc": 8, "ndimc": 4, "kwi": 16, "vw": 8, "stride": "-", "shared_a": False, "shared_b": False, "mdima": 0, "ndimb": 0, "layout_a": "RBL", "layout_b": "CBL", "algorithm": "PL"},
    ('tahiti', 'd'): {"precision": "d", "mwg": 48, "nwg": 96, "kwg": 48, "mdimc": 8, "ndimc": 16, "kwi": 16, "vw": 2, "stride": "-", "shared_a": True, "shared_b": True, "mdima": 16, "ndimb": 16, "layout_a": "CBL", "layout_b": "CBL", "algorithm": "PL"},
    ('tahiti', 's'): {"precision": "s", "mwg": 96, "nwg": 128, "kwg": 32, "mdimc": 8, "ndimc": 16, "kwi": 8, "vw": 1, "stride": "-", "shared_a": True, "shared_b": True, "mdima": 8, "ndimb": 16, "layout_a": "RBL", "layout_b": "RBL", "algorithm": "PL"},
}


def pretuned_params(device: str, precision: str) -> KernelParams:
    """The shipped tuned parameters for a device/precision pair.

    Raises a :class:`KeyError` that enumerates every available
    ``(device, precision)`` pair — and calls out when the device *is*
    known but only at other precisions — so a typo'd codename or a
    missing precision is diagnosable from the message alone.
    """
    try:
        raw = _PRETUNED_RAW[(device, precision)]
    except KeyError:
        pairs = ", ".join(f"{d}/{p}" for d, p in sorted(_PRETUNED_RAW))
        same_device = sorted(
            p for d, p in _PRETUNED_RAW if d == device
        )
        hint = (
            f" (device {device!r} is pretuned only for precision"
            f"{'s' if len(same_device) > 1 else ''} "
            f"{', '.join(repr(p) for p in same_device)})"
            if same_device else ""
        )
        raise KeyError(
            f"no pretuned kernel for ({device!r}, {precision!r}){hint}; "
            f"available (device, precision) pairs: {pairs}"
        ) from None
    return KernelParams.from_dict(raw)


def pretuned_catalog() -> List[Tuple[str, str, KernelParams]]:
    """Every shipped ``(device, precision, params)`` entry, sorted.

    The static-analysis CLI and the CI ``analyze`` job iterate this to
    verify the whole shipped catalog.
    """
    return [
        (device, precision, KernelParams.from_dict(raw))
        for (device, precision), raw in sorted(_PRETUNED_RAW.items())
    ]


PRETUNED = _PRETUNED_RAW
