"""The paper's enumerative sweep, expressed as a strategy.

This is the extracted default: the deterministic heuristic enumeration
of :func:`repro.codegen.space.enumerate_space`, streamed batch by batch.
It ignores observations entirely — the stream is fixed up front — which
is exactly what makes its checkpoints so cheap: the only state is how
many candidates have been consumed.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

from repro.codegen.params import KernelParams
from repro.codegen.space import enumerate_space
from repro.tuner.strategies.base import SearchStrategy
from repro.tuner.strategies.encoding import ParamSpace

__all__ = ["ExhaustiveStrategy"]


class ExhaustiveStrategy(SearchStrategy):
    """Propose every enumerated candidate, in enumeration order."""

    name = "exhaustive"

    def __init__(
        self,
        space: ParamSpace,
        *,
        seed: int = 0,
        budget: int = 4000,
        warm_start: Sequence[KernelParams] = (),
        prior: Sequence[Tuple[KernelParams, float]] = (),
        per_blocking: int = 8,
        include_seeds: bool = True,
    ):
        super().__init__(
            space, seed=seed, budget=budget, warm_start=warm_start, prior=prior
        )
        self.per_blocking = per_blocking
        self.include_seeds = include_seeds
        self._stream = self._make_stream()

    def _make_stream(self):
        return enumerate_space(
            self.space.spec,
            self.space.precision,
            self.space.restrictions,
            limit=self.budget,
            per_blocking=self.per_blocking,
            seed=self.seed,
            include_seeds=self.include_seeds,
        )

    def ask(self, n: int) -> List[KernelParams]:
        return self._take(list(itertools.islice(self._stream, n)))

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        # The enumeration is deterministic: fast-forward the fresh
        # stream past the candidates already proposed.
        self._stream = self._make_stream()
        if self.proposed:
            next(
                itertools.islice(self._stream, self.proposed - 1, self.proposed),
                None,
            )
