"""Cross-device transfer warm-start.

A new device rarely starts from nothing: real auto-tuners seed their
search with configurations that won on related hardware.  This module
turns the spec-space neighbour table of :mod:`repro.devices.catalog`
into concrete warm-start candidates — the shipped tuned winners
(:mod:`repro.tuner.pretuned`) of the target's closest catalogued
neighbours, plus their immediate parameter neighbourhoods, filtered to
the target's admissible space.

When the catalog holds no usable neighbour (unknown device, no pretuned
entry at this precision, winners inadmissible under the active
restrictions) the result is simply an empty list: the strategy falls
back to its un-warmed behaviour, no error raised.
"""

from __future__ import annotations

from typing import List

from repro.codegen.params import KernelParams
from repro.devices.catalog import CATALOG, nearest_devices
from repro.tuner.pretuned import pretuned_params
from repro.tuner.strategies.encoding import ParamSpace

__all__ = ["transfer_seeds"]


def transfer_seeds(
    space: ParamSpace,
    *,
    neighbours: int = 3,
    include_neighborhood: bool = True,
) -> List[KernelParams]:
    """Warm-start candidates for ``space`` from its nearest neighbours.

    Ordered closest-neighbour-first, deduplicated, admissible-only.
    ``include_neighborhood`` additionally yields each winner's one-step
    parameter neighbours (the transferred optimum is rarely *exactly*
    right on new hardware, but usually close).
    """
    codename = space.spec.codename
    if codename not in CATALOG:
        return []
    out: List[KernelParams] = []
    seen = set()

    def add(params: KernelParams) -> None:
        key = params.cache_key()
        if key not in seen and space.admissible(params):
            seen.add(key)
            out.append(params)

    for neighbour in nearest_devices(codename, k=neighbours):
        try:
            winner = pretuned_params(neighbour, space.precision)
        except KeyError:
            continue
        add(winner)
        if include_neighborhood:
            from repro.tuner.refine import admissible_neighbors

            for nearby in admissible_neighbors(
                winner, space.spec, space.restrictions
            ):
                add(nearby)
    return out
