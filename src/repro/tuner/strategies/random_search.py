"""Uniform random search over the encoded space.

The baseline every adaptive strategy must beat: warm-start points first
(curated seeds, transfer winners), then independent uniform draws from
the valid region of :class:`ParamSpace`, deduplicated against everything
already proposed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.codegen.params import KernelParams
from repro.tuner.strategies.base import (
    SearchStrategy,
    derive_rng,
    rng_state_from_json,
    rng_state_to_json,
)
from repro.tuner.strategies.encoding import ParamSpace

__all__ = ["RandomStrategy"]

#: Consecutive failed draw attempts before concluding the valid space is
#: effectively exhausted at this budget.
_MAX_MISSES = 512


class RandomStrategy(SearchStrategy):
    name = "random"

    def __init__(
        self,
        space: ParamSpace,
        *,
        seed: int = 0,
        budget: int = 4000,
        warm_start: Sequence[KernelParams] = (),
        prior: Sequence[Tuple[KernelParams, float]] = (),
    ):
        super().__init__(
            space, seed=seed, budget=budget, warm_start=warm_start, prior=prior
        )
        self._rng = derive_rng(self.name, seed)
        self._warm_cursor = 0

    def ask(self, n: int) -> List[KernelParams]:
        batch: List[KernelParams] = []
        keys = set()

        def fresh(p: KernelParams) -> bool:
            k = p.cache_key()
            if k in keys or self.seen(p):
                return False
            keys.add(k)
            return True

        while self._warm_cursor < len(self.warm_start) and len(batch) < n:
            p = self.warm_start[self._warm_cursor]
            self._warm_cursor += 1
            if fresh(p):
                batch.append(p)
        misses = 0
        while len(batch) < n and misses < _MAX_MISSES:
            p = self.space.decode(self.space.random_point(self._rng))
            if p is not None and fresh(p):
                batch.append(p)
            else:
                misses += 1
        if misses >= _MAX_MISSES and not batch:
            self.early_stop_reason = "sampling exhausted the valid space"
        return self._take(batch)

    def state_dict(self) -> Dict:
        state = super().state_dict()
        state["rng"] = rng_state_to_json(self._rng)
        state["warm_cursor"] = self._warm_cursor
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self._rng.setstate(rng_state_from_json(state["rng"]))
        self._warm_cursor = int(state.get("warm_cursor", 0))
