"""Batch-synchronous simulated annealing over the encoded space.

CLTune-style SA adapted to a batched evaluator: several independent
chains walk the index space; every ``ask`` emits one neighbourhood move
per chain, and ``tell`` applies the Metropolis acceptance rule per chain
with a geometrically cooling temperature.  Chains start from the
warm-start points (curated seeds, transfer winners) so the walk begins
in known-good basins, and periodically restart from the global best to
escape dead regions.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.params import KernelParams
from repro.tuner.strategies.base import (
    SearchStrategy,
    derive_rng,
    rng_state_from_json,
    rng_state_to_json,
)
from repro.tuner.strategies.encoding import ParamSpace

__all__ = ["AnnealingStrategy"]

_MAX_MISSES = 64


class AnnealingStrategy(SearchStrategy):
    name = "annealing"

    def __init__(
        self,
        space: ParamSpace,
        *,
        seed: int = 0,
        budget: int = 4000,
        warm_start: Sequence[KernelParams] = (),
        prior: Sequence[Tuple[KernelParams, float]] = (),
        chains: int = 12,
        t_start: float = 0.20,
        t_end: float = 0.005,
        restart_every: int = 12,
    ):
        super().__init__(
            space, seed=seed, budget=budget, warm_start=warm_start, prior=prior
        )
        self.chains = max(1, chains)
        self.t_start = t_start
        self.t_end = t_end
        self.restart_every = restart_every
        self._rng = derive_rng(self.name, seed)
        self.generation = 0
        #: Estimated number of generations the budget affords (cooling
        #: schedule denominator).
        self._horizon = max(1, budget // self.chains)
        #: Per-chain (position indices, energy) — energy is -gflops so
        #: lower is better; None until the chain's start is measured.
        self._positions: List[Optional[List[int]]] = [None] * self.chains
        self._energies: List[float] = [math.inf] * self.chains
        #: Proposals of the in-flight batch: (chain, indices) per params.
        self._pending: List[Tuple[int, List[int]]] = []
        self._warm_queue = list(self.warm_start)

    # ------------------------------------------------------------------
    def _temperature(self) -> float:
        frac = min(1.0, self.generation / self._horizon)
        return self.t_start * (self.t_end / self.t_start) ** frac

    def _fresh_point(self, near: Optional[List[int]]) -> Optional[Tuple[List[int], KernelParams]]:
        """A valid unseen point: a neighbour of ``near``, or random."""
        for _ in range(_MAX_MISSES):
            idx = (
                self.space.perturb(self._rng, near, strength=2)
                if near is not None
                else self.space.random_point(self._rng)
            )
            params = self.space.decode(idx)
            if params is not None and not self.seen(params):
                return idx, params
        return None

    def ask(self, n: int) -> List[KernelParams]:
        batch: List[KernelParams] = []
        keys = set()
        self._pending = []
        # Known-good starting points first; chains adopt them on tell.
        while self._warm_queue and len(batch) < n:
            p = self._warm_queue.pop(0)
            if not self.seen(p) and p.cache_key() not in keys:
                keys.add(p.cache_key())
                self._pending.append((-1, self.space.encode(p)))
                batch.append(p)
        chain = 0
        stuck = 0
        while len(batch) < n and stuck < self.chains:
            c = chain % self.chains
            chain += 1
            near = self._positions[c]
            if self.generation and self.restart_every and (
                self.generation % self.restart_every == 0
            ) and self._best is not None and c == 0:
                # Periodic restart: drag the worst chain to the best
                # observed point's neighbourhood.
                worst = max(range(self.chains), key=lambda i: self._energies[i])
                self._positions[worst] = self.space.encode(self._best[1])
                self._energies[worst] = -self._best[0]
                near = self._positions[c]
            found = self._fresh_point(near)
            if found is None or found[1].cache_key() in keys:
                stuck += 1
                continue
            stuck = 0
            idx, params = found
            keys.add(params.cache_key())
            self._pending.append((c, idx))
            batch.append(params)
        if not batch:
            self.early_stop_reason = "all chains exhausted their neighbourhoods"
        return self._take(batch)

    def tell(self, observations) -> None:
        super().tell(observations)
        temp = self._temperature()
        scale = max(1.0, abs(self._best[0]) if self._best else 1.0)
        for (chain, idx), obs in zip(self._pending, observations):
            energy = -obs.gflops if obs.ok else math.inf
            if chain < 0:
                # Warm-start point: seed the currently-worst chain if it
                # improves on it.
                chain = max(range(self.chains), key=lambda i: self._energies[i])
                if energy < self._energies[chain]:
                    self._positions[chain] = idx
                    self._energies[chain] = energy
                continue
            current = self._energies[chain]
            if energy < current:
                accept = True
            elif math.isinf(energy) or temp <= 0:
                accept = False
            else:
                accept = self._rng.random() < math.exp(
                    -(energy - current) / (temp * scale)
                )
            if accept:
                self._positions[chain] = idx
                self._energies[chain] = energy
        self._pending = []
        self.generation += 1

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        state = super().state_dict()
        state.update(
            rng=rng_state_to_json(self._rng),
            generation=self.generation,
            positions=self._positions,
            energies=[None if math.isinf(e) else e for e in self._energies],
            warm_queue=[p.to_dict() for p in self._warm_queue],
        )
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self._rng.setstate(rng_state_from_json(state["rng"]))
        self.generation = int(state.get("generation", 0))
        self._positions = [
            list(p) if p is not None else None for p in state.get("positions", [])
        ] or [None] * self.chains
        self._energies = [
            math.inf if e is None else float(e) for e in state.get("energies", [])
        ] or [math.inf] * self.chains
        self._warm_queue = [
            KernelParams.from_dict(d) for d in state.get("warm_queue", [])
        ]
        self._pending = []
