"""A pure-python regression forest for kernel performance prediction.

Falch & Elster style surrogate, kept dependency-free: bagged regression
trees with random feature subsets and variance-reduction splits.  The
per-tree spread doubles as the uncertainty estimate that drives the
expected-improvement acquisition in :mod:`.surrogate`.

Training sets are small (hundreds of measured configurations), so the
implementation favours clarity over asymptotics: splits scan candidate
thresholds at feature-value midpoints.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["RegressionForest"]

_MIN_LEAF = 2
_MAX_THRESHOLDS = 16


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self):
        self.feature: Optional[int] = None
        self.threshold = 0.0
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.value = 0.0


def _variance(ys: Sequence[float]) -> float:
    n = len(ys)
    if n < 2:
        return 0.0
    mean = sum(ys) / n
    return sum((y - mean) ** 2 for y in ys) / n


class _Tree:
    def __init__(self, rng: random.Random, max_depth: int, n_features: int):
        self.rng = rng
        self.max_depth = max_depth
        # sqrt-subset of features per split (classic random-forest rule).
        self.mtry = max(1, int(math.sqrt(n_features)))
        self.root = _Node()
        #: feature index -> accumulated variance reduction (importance).
        self.gains: Dict[int, float] = {}

    def fit(self, X: List[Sequence[float]], y: List[float]) -> None:
        self._split(self.root, list(range(len(X))), X, y, depth=0)

    def _split(self, node: _Node, rows: List[int], X, y, depth: int) -> None:
        ys = [y[i] for i in rows]
        node.value = sum(ys) / len(ys)
        if depth >= self.max_depth or len(rows) < 2 * _MIN_LEAF:
            return
        parent_var = _variance(ys)
        if parent_var <= 0.0:
            return
        features = self.rng.sample(range(len(X[0])), k=self.mtry)
        best: Optional[Tuple[float, int, float, List[int], List[int]]] = None
        for f in features:
            values = sorted({X[i][f] for i in rows})
            if len(values) < 2:
                continue
            if len(values) > _MAX_THRESHOLDS + 1:
                step = len(values) / (_MAX_THRESHOLDS + 1)
                values = [values[int(step * (k + 1))] for k in range(_MAX_THRESHOLDS)]
            thresholds = [
                (a + b) / 2.0 for a, b in zip(values, values[1:])
            ]
            for t in thresholds:
                left = [i for i in rows if X[i][f] <= t]
                right = [i for i in rows if X[i][f] > t]
                if len(left) < _MIN_LEAF or len(right) < _MIN_LEAF:
                    continue
                child_var = (
                    len(left) * _variance([y[i] for i in left])
                    + len(right) * _variance([y[i] for i in right])
                ) / len(rows)
                gain = parent_var - child_var
                if gain > 0 and (best is None or gain > best[0]):
                    best = (gain, f, t, left, right)
        if best is None:
            return
        gain, f, t, left, right = best
        self.gains[f] = self.gains.get(f, 0.0) + gain * len(rows)
        node.feature, node.threshold = f, t
        node.left, node.right = _Node(), _Node()
        self._split(node.left, left, X, y, depth + 1)
        self._split(node.right, right, X, y, depth + 1)

    def predict(self, x: Sequence[float]) -> float:
        node = self.root
        while node.feature is not None:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.value


class RegressionForest:
    """Bagged regression trees with per-tree spread as uncertainty."""

    def __init__(
        self,
        n_trees: int = 24,
        max_depth: int = 9,
        rng: Optional[random.Random] = None,
    ):
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.rng = rng or random.Random(0)
        self._trees: List[_Tree] = []
        self._n_features = 0

    @property
    def fitted(self) -> bool:
        return bool(self._trees)

    def fit(self, X: List[Sequence[float]], y: List[float]) -> None:
        if not X:
            self._trees = []
            return
        self._n_features = len(X[0])
        self._trees = []
        n = len(X)
        for _ in range(self.n_trees):
            rows = [self.rng.randrange(n) for _ in range(n)]  # bootstrap
            tree = _Tree(self.rng, self.max_depth, self._n_features)
            tree.fit([X[i] for i in rows], [y[i] for i in rows])
            self._trees.append(tree)

    def predict(self, x: Sequence[float]) -> Tuple[float, float]:
        """Mean prediction and across-tree standard deviation."""
        votes = [t.predict(x) for t in self._trees]
        mean = sum(votes) / len(votes)
        var = sum((v - mean) ** 2 for v in votes) / len(votes)
        return mean, math.sqrt(var)

    def feature_importances(self) -> List[float]:
        """Normalised variance-reduction importance per feature."""
        totals = [0.0] * self._n_features
        for tree in self._trees:
            for f, gain in tree.gains.items():
                totals[f] += gain
        norm = sum(totals)
        if norm <= 0:
            return totals
        return [t / norm for t in totals]
