"""Surrogate-guided search: regression forest + expected improvement.

The Falch & Elster approach, adapted to the tuner's batch evaluator:

1. Train a :class:`RegressionForest` on every configuration observed so
   far — measured GFlop/s for successes, zero for failures — including
   *prior* rows recovered from a warm :class:`MeasurementCache` and the
   transfer warm-start winners, which cost no budget.
2. Each ``ask`` refits the model, scores a deterministic candidate pool
   (random valid points plus perturbations of the incumbents) by
   expected improvement over the best observed GFlop/s, and proposes the
   top-EI batch, reserving a slice for pure exploration.
3. Early-stop when the pool's best expected improvement stays below a
   small fraction of the incumbent for several consecutive batches —
   the predicted gain has flattened, so remaining budget is returned
   unspent.

Feature importances fall out of the forest's split gains and are
reported through the same family taxonomy as the sensitivity report
(:mod:`repro.tuner.analysis`), so the model's learned structure can be
read against the paper's Section III/IV claims.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.params import KernelParams
from repro.tuner.strategies.base import (
    SearchStrategy,
    derive_rng,
    rng_state_from_json,
    rng_state_to_json,
)
from repro.tuner.strategies.encoding import FEATURE_FAMILIES, ParamSpace
from repro.tuner.strategies.forest import RegressionForest

__all__ = ["SurrogateStrategy"]

_SQRT2 = math.sqrt(2.0)


def _norm_cdf(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / _SQRT2))


def _norm_pdf(z: float) -> float:
    return math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)


class SurrogateStrategy(SearchStrategy):
    name = "surrogate"

    def __init__(
        self,
        space: ParamSpace,
        *,
        seed: int = 0,
        budget: int = 4000,
        warm_start: Sequence[KernelParams] = (),
        prior: Sequence[Tuple[KernelParams, Optional[float]]] = (),
        min_train: int = 24,
        pool_size: int = 384,
        explore_frac: float = 0.2,
        ei_xi: float = 0.002,
        flat_tol: float = 0.002,
        patience: int = 3,
        trees: int = 24,
        depth: int = 9,
    ):
        super().__init__(
            space, seed=seed, budget=budget, warm_start=warm_start, prior=prior
        )
        self.min_train = min_train
        self.pool_size = pool_size
        self.explore_frac = explore_frac
        self.ei_xi = ei_xi
        self.flat_tol = flat_tol
        self.patience = patience
        self.trees = trees
        self.depth = depth
        self._rng = derive_rng(self.name, seed)
        self._forest: Optional[RegressionForest] = None
        self._flat_streak = 0
        self._warm_cursor = 0
        #: Training rows: every (params, gflops-or-None) ever told, plus
        #: the prior rows (admissible only — foreign-space rows would
        #: teach the model about points it can never propose).
        self._observed: List[Tuple[KernelParams, Optional[float]]] = [
            (p, g) for p, g in self.prior if space.admissible(p)
        ]

    # -- model -----------------------------------------------------------
    def _training_set(self) -> Tuple[List[List[float]], List[float]]:
        X, y = [], []
        for params, gflops in self._observed:
            X.append(self.space.features(params))
            y.append(gflops if gflops is not None else 0.0)
        return X, y

    def ensure_fitted(self) -> bool:
        """Fit the forest on the current training rows (True if usable).

        Each refit derives a fresh RNG from ``(seed, refit index)``, so
        model *k* is a pure function of the seed and the rows it saw —
        which is what lets a resumed search rebuild the identical model.
        """
        X, y = self._training_set()
        if len(X) < 2:
            return False
        self._forest = RegressionForest(
            n_trees=self.trees,
            max_depth=self.depth,
            rng=derive_rng("surrogate-fit", self.seed, self.refits),
        )
        self._forest.fit(X, y)
        self.refits += 1
        return True

    def predict(self, params: KernelParams) -> Tuple[float, float]:
        """Model (mean, std) for one configuration; requires a fit."""
        if self._forest is None or not self._forest.fitted:
            raise RuntimeError("surrogate model is not fitted")
        return self._forest.predict(self.space.features(params))

    def rank(self, candidates: Sequence[KernelParams]) -> List[KernelParams]:
        """Candidates sorted by predicted GFlop/s, best first."""
        scored = [
            (-self.predict(p)[0], i, p) for i, p in enumerate(candidates)
        ]
        scored.sort(key=lambda t: (t[0], t[1]))
        return [p for _, _, p in scored]

    def feature_importance(self) -> Dict[str, float]:
        """Per-feature importance (variance reduction), by feature name."""
        if self._forest is None or not self._forest.fitted:
            return {}
        return dict(
            zip(self.space.FEATURE_NAMES, self._forest.feature_importances())
        )

    def family_importance(self) -> Dict[str, float]:
        """Feature importances folded into the sensitivity-report
        families (blocking, local memory, ...)."""
        out: Dict[str, float] = {}
        for feat, weight in self.feature_importance().items():
            family = FEATURE_FAMILIES[feat]
            out[family] = out.get(family, 0.0) + weight
        return out

    # -- acquisition -----------------------------------------------------
    def _expected_improvement(self, params: KernelParams, best_y: float) -> float:
        mean, std = self._forest.predict(self.space.features(params))
        gap = mean - best_y - self.ei_xi * max(best_y, 1.0)
        if std <= 1e-12:
            return max(0.0, gap)
        z = gap / std
        return gap * _norm_cdf(z) + std * _norm_pdf(z)

    def _candidate_pool(self) -> List[KernelParams]:
        pool: List[KernelParams] = []
        keys = set()

        def add(p: Optional[KernelParams]) -> None:
            if p is None or self.seen(p):
                return
            k = p.cache_key()
            if k not in keys:
                keys.add(k)
                pool.append(p)

        # Perturbations of the incumbents keep the pool anchored to the
        # promising basins.
        incumbents = sorted(
            (row for row in self._observed if row[1] is not None),
            key=lambda row: row[1],
            reverse=True,
        )[:8]
        for params, _ in incumbents:
            idx = self.space.encode(params)
            for strength in (1, 1, 2, 2, 3):
                add(self.space.decode(self.space.perturb(self._rng, idx, strength)))
        misses = 0
        while len(pool) < self.pool_size and misses < 4 * self.pool_size:
            p = self.space.decode(self.space.random_point(self._rng))
            before = len(pool)
            add(p)
            misses += before == len(pool)
        return pool

    # -- ask/tell --------------------------------------------------------
    def ask(self, n: int) -> List[KernelParams]:
        if self.early_stop_reason:
            return []
        batch: List[KernelParams] = []
        keys = set()

        def fresh(p: KernelParams) -> bool:
            k = p.cache_key()
            if k in keys or self.seen(p):
                return False
            keys.add(k)
            return True

        while self._warm_cursor < len(self.warm_start) and len(batch) < n:
            p = self.warm_start[self._warm_cursor]
            self._warm_cursor += 1
            if fresh(p):
                batch.append(p)
        if len(self._observed) < self.min_train:
            # Cold model: spend the batch on uniform exploration.
            misses = 0
            while len(batch) < n and misses < 512:
                p = self.space.decode(self.space.random_point(self._rng))
                if p is not None and fresh(p):
                    batch.append(p)
                else:
                    misses += 1
            return self._take(batch)

        if not self.ensure_fitted():
            return self._take(batch)
        best = self.best_observed
        best_y = best[0] if best is not None else max(
            (g for _, g in self._observed if g is not None), default=0.0
        )
        pool = self._candidate_pool()
        scored = sorted(
            ((self._expected_improvement(p, best_y), i, p) for i, p in enumerate(pool)),
            key=lambda t: (-t[0], t[1]),
        )
        if scored and scored[0][0] < self.flat_tol * max(best_y, 1e-9):
            self._flat_streak += 1
            if self._flat_streak >= self.patience:
                self.early_stop_reason = "predicted gain flattened"
                return self._take(batch)
        else:
            self._flat_streak = 0
        explore = max(1, int(n * self.explore_frac)) if n > 1 else 0
        for _, _, p in scored:
            if len(batch) >= n - explore:
                break
            if fresh(p):
                batch.append(p)
        misses = 0
        while len(batch) < n and misses < 256:
            p = self.space.decode(self.space.random_point(self._rng))
            if p is not None and fresh(p):
                batch.append(p)
            else:
                misses += 1
        return self._take(batch)

    def tell(self, observations) -> None:
        super().tell(observations)
        for obs in observations:
            self._observed.append((obs.params, obs.gflops if obs.ok else None))

    # -- checkpointing ---------------------------------------------------
    def state_dict(self) -> Dict:
        state = super().state_dict()
        state.update(
            rng=rng_state_to_json(self._rng),
            flat_streak=self._flat_streak,
            warm_cursor=self._warm_cursor,
            observed=[
                [p.to_dict(), g] for p, g in self._observed
            ],
        )
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self._rng.setstate(rng_state_from_json(state["rng"]))
        self._flat_streak = int(state.get("flat_streak", 0))
        self._warm_cursor = int(state.get("warm_cursor", 0))
        self._observed = [
            (KernelParams.from_dict(d), None if g is None else float(g))
            for d, g in state.get("observed", [])
        ]
        # The model itself is not serialised: the next ``ask`` refits
        # from the restored rows, and ``refits`` (restored by the base
        # class) keeps the fit-RNG derivation aligned.
        self._forest = None
