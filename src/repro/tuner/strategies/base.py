"""The pluggable search-strategy interface.

The paper's tuner is enumerative: it measures every heuristically
generated candidate (Section III-F).  CLTune demonstrated that simulated
annealing and particle-swarm search reach near-optimal GEMM
configurations at a fraction of that budget, and Falch & Elster showed a
learned surrogate over kernel-parameter features can drive the search.
This module defines the contract those strategies implement so
:class:`~repro.tuner.search.SearchEngine` can treat all of them — the
paper's exhaustive sweep included — as interchangeable candidate
streams.

The contract is *ask/tell*:

``ask(n)``
    Return up to ``n`` fresh :class:`KernelParams` proposals.  An empty
    list ends stage 1 (budget exhausted, space exhausted, or the
    strategy early-stopped).
``tell(observations)``
    Receive one :class:`Observation` per proposed candidate of the last
    batch, in proposal order: the measured GFlop/s, or the failure
    category (including static-gate rejections as ``static:<rule>``).

Determinism is part of the contract: a strategy's proposal sequence must
be a pure function of ``(seed, the observations told so far)``.  The
engine evaluates batches in proposal order regardless of worker count,
so every strategy inherits the pipeline's bit-determinism guarantee —
the same seed selects the same winner serially, in a thread pool, or in
a process pool.

``state_dict``/``load_state_dict`` round-trip the complete internal
state (RNG included) through JSON so a checkpointed search resumes
mid-anneal exactly where it stopped.
"""

from __future__ import annotations

import abc
import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.params import KernelParams
from repro.tuner.strategies.encoding import ParamSpace

__all__ = ["Observation", "SearchStrategy", "derive_rng", "rng_state_to_json", "rng_state_from_json"]


@dataclass(frozen=True)
class Observation:
    """What the engine learned about one proposed candidate.

    ``gflops`` is ``None`` whenever the candidate failed; ``failure``
    then carries the category — the paper's ``generation`` / ``build`` /
    ``launch`` buckets, the resilience layer's ``transient`` /
    ``timeout``, or ``static:<rule>`` for candidates the static verifier
    rejected before any evaluation was spent.
    """

    params: KernelParams
    gflops: Optional[float] = None
    failure: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.failure is None and self.gflops is not None


def derive_rng(name: str, seed: int, *salt: object) -> random.Random:
    """A :class:`random.Random` seeded from a stable digest.

    Strategies must not share RNG streams with the enumeration (or each
    other), so each derives its own from ``(strategy name, seed, salt)``.
    """
    payload = "|".join([name, str(seed), *[str(s) for s in salt]]).encode()
    return random.Random(
        int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")
    )


def rng_state_to_json(rng: random.Random) -> list:
    """``Random.getstate()`` as a JSON-serialisable value."""
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def rng_state_from_json(raw: Sequence) -> Tuple:
    """Invert :func:`rng_state_to_json` (JSON turns tuples into lists)."""
    version, internal, gauss = raw
    return (version, tuple(internal), gauss)


class SearchStrategy(abc.ABC):
    """Base class for stage-1 candidate streams.

    Parameters
    ----------
    space:
        The encoded parameter space (device + precision + restrictions).
    seed:
        Determinism root; two strategies with equal seeds and equal
        observation histories propose identical sequences.
    budget:
        Maximum number of candidates this strategy may propose over its
        lifetime (the search's measurement budget).
    warm_start:
        Known-good starting points: the curated space seeds and, with
        transfer tuning enabled, the tuned winners of the device's
        nearest catalogued neighbours.  Strategies propose (or exploit)
        these first.
    prior:
        ``(params, gflops-or-None)`` rows known before the search starts
        (e.g. a warm :class:`~repro.tuner.cache.MeasurementCache`).
        They inform the strategy without consuming budget.
    """

    #: Registry key; subclasses override.
    name: str = "?"

    def __init__(
        self,
        space: ParamSpace,
        *,
        seed: int = 0,
        budget: int = 4000,
        warm_start: Sequence[KernelParams] = (),
        prior: Sequence[Tuple[KernelParams, Optional[float]]] = (),
    ):
        self.space = space
        self.seed = int(seed)
        self.budget = max(0, int(budget))
        self.warm_start = [p for p in warm_start if space.admissible(p)]
        self.prior = list(prior)
        #: Candidates proposed so far (the budget's denominator).
        self.proposed = 0
        #: Model refit count (surrogate); mirrored into ``TuningStats``.
        self.refits = 0
        #: Human-readable reason when the strategy stopped before its
        #: budget ("" while running / on budget exhaustion).
        self.early_stop_reason = ""
        #: cache_key -> observed GFlop/s (None = failed); every told
        #: observation lands here so strategies never re-propose.
        self._scores: Dict[Tuple, Optional[float]] = {}
        self._best: Optional[Tuple[float, KernelParams]] = None

    # -- the ask/tell contract ------------------------------------------
    @abc.abstractmethod
    def ask(self, n: int) -> List[KernelParams]:
        """Propose up to ``n`` fresh candidates ([] = stage 1 is over)."""

    def tell(self, observations: Sequence[Observation]) -> None:
        """Record the outcomes of the last ``ask`` batch, in order."""
        for obs in observations:
            self._scores[obs.params.cache_key()] = obs.gflops if obs.ok else None
            if obs.ok and (self._best is None or obs.gflops > self._best[0]):
                self._best = (obs.gflops, obs.params)

    # -- shared bookkeeping ---------------------------------------------
    @property
    def remaining(self) -> int:
        return max(0, self.budget - self.proposed)

    @property
    def best_observed(self) -> Optional[Tuple[float, KernelParams]]:
        return self._best

    def seen(self, params: KernelParams) -> bool:
        return params.cache_key() in self._scores

    def score_of(self, params: KernelParams) -> Optional[float]:
        return self._scores.get(params.cache_key())

    def _take(self, batch: List[KernelParams]) -> List[KernelParams]:
        """Clip a batch to the remaining budget and account for it."""
        batch = batch[: self.remaining]
        self.proposed += len(batch)
        return batch

    # -- checkpointing ---------------------------------------------------
    def state_dict(self) -> Dict:
        """JSON-serialisable snapshot of the full strategy state.

        Subclasses extend this dict; everything needed to continue the
        proposal stream bit-identically must be captured (RNG state
        included — it rides in the checkpoint payload, while the
        strategy *name* goes into the checkpoint fingerprint).
        """
        return {
            "name": self.name,
            "proposed": self.proposed,
            "refits": self.refits,
            "early_stop_reason": self.early_stop_reason,
            "scores": [
                [params_key, score] for params_key, score in
                ((list(k), v) for k, v in self._scores.items())
            ],
            "best": (
                [self._best[0], self._best[1].to_dict()]
                if self._best is not None else None
            ),
        }

    def load_state_dict(self, state: Dict) -> None:
        self.proposed = int(state.get("proposed", 0))
        self.refits = int(state.get("refits", 0))
        self.early_stop_reason = str(state.get("early_stop_reason", ""))
        self._scores = {
            tuple(key): (None if score is None else float(score))
            for key, score in state.get("scores", [])
        }
        best = state.get("best")
        self._best = (
            (float(best[0]), KernelParams.from_dict(best[1]))
            if best is not None else None
        )
