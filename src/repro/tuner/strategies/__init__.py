"""Pluggable stage-1 search strategies for the tuner.

See :mod:`repro.tuner.strategies.base` for the ask/tell contract and
:mod:`repro.tuner.strategies.transfer` for cross-device warm-starting.
The registry below is what the CLI's ``--strategy`` flag and
:class:`~repro.tuner.search.SearchEngine` resolve names through.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.tuner.strategies.annealing import AnnealingStrategy
from repro.tuner.strategies.base import (
    Observation,
    SearchStrategy,
    derive_rng,
)
from repro.tuner.strategies.encoding import FEATURE_FAMILIES, ParamSpace
from repro.tuner.strategies.exhaustive import ExhaustiveStrategy
from repro.tuner.strategies.forest import RegressionForest
from repro.tuner.strategies.pso import PSOStrategy
from repro.tuner.strategies.random_search import RandomStrategy
from repro.tuner.strategies.surrogate import SurrogateStrategy
from repro.tuner.strategies.transfer import transfer_seeds

__all__ = [
    "FEATURE_FAMILIES",
    "Observation",
    "ParamSpace",
    "RegressionForest",
    "STRATEGIES",
    "SearchStrategy",
    "derive_rng",
    "make_strategy",
    "transfer_seeds",
    "AnnealingStrategy",
    "ExhaustiveStrategy",
    "PSOStrategy",
    "RandomStrategy",
    "SurrogateStrategy",
]

STRATEGIES: Dict[str, Type[SearchStrategy]] = {
    cls.name: cls
    for cls in (
        ExhaustiveStrategy,
        RandomStrategy,
        AnnealingStrategy,
        PSOStrategy,
        SurrogateStrategy,
    )
}


def make_strategy(name: str, space: ParamSpace, **kwargs) -> SearchStrategy:
    """Instantiate a registered strategy by name.

    Raises ``KeyError`` listing the registry on a miss, mirroring the
    device-catalog lookup style.
    """
    try:
        cls = STRATEGIES[name.strip().lower()]
    except KeyError:
        raise KeyError(
            f"unknown search strategy {name!r}; "
            f"available: {sorted(STRATEGIES)}"
        ) from None
    return cls(space, **kwargs)
