"""Discrete particle-swarm optimisation over the encoded space.

The CLTune PSO variant adapted to integer axes: each particle holds an
index-vector position plus its personal best; every generation, each
axis of each particle moves toward the personal best, the global best,
or explores (one index step for ordinal axes, a re-draw for categorical
ones) with fixed mixing probabilities.  One generation = one ``ask``
batch, so the swarm maps directly onto the parallel evaluator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.params import KernelParams
from repro.tuner.strategies.base import (
    SearchStrategy,
    derive_rng,
    rng_state_from_json,
    rng_state_to_json,
)
from repro.tuner.strategies.encoding import ParamSpace

__all__ = ["PSOStrategy"]

_MAX_MISSES = 64


class PSOStrategy(SearchStrategy):
    name = "pso"

    def __init__(
        self,
        space: ParamSpace,
        *,
        seed: int = 0,
        budget: int = 4000,
        warm_start: Sequence[KernelParams] = (),
        prior: Sequence[Tuple[KernelParams, float]] = (),
        particles: int = 16,
        w_inertia: float = 0.35,
        w_personal: float = 0.30,
        w_global: float = 0.25,
    ):
        super().__init__(
            space, seed=seed, budget=budget, warm_start=warm_start, prior=prior
        )
        self.particles = max(2, particles)
        self.w_inertia = w_inertia
        self.w_personal = w_personal
        self.w_global = w_global
        self._rng = derive_rng(self.name, seed)
        #: position / personal-best (indices, gflops) per particle.
        self._pos: List[Optional[List[int]]] = [None] * self.particles
        self._pbest: List[Optional[Tuple[List[int], float]]] = [None] * self.particles
        self._gbest: Optional[Tuple[List[int], float]] = None
        self._pending: List[Tuple[int, List[int]]] = []
        self._warm_queue = list(self.warm_start)

    # ------------------------------------------------------------------
    def _move(self, particle: int) -> List[int]:
        pos = self._pos[particle]
        pbest = self._pbest[particle]
        out: List[int] = []
        for a, (name, pool) in enumerate(self.space.axes):
            r = self._rng.random()
            if r < self.w_inertia and pos is not None:
                out.append(pos[a])
            elif r < self.w_inertia + self.w_personal and pbest is not None:
                out.append(pbest[0][a])
            elif (
                r < self.w_inertia + self.w_personal + self.w_global
                and self._gbest is not None
            ):
                out.append(self._gbest[0][a])
            elif pos is not None and name in self.space.numeric_axes:
                step = self._rng.choice((-1, 1))
                out.append(min(len(pool) - 1, max(0, pos[a] + step)))
            else:
                out.append(self._rng.randrange(len(pool)))
        return out

    def _fresh_move(self, particle: int) -> Optional[Tuple[List[int], KernelParams]]:
        for _ in range(_MAX_MISSES):
            idx = self._move(particle)
            params = self.space.decode(idx)
            if params is not None and not self.seen(params):
                return idx, params
        return None

    def ask(self, n: int) -> List[KernelParams]:
        batch: List[KernelParams] = []
        keys = set()
        self._pending = []
        while self._warm_queue and len(batch) < n:
            p = self._warm_queue.pop(0)
            if not self.seen(p) and p.cache_key() not in keys:
                keys.add(p.cache_key())
                self._pending.append((-1, self.space.encode(p)))
                batch.append(p)
        particle = 0
        stuck = 0
        while len(batch) < n and stuck < self.particles:
            i = particle % self.particles
            particle += 1
            found = self._fresh_move(i)
            if found is None or found[1].cache_key() in keys:
                stuck += 1
                continue
            stuck = 0
            idx, params = found
            keys.add(params.cache_key())
            self._pending.append((i, idx))
            batch.append(params)
        if not batch:
            self.early_stop_reason = "swarm converged (no fresh moves)"
        return self._take(batch)

    def tell(self, observations) -> None:
        super().tell(observations)
        # Seed unplaced particles round-robin from warm-start outcomes.
        warm_cursor = [
            i for i, placed in enumerate(self._pos) if placed is None
        ]
        for (particle, idx), obs in zip(self._pending, observations):
            score = obs.gflops if obs.ok else None
            if particle < 0:
                particle = warm_cursor.pop(0) if warm_cursor else 0
            self._pos[particle] = idx
            if score is not None:
                if self._pbest[particle] is None or score > self._pbest[particle][1]:
                    self._pbest[particle] = (idx, score)
                if self._gbest is None or score > self._gbest[1]:
                    self._gbest = (idx, score)
        self._pending = []

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        state = super().state_dict()
        state.update(
            rng=rng_state_to_json(self._rng),
            pos=self._pos,
            pbest=[
                None if pb is None else [pb[0], pb[1]] for pb in self._pbest
            ],
            gbest=None if self._gbest is None else [self._gbest[0], self._gbest[1]],
            warm_queue=[p.to_dict() for p in self._warm_queue],
        )
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self._rng.setstate(rng_state_from_json(state["rng"]))
        self._pos = [
            list(p) if p is not None else None for p in state.get("pos", [])
        ] or [None] * self.particles
        self._pbest = [
            None if pb is None else (list(pb[0]), float(pb[1]))
            for pb in state.get("pbest", [])
        ] or [None] * self.particles
        gb = state.get("gbest")
        self._gbest = None if gb is None else (list(gb[0]), float(gb[1]))
        self._warm_queue = [
            KernelParams.from_dict(d) for d in state.get("warm_queue", [])
        ]
        self._pending = []
