"""Index-space encoding of the kernel parameter space.

The adaptive strategies (annealing, PSO, surrogate) need a geometry to
move in: :class:`ParamSpace` lays the Section-III parameters out as a
fixed list of axes, each with an ordered value pool, so a candidate is a
vector of pool indices.  Moves are index steps, positions decode back to
validated :class:`KernelParams` (or ``None`` where the structural
constraints reject the combination — the same "failed in code
generation" class the enumerative search discards), and the surrogate
derives its numeric feature vector from the same axes.

The pools mirror the enumerator's (:mod:`repro.codegen.space`) plus the
refinement steps (:mod:`repro.tuner.refine`), restricted by the active
:class:`SpaceRestrictions` so ablation searches cannot escape their
ablated space through a clever strategy.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.layouts import Layout
from repro.codegen.params import KernelParams, StrideMode
from repro.codegen.space import (
    SpaceRestrictions,
    _seed_admissible,
)
from repro.devices.specs import DeviceSpec
from repro.errors import ParameterError

__all__ = ["ParamSpace", "FEATURE_FAMILIES"]

_MWG_NWG = (16, 24, 32, 48, 64, 96, 128)
_KWG = (8, 16, 24, 32, 48, 64, 96, 192)
_DIMC = (4, 8, 16, 24, 32)
_KWI = (1, 2, 4, 8, 16, 24)
_VW = (1, 2, 4, 8)
_STAGING = (0, 8, 16, 32, 64)

_STRIDES = (
    StrideMode(False, False),
    StrideMode(True, False),
    StrideMode(False, True),
    StrideMode(True, True),
)
_SHARED = ((False, False), (False, True), (True, False), (True, True))
_LAYOUT_PAIRS = (
    (Layout.ROW, Layout.ROW),
    (Layout.CBL, Layout.CBL),
    (Layout.RBL, Layout.RBL),
    (Layout.CBL, Layout.RBL),
    (Layout.RBL, Layout.CBL),
)


def _pow2(values: Sequence[int]) -> Tuple[int, ...]:
    return tuple(v for v in values if v == 0 or (v & (v - 1)) == 0)


#: Maps surrogate feature names to the report families of
#: :mod:`repro.tuner.analysis` (the paper's Section IV-A taxonomy), so
#: the model's importances can be cross-read against the sensitivity
#: report.
FEATURE_FAMILIES: Dict[str, str] = {
    "log_mwg": "blocking",
    "log_nwg": "blocking",
    "log_kwg": "blocking",
    "log_mdimc": "workgroup shape",
    "log_ndimc": "workgroup shape",
    "log_kwi": "unrolling",
    "log_vw": "vector width",
    "stride_m": "stride mode",
    "stride_n": "stride mode",
    "shared_a": "local memory",
    "shared_b": "local memory",
    "log_mdima": "local memory",
    "log_ndimb": "local memory",
    "local_kb": "local memory",
    "layout_a_block": "layouts",
    "layout_b_block": "layouts",
    "alg_ba": "algorithm",
    "alg_pl": "algorithm",
    "alg_db": "algorithm",
    "log_mwi": "blocking",
    "log_nwi": "blocking",
    "log_wg": "workgroup shape",
    "private_el": "blocking",
    "use_images": "memory objects",
}


class ParamSpace:
    """The encoded search space for one (device, precision, restrictions).

    Axes (in order): ``mwg nwg kwg mdimc ndimc kwi vw stride shared
    mdima ndimb layout algorithm``.  The image/guard flags are pinned by
    the restrictions (``forced_images`` / ``forced_guarded``) rather
    than searched — matching the enumerator, which only spans them when
    an ablation asks for it.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        precision: str,
        restrictions: Optional[SpaceRestrictions] = None,
    ):
        self.spec = spec
        self.precision = precision
        self.restrictions = restrictions or SpaceRestrictions()
        r = self.restrictions

        mwg_pool, kwg_pool, dimc_pool, kwi_pool = _MWG_NWG, _KWG, _DIMC, _KWI
        staging_pool = _STAGING
        if r.power_of_two_only:
            mwg_pool, kwg_pool = _pow2(mwg_pool), _pow2(kwg_pool)
            dimc_pool, kwi_pool = _pow2(dimc_pool), _pow2(kwi_pool)
            staging_pool = _pow2(staging_pool)
        if not r.allow_staging_reshape:
            staging_pool = (0,)

        strides = tuple(
            s for s in _STRIDES if r.allow_nonunit_stride or not (s.m or s.n)
        )
        shared = tuple(
            s for s in _SHARED if r.allow_dual_shared or not (s[0] and s[1])
        )
        if r.forced_shared is not None:
            shared = (r.forced_shared,)
        layouts = tuple(
            lp for lp in _LAYOUT_PAIRS
            if lp[0] in r.layouts and lp[1] in r.layouts
        )
        if r.forced_layouts is not None:
            layouts = (r.forced_layouts,)
        algorithms = tuple(r.algorithms)
        if r.forced_algorithm is not None:
            algorithms = (r.forced_algorithm,)

        self.use_images = bool(r.forced_images)
        self.guard_edges = bool(r.forced_guarded)
        if self.use_images or self.guard_edges:
            layouts = ((Layout.ROW, Layout.ROW),)

        #: ``(name, value pool)`` in canonical order.  Numeric axes hold
        #: sorted ints; categorical axes hold richer objects.
        self.axes: List[Tuple[str, Tuple]] = [
            ("mwg", mwg_pool),
            ("nwg", mwg_pool),
            ("kwg", kwg_pool),
            ("mdimc", dimc_pool),
            ("ndimc", dimc_pool),
            ("kwi", tuple(v for v in kwi_pool)),
            ("vw", tuple(v for v in _VW if v in r.vector_widths)),
            ("stride", strides),
            ("shared", shared),
            ("mdima", staging_pool),
            ("ndimb", staging_pool),
            ("layout", layouts),
            ("algorithm", algorithms),
        ]
        #: Axis names considered ordinal (index distance is meaningful).
        self.numeric_axes = frozenset(
            ("mwg", "nwg", "kwg", "mdimc", "ndimc", "kwi", "vw",
             "mdima", "ndimb")
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.axes)

    def axis_sizes(self) -> List[int]:
        return [len(pool) for _, pool in self.axes]

    # -- decoding --------------------------------------------------------
    def decode(self, indices: Sequence[int]) -> Optional[KernelParams]:
        """Indices -> validated params, or ``None`` if the point is not
        constructible / feasible / inside the restricted space."""
        values = {}
        for (name, pool), i in zip(self.axes, indices):
            if not (0 <= i < len(pool)):
                return None
            values[name] = pool[i]
        sha, shb = values["shared"]
        la, lb = values["layout"]
        try:
            params = KernelParams(
                precision=self.precision,
                mwg=values["mwg"], nwg=values["nwg"], kwg=values["kwg"],
                mdimc=values["mdimc"], ndimc=values["ndimc"],
                kwi=values["kwi"], vw=values["vw"],
                stride=values["stride"],
                shared_a=sha, shared_b=shb,
                mdima=values["mdima"] if sha else 0,
                ndimb=values["ndimb"] if shb else 0,
                layout_a=la, layout_b=lb,
                algorithm=values["algorithm"],
                use_images=self.use_images,
                guard_edges=self.guard_edges,
            )
        except ParameterError:
            return None
        if params.local_memory_bytes() > self.spec.local_mem_bytes:
            return None
        if params.workgroup_size > self.spec.model.max_workgroup_size:
            return None
        if not _seed_admissible(params, self.restrictions):
            return None
        return params

    def admissible(self, params: KernelParams) -> bool:
        """Whether a params vector lies inside this (restricted) space."""
        if params.precision != self.precision:
            return False
        if params.local_memory_bytes() > self.spec.local_mem_bytes:
            return False
        if params.workgroup_size > self.spec.model.max_workgroup_size:
            return False
        return _seed_admissible(params, self.restrictions)

    # -- encoding --------------------------------------------------------
    def encode(self, params: KernelParams) -> List[int]:
        """Params -> nearest index vector (numeric axes snap to the
        closest pool value; categorical axes fall back to index 0 when
        the exact option is outside the restricted pools)."""
        raw = {
            "mwg": params.mwg, "nwg": params.nwg, "kwg": params.kwg,
            "mdimc": params.mdimc, "ndimc": params.ndimc,
            "kwi": params.kwi, "vw": params.vw,
            "stride": params.stride,
            "shared": (params.shared_a, params.shared_b),
            "mdima": params.mdima, "ndimb": params.ndimb,
            "layout": (params.layout_a, params.layout_b),
            "algorithm": params.algorithm,
        }
        out = []
        for name, pool in self.axes:
            value = raw[name]
            if name in self.numeric_axes:
                out.append(
                    min(range(len(pool)), key=lambda i: abs(pool[i] - value))
                )
            else:
                out.append(pool.index(value) if value in pool else 0)
        return out

    # -- sampling / moves ------------------------------------------------
    def random_point(self, rng) -> List[int]:
        return [rng.randrange(len(pool)) for _, pool in self.axes]

    def random_params(self, rng, attempts: int = 64) -> Optional[KernelParams]:
        """A random *valid* point (or ``None`` after ``attempts`` misses)."""
        for _ in range(attempts):
            params = self.decode(self.random_point(rng))
            if params is not None:
                return params
        return None

    def perturb(self, rng, indices: Sequence[int], strength: int = 1) -> List[int]:
        """One neighbourhood move: step 1..``strength`` axes.

        Numeric axes move one pool position up or down (the refinement
        module's "one step along the axis"); categorical axes re-draw.
        """
        out = list(indices)
        n_moves = 1 + rng.randrange(max(1, strength))
        axes = rng.sample(range(len(self.axes)), k=min(n_moves, len(self.axes)))
        for a in axes:
            name, pool = self.axes[a]
            if len(pool) <= 1:
                continue
            if name in self.numeric_axes:
                step = rng.choice((-1, 1))
                out[a] = min(len(pool) - 1, max(0, out[a] + step))
            else:
                choices = [i for i in range(len(pool)) if i != out[a]]
                out[a] = rng.choice(choices)
        return out

    # -- surrogate features ----------------------------------------------
    FEATURE_NAMES: Tuple[str, ...] = tuple(FEATURE_FAMILIES)

    def features(self, params: KernelParams) -> List[float]:
        """Numeric feature vector for the regression forest."""
        log2 = math.log2
        return [
            log2(params.mwg),
            log2(params.nwg),
            log2(params.kwg),
            log2(params.mdimc),
            log2(params.ndimc),
            log2(params.kwi),
            log2(params.vw),
            1.0 if params.stride.m else 0.0,
            1.0 if params.stride.n else 0.0,
            1.0 if params.shared_a else 0.0,
            1.0 if params.shared_b else 0.0,
            log2(params.effective_mdima) if params.shared_a else -1.0,
            log2(params.effective_ndimb) if params.shared_b else -1.0,
            params.local_memory_bytes() / 1024.0,
            1.0 if params.layout_a.is_block_major else 0.0,
            1.0 if params.layout_b.is_block_major else 0.0,
            1.0 if params.algorithm.value == "BA" else 0.0,
            1.0 if params.algorithm.value == "PL" else 0.0,
            1.0 if params.algorithm.value == "DB" else 0.0,
            log2(params.mwi),
            log2(params.nwi),
            log2(params.workgroup_size),
            float(params.private_elements()),
            1.0 if params.use_images else 0.0,
        ]
