"""Local refinement of promising kernels (hill climbing).

The paper's search is a pure sample-and-rank over a heuristic space.
Real auto-tuners (ATLAS, CLBlast) follow the global sample with a local
search around the leaders: vary one parameter at a time and keep
improvements.  This module generates the one-step neighbourhood of a
kernel parameter vector; :class:`~repro.tuner.search.SearchEngine` runs
the climb between its stage 1 and stage 2 when
``TuningConfig.refine_rounds > 0``.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.codegen.algorithms import Algorithm
from repro.codegen.layouts import Layout
from repro.codegen.params import KernelParams, StrideMode
from repro.codegen.space import _SHARED_OPTIONS  # shared candidate pool
from repro.codegen.space import SpaceRestrictions, _seed_admissible
from repro.devices.specs import DeviceSpec
from repro.errors import ParameterError

__all__ = ["neighbors", "admissible_neighbors"]

_BLOCK_STEPS = {
    "mwg": (16, 24, 32, 48, 64, 96, 128),
    "nwg": (16, 24, 32, 48, 64, 96, 128),
    "kwg": (8, 16, 24, 32, 48, 64, 96, 192),
    "mdimc": (4, 8, 16, 24, 32),
    "ndimc": (4, 8, 16, 24, 32),
    "kwi": (1, 2, 4, 8, 16, 24),
}


def _adjacent(pool, value) -> List[int]:
    """Pool entries adjacent to ``value`` (plus the nearest if absent)."""
    ordered = sorted(set(pool) | {value})
    i = ordered.index(value)
    out = []
    if i > 0:
        out.append(ordered[i - 1])
    if i + 1 < len(ordered):
        out.append(ordered[i + 1])
    return out


def admissible_neighbors(
    params: KernelParams,
    device: DeviceSpec,
    restrictions: SpaceRestrictions | None = None,
) -> List[KernelParams]:
    """The one-step neighbourhood, filtered to a restricted space.

    This is the climb candidate list the search engine evaluates as one
    batch: :func:`neighbors` output (already deduplicated and
    device-feasible) minus any variant that falls outside the configured
    :class:`SpaceRestrictions`, so ablation searches cannot escape their
    ablated space through the refinement stage.
    """
    restrictions = restrictions or SpaceRestrictions()
    return [
        candidate
        for candidate in neighbors(params, device)
        if _seed_admissible(candidate, restrictions)
    ]


def neighbors(params: KernelParams, device: DeviceSpec) -> Iterator[KernelParams]:
    """Yield valid one-parameter variations of ``params``.

    Invalid combinations (divisibility, staging coverage, local-memory
    capacity) are silently skipped — they are the same "failed in code
    generation" candidates the main search discards.
    """
    seen = {params.cache_key()}

    def attempt(**changes) -> Iterator[KernelParams]:
        try:
            candidate = params.replace(**changes)
        except ParameterError:
            return
        if candidate.cache_key() in seen:
            return
        if candidate.local_memory_bytes() > device.local_mem_bytes:
            return
        seen.add(candidate.cache_key())
        yield candidate

    # Blocking factors and work-group shape: one step along each axis.
    for name, pool in _BLOCK_STEPS.items():
        for value in _adjacent(pool, getattr(params, name)):
            yield from attempt(**{name: value})

    # Vector width: neighbouring powers of two.
    for vw in _adjacent((1, 2, 4, 8), params.vw):
        yield from attempt(vw=vw)

    # Stride toggles.
    yield from attempt(stride=StrideMode(m=not params.stride.m, n=params.stride.n))
    yield from attempt(stride=StrideMode(m=params.stride.m, n=not params.stride.n))

    # Local-memory staging combinations.
    for sha, shb in _SHARED_OPTIONS:
        if (sha, shb) != (params.shared_a, params.shared_b):
            yield from attempt(shared_a=sha, shared_b=shb, mdima=0, ndimb=0)

    # Staging reshape widths.
    if params.shared_a:
        for mdima in (8, 16, 32, 64):
            yield from attempt(mdima=mdima)
    if params.shared_b:
        for ndimb in (8, 16, 32, 64):
            yield from attempt(ndimb=ndimb)

    # Layouts (only for buffer kernels; image kernels are pinned to ROW).
    if not params.use_images:
        for layout in Layout:
            yield from attempt(layout_a=layout)
            yield from attempt(layout_b=layout)

    # Algorithm.
    for algorithm in Algorithm:
        if algorithm is not params.algorithm:
            yield from attempt(algorithm=algorithm)
