"""The auto-tuning search engine (paper Section III-F).

The staged procedure mirrors the paper's:

1. measure every heuristically-generated candidate at a base size
   (``N = floor(4096 / LCM) * LCM`` on GPUs, ``floor(1536 / LCM) * LCM``
   on CPUs, where LCM is the least common multiple of the work-group
   blocking factors);
2. re-measure the fastest ``top_k`` (paper: 50) candidates across sizes
   up to 8192 in multiples of their LCM;
3. select the overall fastest, after functionally verifying the
   finalists against a reference GEMM ("failed in ... testing" kernels
   are not counted).
"""

from repro.tuner.search import (
    MeasuredKernel,
    SearchEngine,
    TuningConfig,
    TuningResult,
    TuningStats,
    tune,
)
from repro.tuner.cache import CachedMeasurement, CacheStats, MeasurementCache
from repro.tuner.parallel import CandidateEvaluator, EvalOutcome, EvalTask
from repro.tuner.results import ResultsDatabase, TunedKernelRecord
from repro.tuner.pretuned import pretuned_params, PRETUNED
from repro.tuner.strategies import (
    STRATEGIES,
    SearchStrategy,
    make_strategy,
    transfer_seeds,
)

__all__ = [
    "SearchEngine",
    "TuningConfig",
    "TuningResult",
    "TuningStats",
    "MeasuredKernel",
    "tune",
    "MeasurementCache",
    "CachedMeasurement",
    "CacheStats",
    "CandidateEvaluator",
    "EvalTask",
    "EvalOutcome",
    "ResultsDatabase",
    "TunedKernelRecord",
    "pretuned_params",
    "PRETUNED",
    "STRATEGIES",
    "SearchStrategy",
    "make_strategy",
    "transfer_seeds",
]
