"""Staged heuristic kernel search."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codegen.params import KernelParams
from repro.codegen.plan import build_plan
from repro.codegen.space import SpaceRestrictions, enumerate_space
from repro.devices.catalog import get_device_spec
from repro.devices.specs import DeviceSpec
from repro.errors import (
    BuildError,
    LaunchError,
    ParameterError,
    TuningError,
    ValidationError,
)
from repro.perfmodel.model import (
    check_execution_quirks,
    check_resources,
    estimate_kernel_time,
)

__all__ = [
    "TuningConfig",
    "TuningStats",
    "MeasuredKernel",
    "TuningResult",
    "SearchEngine",
    "tune",
]


@dataclass(frozen=True)
class TuningConfig:
    """Knobs of the staged search.

    The defaults are a scaled-down budget that completes in seconds; the
    paper's full runs ("more than five hours") correspond to
    ``budget=None`` (the entire heuristic space, tens of thousands of
    candidates).
    """

    budget: Optional[int] = 4000
    per_blocking: int = 8
    top_k: int = 50
    base_size_gpu: int = 4096
    base_size_cpu: int = 1536
    #: Tune for a specific (M, N, K) aspect instead of square problems.
    #: The base measurement uses this shape (each dimension rounded down
    #: to the candidate's blocking factor) and the sweep scales it.
    problem_shape: Optional[Tuple[int, int, int]] = None
    max_sweep_size: int = 8192
    sweep_targets: Tuple[int, ...] = (1024, 2048, 3072, 4096, 5120, 6144, 8192)
    verify_finalists: int = 3
    #: Hill-climbing rounds applied to the top stage-1 candidates before
    #: the size sweep (0 = the paper's pure sample-and-rank search).
    refine_rounds: int = 1
    refine_top: int = 5
    seed: int = 0
    measurement_noise: bool = True
    include_seeds: bool = True


@dataclass
class TuningStats:
    """Candidate accounting, in the paper's failure categories."""

    generated: int = 0
    measured: int = 0
    failed_generation: int = 0
    failed_build: int = 0
    failed_launch: int = 0
    failed_validation: int = 0
    refined: int = 0
    elapsed_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass(frozen=True)
class MeasuredKernel:
    """One kernel's measurement at one problem size."""

    params: KernelParams
    size: int
    gflops: float

    def __repr__(self) -> str:
        return f"<MeasuredKernel {self.gflops:.1f} GF/s @N={self.size} {self.params.summary()}>"


@dataclass
class TuningResult:
    """Outcome of a staged search."""

    device: str
    precision: str
    best: MeasuredKernel
    #: Finalists after the size sweep, best first (paper's "fastest 50").
    finalists: List[MeasuredKernel]
    #: Per-size measurements of the best kernel.
    best_series: List[MeasuredKernel]
    stats: TuningStats
    config: TuningConfig

    @property
    def best_gflops(self) -> float:
        return self.best.gflops

    def efficiency(self, spec: DeviceSpec) -> float:
        return self.best.gflops / spec.peak_gflops(self.precision)


class SearchEngine:
    """The heuristic search engine of paper Section III-F."""

    def __init__(
        self,
        device: Union[str, DeviceSpec],
        precision: str,
        config: Optional[TuningConfig] = None,
        restrictions: Optional[SpaceRestrictions] = None,
    ):
        self.spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
        if precision not in ("s", "d"):
            raise TuningError(f"precision must be 's' or 'd', got {precision!r}")
        self.precision = precision
        self.config = config or TuningConfig()
        self.restrictions = restrictions or SpaceRestrictions()
        self.stats = TuningStats()

    # ------------------------------------------------------------------
    def base_size(self, params: KernelParams) -> int:
        """Stage-1 measurement size (the paper's LCM formula)."""
        base = self.config.base_size_gpu if self.spec.is_gpu else self.config.base_size_cpu
        lcm = params.lcm
        n = (base // lcm) * lcm
        n = max(n, lcm, params.algorithm.min_k_iterations * params.kwg)
        return n

    def base_shape(self, params: KernelParams) -> Tuple[int, int, int]:
        """Stage-1 measurement shape: square unless the config targets a
        specific (M, N, K) aspect."""
        if self.config.problem_shape is None:
            n = self.base_size(params)
            return n, n, n
        return self._round_shape(params, self.config.problem_shape)

    def _round_shape(
        self, params: KernelParams, shape: Tuple[int, int, int]
    ) -> Tuple[int, int, int]:
        M, N, K = shape
        Mr = max(params.mwg, (M // params.mwg) * params.mwg)
        Nr = max(params.nwg, (N // params.nwg) * params.nwg)
        Kr = max(
            params.algorithm.min_k_iterations * params.kwg,
            (K // params.kwg) * params.kwg,
        )
        return Mr, Nr, Kr

    def sweep_sizes(self, params: KernelParams) -> List[int]:
        """Stage-2 sizes: multiples of the LCM near the sweep targets."""
        lcm = params.lcm
        min_n = max(lcm, params.algorithm.min_k_iterations * params.kwg)
        sizes = []
        for target in self.config.sweep_targets:
            if target > self.config.max_sweep_size:
                continue
            n = max(min_n, (target // lcm) * lcm)
            if n <= self.config.max_sweep_size and n not in sizes:
                sizes.append(n)
        return sizes or [min_n]

    def measure(self, params: KernelParams, size: int) -> float:
        """One simulated square-problem measurement, in GFlop/s."""
        return self.measure_shape(params, size, size, size)

    def measure_shape(
        self, params: KernelParams, M: int, N: int, K: int
    ) -> float:
        """One simulated kernel measurement, in GFlop/s.

        Performs the same build/launch validation the simulator's
        compiler and queue would: structural plan verification, device
        resource checks, and execution quirks.  Raises the corresponding
        error for the stats bookkeeping.
        """
        build_plan(params)  # ParameterError -> failed generation
        check_resources(self.spec, params)  # ResourceError -> failed build
        check_execution_quirks(self.spec, params)  # LaunchError -> failed run
        breakdown = estimate_kernel_time(
            self.spec, params, M, N, K, noise=self.config.measurement_noise
        )
        return breakdown.gflops

    def verify(self, params: KernelParams, rng: np.random.Generator) -> None:
        """Functionally test one kernel against the reference GEMM.

        Executes the kernel through the full simulator stack (source ->
        program -> buffers -> ND-range) at the smallest launchable size
        and raises :class:`ValidationError` on numerical mismatch.
        """
        import repro.clsim as cl
        from repro.codegen.emitter import emit_kernel_source
        from repro.codegen.layouts import pack_matrix
        from repro.gemm.reference import relative_error

        n = max(params.lcm, params.algorithm.min_k_iterations * params.kwg)
        dtype = np.float64 if params.precision == "d" else np.float32
        a = rng.standard_normal((n, n)).astype(dtype)  # this is A^T (K x M)
        b = rng.standard_normal((n, n)).astype(dtype)
        c = rng.standard_normal((n, n)).astype(dtype)
        alpha, beta = dtype(1.5), dtype(-0.5)

        device = cl.Device(self.spec)
        ctx = cl.Context([device])
        queue = cl.CommandQueue(ctx, device, measurement_noise=False)
        if params.use_images:
            # Image kernels read operands as 2-D textures.
            abuf = cl.Image2D(ctx, width=n, height=n, dtype=dtype, hostbuf=a)
            bbuf = cl.Image2D(ctx, width=n, height=n, dtype=dtype, hostbuf=b)
        else:
            a_flat = pack_matrix(a, params.layout_a, params.kwg, params.mwg)
            b_flat = pack_matrix(b, params.layout_b, params.kwg, params.nwg)
            abuf = cl.Buffer(ctx, hostbuf=a_flat)
            bbuf = cl.Buffer(ctx, hostbuf=b_flat)
        cbuf = cl.Buffer(ctx, hostbuf=c.copy())
        program = cl.Program(ctx, emit_kernel_source(params)).build()
        kernel = program.get_kernel("gemm_atb")
        kernel.set_args(n, n, n, float(alpha), float(beta), abuf, bbuf, cbuf)
        queue.launch(kernel, kernel.expected_global_size(), kernel.plan.local_size())
        result = cbuf.read().reshape(n, n)
        reference = alpha * (a.T @ b) + beta * c
        tolerance = 1e-10 if params.precision == "d" else 1e-4
        error = relative_error(result, reference)
        if error > tolerance:
            raise ValidationError(
                f"kernel produced wrong results (relative error {error:.2e}): "
                f"{params.summary()}"
            )

    # ------------------------------------------------------------------
    def _stage1(self, progress: Optional[Callable[[int, MeasuredKernel], None]]):
        scored: List[MeasuredKernel] = []
        for params in enumerate_space(
            self.spec,
            self.precision,
            self.restrictions,
            limit=self.config.budget,
            per_blocking=self.config.per_blocking,
            seed=self.config.seed,
            include_seeds=self.config.include_seeds,
        ):
            self.stats.generated += 1
            M, N, K = self.base_shape(params)
            try:
                gflops = self.measure_shape(params, M, N, K)
            except ParameterError:
                self.stats.failed_generation += 1
                continue
            except BuildError:
                self.stats.failed_build += 1
                continue
            except LaunchError:
                self.stats.failed_launch += 1
                continue
            self.stats.measured += 1
            mk = MeasuredKernel(params, max(M, N, K), gflops)
            scored.append(mk)
            if progress is not None:
                progress(self.stats.measured, mk)
        scored.sort(key=lambda mk: mk.gflops, reverse=True)
        return scored[: self.config.top_k]

    def _refine(self, finalists: List[MeasuredKernel]) -> List[MeasuredKernel]:
        """Hill-climb the leading candidates (stage 1.5).

        The climbed variants must still lie inside the configured space
        restrictions, so ablation searches stay honest.
        """
        from repro.codegen.space import _seed_admissible
        from repro.tuner.refine import neighbors

        refined: Dict[Tuple, MeasuredKernel] = {
            mk.params.cache_key(): mk for mk in finalists
        }
        for start in finalists[: self.config.refine_top]:
            current = start
            for _ in range(self.config.refine_rounds):
                improved = None
                for candidate in neighbors(current.params, self.spec):
                    if not _seed_admissible(candidate, self.restrictions):
                        continue
                    if candidate.cache_key() in refined:
                        continue
                    M, N, K = self.base_shape(candidate)
                    self.stats.generated += 1
                    try:
                        gflops = self.measure_shape(candidate, M, N, K)
                    except (ParameterError, BuildError, LaunchError):
                        continue
                    self.stats.measured += 1
                    self.stats.refined += 1
                    mk = MeasuredKernel(candidate, max(M, N, K), gflops)
                    refined[candidate.cache_key()] = mk
                    if improved is None or gflops > improved.gflops:
                        improved = mk
                if improved is None or improved.gflops <= current.gflops:
                    break
                current = improved
        out = sorted(refined.values(), key=lambda mk: mk.gflops, reverse=True)
        return out[: self.config.top_k]

    def _stage2(self, finalists: Sequence[MeasuredKernel]):
        swept: List[Tuple[MeasuredKernel, List[MeasuredKernel]]] = []
        shape = self.config.problem_shape
        for mk in finalists:
            series = []
            if shape is None:
                sweep = [(n, n, n) for n in self.sweep_sizes(mk.params)]
            else:
                sweep = []
                for factor in (0.5, 0.75, 1.0, 1.5, 2.0):
                    scaled = self._round_shape(
                        mk.params,
                        tuple(max(1, int(dim * factor)) for dim in shape),
                    )
                    if scaled not in sweep:
                        sweep.append(scaled)
            for M, N, K in sweep:
                try:
                    gflops = self.measure_shape(mk.params, M, N, K)
                except (ParameterError, BuildError, LaunchError):
                    continue
                series.append(MeasuredKernel(mk.params, max(M, N, K), gflops))
            if not series:
                continue
            best_point = max(series, key=lambda m: m.gflops)
            swept.append((best_point, series))
        swept.sort(key=lambda pair: pair[0].gflops, reverse=True)
        return swept

    def run(
        self, progress: Optional[Callable[[int, MeasuredKernel], None]] = None
    ) -> TuningResult:
        """Execute the three-stage search and return the winner."""
        t0 = time.perf_counter()
        finalists = self._stage1(progress)
        if not finalists:
            raise TuningError(
                f"no viable kernel found for {self.precision}gemm on "
                f"{self.spec.codename} (stats: {self.stats.as_dict()})"
            )
        if self.config.refine_rounds > 0:
            finalists = self._refine(list(finalists))
        swept = self._stage2(finalists)
        if not swept:
            raise TuningError("all finalists failed the size sweep")

        rng = np.random.default_rng(self.config.seed)
        chosen: Optional[Tuple[MeasuredKernel, List[MeasuredKernel]]] = None
        for rank, (best_point, series) in enumerate(swept):
            if rank < self.config.verify_finalists:
                try:
                    self.verify(best_point.params, rng)
                except ValidationError:
                    self.stats.failed_validation += 1
                    continue
            chosen = (best_point, series)
            break
        if chosen is None:
            raise TuningError("every verified finalist failed numerical testing")

        self.stats.elapsed_s = time.perf_counter() - t0
        return TuningResult(
            device=self.spec.codename,
            precision=self.precision,
            best=chosen[0],
            finalists=[bp for bp, _ in swept],
            best_series=chosen[1],
            stats=self.stats,
            config=self.config,
        )


def tune(
    device: Union[str, DeviceSpec],
    precision: str,
    config: Optional[TuningConfig] = None,
    restrictions: Optional[SpaceRestrictions] = None,
    progress: Optional[Callable[[int, MeasuredKernel], None]] = None,
) -> TuningResult:
    """One-call staged search (see :class:`SearchEngine`)."""
    return SearchEngine(device, precision, config, restrictions).run(progress)
