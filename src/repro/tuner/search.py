"""Staged heuristic kernel search.

Beyond the paper's serial sample-and-rank procedure, the engine supports
the scale features generic auto-tuners (CLTune, GEMMbench) consider
table stakes:

* **parallel evaluation** — candidate batches fan out over
  :class:`~repro.tuner.parallel.CandidateEvaluator` workers with
  deterministic result ordering, so a parallel search selects the
  identical winner as a serial one for the same seed and budget;
* **measurement caching** — an optional
  :class:`~repro.tuner.cache.MeasurementCache` short-circuits
  evaluations (successes *and* categorised failures) already recorded by
  earlier runs;
* **checkpoint/resume** — periodic checkpoint files during stage-1
  enumeration and the stage-2 size sweep let an interrupted search
  restart where it left off instead of from scratch.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analyze.verifier import StaticVerifier
from repro.codegen.params import KernelParams
from repro.codegen.space import SpaceRestrictions
from repro.devices.catalog import get_device_spec
from repro.devices.specs import DeviceSpec
from repro.errors import (
    MeasurementTimeout,
    SearchInterrupted,
    TransientError,
    TuningError,
    ValidationError,
)
from repro.obs import NULL_OBS
from repro.persist import dump_json_atomic, load_json_checked
from repro.tuner.cache import CachedMeasurement, MeasurementCache, params_digest
from repro.tuner.parallel import CandidateEvaluator, EvalOutcome, EvalTask, measure_once
from repro.tuner.resilience import (
    Quarantine,
    ResilienceConfig,
    call_with_timeout,
    run_with_retry,
)

__all__ = [
    "TuningConfig",
    "TuningStats",
    "MeasuredKernel",
    "TuningResult",
    "SearchEngine",
    "tune",
]

CHECKPOINT_FORMAT = "repro-tuner-checkpoint/1"

#: Candidates dispatched per evaluator batch.  Constant (independent of
#: the worker count) so the chunk boundaries — and therefore checkpoint
#: cadence and stats — are identical between serial and parallel runs.
_CHUNK = 64

#: Stats fields that measure wall-clock time rather than search content;
#: excluded from :meth:`TuningStats.comparable_dict`.
_WALL_CLOCK_FIELDS = ("elapsed_s", "stage1_s", "refine_s", "stage2_s", "verify_s")


@dataclass(frozen=True)
class TuningConfig:
    """Knobs of the staged search.

    The defaults are a scaled-down budget that completes in seconds; the
    paper's full runs ("more than five hours") correspond to
    ``budget=None`` (the entire heuristic space, tens of thousands of
    candidates).
    """

    budget: Optional[int] = 4000
    per_blocking: int = 8
    top_k: int = 50
    base_size_gpu: int = 4096
    base_size_cpu: int = 1536
    #: Tune for a specific (M, N, K) aspect instead of square problems.
    #: The base measurement uses this shape (each dimension rounded down
    #: to the candidate's blocking factor) and the sweep scales it.
    problem_shape: Optional[Tuple[int, int, int]] = None
    max_sweep_size: int = 8192
    sweep_targets: Tuple[int, ...] = (1024, 2048, 3072, 4096, 5120, 6144, 8192)
    verify_finalists: int = 3
    #: Hill-climbing rounds applied to the top stage-1 candidates before
    #: the size sweep (0 = the paper's pure sample-and-rank search).
    refine_rounds: int = 1
    refine_top: int = 5
    seed: int = 0
    measurement_noise: bool = True
    include_seeds: bool = True
    #: Stage-1 candidate stream (see :mod:`repro.tuner.strategies`):
    #: ``exhaustive`` (the paper's enumerative sweep), ``random``,
    #: ``annealing``, ``pso``, or ``surrogate``.
    strategy: str = "exhaustive"
    #: Warm-start the strategy from the tuned winners of the device's
    #: nearest catalogued neighbours (cross-device transfer tuning).
    transfer: bool = False


@dataclass
class TuningStats:
    """Candidate accounting (the paper's failure categories) plus the
    pipeline's observability counters: cache traffic, checkpointing,
    and per-stage wall-clock timings."""

    generated: int = 0
    measured: int = 0
    failed_generation: int = 0
    failed_build: int = 0
    failed_launch: int = 0
    failed_validation: int = 0
    #: Candidates whose evaluation exhausted the transient-retry budget.
    failed_transient: int = 0
    refined: int = 0
    #: Candidates rejected by the static verifier before any evaluation
    #: (only non-zero with the gate enabled; mirrors per-rule as the
    #: labeled ``tuner_static_rejects_total{rule=...}`` series).
    static_rejects: int = 0
    #: Static rejections by rule id, e.g. {"device.occupancy": 12}.
    static_rejects_by_rule: Dict[str, int] = field(default_factory=dict)
    #: Resilience-layer accounting (all zero without fault injection).
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    #: Absorbed fault events by class, e.g. {"build": 12, "timing": 3}.
    faults_by_class: Dict[str, int] = field(default_factory=dict)
    #: Evaluations answered by the measurement cache / sent to workers.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Stage-1 candidates skipped because a checkpoint already covered them.
    resumed: int = 0
    #: Checkpoint files written during this search.
    checkpoints: int = 0
    #: Which stage-1 strategy drove the search (TuningConfig.strategy).
    strategy: str = "exhaustive"
    #: Candidates the strategy proposed / model refits it performed.
    strategy_proposals: int = 0
    strategy_refits: int = 0
    #: Warm-start candidates injected by cross-device transfer tuning.
    strategy_transfer_seeds: int = 0
    #: Why the strategy ended stage 1 before its budget ("" otherwise).
    strategy_early_stop: str = ""
    #: Surrogate feature importance folded into the sensitivity-report
    #: families (empty for model-free strategies).
    strategy_importance: Dict[str, float] = field(default_factory=dict)
    elapsed_s: float = 0.0
    stage1_s: float = 0.0
    refine_s: float = 0.0
    stage2_s: float = 0.0
    verify_s: float = 0.0

    #: Monotonic integer fields mirrored into a bound metrics registry;
    #: ``faults_by_class`` mirrors as a labeled series (see
    #: :meth:`bind_registry`).
    COUNTER_FIELDS = (
        "generated", "measured", "failed_generation", "failed_build",
        "failed_launch", "failed_validation", "failed_transient", "refined",
        "retries", "timeouts", "quarantined", "cache_hits", "cache_misses",
        "resumed", "checkpoints", "strategy_proposals", "strategy_refits",
        "strategy_transfer_seeds",
    )

    def bind_registry(self, registry, prefix: str = "tuner") -> None:
        """Mirror the counters into an obs metrics registry.

        The dataclass stays the source of truth and its API is unchanged
        — plain ``stats.cache_hits += 1`` assignments write through to
        ``<prefix>_<field>_total`` counters, so the search code and the
        Prometheus exporter always agree.
        """
        mirrors = {
            name: registry.counter(
                f"{prefix}_{name}_total",
                f"TuningStats.{name} (see docs/tuning_pipeline.md).",
            )
            for name in self.COUNTER_FIELDS
        }
        fault_mirror = registry.counter(
            f"{prefix}_faults_total",
            "Absorbed fault events by class.",
            labelnames=("kind",),
        )
        static_mirror = registry.counter(
            f"{prefix}_static_rejects_total",
            "Candidates rejected by the static verifier, by rule id.",
            labelnames=("rule",),
        )
        # Registry counters are cumulative across instances (Prometheus
        # semantics): each bind contributes on top of whatever earlier
        # searches already mirrored, via a per-field base offset.
        bases = {name: mirrors[name].value for name in self.COUNTER_FIELDS}
        for name, mirror in mirrors.items():
            mirror.set_total(bases[name] + getattr(self, name))
        for kind, count in self.faults_by_class.items():
            child = fault_mirror.labels(kind=kind)
            child.set_total(child.value + count)
        for rule, count in self.static_rejects_by_rule.items():
            child = static_mirror.labels(rule=rule)
            child.set_total(child.value + count)
        self.__dict__["_mirrors"] = mirrors
        self.__dict__["_mirror_bases"] = bases
        self.__dict__["_fault_mirror"] = fault_mirror
        self.__dict__["_static_mirror"] = static_mirror

    def __setattr__(self, name: str, value) -> None:
        super().__setattr__(name, value)
        mirrors = self.__dict__.get("_mirrors")
        if mirrors is not None and name in mirrors:
            mirrors[name].set_total(self.__dict__["_mirror_bases"][name] + value)

    def count_fault(self, kind: str) -> None:
        """Record one absorbed fault (keeps the labeled mirror in step —
        in-place dict mutation would bypass ``__setattr__``)."""
        self.faults_by_class[kind] = self.faults_by_class.get(kind, 0) + 1
        fault_mirror = self.__dict__.get("_fault_mirror")
        if fault_mirror is not None:
            fault_mirror.labels(kind=kind).inc()

    def count_static_reject(self, rule: str) -> None:
        """Record one statically rejected candidate under its rule id."""
        self.static_rejects += 1
        self.static_rejects_by_rule[rule] = (
            self.static_rejects_by_rule.get(rule, 0) + 1
        )
        static_mirror = self.__dict__.get("_static_mirror")
        if static_mirror is not None:
            static_mirror.labels(rule=rule).inc()

    @property
    def pruned(self) -> int:
        """Candidates discarded before scoring (all failure categories,
        whether established statically or by a failed evaluation)."""
        return (
            self.failed_generation + self.failed_build + self.failed_launch
            + self.failed_transient + self.static_rejects
        )

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def candidates_per_s(self) -> float:
        return self.generated / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        d = {k: v for k, v in self.__dict__.items() if not k.startswith("_")}
        d["pruned"] = self.pruned
        d["cache_hit_rate"] = self.cache_hit_rate
        d["candidates_per_s"] = self.candidates_per_s
        return d

    def comparable_dict(self) -> Dict[str, float]:
        """The stats minus wall-clock-dependent fields.

        Two searches that explored the identical candidate sequence have
        equal comparable dicts regardless of worker count or machine
        speed — the determinism tests rely on this.
        """
        d = {k: v for k, v in self.__dict__.items() if not k.startswith("_")}
        for key in _WALL_CLOCK_FIELDS:
            d.pop(key, None)
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, float]) -> "TuningStats":
        names = {f for f in cls().__dict__}
        kwargs = {k: v for k, v in d.items() if k in names}
        if "faults_by_class" in kwargs:
            kwargs["faults_by_class"] = dict(kwargs["faults_by_class"])
        if "static_rejects_by_rule" in kwargs:
            kwargs["static_rejects_by_rule"] = dict(kwargs["static_rejects_by_rule"])
        if "strategy_importance" in kwargs:
            kwargs["strategy_importance"] = dict(kwargs["strategy_importance"])
        return cls(**kwargs)


@dataclass(frozen=True)
class MeasuredKernel:
    """One kernel's measurement at one problem size."""

    params: KernelParams
    size: int
    gflops: float

    def __repr__(self) -> str:
        return f"<MeasuredKernel {self.gflops:.1f} GF/s @N={self.size} {self.params.summary()}>"

    def to_dict(self) -> Dict:
        return {
            "params": self.params.to_dict(),
            "size": self.size,
            "gflops": self.gflops,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "MeasuredKernel":
        return cls(
            params=KernelParams.from_dict(d["params"]),
            size=int(d["size"]),
            gflops=float(d["gflops"]),
        )


@dataclass
class TuningResult:
    """Outcome of a staged search."""

    device: str
    precision: str
    best: MeasuredKernel
    #: Finalists after the size sweep, best first (paper's "fastest 50").
    finalists: List[MeasuredKernel]
    #: Per-size measurements of the best kernel.
    best_series: List[MeasuredKernel]
    stats: TuningStats
    config: TuningConfig

    @property
    def best_gflops(self) -> float:
        return self.best.gflops

    def efficiency(self, spec: DeviceSpec) -> float:
        return self.best.gflops / spec.peak_gflops(self.precision)


class SearchEngine:
    """The heuristic search engine of paper Section III-F.

    Keyword-only arguments extend the paper's procedure:

    ``cache``
        A :class:`MeasurementCache` consulted before every evaluation
        and updated after every fresh one.
    ``workers`` / ``executor_kind``
        Fan candidate batches out over this many workers (``"thread"``
        or ``"process"`` pools); results keep enumeration order, so the
        selected winner is independent of the worker count.
    ``checkpoint_path`` / ``checkpoint_every`` / ``resume``
        Write progress checkpoints at least every ``checkpoint_every``
        stage-1 candidates (and per stage-2 finalist); with ``resume``,
        a matching checkpoint restarts the search where it stopped.
    ``injector`` / ``resilience``
        A :class:`repro.clsim.faults.FaultInjector` chaos plan and the
        :class:`~repro.tuner.resilience.ResilienceConfig` that absorbs
        it: transient faults retried with backoff, hung measurements
        killed by a watchdog, timings aggregated median-of-k, and
        persistently flaky candidates quarantined.
    """

    def __init__(
        self,
        device: Union[str, DeviceSpec],
        precision: str,
        config: Optional[TuningConfig] = None,
        restrictions: Optional[SpaceRestrictions] = None,
        *,
        cache: Optional[MeasurementCache] = None,
        workers: int = 1,
        executor_kind: str = "thread",
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 500,
        resume: bool = False,
        injector=None,
        resilience: Optional[ResilienceConfig] = None,
        obs=None,
        static_gate: bool = True,
    ):
        self.spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
        if precision not in ("s", "d"):
            raise TuningError(f"precision must be 's' or 'd', got {precision!r}")
        self.precision = precision
        self.config = config or TuningConfig()
        self.restrictions = restrictions or SpaceRestrictions()
        #: Telemetry (see :mod:`repro.obs`): per-stage spans plus the
        #: metrics registry the stats mirror into.  Disabled by default.
        self.obs = obs if obs is not None else NULL_OBS
        self.stats = TuningStats()
        if self.obs.enabled:
            self.stats.bind_registry(self.obs.metrics)
        self.cache = cache
        self.workers = max(1, int(workers))
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.resume = resume
        self.injector = injector
        self.resilience = resilience
        if injector is not None and resilience is None:
            self.resilience = ResilienceConfig()
        #: Static pre-measurement gate (see :mod:`repro.analyze`): prunes
        #: candidates the constraint prover shows the simulator would
        #: fail, before spending an evaluation on them.  The gate proves
        #: exactly what ``measure_once`` checks, so disabling it changes
        #: only the work done, never the winner.
        self.static_gate = bool(static_gate)
        self._verifier = StaticVerifier(self.spec) if self.static_gate else None
        #: Candidates demoted for flaking out (exhausted retry budgets).
        self.quarantine = Quarantine()
        #: Testing/abort hook: raise :class:`SearchInterrupted` (after
        #: flushing a checkpoint) once this many stage-1 candidates have
        #: been consumed.  ``None`` disables the hook.
        self.abort_after: Optional[int] = None
        self._evaluator = CandidateEvaluator(
            self.spec,
            noise=self.config.measurement_noise,
            workers=self.workers,
            kind=executor_kind,
            injector=injector,
            resilience=self.resilience,
        )

    # ------------------------------------------------------------------
    def base_size(self, params: KernelParams) -> int:
        """Stage-1 measurement size (the paper's LCM formula)."""
        base = self.config.base_size_gpu if self.spec.is_gpu else self.config.base_size_cpu
        lcm = params.lcm
        n = (base // lcm) * lcm
        n = max(n, lcm, params.algorithm.min_k_iterations * params.kwg)
        return n

    def base_shape(self, params: KernelParams) -> Tuple[int, int, int]:
        """Stage-1 measurement shape: square unless the config targets a
        specific (M, N, K) aspect."""
        if self.config.problem_shape is None:
            n = self.base_size(params)
            return n, n, n
        return self._round_shape(params, self.config.problem_shape)

    def _round_shape(
        self, params: KernelParams, shape: Tuple[int, int, int]
    ) -> Tuple[int, int, int]:
        M, N, K = shape
        Mr = max(params.mwg, (M // params.mwg) * params.mwg)
        Nr = max(params.nwg, (N // params.nwg) * params.nwg)
        Kr = max(
            params.algorithm.min_k_iterations * params.kwg,
            (K // params.kwg) * params.kwg,
        )
        return Mr, Nr, Kr

    def sweep_sizes(self, params: KernelParams) -> List[int]:
        """Stage-2 sizes: multiples of the LCM near the sweep targets."""
        lcm = params.lcm
        min_n = max(lcm, params.algorithm.min_k_iterations * params.kwg)
        sizes = []
        for target in self.config.sweep_targets:
            if target > self.config.max_sweep_size:
                continue
            n = max(min_n, (target // lcm) * lcm)
            if n <= self.config.max_sweep_size and n not in sizes:
                sizes.append(n)
        return sizes or [min_n]

    def measure(self, params: KernelParams, size: int) -> float:
        """One simulated square-problem measurement, in GFlop/s."""
        return self.measure_shape(params, size, size, size)

    def measure_shape(
        self, params: KernelParams, M: int, N: int, K: int
    ) -> float:
        """One simulated kernel measurement, in GFlop/s.

        Performs the same build/launch validation the simulator's
        compiler and queue would: structural plan verification, device
        resource checks, and execution quirks.  Raises the corresponding
        error for the stats bookkeeping.
        """
        return measure_once(
            self.spec, params, M, N, K, noise=self.config.measurement_noise
        )

    def verify(
        self, params: KernelParams, rng: np.random.Generator, attempt: int = 0
    ) -> None:
        """Functionally test one kernel against the reference GEMM.

        Executes the kernel through the full simulator stack (source ->
        program -> buffers -> ND-range) at the smallest launchable size
        and raises :class:`ValidationError` on numerical mismatch.  Under
        fault injection the whole stack sees the engine's injector, so a
        verify can absorb (and the retry loop re-roll) build/launch/
        device-lost faults — ``attempt`` salts every decision because a
        retry re-runs the entire phase, not a single keyed site.
        """
        import repro.clsim as cl
        from repro.codegen.emitter import emit_kernel_source
        from repro.codegen.layouts import pack_matrix
        from repro.gemm.reference import relative_error

        n = max(params.lcm, params.algorithm.min_k_iterations * params.kwg)
        dtype = np.float64 if params.precision == "d" else np.float32
        a = rng.standard_normal((n, n)).astype(dtype)  # this is A^T (K x M)
        b = rng.standard_normal((n, n)).astype(dtype)
        c = rng.standard_normal((n, n)).astype(dtype)
        alpha, beta = dtype(1.5), dtype(-0.5)

        device = cl.Device(self.spec)
        injector = None
        if self.injector is not None:
            injector = self.injector.salted(f"verify|{attempt}")
        ctx = cl.Context([device], fault_injector=injector)
        queue = cl.CommandQueue(ctx, device, measurement_noise=False)
        if params.use_images:
            # Image kernels read operands as 2-D textures.
            abuf = cl.Image2D(ctx, width=n, height=n, dtype=dtype, hostbuf=a)
            bbuf = cl.Image2D(ctx, width=n, height=n, dtype=dtype, hostbuf=b)
        else:
            a_flat = pack_matrix(a, params.layout_a, params.kwg, params.mwg)
            b_flat = pack_matrix(b, params.layout_b, params.kwg, params.nwg)
            abuf = cl.Buffer(ctx, hostbuf=a_flat)
            bbuf = cl.Buffer(ctx, hostbuf=b_flat)
        cbuf = cl.Buffer(ctx, hostbuf=c.copy())
        program = cl.Program(ctx, emit_kernel_source(params)).build()
        kernel = program.get_kernel("gemm_atb")
        kernel.set_args(n, n, n, float(alpha), float(beta), abuf, bbuf, cbuf)
        queue.launch(kernel, kernel.expected_global_size(), kernel.plan.local_size())
        result = cbuf.read().reshape(n, n)
        reference = alpha * (a.T @ b) + beta * c
        tolerance = 1e-10 if params.precision == "d" else 1e-4
        error = relative_error(result, reference)
        # NaN-corrupted output gives a NaN error, which every ordered
        # comparison lets through: test for "within tolerance", not "over".
        if not (error <= tolerance):
            raise ValidationError(
                f"kernel produced wrong results (relative error {error:.2e}): "
                f"{params.summary()}"
            )

    def _verify_resilient(
        self, params: KernelParams, rng: np.random.Generator
    ) -> None:
        """Run :meth:`verify` under the retry/watchdog policies.

        Without a resilience config this is a plain verify (bit-identical
        to the non-resilient engine).  With one, transient faults and
        watchdog timeouts are retried with backoff; the exhausted failure
        propagates for the caller to quarantine.
        """
        if self.resilience is None:
            self.verify(params, rng)
            return

        def one_attempt(attempt: int) -> None:
            if attempt:
                self.stats.retries += 1
            call_with_timeout(
                lambda: self.verify(params, rng, attempt=attempt),
                self.resilience.measure_timeout_s,
            )

        def on_fault(kind: str) -> None:
            self.stats.count_fault(kind)
            if kind == "timeout":
                self.stats.timeouts += 1

        run_with_retry(one_attempt, self.resilience, on_fault=on_fault)

    # -- batched evaluation with cache layering --------------------------
    def _evaluate_batch(self, tasks: Sequence[EvalTask]) -> List[EvalOutcome]:
        """Evaluate a batch: cache lookups first, workers for the misses.

        Outcomes come back in task order; fresh measurements (successes
        and categorised failures alike) are written back to the cache so
        a warm re-run performs zero re-measurements.
        """
        outcomes: List[Optional[EvalOutcome]] = [None] * len(tasks)
        missing: List[int] = []
        if self.cache is not None:
            noise = self.config.measurement_noise
            for i, task in enumerate(tasks):
                M, N, K = task.shape
                hit = self.cache.get(
                    self.spec.codename, self.precision, task.params, M, N, K, noise
                )
                if hit is not None:
                    self.stats.cache_hits += 1
                    outcomes[i] = EvalOutcome(
                        task.params, task.shape,
                        gflops=hit.gflops, failure=hit.failure, cached=True,
                        build_log=hit.build_log,
                    )
                else:
                    self.stats.cache_misses += 1
                    missing.append(i)
        else:
            missing = list(range(len(tasks)))
        fresh = self._evaluator.evaluate([tasks[i] for i in missing])
        for i, outcome in zip(missing, fresh):
            outcomes[i] = outcome
            if self.cache is not None and self._cacheable(outcome):
                M, N, K = outcome.shape
                self.cache.put(
                    self.spec.codename, self.precision, outcome.params, M, N, K,
                    CachedMeasurement(
                        gflops=outcome.gflops, failure=outcome.failure,
                        build_log=outcome.build_log,
                        # Carrying the full vector turns the cache into
                        # surrogate training data for future runs.
                        params=outcome.params.to_dict(),
                    ),
                    self.config.measurement_noise,
                )
        return outcomes  # type: ignore[return-value]

    @staticmethod
    def _cacheable(outcome: EvalOutcome) -> bool:
        """Whether an outcome is a durable property of the kernel.

        Exhausted-retry/timeout failures and plan-injected failures are
        artifacts of the fault plan, not the kernel — persisting them
        would poison warm runs under a different (or no) plan.
        """
        if outcome.injected:
            return False
        return outcome.failure not in ("transient", "timeout")

    def _tally_failure(self, outcome: EvalOutcome) -> None:
        if outcome.failure == "generation":
            self.stats.failed_generation += 1
        elif outcome.failure == "build":
            self.stats.failed_build += 1
        elif outcome.failure == "launch":
            self.stats.failed_launch += 1
        elif outcome.failure in ("transient", "timeout"):
            self.stats.failed_transient += 1

    def _tally_resilience(self, outcome: EvalOutcome) -> None:
        """Fold one outcome's retry/fault telemetry into the stats and
        demote candidates that exhausted their retry budget."""
        self.stats.retries += outcome.retries
        for kind in outcome.faults:
            self.stats.count_fault(kind)
            if kind == "timeout":
                self.stats.timeouts += 1
        if outcome.failure in ("transient", "timeout"):
            if self.quarantine.demote(
                params_digest(outcome.params),
                f"exhausted retries ({outcome.failure}: {outcome.faults})",
            ):
                self.stats.quarantined += 1

    def _allowed(self, params: KernelParams) -> bool:
        return self.quarantine.allows(params_digest(params))

    def _gate_batch(self, batch: List[KernelParams]) -> List[KernelParams]:
        """Drop candidates the static verifier proves would fail.

        Rejected candidates still count as ``generated`` (the stream
        position is what checkpoints record), but are tallied under
        their violated rule instead of consuming an evaluation.
        """
        if self._verifier is None:
            return batch
        admitted: List[KernelParams] = []
        for params in batch:
            rule = self._verifier.gate(params)
            if rule is None:
                admitted.append(params)
            else:
                self.stats.generated += 1
                self.stats.count_static_reject(rule)
        return admitted

    # -- checkpointing ---------------------------------------------------
    def _fingerprint(self) -> str:
        """Digest identifying a search: device, precision, config, space,
        and generator version.  A checkpoint only resumes a search with
        the same fingerprint."""
        from repro.codegen.emitter import GENERATOR_VERSION

        payload = json.dumps(
            {
                "device": self.spec.codename,
                "precision": self.precision,
                "config": asdict(self.config),
                "restrictions": asdict(self.restrictions),
                "generator": GENERATOR_VERSION,
                # A checkpoint taken under one fault plan / resilience
                # policy must not resume a search under another.
                "faults": (
                    self.injector.plan.digest()
                    if self.injector is not None else None
                ),
                "resilience": (
                    self.resilience.to_dict()
                    if self.resilience is not None else None
                ),
                # Gated and ungated runs consume the enumeration stream
                # identically but accrue different stats; keep their
                # checkpoints apart.
                "static_gate": self.static_gate,
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.blake2b(payload.encode(), digest_size=12).hexdigest()

    def _write_checkpoint(self, stage: str, extra: Dict) -> None:
        if not self.checkpoint_path:
            return
        payload = {
            "format": CHECKPOINT_FORMAT,
            "fingerprint": self._fingerprint(),
            "stage": stage,
            "stats": self.stats.as_dict(),
        }
        payload.update(extra)
        # Crash-safe: tmp + fsync + atomic rename + checksum.  A SIGKILL
        # at any instant leaves either the previous checkpoint or the new
        # one — never a torn file.
        dump_json_atomic(self.checkpoint_path, payload)
        self.stats.checkpoints += 1

    def _load_checkpoint(self) -> Optional[Dict]:
        if not (self.resume and self.checkpoint_path):
            return None
        # Truncated / zero-byte / corrupt checkpoints quarantine to
        # ``<path>.corrupt`` and the search restarts from scratch rather
        # than crashing.
        payload = load_json_checked(self.checkpoint_path)
        if payload is None:
            return None
        if payload.get("format") != CHECKPOINT_FORMAT:
            return None
        if payload.get("fingerprint") != self._fingerprint():
            return None  # different search (config/space/generator changed)
        return payload

    def _discard_checkpoint(self) -> None:
        if self.checkpoint_path and os.path.exists(self.checkpoint_path):
            os.remove(self.checkpoint_path)

    def _restore_stats(self, checkpoint: Dict) -> None:
        self.stats = TuningStats.from_dict(checkpoint.get("stats", {}))
        if self.obs.enabled:
            self.stats.bind_registry(self.obs.metrics)

    # ------------------------------------------------------------------
    def _make_strategy(self):
        """Build the configured stage-1 strategy (see
        :mod:`repro.tuner.strategies`), wiring in transfer warm-start
        candidates and warm-cache prior rows."""
        from repro.codegen.space import seed_candidates
        from repro.tuner.strategies import ParamSpace, make_strategy, transfer_seeds

        space = ParamSpace(self.spec, self.precision, self.restrictions)
        name = self.config.strategy
        budget = self.config.budget if self.config.budget is not None else 10**9
        kwargs: Dict = {"seed": self.config.seed, "budget": budget}
        if name == "exhaustive":
            # The extracted enumerative sweep carries its own seed
            # handling (curated seeds stream first); warm-start and
            # prior would be redundant.
            kwargs.update(
                per_blocking=self.config.per_blocking,
                include_seeds=self.config.include_seeds,
            )
        else:
            warm: List[KernelParams] = []
            seen = set()
            if self.config.transfer:
                for p in transfer_seeds(space):
                    if p.cache_key() not in seen:
                        seen.add(p.cache_key())
                        warm.append(p)
            self.stats.strategy_transfer_seeds = len(warm)
            if self.config.include_seeds:
                for p in seed_candidates(self.spec, self.precision):
                    if p.cache_key() not in seen:
                        seen.add(p.cache_key())
                        warm.append(p)
            kwargs["warm_start"] = warm
            if self.cache is not None:
                kwargs["prior"] = self.cache.training_rows(
                    self.spec.codename, self.precision,
                    self.config.measurement_noise,
                )
        strategy = make_strategy(name, space, **kwargs)
        self.stats.strategy = strategy.name
        return strategy

    def _stage1(
        self,
        progress: Optional[Callable[[int, MeasuredKernel], None]],
        checkpoint: Optional[Dict],
    ) -> List[MeasuredKernel]:
        from repro.tuner.strategies.base import Observation

        scored: List[MeasuredKernel] = []
        consumed = 0
        strategy = self._make_strategy()
        if checkpoint is not None:
            self._restore_stats(checkpoint)
            scored = [MeasuredKernel.from_dict(d) for d in checkpoint["scored"]]
            consumed = int(checkpoint["consumed"])
            self.stats.resumed += consumed
            state = checkpoint.get("strategy_state")
            if state is not None:
                strategy.load_state_dict(state)
            else:
                # Pre-strategy checkpoint: only the enumerative stream
                # can reconstruct its position from the count alone.
                strategy.load_state_dict({"proposed": consumed})

        def _flush(stage1_extra: Dict) -> None:
            stage1_extra.update(
                consumed=consumed,
                scored=[mk.to_dict() for mk in scored],
                strategy_state=strategy.state_dict(),
            )
            self._write_checkpoint("stage1", stage1_extra)

        since_checkpoint = 0
        while True:
            batch = strategy.ask(_CHUNK)
            if not batch:
                break
            observations: Dict[Tuple, Observation] = {}
            admitted: List[KernelParams] = []
            for params in batch:
                rule = self._verifier.gate(params) if self._verifier else None
                if rule is None:
                    admitted.append(params)
                else:
                    self.stats.generated += 1
                    self.stats.count_static_reject(rule)
                    observations[params.cache_key()] = Observation(
                        params, failure=f"static:{rule}"
                    )
            tasks = [EvalTask(p, self.base_shape(p)) for p in admitted]
            for outcome in self._evaluate_batch(tasks):
                self.stats.generated += 1
                self._tally_resilience(outcome)
                if not outcome.ok:
                    self._tally_failure(outcome)
                    observations[outcome.params.cache_key()] = Observation(
                        outcome.params, failure=outcome.failure
                    )
                    continue
                self.stats.measured += 1
                observations[outcome.params.cache_key()] = Observation(
                    outcome.params, gflops=outcome.gflops
                )
                if not self._allowed(outcome.params):
                    continue
                mk = MeasuredKernel(outcome.params, max(outcome.shape), outcome.gflops)
                scored.append(mk)
                if progress is not None:
                    progress(self.stats.measured, mk)
            strategy.tell([observations[p.cache_key()] for p in batch])
            consumed += len(batch)
            since_checkpoint += len(batch)
            self.stats.strategy_proposals = strategy.proposed
            self.stats.strategy_refits = strategy.refits
            if self.checkpoint_path and since_checkpoint >= self.checkpoint_every:
                _flush({})
                since_checkpoint = 0
            if self.abort_after is not None and consumed >= self.abort_after:
                _flush({})
                raise SearchInterrupted(
                    f"stage-1 search aborted after {consumed} candidates"
                )
        self.stats.strategy_early_stop = strategy.early_stop_reason
        importance = getattr(strategy, "family_importance", None)
        if importance is not None:
            self.stats.strategy_importance = importance()
        # Retroactive exclusion: a candidate quarantined by a later batch
        # must not survive on the strength of an earlier clean score.
        scored = [mk for mk in scored if self._allowed(mk.params)]
        scored.sort(key=lambda mk: mk.gflops, reverse=True)
        return scored[: self.config.top_k]

    def _refine(self, finalists: List[MeasuredKernel]) -> List[MeasuredKernel]:
        """Hill-climb the leading candidates (stage 1.5).

        The climbed variants must still lie inside the configured space
        restrictions, so ablation searches stay honest.  Each round's
        neighbourhood is evaluated as one batch (cache- and
        worker-aware); the round's best improvement becomes the next
        climb point, exactly as in the serial formulation.
        """
        from repro.tuner.refine import admissible_neighbors

        refined: Dict[Tuple, MeasuredKernel] = {
            mk.params.cache_key(): mk for mk in finalists
        }
        for start in finalists[: self.config.refine_top]:
            current = start
            for _ in range(self.config.refine_rounds):
                candidates = [
                    c
                    for c in admissible_neighbors(
                        current.params, self.spec, self.restrictions
                    )
                    if c.cache_key() not in refined
                ]
                tasks = [
                    EvalTask(c, self.base_shape(c))
                    for c in self._gate_batch(candidates)
                ]
                improved: Optional[MeasuredKernel] = None
                for outcome in self._evaluate_batch(tasks):
                    self.stats.generated += 1
                    self._tally_resilience(outcome)
                    if not outcome.ok:
                        self._tally_failure(outcome)
                        continue
                    self.stats.measured += 1
                    if not self._allowed(outcome.params):
                        continue
                    self.stats.refined += 1
                    mk = MeasuredKernel(
                        outcome.params, max(outcome.shape), outcome.gflops
                    )
                    refined[outcome.params.cache_key()] = mk
                    if improved is None or mk.gflops > improved.gflops:
                        improved = mk
                if improved is None or improved.gflops <= current.gflops:
                    break
                current = improved
        out = [mk for mk in refined.values() if self._allowed(mk.params)]
        out.sort(key=lambda mk: mk.gflops, reverse=True)
        return out[: self.config.top_k]

    def _finalist_sweep(self, params: KernelParams) -> List[Tuple[int, int, int]]:
        shape = self.config.problem_shape
        if shape is None:
            return [(n, n, n) for n in self.sweep_sizes(params)]
        sweep: List[Tuple[int, int, int]] = []
        for factor in (0.5, 0.75, 1.0, 1.5, 2.0):
            scaled = self._round_shape(
                params, tuple(max(1, int(dim * factor)) for dim in shape)
            )
            if scaled not in sweep:
                sweep.append(scaled)
        return sweep

    def _stage2(
        self,
        finalists: Sequence[MeasuredKernel],
        checkpoint: Optional[Dict],
    ) -> List[Tuple[MeasuredKernel, List[MeasuredKernel]]]:
        #: Per-finalist series, in finalist order (empty list = finalist
        #: failed every sweep point) — the unit of stage-2 checkpointing.
        recorded: List[List[MeasuredKernel]] = []
        if checkpoint is not None:
            recorded = [
                [MeasuredKernel.from_dict(d) for d in series]
                for series in checkpoint["swept"]
            ]
        for mk in finalists[len(recorded):]:
            tasks = [EvalTask(mk.params, s) for s in self._finalist_sweep(mk.params)]
            series = []
            for oc in self._evaluate_batch(tasks):
                self._tally_resilience(oc)
                if oc.ok:
                    series.append(MeasuredKernel(oc.params, max(oc.shape), oc.gflops))
            recorded.append(series)
            if self.checkpoint_path:
                self._write_checkpoint(
                    "stage2",
                    {
                        "finalists": [f.to_dict() for f in finalists],
                        "swept": [[m.to_dict() for m in s] for s in recorded],
                    },
                )
        # A finalist that started flaking during the sweep is demoted even
        # though its stage-1 score survived — not trusted, not ranked.
        swept = [
            (max(series, key=lambda m: m.gflops), series)
            for series in recorded
            if series and self._allowed(series[0].params)
        ]
        swept.sort(key=lambda pair: pair[0].gflops, reverse=True)
        return swept

    def run(
        self, progress: Optional[Callable[[int, MeasuredKernel], None]] = None
    ) -> TuningResult:
        """Execute the three-stage search and return the winner."""
        t0 = time.perf_counter()
        try:
            return self._run(progress, t0)
        finally:
            self._evaluator.close()

    def _run(
        self, progress: Optional[Callable[[int, MeasuredKernel], None]], t0: float
    ) -> TuningResult:
        with self.obs.trace("tune", device=self.spec.codename,
                            precision=self.precision) as root:
            result = self._run_traced(progress, t0)
            root.set(best_gflops=round(result.best.gflops, 6),
                     finalists=len(result.finalists))
        return result

    def _run_traced(
        self, progress: Optional[Callable[[int, MeasuredKernel], None]], t0: float
    ) -> TuningResult:
        checkpoint = self._load_checkpoint()
        stage = checkpoint["stage"] if checkpoint else None
        stage2_checkpoint: Optional[Dict] = None
        if stage in (None, "stage1"):
            t = time.perf_counter()
            with self.obs.span("tune.stage1") as s1:
                finalists = self._stage1(progress, checkpoint)
                s1.set(finalists=len(finalists),
                       generated=self.stats.generated,
                       cache_hits=self.stats.cache_hits)
            self.stats.stage1_s += time.perf_counter() - t
            if not finalists:
                raise TuningError(
                    f"no viable kernel found for {self.precision}gemm on "
                    f"{self.spec.codename} (stats: {self.stats.as_dict()})"
                )
            if self.config.refine_rounds > 0:
                t = time.perf_counter()
                with self.obs.span("tune.refine") as sr:
                    finalists = self._refine(list(finalists))
                    sr.set(refined=self.stats.refined)
                self.stats.refine_s += time.perf_counter() - t
            self._write_checkpoint(
                "refined", {"finalists": [mk.to_dict() for mk in finalists]}
            )
        else:
            self._restore_stats(checkpoint)
            self.stats.resumed += self.stats.generated
            finalists = [MeasuredKernel.from_dict(d) for d in checkpoint["finalists"]]
            if stage == "stage2":
                stage2_checkpoint = checkpoint

        t = time.perf_counter()
        with self.obs.span("tune.stage2", finalists=len(finalists)):
            swept = self._stage2(finalists, stage2_checkpoint)
        self.stats.stage2_s += time.perf_counter() - t
        if not swept:
            raise TuningError("all finalists failed the size sweep")

        t = time.perf_counter()
        rng = np.random.default_rng(self.config.seed)
        chosen: Optional[Tuple[MeasuredKernel, List[MeasuredKernel]]] = None
        with self.obs.span("tune.verify") as sv:
            for rank, (best_point, series) in enumerate(swept):
                if rank < self.config.verify_finalists:
                    try:
                        self._verify_resilient(best_point.params, rng)
                    except ValidationError:
                        self.stats.failed_validation += 1
                        continue
                    except (TransientError, MeasurementTimeout):
                        # The finalist flaked through the whole retry budget
                        # during verification: demote it and fall through to
                        # the next-ranked finalist.
                        self.stats.failed_transient += 1
                        if self.quarantine.demote(
                            params_digest(best_point.params),
                            "exhausted retries during finalist verification",
                        ):
                            self.stats.quarantined += 1
                        continue
                chosen = (best_point, series)
                sv.set(chosen_rank=rank)
                break
        self.stats.verify_s += time.perf_counter() - t
        if chosen is None:
            raise TuningError("every verified finalist failed numerical testing")

        self.stats.elapsed_s += time.perf_counter() - t0
        self._discard_checkpoint()
        return TuningResult(
            device=self.spec.codename,
            precision=self.precision,
            best=chosen[0],
            finalists=[bp for bp, _ in swept],
            best_series=chosen[1],
            stats=self.stats,
            config=self.config,
        )


def tune(
    device: Union[str, DeviceSpec],
    precision: str,
    config: Optional[TuningConfig] = None,
    restrictions: Optional[SpaceRestrictions] = None,
    progress: Optional[Callable[[int, MeasuredKernel], None]] = None,
    **engine_kwargs,
) -> TuningResult:
    """One-call staged search (see :class:`SearchEngine`).

    Keyword arguments beyond the paper's knobs — ``cache``, ``workers``,
    ``checkpoint_path``, ``resume``, ... — pass through to
    :class:`SearchEngine`.
    """
    return SearchEngine(
        device, precision, config, restrictions, **engine_kwargs
    ).run(progress)
