"""Resilience policies for tuning under unreliable execution.

The paper's search quietly survives real-device failures ("kernels which
are failed in code generation, compilation or testing are not counted",
Section III-F); production tuners like CLTune treat per-kernel failures
as first-class outcomes.  This module supplies the policies that let
:class:`~repro.tuner.search.SearchEngine` keep selecting *correct*
winners when the runtime misbehaves:

* **retry with backoff** — transient faults (flaky builds, launch
  hiccups, device resets) are retried up to a budget; every retry
  re-rolls the (deterministic) fault decision with a new attempt number;
* **watchdog timeout** — a measurement that hangs past a wall-clock
  budget is killed and counted as a transient failure
  (:class:`~repro.errors.MeasurementTimeout`);
* **robust timing aggregation** — median-of-k with relative-deviation
  outlier rejection replaces raw best-of-run, so an injected (or real)
  timing spike cannot promote or demote a candidate;
* **quarantine** — a candidate that exhausts its retry budget is demoted:
  excluded from scoring and from the finalist ranking even if an earlier
  stage measured it successfully.

All policies are order-independent: retries happen *inside* one
candidate's evaluation and quarantine is keyed by the candidate's digest,
so serial and parallel searches under the same fault plan make identical
decisions.
"""

from __future__ import annotations

import statistics
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import MeasurementTimeout, TransientError

__all__ = [
    "ResilienceConfig",
    "call_with_timeout",
    "robust_aggregate",
    "run_with_retry",
    "Quarantine",
]

T = TypeVar("T")


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the failure-handling layer.

    The defaults keep a fault-free search's results bit-identical to a
    search without resilience: clean measurements are deterministic, so
    the median of ``samples`` equal values is the value itself, and no
    retry or timeout path is ever taken.
    """

    #: Additional attempts after the first for transient faults.
    max_retries: int = 2
    #: Sleep before the first retry, in seconds (kept tiny: the simulated
    #: runtime "recovers" instantly; real deployments raise this).
    backoff_s: float = 0.005
    #: Multiplier on the sleep per further retry.
    backoff_factor: float = 2.0
    #: Wall-clock watchdog per measurement; ``None`` disables the watchdog.
    measure_timeout_s: Optional[float] = None
    #: Timing samples per measurement (median-of-k).  1 = single-shot.
    samples: int = 3
    #: Samples deviating from the median by more than this fraction are
    #: rejected as outliers before averaging.
    outlier_rel: float = 0.25

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return self.backoff_s * self.backoff_factor ** max(0, attempt - 1)

    def to_dict(self) -> Dict:
        return {
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "backoff_factor": self.backoff_factor,
            "measure_timeout_s": self.measure_timeout_s,
            "samples": self.samples,
            "outlier_rel": self.outlier_rel,
        }


def call_with_timeout(
    fn: Callable[[], T], timeout_s: Optional[float]
) -> T:
    """Run ``fn`` under a wall-clock watchdog.

    The callable runs in a daemon thread; if it has not finished within
    ``timeout_s`` a :class:`MeasurementTimeout` is raised and the hung
    thread is abandoned (Python threads cannot be killed — injected hangs
    are bounded sleeps, so abandoned threads drain quickly).  With
    ``timeout_s=None`` the call runs inline with no thread overhead.
    """
    if timeout_s is None:
        return fn()
    # Lock-free by design (audited against host.race.unlocked-attr):
    # `result`/`error` are locals shared with exactly one runner thread,
    # each side only appends, and the reads below are ordered after the
    # writes by the join() happens-before edge.  A timed-out runner may
    # still append later, but its list is never read again.
    result: List[T] = []
    error: List[BaseException] = []

    def runner() -> None:
        try:
            result.append(fn())
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            error.append(exc)

    thread = threading.Thread(target=runner, daemon=True, name="repro-watchdog")
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise MeasurementTimeout(
            f"measurement exceeded the {timeout_s * 1000:.0f} ms watchdog budget"
        )
    if error:
        raise error[0]
    return result[0]


def robust_aggregate(
    values: Sequence[float], outlier_rel: float = 0.25
) -> Tuple[float, int]:
    """Median-of-k with outlier rejection; returns ``(rate, n_outliers)``.

    Samples whose relative deviation from the median exceeds
    ``outlier_rel`` are discarded (an injected timing spike, a paging
    stall); the survivors' mean is returned.  When every clean sample is
    identical — as in the deterministic simulator — the aggregate equals
    the clean value exactly as long as a majority of samples is clean.
    """
    if not values:
        raise ValueError("robust_aggregate needs at least one sample")
    if len(values) == 1:
        return values[0], 0
    median = statistics.median(values)
    if median == 0.0:
        return median, 0
    survivors = [v for v in values if abs(v - median) / abs(median) <= outlier_rel]
    if not survivors:  # pathological: everything disagrees with the median
        return median, len(values)
    return sum(survivors) / len(survivors), len(values) - len(survivors)


def run_with_retry(
    fn: Callable[[int], T],
    config: ResilienceConfig,
    on_fault: Optional[Callable[[str], None]] = None,
) -> T:
    """Call ``fn(attempt)`` retrying transient faults with backoff.

    ``fn`` receives the attempt number (0-based) so deterministic fault
    decisions re-roll per retry.  :class:`TransientError` (including
    :class:`~repro.errors.DeviceLostError`) and
    :class:`~repro.errors.MeasurementTimeout` are retried up to
    ``config.max_retries`` times; the final failure propagates.
    ``on_fault`` observes each absorbed fault's class.
    """
    attempt = 0
    while True:
        try:
            return fn(attempt)
        except (TransientError, MeasurementTimeout) as exc:
            kind = getattr(exc, "fault_kind", "timeout")
            if on_fault is not None:
                on_fault(kind)
            if attempt >= config.max_retries:
                raise
            attempt += 1
            delay = config.backoff(attempt)
            if delay > 0:
                time.sleep(delay)


class Quarantine:
    """Registry of demoted (persistently flaky) candidates.

    A candidate lands here when one of its evaluations exhausts the
    retry budget — it failed ``max_retries + 1`` consecutive attempts,
    which a production tuner cannot distinguish from a kernel that will
    flake in deployment.  Quarantined candidates are excluded from
    scoring *and* retroactively from the finalist ranking (a finalist
    that starts flaking during the size sweep is demoted, not trusted).

    Keyed by the candidate's parameter digest, so the registry's content
    is independent of evaluation order (serial == parallel).
    """

    def __init__(self) -> None:
        self._reasons: Dict[str, str] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._reasons)

    def __contains__(self, digest: str) -> bool:
        return digest in self._reasons

    def demote(self, digest: str, reason: str) -> bool:
        """Record a demotion; True when the digest is newly quarantined."""
        with self._lock:
            if digest in self._reasons:
                return False
            self._reasons[digest] = reason
            return True

    def allows(self, digest: str) -> bool:
        return digest not in self._reasons

    def reasons(self) -> Dict[str, str]:
        return dict(self._reasons)
