"""repro — reproduction of Matsumoto, Nakasato & Sedukhin (SC Companion 2012):
"Performance Tuning of Matrix Multiplication in OpenCL on Different GPUs
and CPUs".

The package implements the paper's complete system from scratch:

* :mod:`repro.codegen` — the GEMM code generator (blocking factors,
  vector widths, stride modes, local-memory staging with work-item
  reshape, CBL/RBL block-major layouts, and the BA/PL/DB algorithms);
* :mod:`repro.clsim` — a pyopencl-style OpenCL simulator that executes
  generated kernels functionally and charges time from an analytical
  device model (:mod:`repro.perfmodel`) driven by the paper's Table I;
* :mod:`repro.tuner` — the staged heuristic search engine;
* :mod:`repro.gemm` — full GEMM routines (pack/pad/kernel/crop, all four
  multiplication types, plus the paper's future-work direct kernel);
* :mod:`repro.baselines` — vendor-library performance models;
* :mod:`repro.bench` — regeneration targets for every paper table/figure.

Quickstart::

    import numpy as np
    from repro import tuned_gemm

    gemm = tuned_gemm("tahiti", precision="s")
    a = np.random.rand(500, 300).astype(np.float32)
    b = np.random.rand(300, 400).astype(np.float32)
    result = gemm(a, b)
    print(result.kernel_gflops, "GFlop/s (simulated)")
"""

from repro.api import autotune, observability, tuned_gemm
from repro.codegen import Algorithm, KernelParams, Layout, StrideMode
from repro.devices import CATALOG, EVALUATED_DEVICES, DeviceSpec, get_device_spec
from repro.errors import (
    BuildError,
    CLError,
    LaunchError,
    ParameterError,
    ReproError,
    ResourceError,
    TuningError,
    ValidationError,
)
from repro.gemm import GemmResult, GemmRoutine
from repro.tuner import SearchEngine, TuningConfig, TuningResult, pretuned_params

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "autotune",
    "observability",
    "tuned_gemm",
    "Algorithm",
    "KernelParams",
    "Layout",
    "StrideMode",
    "CATALOG",
    "EVALUATED_DEVICES",
    "DeviceSpec",
    "get_device_spec",
    "GemmRoutine",
    "GemmResult",
    "SearchEngine",
    "TuningConfig",
    "TuningResult",
    "pretuned_params",
    "ReproError",
    "ParameterError",
    "CLError",
    "BuildError",
    "ResourceError",
    "LaunchError",
    "ValidationError",
    "TuningError",
]
