"""Kernel execution-time estimation.

``estimate_kernel_time`` combines:

* an **ALU term** — ideal FLOP time divided by a product of issue
  efficiencies (vector-width match, unrolling, ILP, register spill,
  stride mode, compiler/ISA ceiling, local-memory staging);
* a **global-memory term** — DRAM traffic over bandwidth, degraded by
  layout coalescing efficiency (:mod:`repro.perfmodel.memory`);
* a **local-memory term** — LDS traffic over LDS bandwidth, largely
  overlapped with ALU work (separate pipe);
* **barrier** and **launch** overheads and wave quantisation.

The terms overlap according to occupancy (how much latency the resident
wavefronts can hide) and the algorithm's structural overlap: the PL and
DB algorithms prefetch global tiles while computing (paper Figs. 5-6),
so they tolerate low occupancy better than BA — at the price of extra
private registers (PL) or doubled local memory (DB), which feed back
into occupancy.  Every qualitative trade-off the paper discusses lives
in this feedback loop.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from math import ceil
from typing import Dict, Tuple

from repro.codegen.algorithms import Algorithm
from repro.codegen.params import KernelParams
from repro.devices.specs import DeviceSpec
from repro.errors import ResourceError
from repro.perfmodel.memory import (
    global_traffic_bytes,
    local_traffic_bytes,
    memory_efficiency,
)
from repro.perfmodel.occupancy import OccupancyInfo, compute_occupancy

__all__ = [
    "KernelCostBreakdown",
    "alu_efficiency",
    "estimate_kernel_time",
    "estimate_copy_time",
    "estimate_pack_time",
    "estimate_transfer_time",
    "check_resources",
    "check_execution_quirks",
]

# Loop-overhead constant of the unroll model (cycles-equivalent per
# unrolled body): CPU OpenCL runtimes pay more per-iteration overhead.
_UNROLL_OVERHEAD_GPU = 0.06
_UNROLL_OVERHEAD_CPU = 0.25
# Independent accumulators a work-item needs to cover MAD latency.
_ILP_NEED_GPU = 8
_ILP_NEED_CPU = 4
# Structural compute/global-memory overlap of each algorithm.
_STRUCT_OVERLAP = {Algorithm.BA: 0.0, Algorithm.PL: 0.55, Algorithm.DB: 0.45}
# Fraction of LDS time that cannot hide under ALU work (issue slots).
_LDS_EXPOSED = 0.08
# Deterministic measurement-noise amplitude (fraction of total time).
_NOISE_AMPLITUDE = 0.015


@dataclass(frozen=True)
class KernelCostBreakdown:
    """Full decomposition of one modelled kernel execution."""

    t_alu: float
    t_gmem: float
    t_lmem: float
    t_barrier: float
    t_launch: float
    quantization: float
    occupancy: OccupancyInfo
    alu_eff: float
    alu_factors: Dict[str, float]
    mem_eff: float
    total_seconds: float
    flops: float

    @property
    def gflops(self) -> float:
        return self.flops / self.total_seconds / 1e9

    @property
    def bound(self) -> str:
        """Dominant term: 'alu', 'gmem', or 'lmem'."""
        terms = {"alu": self.t_alu, "gmem": self.t_gmem, "lmem": self.t_lmem}
        return max(terms, key=lambda k: terms[k])


def check_resources(spec: DeviceSpec, params: KernelParams) -> OccupancyInfo:
    """Validate device resource limits; raise :class:`ResourceError`.

    Mirrors an OpenCL compiler/driver rejecting a kernel: work-group too
    large, local memory over capacity, register file exhausted, or
    private footprint beyond twice the per-work-item allocation cap.
    """
    model = spec.model
    if params.workgroup_size > model.max_workgroup_size:
        raise ResourceError(
            f"work-group size {params.workgroup_size} exceeds device limit "
            f"{model.max_workgroup_size} on {spec.codename}"
        )
    if params.local_memory_bytes() > spec.local_mem_bytes:
        raise ResourceError(
            f"kernel needs {params.local_memory_bytes()} B of local memory; "
            f"{spec.codename} has {spec.local_mem_bytes} B"
        )
    if params.private_bytes() > 2 * model.max_private_bytes_per_workitem:
        raise ResourceError(
            f"private footprint {params.private_bytes()} B exceeds twice the "
            f"register cap ({model.max_private_bytes_per_workitem} B/work-item) "
            f"on {spec.codename}"
        )
    occ = compute_occupancy(spec, params)
    if not occ.resident:
        raise ResourceError(
            f"no work-group of this kernel fits on a {spec.codename} compute "
            f"unit (limited by {occ.limited_by})"
        )
    return occ


def check_execution_quirks(spec: DeviceSpec, params: KernelParams) -> None:
    """Raise :class:`LaunchError` for device-specific execution failures.

    Reproduces the paper's Section IV-A observation: "DGEMM kernels with
    PL algorithm always fail to execute on the Bulldozer."
    """
    from repro.errors import LaunchError

    if (
        spec.model.has_quirk("pl_dgemm_fails")
        and params.algorithm is Algorithm.PL
        and params.precision == "d"
    ):
        raise LaunchError(
            f"kernel failed to execute on {spec.codename} "
            "(PL double-precision kernels abort on this device)"
        )


def alu_efficiency(
    spec: DeviceSpec, params: KernelParams
) -> Tuple[float, Dict[str, float]]:
    """Issue efficiency in (0, ~1.1] and its multiplicative factors.

    Can exceed 1.0 only through the boost clock, which is applied by the
    caller; the factors here are all <= 1 except the calibration.
    """
    model = spec.model
    prec = params.precision

    pref = model.simd_width_sp if prec == "s" else model.simd_width_dp
    if params.vw == pref:
        vec = 1.0
    elif params.vw < pref:
        exponent = 0.45 if spec.is_cpu else 0.18
        vec = (params.vw / pref) ** exponent
    else:
        vec = (pref / params.vw) ** 0.08

    overhead = _UNROLL_OVERHEAD_CPU if spec.is_cpu else _UNROLL_OVERHEAD_GPU
    unroll = params.kwi / (params.kwi + overhead)

    need = _ILP_NEED_CPU if spec.is_cpu else _ILP_NEED_GPU
    ilp = min(1.0, (params.mwi * params.nwi / need) ** 0.5)

    cap = model.max_private_bytes_per_workitem
    pb = params.private_bytes()
    spill = 1.0 if pb <= cap else (cap / pb) ** 0.8

    sm = model.nonunit_stride_bonus if params.stride.m else model.unit_stride_bonus
    sn = model.nonunit_stride_bonus if params.stride.n else model.unit_stride_bonus
    stride = sm * sn

    # Unstaged operands read straight from global memory in the inner
    # loop; with image objects those reads go through the texture cache
    # (a different cost, better on VLIW GPUs, worse on CPUs).
    unstaged_factor = (
        model.texture_read_factor if params.use_images else model.nolocal_alu_factor
    )
    staging = 1.0
    if not params.shared_a:
        staging *= unstaged_factor
    if not params.shared_b:
        staging *= unstaged_factor

    # Block-major layouts also simplify the generated address arithmetic
    # (contiguous spans -> fewer integer ops per load); ROW operands pay
    # a small issue cost on top of their coalescing penalty.  This keeps
    # block-major kernels fastest on every device (Section IV-A) even
    # where the memory side does not bind (compute-bound CPU kernels).
    # Bounds checks in guarded kernels cost issue slots on every load
    # and merge (the price of skipping the padding pass).
    guard = 0.94 if params.guard_edges else 1.0

    row_cost = 0.96 if spec.is_cpu else 0.99
    layout = 1.0
    if not params.use_images:
        # Image kernels address operands as 2-D textures, so the host
        # layout's address arithmetic never appears in them.
        if not params.layout_a.is_block_major:
            layout *= row_cost
        if not params.layout_b.is_block_major:
            layout *= row_cost

    # Partial wavefronts waste SIMD lanes.
    wf = model.wavefront_size
    wave = params.workgroup_size / (wf * ceil(params.workgroup_size / wf))

    issue = model.compiler_efficiency_sp if prec == "s" else model.compiler_efficiency_dp
    calib = model.calibration_sp if prec == "s" else model.calibration_dp

    factors = {
        "vector": vec,
        "unroll": unroll,
        "ilp": ilp,
        "spill": spill,
        "stride": stride,
        "staging": staging,
        "layout": layout,
        "guard": guard,
        "wavefront": wave,
        "issue": issue,
        "calibration": calib,
    }
    total = 1.0
    for value in factors.values():
        total *= value
    return total, factors


def _deterministic_noise(spec: DeviceSpec, params: KernelParams,
                         M: int, N: int, K: int) -> float:
    """Reproducible multiplicative jitter in [1-amp, 1+amp].

    Real measurements are noisy; the tuner must be robust to that.  The
    jitter is a pure function of (device, params, size) so tuning runs
    and tests are deterministic.
    """
    payload = f"{spec.codename}|{params.cache_key()}|{M}|{N}|{K}".encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    unit = int.from_bytes(digest, "big") / 2**64  # [0, 1)
    return 1.0 + _NOISE_AMPLITUDE * (2.0 * unit - 1.0)


def estimate_kernel_time(
    spec: DeviceSpec,
    params: KernelParams,
    M: int,
    N: int,
    K: int,
    noise: bool = True,
) -> KernelCostBreakdown:
    """Model the execution time of one kernel launch on a padded problem.

    ``M``, ``N``, ``K`` must already be multiples of the work-group
    blocking factors (the GEMM routine layer pads).  Raises
    :class:`ResourceError` if the kernel cannot be resident on the device.
    """
    occ = check_resources(spec, params)
    model = spec.model
    clock = spec.clock_hz * model.boost_factor
    prec = params.precision

    flops = 2.0 * M * N * K
    peak = spec.peak_gflops(prec) * 1e9 * model.boost_factor
    aeff, factors = alu_efficiency(spec, params)
    t_alu = flops / (peak * aeff)

    traffic = global_traffic_bytes(spec, params, M, N, K)
    meff = memory_efficiency(spec, params, M, N, K)
    t_gmem = traffic.total / (spec.bandwidth_bytes_per_s * meff)

    lbytes = local_traffic_bytes(params, M, N, K)
    local_bw = model.local_bw_bytes_per_clock_cu * clock * spec.compute_units
    t_lmem = lbytes / local_bw if lbytes else 0.0

    # LDS runs on its own pipe: it hides under ALU work except for the
    # issue slots its loads consume.
    t_compute = max(t_alu, t_lmem) + _LDS_EXPOSED * t_lmem

    q = occ.occupancy if spec.is_gpu else 0.9
    q_eff = min(1.0, q + _STRUCT_OVERLAP[params.algorithm])
    t_body = q_eff * max(t_compute, t_gmem) + (1.0 - q_eff) * (t_compute + t_gmem)

    # Tail quantisation: work-groups are distributed over compute units;
    # the kernel finishes with the most-loaded CU, and trailing CUs sit
    # idle.  (Residency `wg_per_cu` affects latency hiding via `q`, not
    # CU throughput, so it does not appear here.)
    num_wg = -(-M // params.mwg) * -(-N // params.nwg)
    per_cu = ceil(num_wg / spec.compute_units)
    quant = min(3.0, per_cu * spec.compute_units / num_wg) if num_wg else 1.0
    t_body *= quant

    # Barriers: serial per work-group, partially hidden by co-resident
    # work-groups.
    t_barrier = 0.0
    if params.shared_a or params.shared_b:
        iters = -(-K // params.kwg)
        barriers = 2 * iters * num_wg
        relief = 1.0 + 0.5 * (min(occ.workgroups_per_cu, 4) - 1)
        t_barrier = (
            barriers * model.barrier_cost_cycles
            / (clock * spec.compute_units * relief)
        )

    t_launch = model.launch_overhead_us * 1e-6
    total = t_body + t_barrier + t_launch
    if noise:
        total *= _deterministic_noise(spec, params, M, N, K)

    return KernelCostBreakdown(
        t_alu=t_alu,
        t_gmem=t_gmem,
        t_lmem=t_lmem,
        t_barrier=t_barrier,
        t_launch=t_launch,
        quantization=quant,
        occupancy=occ,
        alu_eff=aeff,
        alu_factors=factors,
        mem_eff=meff,
        total_seconds=total,
        flops=flops,
    )


def estimate_pack_time(
    spec: DeviceSpec,
    read_bytes: float,
    write_bytes: float,
    transpose: bool,
    block_major: bool,
) -> float:
    """Time of one generated pack/transpose kernel launch.

    The kernel streams the source once and the (padded) destination
    once; transposition makes one side strided, and block-major
    destinations shuffle writes within blocks.
    """
    efficiency = 0.70
    if transpose:
        efficiency *= 0.85
    if block_major:
        efficiency *= 0.93
    t = (read_bytes + write_bytes) / (spec.bandwidth_bytes_per_s * efficiency)
    return t + spec.model.launch_overhead_us * 1e-6


def estimate_transfer_time(spec: DeviceSpec, bytes_moved: float) -> float:
    """Host<->device transfer time over the interconnect.

    The paper's kernel numbers deliberately exclude this ("the presented
    performance numbers do not take into account data transfer time
    between host and OpenCL device"); the PCIe ablation experiment shows
    what including it would do.
    """
    model = spec.model
    return (
        bytes_moved / (model.pcie_bandwidth_gbs * 1e9)
        + model.pcie_latency_us * 1e-6
    )


def estimate_copy_time(spec: DeviceSpec, bytes_moved: float) -> float:
    """Time for an on-device copy/repack of ``bytes_moved`` payload bytes.

    Packing kernels read and write every element; transposes and layout
    changes cost extra efficiency.  This is the O(N^2) overhead that
    makes the full GEMM implementations slow at small sizes
    (Section IV-B / Fig. 9 discussion).
    """
    copy_efficiency = 0.55  # read+write with transposition
    t = 2.0 * bytes_moved / (spec.bandwidth_bytes_per_s * copy_efficiency)
    return t + spec.model.launch_overhead_us * 1e-6
