"""Calibration anchors and SDK variants.

``PAPER_ANCHORS`` records, for every device and precision, the maximum
kernel performance the paper measured (Table II) — the targets the
calibrated model must land near.  The per-device ``calibration_sp/dp``
multipliers in the catalog were fitted once (scripts in
``benchmarks/``) so that the *tuner-selected best kernel* reproduces
these numbers; the qualitative structure (which parameters win and why)
comes from the mechanistic model, not from the calibration.

``sdk2012_variant`` derives the older Intel OpenCL SDK 2012 compiler for
the Figure 11 experiment: the paper measured "around 20%" improvement
from SDK 2012 to the 2013 beta on Sandy Bridge.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.devices.specs import DeviceSpec

__all__ = ["PAPER_ANCHORS", "sdk2012_variant", "anchor_efficiency"]

#: (device codename, precision) -> paper's maximum kernel GFlop/s (Table II).
PAPER_ANCHORS: Dict[Tuple[str, str], float] = {
    ("tahiti", "d"): 863.0,
    ("tahiti", "s"): 3047.0,
    ("cayman", "d"): 580.0,
    ("cayman", "s"): 2167.0,
    ("kepler", "d"): 128.0,
    ("kepler", "s"): 1440.0,
    ("fermi", "d"): 370.0,
    ("fermi", "s"): 896.0,
    ("sandybridge", "d"): 64.0,
    ("sandybridge", "s"): 140.0,
    ("bulldozer", "d"): 37.0,
    ("bulldozer", "s"): 87.0,
    # Section IV-C: the tuner reaches 495 GFlop/s DGEMM on Cypress.
    ("cypress", "d"): 495.0,
}

#: Paper Table II efficiency rows (fraction of listed peak).
PAPER_EFFICIENCIES: Dict[Tuple[str, str], float] = {
    ("tahiti", "d"): 0.91,
    ("tahiti", "s"): 0.80,
    ("cayman", "d"): 0.86,
    ("cayman", "s"): 0.80,
    ("kepler", "d"): 1.05,
    ("kepler", "s"): 0.49,
    ("fermi", "d"): 0.56,
    ("fermi", "s"): 0.67,
    ("sandybridge", "d"): 0.40,
    ("sandybridge", "s"): 0.44,
    ("bulldozer", "d"): 0.32,
    ("bulldozer", "s"): 0.38,
}

#: Measured SDK 2013-beta over SDK 2012 speedup on Sandy Bridge (Fig. 11).
SDK2013_OVER_SDK2012 = 1.20


def sdk2012_variant(spec: DeviceSpec) -> DeviceSpec:
    """Return a Sandy Bridge spec compiled with the older Intel SDK 2012.

    Only meaningful for CPU devices; the older compiler's efficiency
    ceiling is ~20% lower (Fig. 11: "Using the newer SDK improves the
    performance by around 20%").
    """
    if not spec.is_cpu:
        raise ValueError(f"SDK 2012 variant only applies to CPUs, not {spec.codename}")
    scale = 1.0 / SDK2013_OVER_SDK2012
    return spec.with_model(
        compiler_efficiency_sp=spec.model.compiler_efficiency_sp * scale,
        compiler_efficiency_dp=spec.model.compiler_efficiency_dp * scale,
    )


def anchor_efficiency(codename: str, precision: str) -> float:
    """Paper Table II efficiency for a device/precision pair."""
    return PAPER_EFFICIENCIES[(codename, precision)]
