"""What-if device exploration.

Because the devices are specifications, counterfactual hardware is one
``with_model``/``replace`` away: *what if Tahiti had twice the
bandwidth — would row-major layouts stop mattering?  What if Fermi had
a GCN-sized register file?*  This module runs a tuned kernel on such
variants and reports the response — the kind of question an
architecture-aware tuning paper invites but hardware owners cannot ask.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Tuple, Union

from repro.codegen.params import KernelParams
from repro.devices.catalog import get_device_spec
from repro.devices.specs import DeviceSpec
from repro.errors import BuildError, LaunchError, ParameterError, ReproError
from repro.perfmodel.model import estimate_kernel_time

__all__ = ["WhatIfResult", "whatif", "scaling_sweep"]

#: DeviceSpec top-level fields what-if scenarios may scale.
_SPEC_FIELDS = {
    "bandwidth_gbs", "clock_ghz", "local_mem_kb",
    "peak_dp_gflops", "peak_sp_gflops",
}


@dataclass(frozen=True)
class WhatIfResult:
    """Baseline vs counterfactual performance of one kernel."""

    device: str
    changes: Dict[str, float]
    baseline_gflops: float
    modified_gflops: float

    @property
    def speedup(self) -> float:
        return self.modified_gflops / self.baseline_gflops

    def render(self) -> str:
        changed = ", ".join(f"{k}={v:g}" for k, v in sorted(self.changes.items()))
        return (
            f"what-if({self.device}: {changed}): "
            f"{self.baseline_gflops:.1f} -> {self.modified_gflops:.1f} GFlop/s "
            f"({self.speedup:.2f}x)"
        )


def _variant(spec: DeviceSpec, changes: Dict[str, float]) -> DeviceSpec:
    spec_changes = {k: v for k, v in changes.items() if k in _SPEC_FIELDS}
    model_changes = {k: v for k, v in changes.items() if k not in _SPEC_FIELDS}
    unknown = [k for k in model_changes if not hasattr(spec.model, k)]
    if unknown:
        raise ReproError(f"unknown what-if fields: {unknown}")
    # The listed peaks are clock-derived: a clock change scales them too
    # (unless the scenario pins them explicitly).
    if "clock_ghz" in spec_changes:
        ratio = spec_changes["clock_ghz"] / spec.clock_ghz
        spec_changes.setdefault("peak_dp_gflops", spec.peak_dp_gflops * ratio)
        spec_changes.setdefault("peak_sp_gflops", spec.peak_sp_gflops * ratio)
    out = dc_replace(spec, **spec_changes) if spec_changes else spec
    if model_changes:
        out = out.with_model(**model_changes)
    return out


def whatif(
    device: Union[str, DeviceSpec],
    params: KernelParams,
    M: int,
    N: int,
    K: int,
    **changes: float,
) -> WhatIfResult:
    """Run one kernel on a counterfactual variant of a device.

    Keyword arguments name either a :class:`DeviceSpec` field
    (``bandwidth_gbs``, ``clock_ghz``, ``local_mem_kb``, the peaks) or
    any :class:`DeviceModelParams` field, set to its new value.
    """
    spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
    if not changes:
        raise ReproError("whatif needs at least one changed field")
    baseline = estimate_kernel_time(spec, params, M, N, K, noise=False)
    modified_spec = _variant(spec, changes)
    modified = estimate_kernel_time(modified_spec, params, M, N, K, noise=False)
    return WhatIfResult(
        device=spec.codename,
        changes=dict(changes),
        baseline_gflops=baseline.gflops,
        modified_gflops=modified.gflops,
    )


def scaling_sweep(
    device: Union[str, DeviceSpec],
    params: KernelParams,
    field: str,
    scales: Tuple[float, ...],
    M: int,
    N: int,
    K: int,
) -> List[Tuple[float, float]]:
    """Sweep one field across multiples of its current value.

    Returns (scale, GFlop/s) pairs; scales whose variant cannot host the
    kernel (e.g. local memory shrunk below the tile) are skipped.
    """
    spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
    if field in _SPEC_FIELDS:
        base_value = getattr(spec, field)
    elif hasattr(spec.model, field):
        base_value = getattr(spec.model, field)
    else:
        raise ReproError(f"unknown what-if field {field!r}")
    points: List[Tuple[float, float]] = []
    for scale in scales:
        try:
            variant = _variant(spec, {field: base_value * scale})
            bd = estimate_kernel_time(variant, params, M, N, K, noise=False)
        except (ParameterError, BuildError, LaunchError, ValueError):
            # Scaling a device field can make the variant infeasible for
            # these params; the pure model raises no transient faults.
            continue
        points.append((scale, bd.gflops))
    return points
