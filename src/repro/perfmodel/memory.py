"""Global- and local-memory traffic and efficiency models.

Traffic follows from the blocked algorithm's structure (paper Fig. 1):
each work-group iteration reads one ``Kwg x Mwg`` tile of ``A^T`` and one
``Kwg x Nwg`` tile of ``B`` from global memory.  With local-memory
staging every element is read exactly once per work-group.  Without it,
each element is requested once per hardware wavefront that consumes it
(same-address reads within a wavefront are broadcast by the hardware);
those redundant wavefront fetches are temporally clustered, so the cache
hierarchy absorbs most — but not all — of them.

Access *efficiency* models coalescing: the block-major layouts (CBL/RBL)
present each needed span contiguously, while ROW-major tiles straddle
large strides and — at leading dimensions that are multiples of 2048 —
collide on memory banks/channels, which the paper observes as drastic
slowdowns (Section IV-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.codegen.layouts import Layout
from repro.codegen.params import KernelParams
from repro.devices.specs import DeviceSpec

__all__ = [
    "MemoryTraffic",
    "global_traffic_bytes",
    "local_traffic_bytes",
    "memory_efficiency",
    "BANK_CONFLICT_STRIDE",
]

#: Leading-dimension periodicity (in elements) that collides on memory
#: banks/channels for row-major accesses (paper: "the performance for
#: some problem sizes (such as multiples of 2048) is drastically
#: deteriorated because of memory bank conflicts").
BANK_CONFLICT_STRIDE = 2048

#: Fraction of temporally-clustered redundant fetches served by caches.
_CLUSTER_HIT_GPU = 0.90
_CLUSTER_HIT_CPU = 0.95


@dataclass(frozen=True)
class MemoryTraffic:
    """DRAM traffic decomposition for one kernel execution."""

    bytes_a: float
    bytes_b: float
    bytes_c: float

    @property
    def total(self) -> float:
        return self.bytes_a + self.bytes_b + self.bytes_c


def _cluster_hit(spec: DeviceSpec, params: KernelParams) -> float:
    """Cache hit rate on redundant (clustered) re-fetches, mildly reduced
    when the active tile strip overflows the effective cache."""
    base = _CLUSTER_HIT_CPU if spec.is_cpu else _CLUSTER_HIT_GPU
    strip_bytes = (params.mwg + params.nwg) * params.kwg * params.element_size
    cache_bytes = spec.model.cache_effective_kb * 1024.0
    return base * min(1.0, (cache_bytes / max(strip_bytes, 1.0)) ** 0.1)


def _unstaged_redundancy(spec: DeviceSpec, params: KernelParams, matrix: str) -> float:
    """Redundant global fetches per element when a matrix is unstaged.

    An ``A`` element is consumed by one M-lane across all ``NdimC``
    N-lanes; with work-items linearised M-fastest those consumers spread
    over every wavefront of the work-group.  A ``B`` element's consumers
    (all M-lanes of one N-lane) are contiguous and mostly within a single
    wavefront, where the hardware broadcasts the read.
    """
    if spec.is_cpu:
        return 1.0  # sequential software work-items; L1 reuse is perfect
    wf = spec.model.wavefront_size
    if matrix == "a":
        return max(1.0, params.workgroup_size / wf)
    return max(1.0, params.mdimc / wf)


def global_traffic_bytes(
    spec: DeviceSpec, params: KernelParams, M: int, N: int, K: int
) -> MemoryTraffic:
    """DRAM bytes moved by one kernel execution on a padded problem."""
    esize = params.element_size
    tiles_c = -(-M // params.mwg) * -(-N // params.nwg)
    iters = -(-K // params.kwg)
    ideal_a = params.mwg * params.kwg * esize  # per work-group iteration
    ideal_b = params.nwg * params.kwg * esize

    hit = _cluster_hit(spec, params)

    def factor(matrix: str, shared: bool) -> float:
        if shared:
            return 1.0
        redundancy = _unstaged_redundancy(spec, params, matrix)
        return 1.0 + (redundancy - 1.0) * (1.0 - hit)

    bytes_a = tiles_c * iters * ideal_a * factor("a", params.shared_a)
    bytes_b = tiles_c * iters * ideal_b * factor("b", params.shared_b)
    # C: one read (for beta) + one write per element.
    bytes_c = 2.0 * M * N * esize
    return MemoryTraffic(bytes_a, bytes_b, bytes_c)


def local_traffic_bytes(params: KernelParams, M: int, N: int, K: int) -> float:
    """Local-memory bytes moved (reads + writes) by one kernel execution."""
    esize = params.element_size
    tiles_c = -(-M // params.mwg) * -(-N // params.nwg)
    iters = -(-K // params.kwg)
    per_iter = 0.0
    if params.shared_a:
        per_iter += params.mwg * params.kwg  # cooperative writes
        per_iter += params.mwg * params.ndimc * params.kwg  # reads by N lanes
    if params.shared_b:
        per_iter += params.nwg * params.kwg
        per_iter += params.nwg * params.mdimc * params.kwg
    return tiles_c * iters * per_iter * esize


def _layout_efficiency(
    spec: DeviceSpec, layout: Layout, tile_width: int, esize: int, leading_dim: int
) -> float:
    """Coalescing efficiency of reading one operand stored in ``layout``."""
    model = spec.model
    if layout.is_block_major:
        return 1.0
    # ROW: each tile row is a contiguous span of `tile_width` elements at
    # a large stride.  Short spans waste transaction granularity...
    span = tile_width * esize
    granule = model.coalesce_bytes
    eff = span / (granule * math.ceil(span / granule))
    eff = min(1.0, max(0.35, eff))
    # ...and GPUs additionally lose to DRAM page/channel thrash on the
    # long stride; CPU prefetchers hide most of it.
    eff *= 0.78 if spec.is_gpu else 0.95
    # Bank/channel conflicts at pathological leading dimensions.
    if leading_dim % BANK_CONFLICT_STRIDE == 0:
        eff *= 0.30
    return eff


#: Coalescing efficiency of texture fetches: the texture unit's 2-D
#: tiling recovers most locality regardless of host layout, and texture
#: addressing is immune to the row-major bank-conflict pathology.
_IMAGE_READ_EFFICIENCY = 0.95


def memory_efficiency(
    spec: DeviceSpec, params: KernelParams, M: int, N: int, K: int
) -> float:
    """Aggregate DRAM access efficiency (0..1] weighted by operand traffic."""
    esize = params.element_size
    traffic = global_traffic_bytes(spec, params, M, N, K)
    if params.use_images:
        eff_a = eff_b = _IMAGE_READ_EFFICIENCY
    else:
        eff_a = _layout_efficiency(spec, params.layout_a, params.mwg, esize, M)
        eff_b = _layout_efficiency(spec, params.layout_b, params.nwg, esize, N)
    eff_c = 1.0  # C is written once per tile row, fully coalesced
    total = traffic.total
    if total <= 0:
        return 1.0
    return (
        traffic.bytes_a * eff_a + traffic.bytes_b * eff_b + traffic.bytes_c * eff_c
    ) / total
