"""Roofline analysis of modelled kernels.

The classic performance-analysis frame: a kernel's attainable rate is
``min(peak_compute, operational_intensity * peak_bandwidth)``.  This
module positions a generated GEMM kernel on its device's roofline —
operational intensity from the modelled DRAM traffic, attained rate from
the timing model — and renders the comparison, which makes the paper's
compute-bound/memory-bound discussions concrete (e.g. why block-major
layouts matter exactly when the kernel sits near the memory roof).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.codegen.params import KernelParams
from repro.devices.catalog import get_device_spec
from repro.devices.specs import DeviceSpec
from repro.perfmodel.memory import global_traffic_bytes
from repro.perfmodel.model import estimate_kernel_time

__all__ = ["RooflinePoint", "roofline_point"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position relative to its device's roofline."""

    device: str
    precision: str
    #: FLOPs per DRAM byte actually moved (model traffic, not ideal).
    operational_intensity: float
    #: GFlop/s the timing model attains.
    attained_gflops: float
    #: The device's compute roof for this precision (boosted peak).
    compute_roof_gflops: float
    #: Bandwidth roof at this intensity: OI * peak bandwidth.
    bandwidth_roof_gflops: float

    @property
    def roof_gflops(self) -> float:
        return min(self.compute_roof_gflops, self.bandwidth_roof_gflops)

    @property
    def utilization(self) -> float:
        """Attained fraction of the binding roof."""
        return self.attained_gflops / self.roof_gflops

    @property
    def regime(self) -> str:
        """'compute-bound' or 'memory-bound' by which roof binds."""
        return (
            "compute-bound"
            if self.compute_roof_gflops <= self.bandwidth_roof_gflops
            else "memory-bound"
        )

    @property
    def ridge_intensity(self) -> float:
        """Intensity where the two roofs meet (flops/byte)."""
        return self.compute_roof_gflops / (self.bandwidth_roof_gflops /
                                           self.operational_intensity)

    def render(self) -> str:
        return (
            f"roofline({self.device}, {'SGEMM' if self.precision == 's' else 'DGEMM'}):\n"
            f"  operational intensity : {self.operational_intensity:8.2f} flop/byte\n"
            f"  compute roof          : {self.compute_roof_gflops:8.1f} GFlop/s\n"
            f"  bandwidth roof        : {self.bandwidth_roof_gflops:8.1f} GFlop/s\n"
            f"  attained              : {self.attained_gflops:8.1f} GFlop/s "
            f"({self.utilization:.0%} of the {self.regime} roof)"
        )


def roofline_point(
    device: Union[str, DeviceSpec],
    params: KernelParams,
    M: int,
    N: int,
    K: int,
) -> RooflinePoint:
    """Place one kernel execution on its device's roofline."""
    spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
    breakdown = estimate_kernel_time(spec, params, M, N, K, noise=False)
    traffic = global_traffic_bytes(spec, params, M, N, K)
    intensity = breakdown.flops / traffic.total
    compute_roof = spec.peak_gflops(params.precision) * spec.model.boost_factor
    bandwidth_roof = intensity * spec.bandwidth_gbs
    return RooflinePoint(
        device=spec.codename,
        precision=params.precision,
        operational_intensity=intensity,
        attained_gflops=breakdown.gflops,
        compute_roof_gflops=compute_roof,
        bandwidth_roof_gflops=bandwidth_roof,
    )
