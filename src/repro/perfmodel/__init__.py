"""Analytical device performance model.

The OpenCL simulator charges kernel execution time from this model, which
plays the role real hardware plays for the paper's auto-tuner.  See
DESIGN.md ("Substitutions") for why this preserves the paper's result
shapes: every qualitative finding (layout effects, local-memory
trade-offs, algorithm selection, CPU efficiency gaps) is an emergent
consequence of the same mechanisms the paper identifies, driven by the
Table I device specifications.
"""

from repro.perfmodel.occupancy import OccupancyInfo, compute_occupancy
from repro.perfmodel.memory import (
    MemoryTraffic,
    global_traffic_bytes,
    local_traffic_bytes,
    memory_efficiency,
)
from repro.perfmodel.model import (
    KernelCostBreakdown,
    alu_efficiency,
    estimate_kernel_time,
    estimate_copy_time,
)
from repro.perfmodel.calibration import (
    PAPER_ANCHORS,
    sdk2012_variant,
)

__all__ = [
    "OccupancyInfo",
    "compute_occupancy",
    "MemoryTraffic",
    "global_traffic_bytes",
    "local_traffic_bytes",
    "memory_efficiency",
    "KernelCostBreakdown",
    "alu_efficiency",
    "estimate_kernel_time",
    "estimate_copy_time",
    "PAPER_ANCHORS",
    "sdk2012_variant",
]
