"""Work-group occupancy model.

On GPUs the number of work-groups concurrently resident on a compute unit
is limited by the register file, the local-memory capacity and a
scheduler cap; the resulting number of in-flight wavefronts determines
how well memory latency can be hidden ("If the number of work-groups is
not enough, processors cannot hide memory access latencies" — paper
Section III-E, discussing why DB can beat PL).

On CPUs work-items of a work-group are executed as software loops by one
core, so residency is not register-limited; register pressure instead
shows up as spill cost, which :mod:`repro.perfmodel.model` charges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.params import KernelParams
from repro.devices.specs import DeviceSpec

__all__ = ["OccupancyInfo", "compute_occupancy"]


@dataclass(frozen=True)
class OccupancyInfo:
    """Residency and latency-hiding summary for one kernel on one device."""

    workgroups_per_cu: int
    waves_per_cu: float
    #: 0..1: fraction of the latency-hiding requirement satisfied.
    occupancy: float
    #: Which resource bound residency: 'registers', 'local_memory',
    #: 'scheduler', or 'n/a' (CPU).
    limited_by: str

    @property
    def resident(self) -> bool:
        """Whether at least one work-group fits on a compute unit."""
        return self.workgroups_per_cu >= 1


def compute_occupancy(spec: DeviceSpec, params: KernelParams) -> OccupancyInfo:
    """Residency of ``params``'s work-groups on ``spec``'s compute units.

    Returns ``workgroups_per_cu == 0`` when the kernel cannot be resident
    at all (local memory or register file exceeded); the simulator's
    program builder turns that into a :class:`~repro.errors.ResourceError`.
    """
    model = spec.model
    wg_size = params.workgroup_size

    if spec.is_cpu:
        # One work-group per core at a time; work-items are a software
        # loop, so there is no latency-hiding requirement to satisfy.
        lmem = params.local_memory_bytes()
        if lmem > spec.local_mem_bytes:
            return OccupancyInfo(0, 0.0, 0.0, "local_memory")
        return OccupancyInfo(model.max_workgroups_per_cu, float(wg_size), 1.0, "n/a")

    limits = {"scheduler": model.max_workgroups_per_cu}

    lmem = params.local_memory_bytes()
    if lmem > 0:
        limits["local_memory"] = spec.local_mem_bytes // lmem

    wg_register_bytes = params.private_bytes() * wg_size
    limits["registers"] = spec.registers_per_cu_bytes // wg_register_bytes

    limited_by = min(limits, key=lambda k: limits[k])
    wg_per_cu = max(0, limits[limited_by])
    waves = wg_per_cu * wg_size / model.wavefront_size
    occupancy = min(1.0, waves / model.latency_hiding_occupancy)
    return OccupancyInfo(int(wg_per_cu), waves, occupancy, limited_by)
