"""Static kernel verifier (ahead-of-time safety analysis).

The paper's tuner discovers invalid parameter vectors *dynamically*: it
generates, builds and runs every candidate and "does not count" the ones
that fail (Section III-F).  This package performs the same
classification *statically* — no kernel is emitted, built or executed —
the shift ATLAS-style generators and CLBlast's constraint solver make to
keep huge search spaces tractable:

:mod:`~repro.analyze.constraints`
    proves every Section-III divisibility/derivation rule and every
    device budget (work-group size, local-memory bytes, private
    footprint, occupancy, execution quirks) over a raw parameter dict
    or a :class:`~repro.codegen.params.KernelParams`;
:mod:`~repro.analyze.bounds`
    symbolic index-range analysis over the emitter's addressing
    expressions, proving every global/local/private load and store
    in-bounds for *any* matrix size the blocking admits;
:mod:`~repro.analyze.races`
    injectivity proofs for the ``MdimA``/``NdimB`` staging reshape
    (write-write races) and a barrier-phase model of the BA/PL/DB
    schedules (write-read races across barriers);
:mod:`~repro.analyze.source_checks`
    cross-checks the *emitted OpenCL C* against the parameter vector
    (defines, local-array extents, staged-access expressions) and
    verifies barrier uniformity (no barrier under id-dependent control
    flow);
:mod:`~repro.analyze.verifier`
    the :class:`StaticVerifier` facade and the search-gate entry point.

Every finding is a structured :class:`~repro.analyze.diagnostics.Diagnostic`
(rule id, severity, witness indices) collected into an
:class:`~repro.analyze.diagnostics.AnalysisReport` with text and JSON
renderers.  The analyzer agrees with the simulator by construction: the
gate's rules mirror exactly the checks
:func:`repro.tuner.parallel.measure_once` performs, and the differential
test-suite holds the deeper passes to "never reject what the simulator
runs" over the fuzz corpus and sampled search spaces.
"""

from repro.analyze.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
    render_reports,
    reports_to_json,
)
from repro.analyze.constraints import failure_class, prove_constraints
from repro.analyze.verifier import (
    StaticVerifier,
    analyze_catalog,
    analyze_params,
    analyze_space_sample,
)
# Imported last: repro.analyze.host depends on repro.analyze.diagnostics,
# which the lines above have already initialised.
from repro.analyze import host

__all__ = [
    "host",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "StaticVerifier",
    "analyze_catalog",
    "analyze_params",
    "analyze_space_sample",
    "failure_class",
    "prove_constraints",
    "render_reports",
    "reports_to_json",
]
