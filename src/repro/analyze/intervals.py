"""Linear index forms: the symbolic core of the bounds analysis.

Every addressing expression the emitter generates is, after the
substitutions described in :mod:`repro.analyze.sites`, a **non-negative
linear combination of bounded loop/lane variables** plus a constant:

``index = c0 + sum_i  coeff_i * var_i``   with ``coeff_i >= 0`` and
``var_i in [lo_i, hi_i]``.

(The raw expressions contain ``tid / MDIMA``, ``tid % MDIMA``,
``a / VW`` and ``a % VW`` terms, but the structural divisibility rules
make those decompositions exact, so quotient and remainder become
*independent* full-range variables — e.g. ``tid`` over
``[0, MDIMA*KDIMA)`` splits into ``u = tid/MDIMA`` over ``[0, KDIMA)``
and ``v = tid%MDIMA`` over ``[0, MDIMA)``.  The model builder performs
that split; this module only ever sees the linear form.)

For such forms the extreme values are exact (each variable at its own
bound), which gives both sound bounds *and* concrete witnesses: the
assignment achieving the violating extreme, which is what a
:class:`~repro.analyze.diagnostics.Diagnostic` carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

__all__ = ["Term", "LinearIndex"]


@dataclass(frozen=True)
class Term:
    """``coeff * var`` with ``var`` ranging over ``[lo, hi]``."""

    var: str
    coeff: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.coeff < 0:
            raise ValueError(f"negative coefficient for {self.var}: {self.coeff}")
        if self.lo > self.hi:
            raise ValueError(f"empty range for {self.var}: [{self.lo}, {self.hi}]")


@dataclass(frozen=True)
class LinearIndex:
    """A linear index form with exact interval bounds and witnesses."""

    terms: Tuple[Term, ...] = ()
    const: int = 0

    @classmethod
    def build(cls, terms: Sequence[Tuple[str, int, int, int]], const: int = 0
              ) -> "LinearIndex":
        """From ``(var, coeff, lo, hi)`` tuples; zero-coeff terms dropped."""
        kept = tuple(Term(*t) for t in terms if t[1] != 0)
        names = [t.var for t in kept]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variable in index form: {names}")
        return cls(kept, const)

    def shifted(self, delta: int) -> "LinearIndex":
        return LinearIndex(self.terms, self.const + delta)

    @property
    def lo(self) -> int:
        return self.const + sum(t.coeff * t.lo for t in self.terms)

    @property
    def hi(self) -> int:
        return self.const + sum(t.coeff * t.hi for t in self.terms)

    def value(self, assignment: Mapping[str, int]) -> int:
        """Evaluate at a concrete assignment (missing vars at their lo)."""
        return self.const + sum(
            t.coeff * assignment.get(t.var, t.lo) for t in self.terms
        )

    def witness_max(self) -> Dict[str, int]:
        """The assignment achieving :attr:`hi` (every var at its hi)."""
        return {t.var: t.hi for t in self.terms}

    def witness_min(self) -> Dict[str, int]:
        return {t.var: t.lo for t in self.terms}

    def render(self) -> str:
        parts = [f"{t.coeff}*{t.var}[{t.lo}..{t.hi}]" for t in self.terms]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)
