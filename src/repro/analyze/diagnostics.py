"""Structured diagnostics for the static kernel verifier.

A :class:`Diagnostic` is one finding: a stable rule id (the catalog in
``docs/static_analysis.md``), a severity, a human-readable message, the
paper section the rule encodes, and — crucially — a **witness**: the
concrete indices/values that prove the violation (e.g. the work-item and
loop counters at which an access leaves its buffer).  Rejections without
witnesses are not allowed past the test-suite; the witness is what makes
a static rejection auditable rather than folklore.

An :class:`AnalysisReport` collects the diagnostics for one subject
(a parameter vector, optionally with its emitted source) and renders as
text or JSON; :func:`render_reports`/:func:`reports_to_json` aggregate
reports for the CLI's catalog and space modes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "render_reports",
    "reports_to_json",
]


class Severity(Enum):
    """How bad a finding is.

    ``ERROR`` findings make the subject unbuildable/unsafe (the gate and
    ``Program.build`` reject); ``WARNING`` findings are suspicious but
    not disqualifying; ``INFO`` records proved facts (rule passed).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    #: Stable rule identifier, dot-namespaced: ``param.*`` (Section-III
    #: structural rules), ``device.*`` (budgets/quirks), ``bounds.*``,
    #: ``race.*``, ``barrier.*``, ``source.*``.
    rule: str
    severity: Severity
    message: str
    #: Concrete values proving the finding — loop/lane indices, the
    #: offending offset and the violated limit.  Always non-empty for
    #: ERROR diagnostics.
    witness: Mapping[str, object] = field(default_factory=dict)
    #: Paper citation for the rule ("III-C", "IV-A", ...), "" when the
    #: rule guards an extension beyond the paper.
    paper: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "witness": dict(self.witness),
            "paper": self.paper,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "Diagnostic":
        return cls(
            rule=str(d["rule"]),
            severity=Severity(d.get("severity", "error")),
            message=str(d.get("message", "")),
            witness=dict(d.get("witness", {})),  # type: ignore[arg-type]
            paper=str(d.get("paper", "")),
        )

    def render(self) -> str:
        cite = f" [{self.paper}]" if self.paper else ""
        wit = ""
        if self.witness:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.witness.items()))
            wit = f" (witness: {pairs})"
        return f"{self.severity.value.upper():7s} {self.rule}{cite}: {self.message}{wit}"


@dataclass
class AnalysisReport:
    """All findings for one analysis subject."""

    #: Subject label, e.g. ``"tahiti/s pretuned"`` or a params summary.
    subject: str
    device: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Rule ids the analysis actually evaluated (passed or failed) —
    #: lets a consumer distinguish "proved clean" from "not checked".
    checked_rules: Tuple[str, ...] = ()

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """Clean: no ERROR-severity finding."""
        return not self.errors

    @property
    def rejected_rules(self) -> Tuple[str, ...]:
        """Sorted, de-duplicated ERROR rule ids."""
        return tuple(sorted({d.rule for d in self.errors}))

    def extend(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "device": self.device,
            "ok": self.ok,
            "rejected_rules": list(self.rejected_rules),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "checked_rules": list(self.checked_rules),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self, verbose: bool = False) -> str:
        head = f"static analysis: {self.subject}"
        if self.device:
            head += f" on {self.device}"
        status = "CLEAN" if self.ok else "REJECTED (" + ", ".join(self.rejected_rules) + ")"
        lines = [f"{head}: {status}"]
        shown = self.diagnostics if verbose else self.errors + self.warnings
        lines.extend("  " + d.render() for d in shown)
        if verbose and not self.diagnostics:
            lines.append("  (no findings)")
        lines.append(f"  rules checked: {len(self.checked_rules)}")
        return "\n".join(lines)


def render_reports(reports: Sequence[AnalysisReport], verbose: bool = False) -> str:
    """Aggregate text rendering (catalog / space-sample modes)."""
    lines = [r.render(verbose=verbose) for r in reports]
    clean = sum(1 for r in reports if r.ok)
    lines.append(f"{clean}/{len(reports)} subjects clean")
    return "\n".join(lines)


def reports_to_json(reports: Sequence[AnalysisReport], indent: int = 2) -> str:
    """The CLI's ``--json`` artifact: every report plus a summary."""
    payload = {
        "format": "repro-analyze/1",
        "clean": sum(1 for r in reports if r.ok),
        "total": len(reports),
        "reports": [r.to_dict() for r in reports],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)
