"""Symbolic index-range analysis over the kernel model.

Proves every access of a :class:`~repro.analyze.sites.KernelModel`
in-bounds for any matrix size the blocking admits, or produces a
witness assignment (concrete loop/lane indices) at which the access
escapes its buffer.

* Local/private accesses are flat indices against declared extents:
  ``0 <= index`` and ``index + vector_pad < extent`` with the exact
  interval bounds of :class:`~repro.analyze.intervals.LinearIndex`.
* Global accesses are checked per-dimension via residue containment
  (see :mod:`repro.analyze.sites`): the M/N residue must fit in the
  work-group tile, the K residue in the loop-guaranteed base slack.
  For edge-guarded kernels the grid over-covers the matrices, so the
  upper-bound check is replaced by the requirement that the site is
  *guarded* in the source; the lower bound must hold either way (the
  ``READ_*`` guards only test the upper edge).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analyze.diagnostics import Diagnostic, Severity
from repro.analyze.sites import KernelModel

__all__ = ["BOUNDS_RULES", "check_bounds"]

BOUNDS_RULES: Dict[str, tuple] = {
    "bounds.local-index": (
        "III-C",
        "every __local load/store stays inside the declared tile buffer",
    ),
    "bounds.private-index": (
        "III-B",
        "every private-array access stays inside its declared extent",
    ),
    "bounds.global-range": (
        "III-B",
        "global access residues fit the tile extent / guaranteed K slack "
        "for every admissible matrix size",
    ),
    "bounds.global-unguarded": (
        "III-F",
        "edge-guarded kernels bounds-check every global access "
        "(the group grid over-covers the matrices)",
    ),
}


def check_bounds(model: KernelModel) -> List[Diagnostic]:
    """All bounds findings for one kernel model (empty when proved safe)."""
    diags: List[Diagnostic] = []
    p = model.params

    for acc in model.flat:
        rule = f"bounds.{acc.space}-index"
        paper = BOUNDS_RULES[rule][0]
        lo, hi = acc.index.lo, acc.index.hi + acc.vector_pad
        if lo < 0:
            diags.append(Diagnostic(
                rule, Severity.ERROR,
                f"{acc.site}: {acc.kind} of {acc.buffer}[{acc.index.render()}] "
                f"reaches element {lo} (below 0)",
                witness={"site": acc.site, "buffer": acc.buffer,
                         "offset": lo, "extent": acc.extent,
                         **acc.index.witness_min()},
                paper=paper))
        if hi >= acc.extent:
            diags.append(Diagnostic(
                rule, Severity.ERROR,
                f"{acc.site}: {acc.kind} of {acc.buffer}[{acc.index.render()}]"
                f"{f' (+{acc.vector_pad} vector lanes)' if acc.vector_pad else ''} "
                f"reaches element {hi}, extent {acc.extent}",
                witness={"site": acc.site, "buffer": acc.buffer,
                         "offset": hi, "extent": acc.extent,
                         **acc.index.witness_max()},
                paper=paper))

    for acc in model.global_accesses:
        if p.guard_edges and not acc.guarded:
            diags.append(Diagnostic(
                "bounds.global-unguarded", Severity.ERROR,
                f"{acc.site}: unguarded global {acc.kind} of matrix "
                f"{acc.matrix.upper()} in an edge-guarded kernel",
                witness={"site": acc.site, "matrix": acc.matrix},
                paper=BOUNDS_RULES["bounds.global-unguarded"][0]))
        for res in acc.residues:
            lo = res.index.lo
            if lo < 0:
                diags.append(Diagnostic(
                    "bounds.global-range", Severity.ERROR,
                    f"{acc.site}: {res.dim}-residue {res.index.render()} of "
                    f"matrix {acc.matrix.upper()} reaches {lo} (below 0; "
                    "guards only test the upper edge)",
                    witness={"site": acc.site, "matrix": acc.matrix,
                             "dim": res.dim, "offset": lo,
                             **res.index.witness_min()},
                    paper=BOUNDS_RULES["bounds.global-range"][0]))
            if p.guard_edges:
                continue  # upper edge handled by residue-grid exactness
            hi = res.index.hi + res.vector_pad
            if hi >= res.extent:
                diags.append(Diagnostic(
                    "bounds.global-range", Severity.ERROR,
                    f"{acc.site}: {res.dim}-residue {res.index.render()}"
                    f"{f' (+{res.vector_pad} vector lanes)' if res.vector_pad else ''} "
                    f"of matrix {acc.matrix.upper()} reaches {hi}, "
                    f"admissible extent {res.extent}",
                    witness={"site": acc.site, "matrix": acc.matrix,
                             "dim": res.dim, "offset": hi,
                             "extent": res.extent,
                             **res.index.witness_max()},
                    paper=BOUNDS_RULES["bounds.global-range"][0]))
    return diags
