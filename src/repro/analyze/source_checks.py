"""Cross-checks of the emitted OpenCL C text against the kernel model.

The model-level analyses (:mod:`~repro.analyze.bounds`,
:mod:`~repro.analyze.races`) prove properties of what the emitter is
*supposed* to generate.  This module closes the loop on what it
*actually* generated: it parses the emitted source and verifies

* the ``#define`` table matches the parameter vector
  (``source.define-mismatch``) and the metadata header round-trips
  (``source.meta-mismatch``),
* every ``__local`` declaration has the extent the model expects
  (``source.local-decl``),
* every local/private array subscript stays inside its *declared*
  extent, by bounded evaluation of the actual index expression over the
  access's enclosing loop nest — corner assignments (every variable at
  a range end) plus seeded random samples (``source.local-index``),
* barriers are work-group-uniform — no ``barrier()`` under control flow
  that depends on ``get_local_id``/derived values
  (``barrier.divergent``) — and at least as many barriers exist as the
  schedule requires (``source.barrier-count``).

The evaluator understands exactly the C subset the emitter produces:
integer expressions over defines, loop counters, ``const int``
assignments and the ``get_local_id``/``get_group_id`` intrinsics
(bound to a concrete admissible problem size).  Corner sampling is what
makes the check effective: index extremes of non-negative linear forms
are attained at range ends, so a reintroduced off-by-a-tile bug (e.g.
dropping the DB half-buffer rebase) is caught deterministically, with
the offending counter values as the witness.
"""

from __future__ import annotations

import itertools
import random
import re
from typing import Dict, List, Optional, Tuple

from repro.analyze.diagnostics import Diagnostic, Severity
from repro.analyze.sites import KernelModel, build_model
from repro.codegen.emitter import parse_any_meta
from repro.codegen.params import KernelParams
from repro.errors import BuildError

__all__ = ["SOURCE_RULES", "check_source"]

SOURCE_RULES: Dict[str, Tuple[str, str]] = {
    "source.meta-mismatch": (
        "", "the GEMMGEN metadata header matches the parameter vector"),
    "source.define-mismatch": (
        "III", "the emitted #define table matches the derived blocking"),
    "source.local-decl": (
        "III-C", "__local declarations have the model's tile extents"),
    "source.local-index": (
        "III-C", "sampled evaluation keeps every local/private subscript "
                 "inside its declared extent"),
    "source.barrier-count": (
        "III-E", "the body contains the barriers its schedule requires"),
    "barrier.divergent": (
        "III-E", "no barrier is reachable by only a subset of work-items"),
}

_RANDOM_SEED = 0xA11A
_MAX_CORNER_VARS = 8  # 2^8 corner assignments, then random samples

_FOR_RE = re.compile(
    r"^for \(int (\w+) = (.+?); \w+ < (.+?); (?:\+\+\w+|\w+ \+= (.+?))\)\s*$"
)
_ASSIGN_RE = re.compile(r"^const int (\w+) = (.+);$")
_DEFINE_RE = re.compile(r"^#define (\w+) (-?\d+)\b")
_DECL_RE = re.compile(r"^(?:__local )?\w+ (\w+)\[([^\]]+)\];$")
_VLOADSTORE_RE = re.compile(r"\bv(?:load|store)(\d+)\(")

#: names whose value differs between work-items of one group
_TAINT_ROOTS = ("glid0", "glid1", "get_global_id")


def _strip_comments(source: str) -> str:
    """Blank out comments, preserving line structure."""
    source = re.sub(r"/\*.*?\*/", lambda m: re.sub(r"[^\n]", " ", m.group()),
                    source, flags=re.S)
    return re.sub(r"//[^\n]*", "", source)


def _translate(expr: str) -> str:
    """C index expression -> evaluable Python (integer semantics)."""
    e = expr.replace("get_local_id(0)", "glid0")
    e = e.replace("get_local_id(1)", "glid1")
    e = e.replace("get_group_id(0)", "ggid0")
    e = e.replace("get_group_id(1)", "ggid1")
    return e.replace("/", "//")


def _expected_defines(p: KernelParams) -> Dict[str, int]:
    return {
        "MWG": p.mwg, "NWG": p.nwg, "KWG": p.kwg,
        "MDIMC": p.mdimc, "NDIMC": p.ndimc,
        "MWI": p.mwi, "NWI": p.nwi, "KWI": p.kwi,
        "MDIMA": p.effective_mdima, "KDIMA": p.kdima,
        "KDIMB": p.kdimb, "NDIMB": p.effective_ndimb,
        "MWIA": p.mwia, "KWIA": p.kwia, "KWIB": p.kwib, "NWIB": p.nwib,
        "VW": p.vw, "NWIV": p.nwi // p.vw,
    }


class _Frame:
    """One brace-delimited scope in the line walker."""

    __slots__ = ("loop", "cond_tainted", "assigns")

    def __init__(self, loop=None, cond_tainted: bool = False) -> None:
        self.loop = loop  # (var, start_code, end_code, step_code) or None
        self.cond_tainted = cond_tainted
        self.assigns: List[Tuple[str, object]] = []  # (name, code object)


def _extract_index(line: str, start: int) -> Optional[str]:
    """The balanced ``[...]`` contents starting at ``line[start] == '['``."""
    depth = 0
    for i in range(start, len(line)):
        if line[i] == "[":
            depth += 1
        elif line[i] == "]":
            depth -= 1
            if depth == 0:
                return line[start + 1:i]
    return None


def check_source(params: KernelParams, source: str,
                 model: Optional[KernelModel] = None,
                 samples: int = 64) -> List[Diagnostic]:
    """All source-level findings for one emitted kernel."""
    p = params
    model = model or build_model(p)
    diags: List[Diagnostic] = []

    # -- metadata header round-trip ------------------------------------
    try:
        meta = parse_any_meta(source)
        if meta.get("params") != p.to_dict():
            diags.append(Diagnostic(
                "source.meta-mismatch", Severity.ERROR,
                "metadata header params differ from the analyzed vector",
                witness={"meta": meta.get("params"), "params": p.to_dict()},
                paper=SOURCE_RULES["source.meta-mismatch"][0]))
    except BuildError as exc:
        diags.append(Diagnostic(
            "source.meta-mismatch", Severity.ERROR, str(exc),
            witness={"error": str(exc)}))

    text = _strip_comments(source)
    lines = text.splitlines()

    # -- #define table --------------------------------------------------
    defines: Dict[str, int] = {}
    for ln in lines:
        m = _DEFINE_RE.match(ln.strip())
        if m:
            defines[m.group(1)] = int(m.group(2))
    for name, want in _expected_defines(p).items():
        got = defines.get(name)
        if got != want:
            diags.append(Diagnostic(
                "source.define-mismatch", Severity.ERROR,
                f"#define {name} is {got}, parameters derive {want}",
                witness={"define": name, "found": got, "expected": want},
                paper=SOURCE_RULES["source.define-mismatch"][0]))

    # A concrete admissible problem for bounded evaluation.
    sizes = {
        "kSizeM": 2 * p.mwg,
        "kSizeN": 2 * p.nwg,
        "kSizeK": (p.algorithm.min_k_iterations + 1) * p.kwg,
    }
    consts = {**defines, **sizes}

    def c_eval(code, env: Dict[str, int]) -> int:
        return eval(code, {"__builtins__": {}}, env)  # noqa: S307

    code_cache: Dict[str, object] = {}

    def compile_expr(expr: str):
        code = code_cache.get(expr)
        if code is None:
            code = compile(_translate(expr), "<kernel>", "eval")
            code_cache[expr] = code
        return code

    # -- declarations ----------------------------------------------------
    declared: Dict[str, int] = {}
    expected_extents = {**model.local_extents, **model.private_extents}
    for ln in lines:
        m = _DECL_RE.match(ln.strip())
        if not m or m.group(1) not in expected_extents:
            continue
        name = m.group(1)
        try:
            declared[name] = c_eval(compile_expr(m.group(2)), dict(consts))
        except Exception:  # repro: allow(host.except.swallow) best-effort eval of foreign kernel text
            continue
        if declared[name] != expected_extents[name]:
            diags.append(Diagnostic(
                "source.local-decl", Severity.ERROR,
                f"declaration {name}[{m.group(2).strip()}] has extent "
                f"{declared[name]}, model expects {expected_extents[name]}",
                witness={"buffer": name, "declared": declared[name],
                         "expected": expected_extents[name]},
                paper=SOURCE_RULES["source.local-decl"][0]))
    for name in expected_extents:
        if name not in declared:
            diags.append(Diagnostic(
                "source.local-decl", Severity.ERROR,
                f"expected declaration of {name} not found in source",
                witness={"buffer": name},
                paper=SOURCE_RULES["source.local-decl"][0]))

    # -- barrier count ---------------------------------------------------
    nbar = text.count("barrier(CLK_LOCAL_MEM_FENCE)")
    if nbar < model.barrier_count:
        diags.append(Diagnostic(
            "source.barrier-count", Severity.ERROR,
            f"source contains {nbar} barrier(s); the "
            f"{p.algorithm.value} schedule requires {model.barrier_count}",
            witness={"found": nbar, "required": model.barrier_count},
            paper=SOURCE_RULES["source.barrier-count"][0]))

    # -- scoped walk: divergent barriers + index sampling ----------------
    rng = random.Random(_RANDOM_SEED)
    tainted = set(_TAINT_ROOTS)
    stack: List[_Frame] = [_Frame()]
    access_re = {
        name: re.compile(rf"(?:(&)\s*)?\b{name}\[")
        for name in expected_extents
    }
    flagged: set = set()

    def sample_once(corner_bits: Optional[int], var_order: List[str]) -> Optional[Dict[str, int]]:
        """One assignment over the current scope; None if a loop is empty."""
        env: Dict[str, int] = dict(consts)
        env["glid0"] = 0
        env["glid1"] = 0
        env["ggid0"] = 0
        env["ggid1"] = 0
        base_ranges = {
            "glid0": p.mdimc - 1, "glid1": p.ndimc - 1,
            "ggid0": sizes["kSizeM"] // p.mwg - 1,
            "ggid1": sizes["kSizeN"] // p.nwg - 1,
        }

        def pick(var: str, lo: int, hi: int) -> int:
            if hi <= lo:
                return lo
            if corner_bits is None:
                return rng.randint(lo, hi)
            return hi if (corner_bits >> var_order.index(var)) & 1 else lo

        for var, hi in base_ranges.items():
            env[var] = pick(var, 0, hi)
        for frame in stack:
            if frame.loop is not None:
                var, start_c, end_c, step_c = frame.loop
                start = c_eval(start_c, env)
                end = c_eval(end_c, env)
                step = c_eval(step_c, env)
                if start >= end or step <= 0:
                    return None
                values = range(start, end, step)
                if corner_bits is None:
                    env[var] = values[rng.randrange(len(values))]
                else:
                    env[var] = pick(var, values[0], values[-1])
            for name, code in frame.assigns:
                env[name] = c_eval(code, env)
        return env

    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        while line.startswith("}"):
            if len(stack) > 1:
                stack.pop()
            line = line[1:].strip()
        if not line or line.startswith("#"):
            continue
        if line.endswith("{"):
            header = line[:-1].strip()
            m = _FOR_RE.match(header)
            if m:
                var, start, end, step = m.group(1), m.group(2), m.group(3), m.group(4)
                loop = (var, compile_expr(start), compile_expr(end),
                        compile_expr(step or "1"))
                body_tainted = any(
                    re.search(rf"\b{t}\b", _translate(header)) for t in tainted)
                stack.append(_Frame(loop=loop, cond_tainted=body_tainted))
            else:
                cond_tainted = header.startswith("if") and any(
                    re.search(rf"\b{t}\b", _translate(header)) for t in tainted)
                stack.append(_Frame(cond_tainted=cond_tainted))
            continue

        m = _ASSIGN_RE.match(line)
        if m:
            name, expr = m.group(1), m.group(2)
            texpr = _translate(expr)
            try:
                code = compile_expr(expr)
            except SyntaxError:
                continue
            stack[-1].assigns.append((name, code))
            if any(re.search(rf"\b{t}\b", texpr) for t in tainted):
                tainted.add(name)
            continue

        if "barrier(" in line:
            guards = [f for f in stack if f.cond_tainted]
            if guards:
                diags.append(Diagnostic(
                    "barrier.divergent", Severity.ERROR,
                    f"line {lineno}: barrier under work-item-dependent "
                    "control flow",
                    witness={"line": lineno, "statement": line},
                    paper=SOURCE_RULES["barrier.divergent"][0]))
            continue

        # Array accesses on this statement: bounded evaluation.
        first_token = line.split(" ", 1)[0]
        if first_token in ("__local",) or _DECL_RE.match(line):
            continue
        for name, rx in access_re.items():
            for m in rx.finditer(line):
                if (name, lineno) in flagged:
                    break
                idx = _extract_index(line, m.end() - 1)
                if idx is None:
                    continue
                try:
                    code = compile_expr(idx)
                except SyntaxError:
                    continue
                pad = 0
                if m.group(1):  # &name[...] inside vloadN/vstoreN
                    vm = _VLOADSTORE_RE.search(line)
                    if vm:
                        pad = int(vm.group(1)) - 1
                extent = declared.get(name, expected_extents[name])
                var_order = ["glid0", "glid1", "ggid0", "ggid1"] + [
                    f.loop[0] for f in stack if f.loop is not None]
                ncorner = 2 ** min(len(var_order), _MAX_CORNER_VARS)
                trials = itertools.chain(
                    range(ncorner), itertools.repeat(None, samples))
                for corner in trials:
                    env = sample_once(corner, var_order)
                    if env is None:
                        continue
                    try:
                        value = c_eval(code, env)
                    except Exception:  # repro: allow(host.except.swallow) best-effort eval of foreign kernel text
                        break
                    if 0 <= value and value + pad < extent:
                        continue
                    witness = {
                        "buffer": name, "line": lineno, "index": idx.strip(),
                        "value": value, "extent": extent,
                        **{v: env[v] for v in var_order if v in env},
                    }
                    if pad:
                        witness["vector_pad"] = pad
                    diags.append(Diagnostic(
                        "source.local-index", Severity.ERROR,
                        f"line {lineno}: {name}[{idx.strip()}] evaluates to "
                        f"{value}{f' (+{pad} lanes)' if pad else ''}, "
                        f"declared extent {extent}",
                        witness=witness,
                        paper=SOURCE_RULES["source.local-index"][0]))
                    flagged.add((name, lineno))
                    break
    return diags
