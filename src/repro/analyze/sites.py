"""Shadow model of the emitter's memory accesses and barrier schedule.

:func:`build_model` re-derives, from a validated
:class:`~repro.codegen.params.KernelParams` alone, every memory access
the emitted kernel performs — as :class:`LinearIndex` forms over the
loop/lane variables — plus the cooperative staging maps and the
barrier-phase schedule of the BA/PL/DB algorithm bodies (paper
Figs. 4-6).  The bounds and race analyses operate on this model;
:mod:`repro.analyze.source_checks` independently cross-checks the
emitted C text against it, so a drift between emitter and model is
itself a detectable finding.

Global accesses are decomposed **per dimension**: an A read at
``(gk, gm)`` with ``gm = get_group_id(0)*MWG + r`` is in-bounds in M for
every admissible size exactly when the within-tile residue ``r`` lies in
``[0, MWG)`` — because the ND-range gives ``get_group_id(0) < M/MWG``
(unguarded kernels run on blocking-multiple sizes;
``KernelPlan.check_problem``).  The K dimension works the same way with
one extra ingredient, the **base-slack lemma**: every k-expression is
``base + offset`` where the loop structure bounds ``base`` by
``kSizeK - slack`` (e.g. the BA ``pwg`` loop gives ``slack = KWG``; the
DB main loop ``pwg < kSizeK - KWG`` gives ``slack = 2*KWG``; the
prologue base ``0`` gives ``slack = min_k_iterations*KWG``).  The model
stores each global access as residue forms with their dimension extents
(the slack, for K), and the bounds pass proves ``0 <= residue < extent``.

For edge-guarded kernels the group grid over-covers the matrices, so
residue containment is *not* sufficient; instead every global access
must be guarded (the bounds-checked ``READ_A``/``READ_B`` macros, or the
per-lane guarded merge).  The model records a ``guarded`` bit per site
and the bounds pass enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analyze.intervals import LinearIndex
from repro.codegen.algorithms import Algorithm
from repro.codegen.params import KernelParams

__all__ = [
    "FlatAccess",
    "DimResidue",
    "GlobalAccess",
    "StagingMap",
    "Phase",
    "KernelModel",
    "build_model",
]


@dataclass(frozen=True)
class FlatAccess:
    """One local/private-buffer access, as a flat element index."""

    site: str
    buffer: str
    space: str  # "local" | "private"
    kind: str   # "read" | "write"
    index: LinearIndex
    extent: int          # declared buffer size, in elements
    vector_pad: int = 0  # vload/vstore touch [index, index + pad]


@dataclass(frozen=True)
class DimResidue:
    """A global access's within-tile residue along one dimension."""

    dim: str  # "m" | "n" | "k"
    index: LinearIndex
    #: Containment target: the tile extent (MWG/NWG) or, for K, the
    #: guaranteed base slack (see module docstring).
    extent: int
    vector_pad: int = 0


@dataclass(frozen=True)
class GlobalAccess:
    """One global-memory access, decomposed per dimension."""

    site: str
    matrix: str  # "a" | "b" | "c"
    kind: str    # "read" | "write"
    #: True when the access is bounds-checked in the source (guarded
    #: READ macro / per-lane guarded merge); required for guard_edges.
    guarded: bool
    residues: Tuple[DimResidue, ...]


@dataclass(frozen=True)
class StagingMap:
    """The cooperative write map of one global->local staging loop.

    Work-item ``tid`` splits into ``u = tid / dim_major`` and
    ``v = tid % dim_major`` (Section III-C reshape); the map writes
    local element ``kpart * m_extent + mpart``.  Injectivity of
    ``(u, li, v, lj) -> index`` is what excludes write-write races.
    """

    site: str
    buffer: str
    kpart: LinearIndex  # over u (stride = rows per loader) and li
    mpart: LinearIndex  # over v and lj
    k_extent: int       # buffer height (KWG, or KWG/2 for DB halves)
    m_extent: int       # buffer width (MWG or NWG)


@dataclass(frozen=True)
class Phase:
    """One barrier-delimited region of the schedule.

    Consecutive phases are separated by ``barrier(CLK_LOCAL_MEM_FENCE)``;
    the list covers the prologue, two main-loop iterations (to expose
    loop-carried adjacency) and the epilogue.
    """

    name: str
    writes: Tuple[str, ...]  # local buffers written in this phase
    reads: Tuple[str, ...]   # local buffers read in this phase


@dataclass
class KernelModel:
    """Everything the static analyses need, derived from the params."""

    params: KernelParams
    #: Declared local buffers -> element extents.
    local_extents: Dict[str, int] = field(default_factory=dict)
    #: Declared private arrays -> element extents.
    private_extents: Dict[str, int] = field(default_factory=dict)
    flat: List[FlatAccess] = field(default_factory=list)
    global_accesses: List[GlobalAccess] = field(default_factory=list)
    staging: List[StagingMap] = field(default_factory=list)
    phases: List[Phase] = field(default_factory=list)
    #: barrier() calls the emitted body must contain.
    barrier_count: int = 0


# -- ownership expressions (mirror emitter._row_expr/_colv_expr) --------
def _row_terms(p: KernelParams) -> List[Tuple[str, int, int, int]]:
    """C/A-tile row owned by (i0, a): the M-direction ownership map."""
    if p.stride.m:
        return [
            ("a_div_vw", p.vw * p.mdimc, 0, p.mwi // p.vw - 1),
            ("i0", p.vw, 0, p.mdimc - 1),
            ("a_mod_vw", 1, 0, p.vw - 1),
        ]
    return [("i0", p.mwi, 0, p.mdimc - 1), ("a", 1, 0, p.mwi - 1)]


def _colv_terms(p: KernelParams) -> List[Tuple[str, int, int, int]]:
    """First column of vector slot (j0, bv): N-direction ownership."""
    nwiv = p.nwi // p.vw
    if p.stride.n:
        return [("bv", p.vw * p.ndimc, 0, nwiv - 1), ("j0", p.vw, 0, p.ndimc - 1)]
    return [("j0", p.nwi, 0, p.ndimc - 1), ("bv", p.vw, 0, nwiv - 1)]


def build_model(p: KernelParams) -> KernelModel:
    """Derive the access-site/schedule model for one parameter vector."""
    m = KernelModel(params=p)
    nwiv = p.nwi // p.vw
    copies = p.algorithm.local_buffer_copies
    half = copies == 2  # DB: two half-height buffers per shared matrix

    # -- declarations (mirror _emit_local_decls/_emit_private_decls) ----
    if p.shared_a:
        kext = p.kwg // 2 if half else p.kwg
        for buf in (("alm0", "alm1") if half else ("alm",)):
            m.local_extents[buf] = kext * p.mwg
    if p.shared_b:
        kext = p.kwg // 2 if half else p.kwg
        for buf in (("blm0", "blm1") if half else ("blm",)):
            m.local_extents[buf] = kext * p.nwg
    m.private_extents["cpm"] = p.mwi * nwiv
    m.private_extents["apm"] = p.mwi * p.kwi
    m.private_extents["bpm"] = p.kwi * nwiv
    if p.algorithm.uses_private_staging:
        if p.shared_a:
            m.private_extents["apm0"] = p.mwia * p.kwia
        if p.shared_b:
            m.private_extents["bpm0"] = p.kwib * p.nwib

    # -- helpers mirroring the emitter's loop bodies --------------------
    def stage(site: str, matrix: str, buf: str, khalf: bool,
              koff: int, slack: int) -> None:
        """_emit_stage_to_local: cooperative global -> local staging."""
        if matrix == "a":
            dim_major, wi_major, wi_k, extent = (
                p.effective_mdima, p.mwia, p.kwia, p.mwg)
            dim_k = p.kdima
        else:
            dim_major, wi_major, wi_k, extent = (
                p.effective_ndimb, p.nwib, p.kwib, p.nwg)
            dim_k = p.kdimb
        height = wi_k // 2 if khalf else wi_k
        u, v = f"tid/{dim_major}", f"tid%{dim_major}"
        kpart = LinearIndex.build(
            [(u, height, 0, dim_k - 1), ("li", 1, 0, height - 1)])
        mpart = LinearIndex.build(
            [(v, wi_major, 0, dim_major - 1), ("lj", 1, 0, wi_major - 1)])
        k_extent = m.local_extents[buf] // extent
        m.staging.append(StagingMap(site, buf, kpart, mpart, k_extent, extent))
        m.flat.append(FlatAccess(
            site, buf, "local", "write",
            LinearIndex.build(
                [(u, height * extent, 0, dim_k - 1), ("li", extent, 0, height - 1),
                 (v, wi_major, 0, dim_major - 1), ("lj", 1, 0, wi_major - 1)]),
            m.local_extents[buf]))
        m.global_accesses.append(GlobalAccess(
            site, matrix, "read", guarded=p.guard_edges, residues=(
                DimResidue("k", LinearIndex.build(
                    [(u, height, 0, dim_k - 1), ("li", 1, 0, height - 1)],
                    const=koff), slack),
                DimResidue("m" if matrix == "a" else "n", mpart, extent),
            )))

    def prefetch(site: str, matrix: str, koff: int, slack: int) -> None:
        """_emit_prefetch_private: PL next-tile -> private staging."""
        if matrix == "a":
            dim_major, wi_major, wi_k, extent, pmbuf = (
                p.effective_mdima, p.mwia, p.kwia, p.mwg, "apm0")
            dim_k = p.kdima
        else:
            dim_major, wi_major, wi_k, extent, pmbuf = (
                p.effective_ndimb, p.nwib, p.kwib, p.nwg, "bpm0")
            dim_k = p.kdimb
        u, v = f"tid/{dim_major}", f"tid%{dim_major}"
        m.flat.append(FlatAccess(
            site, pmbuf, "private", "write",
            LinearIndex.build(
                [("li", wi_major, 0, wi_k - 1), ("lj", 1, 0, wi_major - 1)]),
            m.private_extents[pmbuf]))
        m.global_accesses.append(GlobalAccess(
            site, matrix, "read", guarded=p.guard_edges, residues=(
                DimResidue("k", LinearIndex.build(
                    [(u, wi_k, 0, dim_k - 1), ("li", 1, 0, wi_k - 1)],
                    const=koff), slack),
                DimResidue("m" if matrix == "a" else "n", LinearIndex.build(
                    [(v, wi_major, 0, dim_major - 1), ("lj", 1, 0, wi_major - 1)]),
                    extent),
            )))

    def commit(site: str, matrix: str, buf: str) -> None:
        """_emit_commit_local: PL private staging -> local."""
        if matrix == "a":
            dim_major, wi_major, wi_k, extent, pmbuf = (
                p.effective_mdima, p.mwia, p.kwia, p.mwg, "apm0")
            dim_k = p.kdima
        else:
            dim_major, wi_major, wi_k, extent, pmbuf = (
                p.effective_ndimb, p.nwib, p.kwib, p.nwg, "bpm0")
            dim_k = p.kdimb
        u, v = f"tid/{dim_major}", f"tid%{dim_major}"
        kpart = LinearIndex.build(
            [(u, wi_k, 0, dim_k - 1), ("li", 1, 0, wi_k - 1)])
        mpart = LinearIndex.build(
            [(v, wi_major, 0, dim_major - 1), ("lj", 1, 0, wi_major - 1)])
        m.staging.append(StagingMap(
            site, buf, kpart, mpart, m.local_extents[buf] // extent, extent))
        m.flat.append(FlatAccess(
            site, buf, "local", "write",
            LinearIndex.build(
                [(u, wi_k * extent, 0, dim_k - 1), ("li", extent, 0, wi_k - 1),
                 (v, wi_major, 0, dim_major - 1), ("lj", 1, 0, wi_major - 1)]),
            m.local_extents[buf]))
        m.flat.append(FlatAccess(
            site, pmbuf, "private", "read",
            LinearIndex.build(
                [("li", wi_major, 0, wi_k - 1), ("lj", 1, 0, wi_major - 1)]),
            m.private_extents[pmbuf]))

    def inner(site: str, kstart: int, kend: int, la: str, lb: str,
              kslack: int, local_koff: int = 0) -> None:
        """_emit_inner_loop: the pwi loop over one staged tile."""
        pwi = ("pwi", 1, kstart, kend - p.kwi)
        kk = ("kk", 1, 0, p.kwi - 1)
        row = _row_terms(p)
        colv = _colv_terms(p)
        pad = p.vw - 1 if p.vw > 1 else 0
        if p.shared_a:
            m.flat.append(FlatAccess(
                f"{site}.load_a", la, "local", "read",
                LinearIndex.build(
                    [("pwi", p.mwg, kstart, kend - p.kwi),
                     ("kk", p.mwg, 0, p.kwi - 1)] + row,
                    const=-local_koff * p.mwg),
                m.local_extents[la]))
        else:
            m.global_accesses.append(GlobalAccess(
                f"{site}.load_a", "a", "read", guarded=p.guard_edges, residues=(
                    DimResidue("k", LinearIndex.build([pwi, kk]), kslack),
                    DimResidue("m", LinearIndex.build(row), p.mwg),
                )))
        m.flat.append(FlatAccess(
            f"{site}.load_a", "apm", "private", "write",
            LinearIndex.build(
                [("a", p.kwi, 0, p.mwi - 1), ("kk", 1, 0, p.kwi - 1)]),
            m.private_extents["apm"]))
        if p.shared_b:
            m.flat.append(FlatAccess(
                f"{site}.load_b", lb, "local", "read",
                LinearIndex.build(
                    [("pwi", p.nwg, kstart, kend - p.kwi),
                     ("kk", p.nwg, 0, p.kwi - 1)] + colv,
                    const=-local_koff * p.nwg),
                m.local_extents[lb], vector_pad=pad))
        else:
            m.global_accesses.append(GlobalAccess(
                f"{site}.load_b", "b", "read", guarded=p.guard_edges, residues=(
                    DimResidue("k", LinearIndex.build([pwi, kk]), kslack),
                    DimResidue("n", LinearIndex.build(colv), p.nwg,
                               vector_pad=pad),
                )))
        m.flat.append(FlatAccess(
            f"{site}.load_b", "bpm", "private", "write",
            LinearIndex.build(
                [("kk", nwiv, 0, p.kwi - 1), ("bv", 1, 0, nwiv - 1)]),
            m.private_extents["bpm"]))
        m.flat.append(FlatAccess(
            f"{site}.mad", "cpm", "private", "write",
            LinearIndex.build(
                [("a", nwiv, 0, p.mwi - 1), ("bv", 1, 0, nwiv - 1)]),
            m.private_extents["cpm"]))

    # -- algorithm bodies (mirror _emit_body_ba/_pl/_db) ----------------
    uses_local = p.shared_a or p.shared_b
    min_k = p.algorithm.min_k_iterations * p.kwg
    alg = p.algorithm
    if alg is Algorithm.PL and not uses_local:
        alg = Algorithm.BA  # degenerate PL collapses to BA

    if alg is Algorithm.BA:
        if p.shared_a:
            stage("ba.stage_a", "a", "alm", False, 0, p.kwg)
        if p.shared_b:
            stage("ba.stage_b", "b", "blm", False, 0, p.kwg)
        inner("ba", 0, p.kwg, "alm", "blm", p.kwg)
        if uses_local:
            m.barrier_count = 2
            w = tuple(b for b, on in (("alm", p.shared_a), ("blm", p.shared_b)) if on)
            m.phases = [
                Phase("ba.stage", w, ()), Phase("ba.compute", (), w),
                Phase("ba.stage'", w, ()), Phase("ba.compute'", (), w),
            ]
    elif alg is Algorithm.PL:
        # Prologue stages tile 0 (base 0, slack = min_k buffers of K).
        if p.shared_a:
            stage("pl.prologue_a", "a", "alm", False, 0, min_k)
            prefetch("pl.prefetch_a", "a", p.kwg, 2 * p.kwg)
            commit("pl.commit_a", "a", "alm")
        if p.shared_b:
            stage("pl.prologue_b", "b", "blm", False, 0, min_k)
            prefetch("pl.prefetch_b", "b", p.kwg, 2 * p.kwg)
            commit("pl.commit_b", "b", "blm")
        inner("pl", 0, p.kwg, "alm", "blm", p.kwg)
        m.barrier_count = 3
        w = tuple(b for b, on in (("alm", p.shared_a), ("blm", p.shared_b)) if on)
        m.phases = [
            Phase("pl.prologue", w, ()),
            Phase("pl.compute", (), w), Phase("pl.commit", w, ()),
            Phase("pl.compute'", (), w), Phase("pl.commit'", w, ()),
            Phase("pl.epilogue", (), w),
        ]
    else:  # DB
        la0, la1 = ("alm0", "alm1") if p.shared_a else ("alm", "alm")
        lb0, lb1 = ("blm0", "blm1") if p.shared_b else ("blm", "blm")
        if p.shared_a:
            stage("db.prologue_a", "a", la0, True, 0, min_k)
            stage("db.stage_a1", "a", la1, True, p.kwg // 2, 2 * p.kwg)
            stage("db.stage_a0", "a", la0, True, p.kwg, 2 * p.kwg)
            stage("db.epilogue_a", "a", la1, True, 0, p.kwg // 2)
        if p.shared_b:
            stage("db.prologue_b", "b", lb0, True, 0, min_k)
            stage("db.stage_b1", "b", lb1, True, p.kwg // 2, 2 * p.kwg)
            stage("db.stage_b0", "b", lb0, True, p.kwg, 2 * p.kwg)
            stage("db.epilogue_b", "b", lb1, True, 0, p.kwg // 2)
        inner("db.first", 0, p.kwg // 2, la0, lb0, p.kwg)
        inner("db.second", p.kwg // 2, p.kwg, la1, lb1, p.kwg,
              local_koff=p.kwg // 2)
        m.barrier_count = 4
        w0 = tuple(b for b, on in ((la0, p.shared_a), (lb0, p.shared_b)) if on)
        w1 = tuple(b for b, on in ((la1, p.shared_a), (lb1, p.shared_b)) if on)
        m.phases = [
            Phase("db.prologue", w0, ()),
            Phase("db.iter.first", w1, w0), Phase("db.iter.second", w0, w1),
            Phase("db.iter.first'", w1, w0), Phase("db.iter.second'", w0, w1),
            Phase("db.epilogue.first", w1, w0), Phase("db.epilogue.second", (), w1),
        ]

    # -- the merge (alpha/beta update of C) -----------------------------
    pad = p.vw - 1 if p.vw > 1 else 0
    for kind in ("read", "write"):
        m.global_accesses.append(GlobalAccess(
            "merge", "c", kind, guarded=p.guard_edges, residues=(
                DimResidue("m", LinearIndex.build(_row_terms(p)), p.mwg),
                DimResidue("n", LinearIndex.build(_colv_terms(p)), p.nwg,
                           vector_pad=pad),
            )))
    m.flat.append(FlatAccess(
        "merge", "cpm", "private", "read",
        LinearIndex.build([("a", nwiv, 0, p.mwi - 1), ("bv", 1, 0, nwiv - 1)]),
        m.private_extents["cpm"]))
    return m
