"""The :class:`StaticVerifier` facade and batch analysis entry points.

Two distinct verdicts are offered, with different contracts:

:meth:`StaticVerifier.gate`
    the **search gate**: constraint rules only (structural + device),
    re-stating exactly what :func:`repro.tuner.parallel.measure_once`
    checks before timing a candidate.  Agreement with the simulator is
    by construction — the gate uses the same footprint formulas and
    occupancy model — so gating a search prunes failing candidates
    without ever changing the winner.

:meth:`StaticVerifier.analyze`
    the **full analysis**: constraints plus the model-level bounds/race
    proofs and (when the emitted source is supplied) the text-level
    cross-checks.  These extra passes detect *generator* bugs, which no
    valid parameter vector should trigger — the differential test-suite
    holds ``analyze`` clean over the fuzz corpus and sampled spaces.

Verdicts are memoized per parameter vector (`KernelParams.cache_key`),
making the gate cheap enough to sit inside the tuner's hot enumeration
loop.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Union

from repro.analyze.bounds import BOUNDS_RULES, check_bounds
from repro.analyze.constraints import (
    DEVICE_RULES,
    STRUCTURAL_RULES,
    failure_class,
    prove_constraints,
    structural_diagnostics,
)
from repro.analyze.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analyze.races import RACE_RULES, check_races
from repro.analyze.sites import build_model
from repro.analyze.source_checks import SOURCE_RULES, check_source
from repro.codegen.params import KernelParams
from repro.devices.specs import DeviceSpec
from repro.errors import ParameterError

__all__ = [
    "StaticVerifier",
    "analyze_params",
    "analyze_catalog",
    "analyze_space_sample",
]

Subject = Union[KernelParams, Mapping]


def _subject_label(subject: Subject) -> str:
    if isinstance(subject, KernelParams):
        return subject.summary()
    return "raw " + ", ".join(f"{k}={v}" for k, v in sorted(dict(subject).items()))


class StaticVerifier:
    """Static safety verdicts for generated GEMM kernels.

    ``spec`` scopes the device rules; without one only device-neutral
    rules run (structural constraints, bounds, races, source checks).
    """

    def __init__(self, spec: Optional[DeviceSpec] = None) -> None:
        self.spec = spec
        self._gate_cache: Dict[str, Optional[str]] = {}

    # -- search gate ----------------------------------------------------
    def gate(self, params: KernelParams) -> Optional[str]:
        """First violated constraint rule id, or None when admissible.

        Mirrors :func:`repro.tuner.parallel.measure_once`: a non-None
        return means the simulator would record the candidate as failed
        (generation/build/launch) without producing a measurement.
        """
        key = params.cache_key()
        if key not in self._gate_cache:
            diags = prove_constraints(self.spec, params)
            errors = [d for d in diags if d.severity is Severity.ERROR]
            self._gate_cache[key] = errors[0].rule if errors else None
        return self._gate_cache[key]

    def gate_class(self, params: KernelParams) -> Optional[str]:
        """The measure_once failure class ('generation'/'build'/'launch')."""
        diags = prove_constraints(self.spec, params)
        return failure_class(diags)

    # -- full analysis --------------------------------------------------
    def analyze(
        self,
        subject: Subject,
        source: Optional[str] = None,
        deep: bool = True,
        samples: int = 64,
    ) -> AnalysisReport:
        """Full diagnostic report for one parameter vector.

        ``source`` adds the text-level cross-checks for an already
        emitted kernel; ``deep=False`` restricts to the constraint
        rules (the gate's view, but with *all* violations reported).
        """
        report = AnalysisReport(
            subject=_subject_label(subject),
            device=self.spec.codename if self.spec else "",
        )
        checked: List[str] = list(STRUCTURAL_RULES)
        if self.spec is not None:
            checked.extend(DEVICE_RULES)
        report.extend(prove_constraints(self.spec, subject))

        structurally_valid = not any(
            d.rule.startswith("param.") for d in report.errors
        )
        if deep and structurally_valid:
            params = self._coerce(subject, report)
            if params is not None:
                model = build_model(params)
                report.extend(check_bounds(model))
                checked.extend(BOUNDS_RULES)
                report.extend(check_races(model))
                checked.extend(RACE_RULES)
                if source is not None:
                    report.extend(check_source(params, source, model, samples))
                    checked.extend(SOURCE_RULES)
        report.checked_rules = tuple(checked)
        return report

    @staticmethod
    def _coerce(subject: Subject, report: AnalysisReport) -> Optional[KernelParams]:
        if isinstance(subject, KernelParams):
            return subject
        try:
            return KernelParams.from_dict(dict(subject))
        except (ParameterError, TypeError, ValueError, KeyError) as exc:
            report.extend([Diagnostic(
                "param.fields", Severity.ERROR,
                f"vector rejected by KernelParams despite passing the "
                f"structural rules: {exc}",
                witness={"error": str(exc)},
            )])
            return None


def analyze_params(
    subject: Subject,
    device: Optional[str] = None,
    with_source: bool = True,
    samples: int = 64,
) -> AnalysisReport:
    """Analyze one vector, optionally against a device, emitting source.

    Source-level checks require a structurally valid vector (the
    emitter refuses anything else), so ``with_source`` is skipped for
    invalid ones.
    """
    from repro.devices.catalog import get_device_spec

    spec = get_device_spec(device) if device else None
    verifier = StaticVerifier(spec)
    source = None
    if with_source and not structural_errors(subject):
        from repro.codegen.emitter import emit_kernel_source

        params = (subject if isinstance(subject, KernelParams)
                  else KernelParams.from_dict(dict(subject)))
        source = emit_kernel_source(params)
    return verifier.analyze(subject, source=source, samples=samples)


def structural_errors(subject: Subject) -> List[Diagnostic]:
    """ERROR-severity structural findings for a subject (helper)."""
    return [d for d in structural_diagnostics(subject)
            if d.severity is Severity.ERROR]


def analyze_catalog(
    device: Optional[str] = None, samples: int = 64
) -> List[AnalysisReport]:
    """Full analysis of every shipped pretuned kernel (CI gate).

    ``device`` restricts to one codename; default is the whole catalog.
    """
    from repro.tuner.pretuned import pretuned_catalog

    reports = []
    for codename, precision, params in pretuned_catalog():
        if device is not None and codename != device:
            continue
        report = analyze_params(params, device=codename, samples=samples)
        report.subject = f"{codename}/{precision} pretuned: {params.summary()}"
        reports.append(report)
    return reports


def analyze_space_sample(
    device: str,
    precision: str,
    sample: int = 500,
    seed: int = 0,
    with_source: bool = False,
    samples: int = 64,
) -> List[AnalysisReport]:
    """Analyze a deterministic sample of the device's search space.

    ``enumerate_space`` yields only structurally valid vectors, so any
    ERROR here beyond the device-budget rules indicates a generator or
    analyzer bug — the acceptance criterion the differential tests
    enforce.
    """
    from repro.codegen.space import enumerate_space
    from repro.devices.catalog import get_device_spec

    spec = get_device_spec(device)
    reports = []
    for params in enumerate_space(spec, precision, limit=sample, seed=seed):
        reports.append(analyze_params(
            params, device=device, with_source=with_source, samples=samples))
    return reports
