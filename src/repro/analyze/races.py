"""Race analysis: staging-reshape injectivity and barrier phases.

Two classes of local-memory race are possible in the generated kernels:

**Write-write within one staging loop.**  The Section III-C reshape
splits ``tid`` into a ``(tid / DIM, tid % DIM)`` loader grid; two
work-items collide exactly when either the K-part map ``(u, li) ->
u*height + li`` or the M-part map ``(v, lj) -> v*width + lj`` is
non-injective (the local index is ``kpart * m_extent + mpart`` and the
bounds pass pins ``mpart`` inside ``[0, m_extent)``, so the combined map
is injective iff both parts are).  Each part ranges over at most a few
thousand values, so injectivity is decided by exhaustive enumeration,
which also yields the two colliding work-item/loop assignments as the
witness.

**Write-read across a missing barrier.**  The BA/PL/DB schedules are
modelled as barrier-delimited :class:`~repro.analyze.sites.Phase` lists
(covering the prologue, two main-loop iterations — to expose the
loop-carried wrap-around — and the epilogue).  The safety condition is
that no local buffer is both written and read inside one phase; DB is
the interesting case, where correctness rests on the half-buffers
strictly alternating roles between consecutive phases.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analyze.diagnostics import Diagnostic, Severity
from repro.analyze.intervals import LinearIndex
from repro.analyze.sites import KernelModel

__all__ = ["RACE_RULES", "check_staging", "check_phases", "check_races"]

RACE_RULES: Dict[str, tuple] = {
    "race.staging-overlap": (
        "III-C",
        "the MdimA/NdimB loader-grid reshape assigns each local element "
        "to exactly one work-item (no write-write race)",
    ),
    "race.barrier-phase": (
        "III-E",
        "no local buffer is both written and read within one "
        "barrier-delimited phase of the BA/PL/DB schedule",
    ),
    "barrier.missing": (
        "III-E",
        "kernels staging through local memory separate staging from "
        "compute with barrier(CLK_LOCAL_MEM_FENCE)",
    ),
}


def _first_collision(index: LinearIndex) -> Tuple[dict, dict, int] | None:
    """Exhaustively search for two assignments mapping to one value."""
    seen: Dict[int, dict] = {}
    assignments = [dict()]
    for t in index.terms:
        assignments = [
            {**a, t.var: v} for a in assignments for v in range(t.lo, t.hi + 1)
        ]
    for a in assignments:
        v = index.value(a)
        if v in seen and seen[v] != a:
            return seen[v], a, v
        seen.setdefault(v, a)
    return None


def check_staging(model: KernelModel) -> List[Diagnostic]:
    """Write-write race findings for every staging map."""
    diags: List[Diagnostic] = []
    paper = RACE_RULES["race.staging-overlap"][0]
    for st in model.staging:
        for part, index in (("k", st.kpart), ("m", st.mpart)):
            hit = _first_collision(index)
            if hit is None:
                continue
            first, second, value = hit
            diags.append(Diagnostic(
                "race.staging-overlap", Severity.ERROR,
                f"{st.site}: two loader work-items write "
                f"{st.buffer} {part}-part {index.render()} = {value}",
                witness={"site": st.site, "buffer": st.buffer,
                         "part": part, "value": value,
                         "first": first, "second": second},
                paper=paper))
    return diags


def check_phases(model: KernelModel) -> List[Diagnostic]:
    """Write-read conflicts inside barrier-delimited phases."""
    diags: List[Diagnostic] = []
    for ph in model.phases:
        clash = sorted(set(ph.writes) & set(ph.reads))
        if clash:
            diags.append(Diagnostic(
                "race.barrier-phase", Severity.ERROR,
                f"phase {ph.name}: buffer(s) {', '.join(clash)} both "
                "written and read with no intervening barrier",
                witness={"phase": ph.name, "buffers": clash},
                paper=RACE_RULES["race.barrier-phase"][0]))
    if model.local_extents and model.barrier_count == 0:
        diags.append(Diagnostic(
            "barrier.missing", Severity.ERROR,
            "kernel stages through local memory but its schedule "
            "contains no barrier",
            witness={"local_buffers": sorted(model.local_extents)},
            paper=RACE_RULES["barrier.missing"][0]))
    return diags


def check_races(model: KernelModel) -> List[Diagnostic]:
    """All race findings for one kernel model."""
    return check_staging(model) + check_phases(model)
