"""Crash-safe persistence rule: no raw write-mode ``open`` calls.

Every artifact the system persists must go through
:mod:`repro.persist` (write-tmp → fsync → atomic rename, checksummed),
so a SIGKILL at any instant leaves either the old complete file or the
new complete file — never a torn one.  A bare ``open(path, "w")``
anywhere else silently reintroduces the torn-write window that PR 2
closed; this rule makes that a lint error.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Tuple

from repro.analyze.host.engine import Finding, HostRule
from repro.analyze.host.model import LintSource, attribute_tail, canonical_name

__all__ = ["RawWriteRule"]

#: The one module allowed to open files for writing: the atomic-rename
#: implementation itself.
_ALLOWED_SUFFIXES: Tuple[str, ...] = ("repro/persist.py",)

_WRITE_MODE_CHARS = set("wax+")


def _write_mode(node: ast.Call) -> Optional[str]:
    """The call's mode string when it requests write access, else None."""
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if _WRITE_MODE_CHARS & set(mode.value):
            return mode.value
    return None


class RawWriteRule(HostRule):
    rule_id = "host.persist.raw-write"
    description = (
        "write-mode open() outside repro/persist.py — artifacts must be "
        "written via atomic_write/dump_json_atomic (crash safety)"
    )

    def __init__(self, allowed_suffixes: Tuple[str, ...] = _ALLOWED_SUFFIXES):
        self.allowed_suffixes = allowed_suffixes

    def check(self, src: LintSource) -> Iterable[Finding]:
        if any(src.relpath.endswith(sfx) for sfx in self.allowed_suffixes):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_name(node.func, src.imports)
            is_open = name in ("open", "io.open") or (
                name is None and attribute_tail(node.func) == "open"
            )
            if not is_open:
                continue
            mode = _write_mode(node)
            if mode is None:
                continue
            yield Finding(
                rule=self.rule_id,
                relpath=src.relpath,
                line=node.lineno,
                message=(
                    f"raw open(..., {mode!r}) bypasses crash-safe "
                    "persistence; write through repro.persist.atomic_write "
                    "/ atomic_write_bytes / dump_json_atomic"
                ),
                witness={"mode": mode},
            )
