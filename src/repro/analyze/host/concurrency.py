"""Concurrency rules: locked shared mutation and lock-order consistency.

``host.race.unlocked-attr``
    A class that *owns concurrency* — it starts ``threading.Thread``s,
    constructs ``concurrent.futures`` executors, or declares a lock
    attribute via ``threading.Lock()``/``RLock()`` — promises that its
    instance state may be reached from more than one thread.  Inside
    such classes, every mutation of ``self``-attributes outside
    ``__init__``/``__new__`` (plain assignment, augmented assignment,
    and subscript stores on a ``self`` attribute) must happen lexically
    under ``with self.<...lock...>:``.  Construction is exempt because
    ``__init__`` happens-before any sharing.

``host.lock.order``
    Records every *nested* lock acquisition (``with a: ... with b:``)
    as a directed edge a→b and reports any cycle in the whole-tree
    graph — the static shadow of the dynamic
    :class:`repro.testing.sanitize.LockOrderRecorder`.  Two code paths
    that acquire the same two locks in opposite orders can deadlock
    under the exact thread interleaving the chaos suites create.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analyze.host.engine import Finding, HostRule
from repro.analyze.host.model import LintSource, canonical_name

__all__ = ["UnlockedSharedMutationRule", "LockOrderRule"]

_THREAD_FACTORIES = frozenset({
    "threading.Thread",
    "threading.Timer",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
})

_LOCK_FACTORIES = frozenset({
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
})


def _is_lockish(attr: str) -> bool:
    return "lock" in attr.lower()


def _self_attr(node: ast.expr, self_name: str) -> Optional[str]:
    """``self.x`` (or ``self.x[k]``) -> ``"x"``; anything else -> None."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _method_self_name(fn: ast.AST) -> Optional[str]:
    """The receiver parameter name, or None for static/argless methods."""
    for deco in getattr(fn, "decorator_list", ()):
        if isinstance(deco, ast.Name) and deco.id == "staticmethod":
            return None
    args = fn.args.posonlyargs + fn.args.args
    return args[0].arg if args else None


class UnlockedSharedMutationRule(HostRule):
    rule_id = "host.race.unlocked-attr"
    description = (
        "instance attributes of thread-owning classes mutated outside a "
        "held self-lock"
    )

    def check(self, src: LintSource) -> Iterable[Finding]:
        for cls in ast.walk(src.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(src, cls)

    # ------------------------------------------------------------------
    def _check_class(self, src: LintSource, cls: ast.ClassDef) -> Iterable[Finding]:
        methods = [
            n for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        owns_concurrency = False
        lock_attrs: Set[str] = set()
        for method in methods:
            self_name = _method_self_name(method)
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                name = canonical_name(node.func, src.imports)
                if name in _THREAD_FACTORIES:
                    owns_concurrency = True
            if not self_name:
                continue
            for node in ast.walk(method):
                # `self.<attr> = threading.Lock()` declares shared state.
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    name = canonical_name(node.value.func, src.imports)
                    if name in _LOCK_FACTORIES:
                        for t in node.targets:
                            attr = _self_attr(t, self_name)
                            if attr:
                                lock_attrs.add(attr)
                                owns_concurrency = True
        if not owns_concurrency:
            return
        for method in methods:
            if method.name in ("__init__", "__new__", "__del__"):
                continue
            self_name = _method_self_name(method)
            if not self_name:
                continue
            yield from self._check_method(
                src, cls.name, method, self_name, lock_attrs
            )

    def _check_method(
        self,
        src: LintSource,
        cls_name: str,
        method: ast.AST,
        self_name: str,
        lock_attrs: Set[str],
    ) -> Iterable[Finding]:
        findings: List[Finding] = []

        def holds_lock(item: ast.withitem) -> bool:
            expr = item.context_expr
            # `with self._lock:` and `with self._lock.acquire_timeout():`
            if isinstance(expr, ast.Call):
                expr = expr.func
            attr = _self_attr(expr, self_name)
            if attr and (_is_lockish(attr) or attr in lock_attrs):
                return True
            if isinstance(expr, ast.Attribute) and _is_lockish(expr.attr):
                return True
            return False

        def visit(node: ast.AST, locked: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                now_locked = locked or any(holds_lock(i) for i in node.items)
                for child in node.body:
                    visit(child, now_locked)
                return
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for t in targets:
                attr = _self_attr(t, self_name)
                if attr and not locked and attr not in lock_attrs:
                    findings.append(Finding(
                        rule=self.rule_id,
                        relpath=src.relpath,
                        line=node.lineno,
                        message=(
                            f"{cls_name}.{method.name} mutates self.{attr} "
                            "without holding a self lock, but the class "
                            "shares state with threads/executors; wrap the "
                            "mutation in `with self.<lock>:` or justify "
                            "with a pragma"
                        ),
                        witness={
                            "class": cls_name,
                            "method": method.name,
                            "attribute": attr,
                        },
                    ))
            for child in ast.iter_child_nodes(node):
                visit(child, locked)

        for stmt in method.body:
            visit(stmt, False)
        return findings


class LockOrderRule(HostRule):
    rule_id = "host.lock.order"
    description = (
        "no two code paths may acquire the same pair of locks in "
        "opposite nesting orders (deadlock inversion)"
    )

    def __init__(self) -> None:
        #: (outer-label, inner-label) -> first witnessing (path, line).
        self.edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

    # ------------------------------------------------------------------
    def check(self, src: LintSource) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                for fn in node.body:
                    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._scan_function(src, node.name, fn)
        for fn in src.tree.body:
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(src, "", fn)
        return ()

    def _lock_label(
        self, src: LintSource, scope: str, fn: ast.AST, expr: ast.expr
    ) -> Optional[str]:
        if isinstance(expr, ast.Call):
            return None  # e.g. `with threading.Lock():` — a fresh lock
        if not isinstance(expr, (ast.Name, ast.Attribute)):
            return None
        seg = src.segment(expr)
        if not seg or not _is_lockish(seg):
            return None
        self_name = _method_self_name(fn) if scope else None
        attr = _self_attr(expr, self_name) if self_name else None
        if attr:
            return f"{scope}.{attr}"
        return seg

    def _scan_function(self, src: LintSource, scope: str, fn: ast.AST) -> None:
        def visit(node: ast.AST, held: List[str]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired = []
                for item in node.items:
                    label = self._lock_label(src, scope, fn, item.context_expr)
                    if label is not None:
                        for outer in held:
                            if outer != label:
                                self.edges.setdefault(
                                    (outer, label),
                                    (src.relpath, node.lineno),
                                )
                        acquired.append(label)
                for child in node.body:
                    visit(child, held + acquired)
                return
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in fn.body:
            visit(stmt, [])

    # ------------------------------------------------------------------
    def finalize(self) -> Iterable[Finding]:
        reported: Set[Tuple[str, str]] = set()
        for (a, b), (path, line) in sorted(self.edges.items()):
            if (b, a) in self.edges and (b, a) not in reported:
                reported.add((a, b))
                other_path, other_line = self.edges[(b, a)]
                yield Finding(
                    rule=self.rule_id,
                    relpath=path,
                    line=line,
                    message=(
                        f"lock order inversion: {a} -> {b} here but "
                        f"{b} -> {a} at {other_path}:{other_line}; pick one "
                        "global order (deadlock risk)"
                    ),
                    witness={
                        "first": f"{a}->{b}",
                        "second": f"{b}->{a}",
                        "second_site": f"{other_path}:{other_line}",
                    },
                )
