"""Host-layer invariant analyzer (``repro lint``).

PR 5's static verifier proves *generated kernels* safe; this package
turns the same discipline on the **Python host layer** — the tuner,
scheduler, fleet manager and persistence code where the repo's headline
guarantees (bit-identical winners across worker counts, bit-identical
soak artifacts per seed, crash-safe state files) actually live.  It is
an AST lint over the repo's own sources with pluggable rules for the
project's hard invariants:

=====================  =================================================
rule id                invariant
=====================  =================================================
host.time.wallclock    no wall-clock reads outside the stats-timing set
host.rng.unseeded      all randomness derives from an explicit seed
host.persist.raw-write artifact writes go through :mod:`repro.persist`
host.race.unlocked-attr  thread-shared state mutates under a held lock
host.lock.order        one global lock-acquisition order (no inversions)
host.obs.span-leak     spans open only via ``with`` (no error-path leaks)
host.obs.counter-dec   counters are monotone
host.except.bare       no bare ``except:``
host.except.swallow    no silent discard of transient faults
=====================  =================================================

Suppression is explicit and auditable: an inline
``# repro: allow(rule-id)`` pragma on (or directly above) the finding's
line, or an entry in the checked-in baseline file
(``tools/host-lint-baseline.json``) that fingerprints the exact line it
grandfathers.  CI gates the tree at **zero unsuppressed findings**.

The runtime counterpart lives in :mod:`repro.testing.sanitize`: a
determinism sanitizer that patches the same wall-clock/RNG entry points
these rules flag, and a dynamic lock-order recorder asserting the
acquisition graph this lint proves acyclic.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.analyze.host.concurrency import LockOrderRule, UnlockedSharedMutationRule
from repro.analyze.host.determinism import (
    WALLCLOCK_ALLOWED_SUFFIXES,
    UnseededRngRule,
    WallClockRule,
)
from repro.analyze.host.engine import (
    BASELINE_FORMAT,
    LINT_FORMAT,
    Baseline,
    Finding,
    HostLintResult,
    HostRule,
    line_digest,
    load_tree,
    run_rules,
)
from repro.analyze.host.exceptions import BareExceptRule, SwallowTransientRule
from repro.analyze.host.model import LintSource, parse_source
from repro.analyze.host.obs_hygiene import CounterDecrementRule, SpanLeakRule
from repro.analyze.host.persistence import RawWriteRule

__all__ = [
    "Baseline",
    "Finding",
    "HostLintResult",
    "HostRule",
    "LintSource",
    "LINT_FORMAT",
    "BASELINE_FORMAT",
    "DEFAULT_BASELINE_PATH",
    "WALLCLOCK_ALLOWED_SUFFIXES",
    "default_rules",
    "rule_catalog",
    "lint_text",
    "lint_sources",
    "lint_paths",
    "lint_tree",
    "line_digest",
    "parse_source",
]

#: Repo-relative location of the checked-in baseline (used when the CLI
#: runs from the repository root and no --baseline is given).
DEFAULT_BASELINE_PATH = os.path.join("tools", "host-lint-baseline.json")


def default_rules() -> Tuple[HostRule, ...]:
    """Fresh instances of every host rule (rules keep per-run state)."""
    return (
        WallClockRule(),
        UnseededRngRule(),
        RawWriteRule(),
        UnlockedSharedMutationRule(),
        LockOrderRule(),
        SpanLeakRule(),
        CounterDecrementRule(),
        BareExceptRule(),
        SwallowTransientRule(),
    )


def rule_catalog() -> List[Tuple[str, str]]:
    """(rule id, description) pairs, sorted by id."""
    return sorted((r.rule_id, r.description) for r in default_rules())


def lint_sources(
    sources: Sequence[LintSource],
    baseline: Optional[Baseline] = None,
    only_rules: Optional[Sequence[str]] = None,
) -> HostLintResult:
    return run_rules(sources, default_rules(), baseline=baseline,
                     only_rules=only_rules)


def lint_text(
    text: str,
    relpath: str = "repro/fixture.py",
    only_rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> HostLintResult:
    """Lint one in-memory source (the tamper-regression entry point)."""
    return lint_sources([parse_source(text, relpath)], baseline=baseline,
                        only_rules=only_rules)


def _package_root() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def lint_paths(
    paths: Sequence[str],
    baseline: Optional[Baseline] = None,
    only_rules: Optional[Sequence[str]] = None,
) -> HostLintResult:
    """Lint explicit files/directories (relpaths keep their basenames)."""
    sources: List[LintSource] = []
    for path in paths:
        prefix = ""
        if os.path.isdir(path):
            prefix = os.path.basename(os.path.abspath(path))
        sources.extend(load_tree(path, package_prefix=prefix))
    return lint_sources(sources, baseline=baseline, only_rules=only_rules)


def lint_tree(
    root: Optional[str] = None,
    baseline: Optional[Baseline] = None,
    only_rules: Optional[Sequence[str]] = None,
) -> HostLintResult:
    """Lint the whole installed ``repro`` package (the CI gate)."""
    root = root or _package_root()
    sources = load_tree(root, package_prefix="repro")
    return lint_sources(sources, baseline=baseline, only_rules=only_rules)
