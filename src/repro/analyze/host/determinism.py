"""Determinism rules: no wall-clock reads, no unseeded randomness.

The repo's headline guarantee — bit-identical tuning winners, soak
reports, and bench artifacts per seed — only holds if the host layer
never consults a source of nondeterminism.  Two rules enforce that:

``host.time.wallclock``
    flags every read of a wall/monotonic clock (``time.time``,
    ``perf_counter``, ``datetime.now``, ...) outside the allowlisted
    stats-timing set (``tuner/search.py`` times its *stages* for the
    operator-facing ``TuningStats``; those numbers are labelled
    wall-clock observability and never feed a decision).  ``time.sleep``
    is deliberately not flagged: delaying does not read the clock into
    program state.

``host.rng.unseeded``
    flags randomness that does not flow from an explicit seed: the
    module-level ``random.*`` functions (hidden shared global state),
    ``random.Random()`` with no seed, numpy's legacy global RNG
    (``np.random.rand`` and friends), ``np.random.default_rng()`` with
    no seed, ``uuid.uuid4``, ``os.urandom`` and the ``secrets`` module.
    ``random.Random(seed)`` / ``default_rng(seed)`` instances are the
    sanctioned pattern and pass.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from repro.analyze.host.engine import Finding, HostRule
from repro.analyze.host.model import LintSource, canonical_name

__all__ = ["WallClockRule", "UnseededRngRule", "WALLCLOCK_ALLOWED_SUFFIXES"]

#: Modules where wall-clock reads are sanctioned: the tuner's per-stage
#: stats timings (operator observability, never decision inputs).
WALLCLOCK_ALLOWED_SUFFIXES: Tuple[str, ...] = ("repro/tuner/search.py",)

_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: ``random.<fn>`` module-level calls that use the interpreter's hidden
#: shared Random instance (including ``seed``: mutating global state is
#: exactly what makes parallel runs order-dependent).
_GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "getrandbits",
    "randbytes", "seed",
})

#: numpy legacy global-state RNG entry points.
_NUMPY_GLOBAL_FUNCS = frozenset({
    "rand", "randn", "random", "random_sample", "randint", "choice",
    "shuffle", "permutation", "standard_normal", "seed", "uniform",
    "normal", "bytes",
})

_ALWAYS_NONDETERMINISTIC = frozenset({
    "uuid.uuid4",
    "os.urandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
    "secrets.choice",
    "random.SystemRandom",
})


class WallClockRule(HostRule):
    rule_id = "host.time.wallclock"
    description = (
        "no wall-clock reads outside the allowlisted stats-timing set — "
        "simulated-clock code paths must be bit-reproducible"
    )

    def __init__(self, allowed_suffixes: Tuple[str, ...] = WALLCLOCK_ALLOWED_SUFFIXES):
        self.allowed_suffixes = allowed_suffixes

    def check(self, src: LintSource) -> Iterable[Finding]:
        if any(src.relpath.endswith(sfx) for sfx in self.allowed_suffixes):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_name(node.func, src.imports)
            if name in _WALL_CLOCK_CALLS:
                yield Finding(
                    rule=self.rule_id,
                    relpath=src.relpath,
                    line=node.lineno,
                    message=(
                        f"wall-clock read {name}() breaks seed-determinism; "
                        "use the simulated clock / logical ticks, or add the "
                        "module to the stats-timing allowlist"
                    ),
                    witness={"call": name},
                )


class UnseededRngRule(HostRule):
    rule_id = "host.rng.unseeded"
    description = (
        "all randomness must derive from an explicit seed argument — no "
        "module-level random.*, unseeded Random()/default_rng(), uuid4, "
        "or os.urandom"
    )

    def check(self, src: LintSource) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_name(node.func, src.imports)
            if name is None:
                continue
            reason = self._violates(name, node)
            if reason:
                yield Finding(
                    rule=self.rule_id,
                    relpath=src.relpath,
                    line=node.lineno,
                    message=reason,
                    witness={"call": name},
                )

    @staticmethod
    def _violates(name: str, node: ast.Call) -> str:
        unseeded = not node.args and not node.keywords
        if name in _ALWAYS_NONDETERMINISTIC:
            return (
                f"{name}() is inherently nondeterministic; derive values "
                "from the run seed instead"
            )
        if name.startswith("random."):
            tail = name.split(".", 1)[1]
            if tail in _GLOBAL_RANDOM_FUNCS:
                return (
                    f"module-level {name}() uses the hidden shared RNG; "
                    "thread a seeded random.Random(seed) instance instead"
                )
            if tail == "Random" and unseeded:
                return (
                    "random.Random() without a seed draws OS entropy; pass "
                    "an explicit seed (see repro.tuner.strategies.derive_rng)"
                )
        if name.startswith("numpy.random.") or name.startswith("np.random."):
            tail = name.rsplit(".", 1)[1]
            if tail in _NUMPY_GLOBAL_FUNCS:
                return (
                    f"legacy numpy global RNG {name}() is shared mutable "
                    "state; use np.random.default_rng(seed)"
                )
            if tail in ("default_rng", "RandomState") and unseeded:
                return (
                    f"{name}() without a seed draws OS entropy; pass an "
                    "explicit seed"
                )
        return ""
