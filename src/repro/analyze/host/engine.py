"""Rule engine for the host-layer lint.

The engine walks a file set, runs every :class:`HostRule` over each
parsed :class:`~repro.analyze.host.model.LintSource`, lets tree-scoped
rules (the lock-order checker) finalize after the last file, and then
splits the raw findings three ways:

* **active** — unsuppressed violations; any of these fails the lint;
* **pragma-suppressed** — covered by an inline ``# repro: allow(rule)``;
* **baseline-suppressed** — matched by an entry in the checked-in
  baseline file (rule id + path + a digest of the offending line, so a
  baseline entry dies with the line it grandfathers).

Findings are rendered through the same
:class:`~repro.analyze.diagnostics.Diagnostic` /
:class:`~repro.analyze.diagnostics.AnalysisReport` machinery as the
kernel verifier, so ``repro lint --json`` and ``repro analyze --json``
artifacts share their grammar.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analyze.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analyze.host.model import LintSource, parse_source

__all__ = [
    "Finding",
    "HostRule",
    "Baseline",
    "HostLintResult",
    "run_rules",
    "LINT_FORMAT",
    "BASELINE_FORMAT",
]

LINT_FORMAT = "repro-host-lint/1"
BASELINE_FORMAT = "repro-host-lint-baseline/1"


@dataclass(frozen=True)
class Finding:
    """One raw rule hit, before suppression."""

    rule: str
    relpath: str
    line: int
    message: str
    witness: Mapping[str, object] = field(default_factory=dict)
    severity: Severity = Severity.ERROR

    def to_diagnostic(self) -> Diagnostic:
        witness = {"path": self.relpath, "line": self.line}
        witness.update(self.witness)
        return Diagnostic(
            rule=self.rule,
            severity=self.severity,
            message=self.message,
            witness=witness,
        )

    def render(self) -> str:
        return f"{self.relpath}:{self.line}: {self.rule}: {self.message}"


class HostRule:
    """Base class for host-layer lint rules.

    ``check`` yields findings for one file; ``finalize`` yields findings
    that need the whole tree (rules are instantiated fresh per run, so
    accumulating state across ``check`` calls is safe).
    """

    #: Stable dot-namespaced id (``host.<area>.<rule>``).
    rule_id: str = ""
    #: One-line description for the catalog / CLI listing.
    description: str = ""

    def check(self, src: LintSource) -> Iterable[Finding]:
        return ()

    def finalize(self) -> Iterable[Finding]:
        return ()


def line_digest(stripped_line: str) -> str:
    """Baseline fingerprint of one physical source line."""
    return hashlib.blake2b(stripped_line.encode(), digest_size=8).hexdigest()


class Baseline:
    """Checked-in grandfather list for pre-existing findings.

    Each entry pins ``(rule, path, digest-of-line)``: editing or moving
    the offending line invalidates the entry, so the baseline can only
    shrink — new violations never hide behind it.
    """

    def __init__(self, entries: Sequence[Mapping[str, str]] = ()) -> None:
        self._entries = {
            (str(e["rule"]), str(e["path"]), str(e["digest"])) for e in entries
        }

    def __len__(self) -> int:
        return len(self._entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("format") != BASELINE_FORMAT:
            raise ValueError(f"{path} is not a host-lint baseline file")
        return cls(payload.get("entries", ()))

    @staticmethod
    def entry_for(finding: Finding, src: LintSource) -> Dict[str, str]:
        """The baseline entry that would suppress ``finding``."""
        return {
            "rule": finding.rule,
            "path": finding.relpath,
            "digest": line_digest(src.line_digest_input(finding.line)),
        }

    def covers(self, finding: Finding, src: LintSource) -> bool:
        entry = self.entry_for(finding, src)
        return (entry["rule"], entry["path"], entry["digest"]) in self._entries


@dataclass
class HostLintResult:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed_pragma: List[Finding] = field(default_factory=list)
    suppressed_baseline: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Clean: zero unsuppressed findings (the CI gate)."""
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    def to_reports(self) -> List[AnalysisReport]:
        """Per-file :class:`AnalysisReport` grouping of active findings."""
        by_file: Dict[str, List[Finding]] = {}
        for f in self.findings:
            by_file.setdefault(f.relpath, []).append(f)
        reports = []
        for relpath in sorted(by_file):
            report = AnalysisReport(
                subject=relpath, checked_rules=self.rules,
            )
            report.extend([f.to_diagnostic() for f in by_file[relpath]])
            reports.append(report)
        return reports

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": LINT_FORMAT,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules": list(self.rules),
            "findings": len(self.findings),
            "findings_by_rule": self.by_rule(),
            "suppressed_pragma": len(self.suppressed_pragma),
            "suppressed_baseline": len(self.suppressed_baseline),
            "reports": [r.to_dict() for r in self.to_reports()],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self, verbose: bool = False) -> str:
        lines = []
        for f in self.findings:
            lines.append(f.render())
        if verbose:
            for f in self.suppressed_pragma:
                lines.append(f"{f.render()} [suppressed: pragma]")
            for f in self.suppressed_baseline:
                lines.append(f"{f.render()} [suppressed: baseline]")
        status = "CLEAN" if self.ok else f"{len(self.findings)} violation(s)"
        lines.append(
            f"host lint: {status} — {self.files_scanned} files, "
            f"{len(self.rules)} rules, "
            f"{len(self.suppressed_pragma)} pragma-suppressed, "
            f"{len(self.suppressed_baseline)} baseline-suppressed"
        )
        return "\n".join(lines)


def run_rules(
    sources: Sequence[LintSource],
    rules: Sequence[HostRule],
    baseline: Optional[Baseline] = None,
    only_rules: Optional[Sequence[str]] = None,
) -> HostLintResult:
    """Run ``rules`` over ``sources`` and split findings by suppression."""
    by_path = {src.relpath: src for src in sources}
    raw: List[Finding] = []
    for src in sources:
        for rule in rules:
            raw.extend(rule.check(src))
    for rule in rules:
        raw.extend(rule.finalize())
    if only_rules is not None:
        wanted = set(only_rules)
        raw = [f for f in raw if f.rule in wanted]
    raw.sort(key=lambda f: (f.relpath, f.line, f.rule))

    result = HostLintResult(
        files_scanned=len(sources),
        rules=tuple(sorted(r.rule_id for r in rules)),
    )
    for f in raw:
        src = by_path.get(f.relpath)
        allowed = src.allowed_rules_at(f.line) if src else frozenset()
        if f.rule in allowed or "all" in allowed:
            result.suppressed_pragma.append(f)
        elif baseline is not None and src is not None and baseline.covers(f, src):
            result.suppressed_baseline.append(f)
        else:
            result.findings.append(f)
    return result


def load_tree(root: str, package_prefix: str = "") -> List[LintSource]:
    """Parse every ``*.py`` under ``root`` into lint sources.

    ``package_prefix`` seeds the reported relpath (linting the installed
    ``repro`` package directory reports paths as ``repro/...``).
    """
    sources: List[LintSource] = []
    root = os.path.abspath(root)
    if os.path.isfile(root):
        rel = os.path.join(package_prefix, os.path.basename(root))
        with open(root, encoding="utf-8") as fh:
            sources.append(parse_source(fh.read(), rel))
        return sources
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.join(
                package_prefix, os.path.relpath(path, root)
            ).replace(os.sep, "/")
            with open(path, encoding="utf-8") as fh:
                sources.append(parse_source(fh.read(), rel))
    return sources
