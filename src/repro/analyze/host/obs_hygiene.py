"""Observability hygiene rules: spans cannot leak, counters never go down.

``host.obs.span-leak``
    A span opened without a ``with`` block has no guaranteed close on
    error paths — the trace tree then records it as abandoned and every
    descendant span re-parents wrongly.  ``.span(...)`` / ``.trace(...)``
    calls on an observability object must therefore be the context
    expression of a ``with`` statement.  Delegating wrappers (a method
    itself named ``span``/``trace`` returning the inner call, as the
    :class:`repro.obs.Observability` facade does) are allowed.

``host.obs.counter-dec``
    Prometheus-model counters are monotone by contract (PR 4's
    ``Counter.set_total`` has a runtime backwards guard); statically we
    flag the obvious violations: ``.dec(...)`` on a receiver that is
    visibly a counter, and ``.inc(...)``/``.set_total(...)`` with a
    negative literal.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Set

from repro.analyze.host.engine import Finding, HostRule
from repro.analyze.host.model import LintSource

__all__ = ["SpanLeakRule", "CounterDecrementRule"]

#: Receivers that look like observability handles: `obs`, `self.obs`,
#: `tracer`, `self.tracer`, ... — keeps `.trace(...)` on unrelated
#: objects (e.g. a matrix) out of scope.
_OBS_RECEIVER_RE = re.compile(r"(^|\.)(obs|tracer|tracing|observability)$")

_COUNTER_RECEIVER_RE = re.compile(r"counter", re.IGNORECASE)


class SpanLeakRule(HostRule):
    rule_id = "host.obs.span-leak"
    description = (
        "spans must be opened via `with obs.span(...)` so error paths "
        "cannot leak them"
    )

    def check(self, src: LintSource) -> Iterable[Finding]:
        allowed: Set[int] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        allowed.add(id(item.context_expr))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in ("span", "trace"):
                    # A delegating wrapper: `def span(...): return
                    # self.tracer.span(...)` hands the context manager on.
                    for sub in ast.walk(node):
                        if isinstance(sub, ast.Return) and isinstance(
                            sub.value, ast.Call
                        ):
                            allowed.add(id(sub.value))
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("span", "trace"):
                continue
            receiver = src.segment(func.value)
            if not _OBS_RECEIVER_RE.search(receiver):
                continue
            if id(node) in allowed:
                continue
            yield Finding(
                rule=self.rule_id,
                relpath=src.relpath,
                line=node.lineno,
                message=(
                    f"span opened outside a `with` block "
                    f"({receiver}.{func.attr}(...)); an exception on this "
                    "path leaks the span and corrupts the trace tree"
                ),
                witness={"receiver": receiver, "method": func.attr},
            )


class CounterDecrementRule(HostRule):
    rule_id = "host.obs.counter-dec"
    description = "counters are monotone: no .dec() and no negative .inc()"

    def check(self, src: LintSource) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = src.segment(func.value)
            if func.attr == "dec" and _COUNTER_RECEIVER_RE.search(receiver):
                yield Finding(
                    rule=self.rule_id,
                    relpath=src.relpath,
                    line=node.lineno,
                    message=(
                        f"decrement of counter-like receiver {receiver!r}; "
                        "counters are monotone — model ups-and-downs with a "
                        "gauge"
                    ),
                    witness={"receiver": receiver, "method": "dec"},
                )
            elif func.attr in ("inc", "set_total") and node.args:
                amount = node.args[0]
                if self._negative_literal(amount):
                    yield Finding(
                        rule=self.rule_id,
                        relpath=src.relpath,
                        line=node.lineno,
                        message=(
                            f".{func.attr}() with a negative literal moves "
                            "a monotone series backwards"
                        ),
                        witness={"receiver": receiver, "method": func.attr},
                    )

    @staticmethod
    def _negative_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return isinstance(node.operand, ast.Constant) and isinstance(
                node.operand.value, (int, float)
            )
        return isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        ) and node.value < 0
