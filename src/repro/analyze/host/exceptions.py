"""Exception-discipline rules: faults must never vanish silently.

``host.except.bare``
    A bare ``except:`` catches ``SystemExit``/``KeyboardInterrupt`` and
    every injected fault; always an error.

``host.except.swallow``
    A handler whose caught types *cover*
    :class:`~repro.errors.TransientError` /
    :class:`~repro.errors.DeviceLostError` (``Exception``,
    ``BaseException``, ``ReproError``, ``CLError``, or the transient
    types themselves) and whose body is pure control flow (``pass`` /
    ``continue`` / ``break``) swallows a fault without re-raising,
    classifying, or logging it.  Handlers that re-raise, return a
    failure value, assign an outcome, or call anything (incident log,
    counter, fallback) are considered to have handled the fault — the
    rule targets the silent-discard pattern specifically, because that
    is the one the resilience layer's accounting can never see.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analyze.host.engine import Finding, HostRule
from repro.analyze.host.model import LintSource, attribute_tail

__all__ = ["BareExceptRule", "SwallowTransientRule"]

#: Exception names that cover TransientError/DeviceLostError (by the
#: repro hierarchy: TransientError < CLError < ReproError < Exception).
_COVERING = frozenset({
    "BaseException", "Exception", "ReproError", "CLError",
    "TransientError", "DeviceLostError",
})


def _caught_names(handler: ast.ExceptHandler) -> List[str]:
    node = handler.type
    if node is None:
        return []
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for expr in exprs:
        tail = attribute_tail(expr)
        if tail:
            names.append(tail)
    return names


def _is_silent(body: List[ast.stmt]) -> bool:
    """True when the handler neither raises, returns, assigns nor calls."""
    acting = (
        ast.Raise, ast.Return, ast.Call, ast.Assign, ast.AugAssign,
        ast.AnnAssign, ast.NamedExpr, ast.Yield, ast.YieldFrom, ast.Delete,
    )
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, acting):
                return False
    return True


class BareExceptRule(HostRule):
    rule_id = "host.except.bare"
    description = "no bare `except:` — it catches KeyboardInterrupt and all"

    def check(self, src: LintSource) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield Finding(
                    rule=self.rule_id,
                    relpath=src.relpath,
                    line=node.lineno,
                    message=(
                        "bare `except:` catches SystemExit/KeyboardInterrupt "
                        "and every injected fault; name the exceptions"
                    ),
                )


class SwallowTransientRule(HostRule):
    rule_id = "host.except.swallow"
    description = (
        "no blanket handler may silently discard TransientError/"
        "DeviceLostError — re-raise, classify, or log the incident"
    )

    def check(self, src: LintSource) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                continue  # host.except.bare owns this case
            caught = _caught_names(node)
            covering = sorted(set(caught) & _COVERING)
            if not covering:
                continue
            if not _is_silent(node.body):
                continue
            yield Finding(
                rule=self.rule_id,
                relpath=src.relpath,
                line=node.lineno,
                message=(
                    f"handler for {', '.join(covering)} silently discards "
                    "transient faults (body is pure control flow); re-raise, "
                    "record an incident, or narrow the exception types"
                ),
                witness={"caught": ", ".join(caught)},
            )
