"""Source model for the host-layer lint.

A :class:`LintSource` is one parsed Python file: its AST, raw lines, the
import alias table (so ``from time import perf_counter as pc`` still
resolves to ``time.perf_counter``), and the ``# repro: allow(rule-id)``
pragma index.  Rules operate on this model only — they never re-read the
file — which is what lets the test-suite lint in-memory fixtures through
the exact production code path.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = [
    "LintSource",
    "parse_source",
    "dotted_parts",
    "canonical_name",
    "attribute_tail",
]

#: Inline suppression: ``# repro: allow(rule-id)`` or
#: ``# repro: allow(rule-a, rule-b) - justification``, honoured on the
#: finding's own line or the line immediately above it.
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_.\-]+(?:\s*,\s*[A-Za-z0-9_.\-]+)*)\s*\)"
)


def _pragma_index(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    index: Dict[int, FrozenSet[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = _PRAGMA_RE.search(line)
        if m:
            index[i] = frozenset(p.strip() for p in m.group(1).split(","))
    return index


def _import_table(tree: ast.AST) -> Dict[str, str]:
    """Alias -> canonical dotted name, from every import in the module.

    ``import numpy as np`` maps ``np -> numpy``; ``from concurrent.futures
    import ThreadPoolExecutor`` maps the bare name to
    ``concurrent.futures.ThreadPoolExecutor``.  Relative imports keep
    their module path as written (host rules only match absolute stdlib /
    third-party names, so precision there does not matter).
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


@dataclass
class LintSource:
    """One parsed file under analysis."""

    #: Path as reported in diagnostics — package-relative and
    #: ``/``-separated (e.g. ``repro/tuner/parallel.py``).
    relpath: str
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    imports: Dict[str, str] = field(default_factory=dict)
    pragmas: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def segment(self, node: ast.AST) -> str:
        """Source text of a node ("" when unavailable)."""
        try:
            return ast.get_source_segment(self.text, node) or ""
        except Exception:
            return ""  # cosmetic only: a finding without source text

    def allowed_rules_at(self, line: int) -> FrozenSet[str]:
        """Pragma-allowed rule ids covering ``line`` (own or previous)."""
        allowed = self.pragmas.get(line, frozenset())
        if line > 1:
            allowed = allowed | self.pragmas.get(line - 1, frozenset())
        return allowed

    def line_digest_input(self, line: int) -> str:
        """The stripped physical line a baseline entry fingerprints."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def parse_source(text: str, relpath: str) -> LintSource:
    """Parse one file's text into the lint model (raises SyntaxError)."""
    tree = ast.parse(text)
    lines = text.splitlines()
    return LintSource(
        relpath=relpath.replace("\\", "/"),
        text=text,
        tree=tree,
        lines=lines,
        imports=_import_table(tree),
        pragmas=_pragma_index(lines),
    )


def dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def canonical_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a call target through the import table.

    ``np.random.rand`` with ``import numpy as np`` resolves to
    ``numpy.random.rand``; a bare builtin like ``open`` resolves to
    itself; ``self.anything`` resolves to None (not a module-level name).
    """
    parts = dotted_parts(node)
    if parts is None:
        return None
    root = parts[0]
    if root in imports:
        return ".".join((imports[root],) + parts[1:])
    if len(parts) == 1:
        return root
    return None


def attribute_tail(node: ast.AST) -> Optional[str]:
    """The final attribute name of a call target (``x.y.span`` -> ``span``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
