"""The constraint prover: Section-III structural rules + device budgets.

This module re-states, as individually provable rules with witnesses,
exactly the checks the dynamic pipeline performs:

* the structural constraints :class:`~repro.codegen.params.KernelParams`
  enforces in ``__post_init__`` (a violation there is the paper's
  "failed in code generation"),
* the device resource budgets of
  :func:`repro.perfmodel.model.check_resources` ("failed in
  compilation"), and
* the execution quirks of
  :func:`repro.perfmodel.model.check_execution_quirks` ("failed in
  testing": the Bulldozer PL-DGEMM launch failure of Section IV-A).

Because the prover accepts a **raw mapping** (not just a constructed
``KernelParams``), it can diagnose invalid vectors that the dataclass
would reject with a single exception — reporting *every* violated rule,
each with the concrete values that violate it.

Agreement contract: for any vector, :func:`failure_class` equals the
failure category :func:`repro.tuner.parallel.measure_once` would record
(``None`` when the measurement would succeed).  The differential tests
in ``tests/analyze`` hold this over the fuzz corpus and sampled spaces;
the search gate in :mod:`repro.tuner.search` relies on it for
winner-identity between gated and ungated runs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analyze.diagnostics import Diagnostic, Severity
from repro.codegen.algorithms import Algorithm
from repro.codegen.layouts import Layout
from repro.codegen.params import (
    KernelParams,
    PRECISION_SIZES,
    StrideMode,
    VALID_VECTOR_WIDTHS,
)
from repro.devices.specs import DeviceSpec
from repro.errors import ParameterError

__all__ = [
    "RULES",
    "STRUCTURAL_RULES",
    "DEVICE_RULES",
    "prove_constraints",
    "structural_diagnostics",
    "device_diagnostics",
    "failure_class",
    "normalize_raw",
]

#: rule id -> (paper section, one-line description).  The catalog is the
#: source of the rule table in ``docs/static_analysis.md``.
STRUCTURAL_RULES: Dict[str, Tuple[str, str]] = {
    "param.fields": ("III", "every field is present with a usable type"),
    "param.precision": ("III", "precision is 's' or 'd'"),
    "param.positive": ("III", "all blocking factors are >= 1"),
    "param.vector-width": ("III-B", f"vector width is one of {VALID_VECTOR_WIDTHS}"),
    "param.stride": ("III-B", "stride label names only M/N directions"),
    "param.layout": ("III-D", "operand layouts are ROW/CBL/RBL"),
    "param.algorithm": ("III-E", "algorithm is BA/PL/DB"),
    "param.mwg-mdimc": ("III-B", "Mwg divisible by MdimC (Mwi derivation)"),
    "param.nwg-ndimc": ("III-B", "Nwg divisible by NdimC (Nwi derivation)"),
    "param.kwg-kwi": ("III-E", "Kwg divisible by the unroll depth Kwi"),
    "param.mwi-vw": ("III-B", "Mwi divisible by the vector width"),
    "param.nwi-vw": ("III-B", "Nwi divisible by the vector width"),
    "param.wg-mdima": ("III-C", "work-group size divisible by MdimA (KdimA derivation)"),
    "param.mwg-mdima": ("III-C", "Mwg divisible by MdimA (MwiA derivation)"),
    "param.kwg-kdima": ("III-C", "Kwg divisible by KdimA (KwiA derivation)"),
    "param.wg-ndimb": ("III-C", "work-group size divisible by NdimB (KdimB derivation)"),
    "param.nwg-ndimb": ("III-C", "Nwg divisible by NdimB (NwiB derivation)"),
    "param.kwg-kdimb": ("III-C", "Kwg divisible by KdimB (KwiB derivation)"),
    "param.image-layout": ("III-F", "image kernels require ROW layouts (2-D texel addressing)"),
    "param.guard-layout": ("", "edge-guarded kernels require ROW layouts (unpacked operands)"),
    "param.db-shared": ("III-E", "DB double-buffers local memory: a matrix must be shared"),
    "param.db-even-kwg": ("III-E", "DB requires an even Kwg (two half-buffers)"),
    "param.db-half-kwi": ("III-E", "DB half-buffer Kwg/2 divisible by Kwi"),
    "param.db-half-kdima": ("III-E", "DB half tile of A loadable: Kwg/2 divisible by KdimA"),
    "param.db-half-kdimb": ("III-E", "DB half tile of B loadable: Kwg/2 divisible by KdimB"),
}

DEVICE_RULES: Dict[str, Tuple[str, str]] = {
    "device.workgroup-size": ("II", "MdimC*NdimC within the device work-group limit"),
    "device.local-memory": ("III-C", "local tile bytes within the device's local memory"),
    "device.private-memory": ("III-B", "private footprint within twice the register cap"),
    "device.occupancy": ("II", "at least one work-group resident per compute unit"),
    "device.quirk-pl-dgemm": ("IV-A", "PL DGEMM kernels abort on Bulldozer-quirk devices"),
}

RULES: Dict[str, Tuple[str, str]] = {**STRUCTURAL_RULES, **DEVICE_RULES}

#: Raw-dict fields, their types, and dataclass defaults.
_INT_FIELDS = ("mwg", "nwg", "kwg", "mdimc", "ndimc")
_INT_DEFAULTED = {"kwi": 1, "vw": 1, "mdima": 0, "ndimb": 0}
_BOOL_DEFAULTED = {
    "shared_a": False,
    "shared_b": False,
    "use_images": False,
    "guard_edges": False,
}


def _err(rule: str, message: str, witness: Mapping[str, object]) -> Diagnostic:
    paper = RULES.get(rule, ("", ""))[0]
    return Diagnostic(rule, Severity.ERROR, message, dict(witness), paper)


def normalize_raw(subject: Union[KernelParams, Mapping]) -> Dict[str, object]:
    """A plain dict view of the subject (labels, not enum objects)."""
    if isinstance(subject, KernelParams):
        return subject.to_dict()
    return dict(subject)


def structural_diagnostics(subject: Union[KernelParams, Mapping]) -> List[Diagnostic]:
    """Prove (or refute, with witnesses) every Section-III structural rule.

    Mirrors ``KernelParams.__post_init__`` plus the enum/label decoding
    of ``KernelParams.from_dict``, but reports **all** violations instead
    of raising on the first.
    """
    raw = normalize_raw(subject)
    out: List[Diagnostic] = []

    vals: Dict[str, int] = {}
    bad_fields = False
    for name in _INT_FIELDS:
        v = raw.get(name)
        if not isinstance(v, int) or isinstance(v, bool):
            out.append(_err("param.fields", f"field {name!r} must be an integer",
                            {"field": name, "value": repr(v)}))
            bad_fields = True
        else:
            vals[name] = v
    for name, default in _INT_DEFAULTED.items():
        v = raw.get(name, default)
        if not isinstance(v, int) or isinstance(v, bool):
            out.append(_err("param.fields", f"field {name!r} must be an integer",
                            {"field": name, "value": repr(v)}))
            bad_fields = True
        else:
            vals[name] = v
    flags: Dict[str, bool] = {}
    for name, default in _BOOL_DEFAULTED.items():
        flags[name] = bool(raw.get(name, default))
    if bad_fields:
        return out  # nothing further is derivable

    precision = raw.get("precision")
    if precision not in PRECISION_SIZES:
        out.append(_err("param.precision",
                        f"precision must be 's' or 'd', got {precision!r}",
                        {"precision": repr(precision)}))

    try:
        stride = StrideMode.from_label(str(raw.get("stride", "-")))
    except ParameterError as exc:
        out.append(_err("param.stride", str(exc), {"stride": repr(raw.get("stride"))}))
        stride = StrideMode()
    try:
        layout_a = Layout(raw.get("layout_a", "ROW"))
        layout_b = Layout(raw.get("layout_b", "ROW"))
    except ValueError as exc:
        out.append(_err("param.layout", f"unknown layout: {exc}",
                        {"layout_a": repr(raw.get("layout_a")),
                         "layout_b": repr(raw.get("layout_b"))}))
        layout_a = layout_b = Layout.ROW
    try:
        algorithm = Algorithm(raw.get("algorithm", "BA"))
    except ValueError as exc:
        out.append(_err("param.algorithm", f"unknown algorithm: {exc}",
                        {"algorithm": repr(raw.get("algorithm"))}))
        algorithm = Algorithm.BA

    for name in ("mwg", "nwg", "kwg", "mdimc", "ndimc", "kwi"):
        if vals[name] < 1:
            out.append(_err("param.positive", f"{name} must be >= 1",
                            {name: vals[name]}))
    if any(vals[n] < 1 for n in ("mwg", "nwg", "kwg", "mdimc", "ndimc", "kwi")):
        return out  # divisibility rules are meaningless below 1

    mwg, nwg, kwg = vals["mwg"], vals["nwg"], vals["kwg"]
    mdimc, ndimc, kwi, vw = vals["mdimc"], vals["ndimc"], vals["kwi"], vals["vw"]

    if vw not in VALID_VECTOR_WIDTHS:
        out.append(_err("param.vector-width",
                        f"vector width {vw} not in {VALID_VECTOR_WIDTHS}",
                        {"vw": vw}))
        vw = 1  # keep deriving the remaining rules
    if mwg % mdimc:
        out.append(_err("param.mwg-mdimc", f"mwg={mwg} not divisible by mdimc={mdimc}",
                        {"mwg": mwg, "mdimc": mdimc, "remainder": mwg % mdimc}))
    if nwg % ndimc:
        out.append(_err("param.nwg-ndimc", f"nwg={nwg} not divisible by ndimc={ndimc}",
                        {"nwg": nwg, "ndimc": ndimc, "remainder": nwg % ndimc}))
    if kwg % kwi:
        out.append(_err("param.kwg-kwi", f"kwg={kwg} not divisible by kwi={kwi}",
                        {"kwg": kwg, "kwi": kwi, "remainder": kwg % kwi}))

    mwi = mwg // mdimc if mwg % mdimc == 0 else None
    nwi = nwg // ndimc if nwg % ndimc == 0 else None
    if vw > 1 and mwi is not None and mwi % vw:
        out.append(_err("param.mwi-vw", f"mwi={mwi} not divisible by vector width {vw}",
                        {"mwi": mwi, "vw": vw, "remainder": mwi % vw}))
    if vw > 1 and nwi is not None and nwi % vw:
        out.append(_err("param.nwi-vw", f"nwi={nwi} not divisible by vector width {vw}",
                        {"nwi": nwi, "vw": vw, "remainder": nwi % vw}))

    wg = mdimc * ndimc
    kdima = kdimb = None
    if flags["shared_a"]:
        mdima = vals["mdima"] or mdimc
        if wg % mdima:
            out.append(_err("param.wg-mdima",
                            f"work-group size {wg} not divisible by mdima={mdima}",
                            {"workgroup_size": wg, "mdima": mdima,
                             "remainder": wg % mdima}))
        else:
            kdima = wg // mdima
            if kwg % kdima:
                out.append(_err("param.kwg-kdima",
                                f"kwg={kwg} not divisible by kdima={kdima}",
                                {"kwg": kwg, "kdima": kdima,
                                 "remainder": kwg % kdima}))
        if mwg % mdima:
            out.append(_err("param.mwg-mdima",
                            f"mwg={mwg} not divisible by mdima={mdima}",
                            {"mwg": mwg, "mdima": mdima, "remainder": mwg % mdima}))
    if flags["shared_b"]:
        ndimb = vals["ndimb"] or ndimc
        if wg % ndimb:
            out.append(_err("param.wg-ndimb",
                            f"work-group size {wg} not divisible by ndimb={ndimb}",
                            {"workgroup_size": wg, "ndimb": ndimb,
                             "remainder": wg % ndimb}))
        else:
            kdimb = wg // ndimb
            if kwg % kdimb:
                out.append(_err("param.kwg-kdimb",
                                f"kwg={kwg} not divisible by kdimb={kdimb}",
                                {"kwg": kwg, "kdimb": kdimb,
                                 "remainder": kwg % kdimb}))
        if nwg % ndimb:
            out.append(_err("param.nwg-ndimb",
                            f"nwg={nwg} not divisible by ndimb={ndimb}",
                            {"nwg": nwg, "ndimb": ndimb, "remainder": nwg % ndimb}))

    if flags["use_images"] and not (layout_a is Layout.ROW and layout_b is Layout.ROW):
        out.append(_err("param.image-layout",
                        "image-object kernels address operands as 2-D textures; "
                        "layouts must be ROW",
                        {"layout_a": layout_a.value, "layout_b": layout_b.value}))
    if flags["guard_edges"] and not (layout_a is Layout.ROW and layout_b is Layout.ROW):
        out.append(_err("param.guard-layout",
                        "edge-guarded kernels read unpacked operands; "
                        "layouts must be ROW",
                        {"layout_a": layout_a.value, "layout_b": layout_b.value}))

    if algorithm is Algorithm.DB:
        if not (flags["shared_a"] or flags["shared_b"]):
            out.append(_err("param.db-shared",
                            "DB double-buffers local memory; at least one matrix "
                            "must be shared",
                            {"shared_a": flags["shared_a"],
                             "shared_b": flags["shared_b"]}))
        if kwg % 2:
            out.append(_err("param.db-even-kwg",
                            "DB requires an even kwg (two half-buffers)",
                            {"kwg": kwg}))
        else:
            half = kwg // 2
            if half % kwi:
                out.append(_err("param.db-half-kwi",
                                f"DB half-buffer kwg/2={half} not divisible by "
                                f"kwi={kwi}",
                                {"half": half, "kwi": kwi, "remainder": half % kwi}))
            if flags["shared_a"] and kdima is not None and half % kdima:
                out.append(_err("param.db-half-kdima",
                                f"DB half tile of A not loadable: kwg/2={half} "
                                f"not divisible by kdima={kdima}",
                                {"half": half, "kdima": kdima,
                                 "remainder": half % kdima}))
            if flags["shared_b"] and kdimb is not None and half % kdimb:
                out.append(_err("param.db-half-kdimb",
                                f"DB half tile of B not loadable: kwg/2={half} "
                                f"not divisible by kdimb={kdimb}",
                                {"half": half, "kdimb": kdimb,
                                 "remainder": half % kdimb}))
    return out


def device_diagnostics(spec: DeviceSpec, params: KernelParams) -> List[Diagnostic]:
    """Prove the device budgets and quirks for a *valid* vector.

    Uses the same footprint formulas and occupancy model as
    :func:`repro.perfmodel.model.check_resources` /
    :func:`~repro.perfmodel.model.check_execution_quirks`, so a rule
    fires here exactly when the simulated build/launch would fail.
    """
    from repro.perfmodel.occupancy import compute_occupancy

    out: List[Diagnostic] = []
    model = spec.model
    wg = params.workgroup_size
    if wg > model.max_workgroup_size:
        out.append(_err("device.workgroup-size",
                        f"work-group size {wg} exceeds device limit "
                        f"{model.max_workgroup_size} on {spec.codename}",
                        {"workgroup_size": wg, "limit": model.max_workgroup_size,
                         "mdimc": params.mdimc, "ndimc": params.ndimc}))
    lmem = params.local_memory_bytes()
    if lmem > spec.local_mem_bytes:
        out.append(_err("device.local-memory",
                        f"kernel needs {lmem} B of local memory; "
                        f"{spec.codename} has {spec.local_mem_bytes} B",
                        {"required_bytes": lmem, "limit_bytes": spec.local_mem_bytes,
                         "copies": params.algorithm.local_buffer_copies}))
    pbytes = params.private_bytes()
    if pbytes > 2 * model.max_private_bytes_per_workitem:
        out.append(_err("device.private-memory",
                        f"private footprint {pbytes} B exceeds twice the register "
                        f"cap ({model.max_private_bytes_per_workitem} B/work-item) "
                        f"on {spec.codename}",
                        {"required_bytes": pbytes,
                         "limit_bytes": 2 * model.max_private_bytes_per_workitem,
                         "private_elements": params.private_elements()}))
    occ = compute_occupancy(spec, params)
    if not occ.resident:
        out.append(_err("device.occupancy",
                        f"no work-group of this kernel fits on a {spec.codename} "
                        f"compute unit (limited by {occ.limited_by})",
                        {"limited_by": occ.limited_by,
                         "workgroups_per_cu": occ.workgroups_per_cu}))
    if (model.has_quirk("pl_dgemm_fails")
            and params.algorithm is Algorithm.PL
            and params.precision == "d"):
        out.append(_err("device.quirk-pl-dgemm",
                        f"kernel would fail to execute on {spec.codename} "
                        "(PL double-precision kernels abort on this device)",
                        {"algorithm": "PL", "precision": "d",
                         "device": spec.codename}))
    return out


def prove_constraints(
    spec: Optional[DeviceSpec], subject: Union[KernelParams, Mapping]
) -> List[Diagnostic]:
    """Structural rules, then (if structurally valid) device rules."""
    out = structural_diagnostics(subject)
    if spec is None or any(d.severity is Severity.ERROR for d in out):
        return out
    if isinstance(subject, KernelParams):
        params = subject
    else:
        try:
            params = KernelParams.from_dict(dict(subject))
        except (ParameterError, TypeError, ValueError, KeyError) as exc:
            # The prover believed the vector valid but the dataclass
            # disagrees — a prover bug worth surfacing loudly.
            out.append(_err("param.fields",
                            f"vector rejected by KernelParams despite passing "
                            f"the structural rules: {exc}",
                            {"error": str(exc)}))
            return out
    out.extend(device_diagnostics(spec, params))
    return out


def failure_class(diagnostics: Sequence[Diagnostic]) -> Optional[str]:
    """The failure category :func:`measure_once` would record.

    ``"generation"`` for structural violations, ``"build"`` for resource
    budgets, ``"launch"`` for execution quirks, ``None`` for a clean
    vector — matching the error the dynamic path raises first.
    """
    rules = {d.rule for d in diagnostics if d.severity is Severity.ERROR}
    if any(r.startswith("param.") for r in rules):
        return "generation"
    if rules & {"device.workgroup-size", "device.local-memory",
                "device.private-memory", "device.occupancy"}:
        return "build"
    if "device.quirk-pl-dgemm" in rules:
        return "launch"
    return None
