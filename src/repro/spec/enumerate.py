"""Enumerative model-based program generation for the spec harness.

Random fuzzing (``tests/fuzz``) samples the *production* parameter space
through :func:`repro.codegen.space.enumerate_space`, inheriting its
device filters (minimum work-group occupancy, register-budget caps) and
its hash-sampling bias.  This module is the complementary strategy from
the MBT-vs-fuzzing methodology: walk a *grammar* of kernel shapes
systematically, smallest programs first, with canonical-form pruning —
so the corpus includes exactly the structural corner cases the fuzzer's
filters exclude (single-work-item groups, ``Kwg``-sized problems,
``K < Kwg`` guarded pipelines, every shared/guarded/image/layout
combination at minimal blocking).

Every enumerated program is a (:class:`KernelParams`, shape, alpha,
beta) quadruple that is *expected to be correct*: the generator only
emits validated parameter vectors, and shapes satisfy
``KernelPlan.check_problem``.  Any spec-observed violation or
spec/clsim value disagreement on an enumerated program is therefore a
finding, not noise.

Determinism: the walk order is a fixed nested iteration; alpha/beta are
chosen by a content digest of the program, not by a shared RNG, so
inserting new grammar axes never reshuffles existing programs.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.codegen.algorithms import Algorithm
from repro.codegen.layouts import Layout
from repro.codegen.params import KernelParams, StrideMode
from repro.errors import ParameterError

__all__ = ["SpecProgram", "enumerate_programs", "program_cost"]

_ALPHAS = (1.0, -1.0, 1.5)
_BETAS = (0.0, 1.0, 0.75)


@dataclass(frozen=True)
class SpecProgram:
    """One differential-harness input: a kernel plus a launch."""

    index: int
    params: KernelParams
    shape: Tuple[int, int, int]
    alpha: float
    beta: float
    origin: str = "mbt"

    def describe(self) -> str:
        M, N, K = self.shape
        return (
            f"{self.origin}[{self.index}] {M}x{N}x{K} "
            f"alpha={self.alpha} beta={self.beta} :: {self.params.summary()}"
        )


def program_cost(params: KernelParams, shape: Tuple[int, int, int]) -> int:
    """Rough interpreter cost: multiply-adds in one work-group's tile."""
    _, _, K = shape
    k_span = -(-K // params.kwg) * params.kwg
    return params.mwg * params.nwg * k_span


def _digest_pick(seq, *key_parts) -> object:
    digest = hashlib.sha256("|".join(str(p) for p in key_parts).encode()).digest()
    return seq[digest[0] % len(seq)]


def _shapes_for(p: KernelParams) -> List[Tuple[int, int, int]]:
    """Launchable shapes, small-to-large, for one parameter vector."""
    kmin = p.algorithm.min_k_iterations
    if not p.guard_edges:
        shapes = [
            (p.mwg, p.nwg, p.kwg * kmin),           # single tile, minimal K
            (p.mwg * 2, p.nwg, p.kwg * (kmin + 1)),  # multi-tile, longer pipe
        ]
        return shapes
    half = max(1, p.kwg // 2)
    return [
        (p.mwg, p.nwg, p.kwg),                       # exact tile via guards
        (p.mwg + 1, max(1, p.nwg - 1), p.kwg + half),  # ragged all dims
        (max(1, p.mwg - 1), p.nwg + 1, half),        # K < Kwg: empty pipe body
    ]


def _grammar() -> Iterator[Tuple[KernelParams, str]]:
    """Walk the kernel-shape grammar; yields (params, canonical key).

    The axes are deliberately minimal-blocking: the goal is structural
    coverage (which loops, barriers, guards, vector widths exist), not
    performance-space coverage, so each axis contributes its smallest
    interesting values and the combination count stays enumerable.
    """
    blockings = (
        # (mwg, nwg, kwg, mdimc, ndimc)
        (4, 4, 4, 2, 2),    # minimal square
        (8, 4, 4, 2, 2),    # M-heavy work per item
        (4, 8, 4, 2, 4),    # N-heavy group
        (8, 8, 8, 2, 2),    # room for vw=4 and reshapes
        (4, 4, 4, 1, 1),    # single-work-item group (never fuzzed)
        (8, 8, 4, 4, 4),    # one C element per item, wide group
        (16, 8, 8, 4, 2),   # vw=8-capable N... via nwi=4? kept for kwi=4
    )
    shared_modes = ((False, False), (True, False), (False, True), (True, True))
    for (mwg, nwg, kwg, mdimc, ndimc) in blockings:
        for algorithm in (Algorithm.BA, Algorithm.PL, Algorithm.DB):
            for shared_a, shared_b in shared_modes:
                if algorithm is Algorithm.PL and not (shared_a or shared_b):
                    continue  # canonical: PL without sharing emits the BA body
                for kwi in (1, 2):
                    for vw in (1, 2, 4):
                        for stride_m, stride_n in (
                            (False, False), (True, True), (False, True),
                        ):
                            for guard_edges in (False, True):
                                for use_images in (False, True):
                                    if use_images and not guard_edges:
                                        variants = _layout_variants(False)
                                    elif use_images:
                                        variants = ((Layout.ROW, Layout.ROW, 0, 0),)
                                    else:
                                        variants = _layout_variants(guard_edges)
                                    for la, lb, mdima, ndimb in variants:
                                        try:
                                            p = KernelParams(
                                                precision="d",
                                                mwg=mwg, nwg=nwg, kwg=kwg,
                                                mdimc=mdimc, ndimc=ndimc,
                                                kwi=kwi, vw=vw,
                                                stride=StrideMode(stride_m, stride_n),
                                                shared_a=shared_a,
                                                shared_b=shared_b,
                                                mdima=mdima, ndimb=ndimb,
                                                layout_a=la, layout_b=lb,
                                                algorithm=algorithm,
                                                use_images=use_images,
                                                guard_edges=guard_edges,
                                            )
                                        except ParameterError:
                                            continue
                                        yield p, p.cache_key()


def _layout_variants(include_blocked: bool):
    """(layout_a, layout_b, mdima, ndimb) combinations for one grammar node."""
    variants = [(Layout.ROW, Layout.ROW, 0, 0)]
    if include_blocked:
        return tuple(variants)
    variants += [
        (Layout.CBL, Layout.RBL, 0, 0),
        (Layout.RBL, Layout.CBL, 0, 0),
        # staging reshape: tall and wide loader grids
        (Layout.ROW, Layout.ROW, 1, 0),
        (Layout.ROW, Layout.ROW, 0, 1),
    ]
    return tuple(variants)


def enumerate_programs(
    limit: Optional[int] = None,
    precisions: Tuple[str, ...] = ("d", "s"),
) -> List[SpecProgram]:
    """Enumerate the MBT corpus, smallest interpreter cost first.

    ``limit`` truncates *after* ordering, so a bounded run is always a
    fixed prefix of the unbounded corpus — tier-1 runs a prefix of
    exactly what CI runs in full.  Cost ties are broken by each
    program's rank *within its blocking row*, which interleaves the
    blockings: a bounded prefix then crosses every structural axis that
    has programs at that cost (notably the single-work-item blocking)
    instead of draining the grammar's first blocking row.
    """
    entries: List[Tuple[int, int, int, KernelParams, Tuple[int, int, int]]] = []
    seen = set()
    ranks: dict = {}
    order = 0
    for base_params, key in _grammar():
        for precision in precisions:
            p = base_params if precision == "d" else _with_precision(base_params)
            cache_key = p.cache_key()
            if cache_key in seen:
                continue  # canonical-form pruning (e.g. mdima == mdimc)
            seen.add(cache_key)
            blocking = (p.mwg, p.nwg, p.kwg, p.mdimc, p.ndimc)
            for shape in _shapes_for(p):
                rank = ranks.get(blocking, 0)
                ranks[blocking] = rank + 1
                entries.append((program_cost(p, shape), rank, order, p, shape))
                order += 1
    entries.sort(key=lambda e: (e[0], e[1], e[2]))
    if limit is not None:
        entries = entries[:limit]
    programs = []
    for index, (_, _, _, p, shape) in enumerate(entries):
        programs.append(SpecProgram(
            index=index,
            params=p,
            shape=shape,
            alpha=float(_digest_pick(_ALPHAS, "alpha", p.cache_key(), shape)),
            beta=float(_digest_pick(_BETAS, "beta", p.cache_key(), shape)),
        ))
    return programs


def _with_precision(p: KernelParams) -> KernelParams:
    from dataclasses import replace

    return replace(p, precision="s")
