"""Executable OpenCL mini-spec and model-based differential testing.

An independent, deliberately slow executable semantics for the OpenCL C
subset the kernel generator emits, plus the machinery that uses it as a
test oracle:

* :mod:`repro.spec.cparse` — preprocessor, lexer and parser for the
  emitted source text;
* :mod:`repro.spec.machine` — the interpreter ("sloppy VM"):
  work-item/barrier-phase scheduling, address spaces with
  poison-on-uninitialised reads, race and bounds tracking, fp32/fp64
  rounding, vectors and images;
* :mod:`repro.spec.enumerate` — enumerative model-based program
  generation over a grammar of kernel shapes, small-to-large with
  canonical-form pruning;
* :mod:`repro.spec.differential` — the three-way harness (spec vs
  clsim vs repro.analyze) with disagreement classification and
  per-construct coverage;
* :mod:`repro.spec.corpus` — the shared fuzz-corpus definition, reused
  by ``tests/fuzz`` so both corpora feed one coverage scorecard.
"""

from repro.spec.cparse import SpecParseError, parse_kernel_source
from repro.spec.machine import (
    LocalArray,
    Machine,
    Poison,
    PrivateArray,
    SpecBuffer,
    SpecError,
    SpecImage,
    SpecOutcome,
    SpecViolation,
    Vec,
    fp32,
    run_kernel,
)

__all__ = [
    "SpecParseError",
    "parse_kernel_source",
    "SpecError",
    "SpecBuffer",
    "SpecImage",
    "LocalArray",
    "PrivateArray",
    "Machine",
    "Poison",
    "Vec",
    "SpecOutcome",
    "SpecViolation",
    "fp32",
    "run_kernel",
]
