"""The shared random fuzz corpus, importable by tests and the harness.

This is the corpus ``tests/fuzz/test_fuzz_kernels.py`` has always run —
the construction (seed handling, enumeration order, RNG draw order) is
moved here verbatim so the spec harness and the fuzz tests replay the
*identical* case list and the coverage scorecard can compare the two
corpora.  Changing the draw order here silently changes every
downstream corpus; the fuzz suite pins case 0 to guard against that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.codegen.params import KernelParams
from repro.codegen.space import SpaceRestrictions, enumerate_space
from repro.devices import get_device_spec
from repro.spec.enumerate import SpecProgram

__all__ = [
    "DEFAULT_FUZZ_SEED",
    "DEFAULT_FUZZ_COUNT",
    "FUZZ_DEVICES",
    "FUZZ_PRECISIONS",
    "FuzzCase",
    "fuzz_cases",
    "fuzz_operands",
    "as_spec_programs",
]

DEFAULT_FUZZ_SEED = 20260806
DEFAULT_FUZZ_COUNT = 200

#: One GPU and one CPU: different blocking regimes, local-memory types
#: and vector widths, so the sample crosses the interesting axes.
FUZZ_DEVICES = ("tahiti", "sandybridge")
FUZZ_PRECISIONS = ("s", "d")

#: The full generator surface: buffers, images, and guarded variants.
_RESTRICTIONS = SpaceRestrictions(allow_images=True, allow_guarded=True)

_ALPHAS = (1.0, -1.0, 1.5, 0.25)
_BETAS = (0.0, 1.0, -0.5, 0.75)


@dataclass(frozen=True)
class FuzzCase:
    index: int
    seed: int
    device: str
    precision: str
    params: KernelParams
    shape: Tuple[int, int, int]
    alpha: float
    beta: float

    def describe(self) -> str:
        M, N, K = self.shape
        return (
            f"case {self.index} [seed {self.seed}]: {self.device}/"
            f"{self.precision} {M}x{N}x{K} alpha={self.alpha} "
            f"beta={self.beta} :: {self.params.summary()}"
        )


def _shape_for(params: KernelParams, rng: np.random.Generator) -> Tuple[int, int, int]:
    """A random launchable (M, N, K) for this kernel, kept small.

    Unguarded kernels need blocking multiples (1-2 work-group tiles per
    dimension); guarded kernels get ragged sizes — whole tiles plus a
    partial remainder — to exercise every edge-guard path.
    """
    if params.guard_edges:
        def ragged(block: int) -> int:
            return max(1, int(rng.integers(0, 3)) * block + int(rng.integers(0, block)))

        return ragged(params.mwg), ragged(params.nwg), ragged(params.kwg)
    M = params.mwg * int(rng.integers(1, 3))
    N = params.nwg * int(rng.integers(1, 3))
    k_min = params.algorithm.min_k_iterations
    K = params.kwg * int(rng.integers(k_min, k_min + 2))
    return M, N, K


def fuzz_cases(
    seed: int = DEFAULT_FUZZ_SEED,
    count: int = DEFAULT_FUZZ_COUNT,
    devices: Tuple[str, ...] = FUZZ_DEVICES,
    precisions: Tuple[str, ...] = FUZZ_PRECISIONS,
) -> Tuple[FuzzCase, ...]:
    """The deterministic fuzz corpus (same sweep the fuzz tests run)."""
    rng = np.random.default_rng(seed)
    per_pool = -(-count // (len(devices) * len(precisions)))
    cases = []
    for codename in devices:
        spec = get_device_spec(codename)
        for precision in precisions:
            pool = enumerate_space(
                spec, precision, _RESTRICTIONS,
                limit=per_pool, per_blocking=4, seed=seed,
            )
            for params in pool:
                cases.append(FuzzCase(
                    index=len(cases),
                    seed=seed,
                    device=codename,
                    precision=precision,
                    params=params,
                    shape=_shape_for(params, rng),
                    alpha=float(rng.choice(_ALPHAS)),
                    beta=float(rng.choice(_BETAS)),
                ))
    return tuple(cases)


def fuzz_operands(case: FuzzCase):
    """Deterministic per-case random operands (independent of run order)."""
    M, N, K = case.shape
    dtype = np.float64 if case.precision == "d" else np.float32
    rng = np.random.default_rng([case.seed, case.index])
    a = rng.standard_normal((K, M)).astype(dtype)  # A^T, as the kernels read it
    b = rng.standard_normal((K, N)).astype(dtype)
    c = rng.standard_normal((M, N)).astype(dtype)
    return a, b, c


def as_spec_programs(cases: Tuple[FuzzCase, ...]) -> Tuple[SpecProgram, ...]:
    """Adapt fuzz cases to harness programs (origin ``fuzz``)."""
    return tuple(
        SpecProgram(
            index=case.index,
            params=case.params,
            shape=case.shape,
            alpha=case.alpha,
            beta=case.beta,
            origin="fuzz",
        )
        for case in cases
    )
