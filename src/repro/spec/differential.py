"""Three-way differential harness: spec vs clsim vs the static analyzer.

For every :class:`~repro.spec.enumerate.SpecProgram` the harness runs

1. the **spec interpreter** on the emitted source text (sampled
   work-groups; work-groups are independent so sampling is sound),
2. the **simulator** (``clsim``, WORKGROUP mode — the faithful blocked
   execution of the plan reconstructed from the metadata header),
3. the **numpy reference** (the mathematical contract), and
4. the **static analyzer** (``repro.analyze``) over the same vector,

then classifies the outcome.  Agreement means four independent
implementations of the same contract concur; every disagreement is
binned so a report can say *who* is wrong:

=============================  ==========================================
``agree``                      all legs concur within tolerance
``value_mismatch:source``      spec (executing the source) disagrees with
                               clsim+numpy: the *emitted text* is wrong
``value_mismatch:clsim``       clsim disagrees with spec+numpy: the
                               *simulator* is wrong
``value_mismatch:both``        spec and clsim disagree with numpy and
                               each other — two distinct bugs
``spec_ub_unflagged:<kinds>``  the spec observed UB (race, OOB, poison
                               escape, divergent barrier) that the
                               analyzer did not report
``spec_ub_flagged:<kinds>``    UB observed and the analyzer reported an
                               error for the same vector
``analyzer_spurious``          the analyzer reports an error but the
                               program executes cleanly and agrees
``reject:<leg>``               a leg refused the program (build/launch)
``spec_error``                 the interpreter itself failed (budget,
                               unsupported construct) — a harness gap
=============================  ==========================================

Tolerances are the tuner's verification tolerances (accumulation order
legitimately differs between a blocked kernel and one big matmul):
1e-10 relative for fp64, 1e-4 for fp32.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.codegen.emitter import emit_kernel_source
from repro.codegen.layouts import pack_matrix
from repro.codegen.params import KernelParams
from repro.errors import ReproError
from repro.gemm.reference import relative_error
from repro.spec.enumerate import SpecProgram
from repro.spec.machine import (
    SpecBuffer,
    SpecError,
    SpecImage,
    SpecOutcome,
    run_kernel,
)

__all__ = [
    "TOLERANCES",
    "construct_keys",
    "sample_groups",
    "program_operands",
    "run_spec_leg",
    "run_clsim_leg",
    "ProgramRecord",
    "DifferentialReport",
    "run_differential",
]

TOLERANCES = {"d": 1e-10, "s": 1e-4}

#: Run every work-group when the grid is at most this many groups;
#: otherwise sample corners + centre.
_FULL_GRID_LIMIT = 6


def construct_keys(params: KernelParams,
                   shape: Tuple[int, int, int]) -> Set[str]:
    """Static per-construct coverage keys for the scorecard.

    Keys name *structural* constructs (which loops, guards, widths and
    layouts exist in the emitted program), so the MBT-vs-fuzz scorecard
    compares language coverage, not parameter-space coverage.
    """
    p = params
    M, N, K = shape
    shared = ("A" if p.shared_a else "") + ("B" if p.shared_b else "") or "-"
    keys = {
        f"alg:{p.algorithm.value}",
        f"alg:{p.algorithm.value}:shared={shared}",
        f"vw:{p.vw}",
        f"stride:{p.stride.label()}",
        f"layoutA:{p.layout_a.value}",
        f"layoutB:{p.layout_b.value}",
        f"kwi:{p.kwi}",
        f"wgsize:{p.mdimc}x{p.ndimc}",
        f"blocking:{p.mwg}x{p.nwg}x{p.kwg}",
        "guarded" if p.guard_edges else "unguarded",
    }
    if p.mdimc * p.ndimc == 1:
        keys.add("wg:single-item")
    if p.use_images:
        keys.add("images")
        keys.add("images:fp64-uint2-idiom" if p.precision == "d"
                 else "images:fp32-readf")
    if p.effective_mdima != p.mdimc:
        keys.add("reshape:A")
    if p.effective_ndimb != p.ndimc:
        keys.add("reshape:B")
    if p.guard_edges and p.vw > 1:
        keys.add("guarded-vector-merge")
    k_blocks = -(-K // p.kwg)
    keys.add(f"kblocks:{min(k_blocks, 4)}")
    ragged = []
    if M % p.mwg:
        ragged.append("M")
    if N % p.nwg:
        ragged.append("N")
    if K % p.kwg:
        ragged.append("K")
    keys.add("ragged:" + ("".join(ragged) or "none"))
    if K < p.kwg:
        keys.add("ragged:K<Kwg")  # pipelined body never runs; epilogue-only
    return keys


def sample_groups(params: KernelParams, shape: Tuple[int, int, int],
                  limit: int = _FULL_GRID_LIMIT) -> List[Tuple[int, int]]:
    """Work-groups to interpret: the full grid when small, else a
    deterministic sample (corners + centre) of the independent groups."""
    M, N, _ = shape
    gx = -(-M // params.mwg)
    gy = -(-N // params.nwg)
    if gx * gy <= limit:
        return [(i, j) for i in range(gx) for j in range(gy)]
    picks = {
        (0, 0), (gx - 1, 0), (0, gy - 1), (gx - 1, gy - 1),
        (gx // 2, gy // 2),
    }
    return sorted(picks)


def group_mask(params: KernelParams, shape: Tuple[int, int, int],
               groups: Sequence[Tuple[int, int]]) -> np.ndarray:
    M, N, _ = shape
    mask = np.zeros((M, N), dtype=bool)
    for gx, gy in groups:
        mask[gx * params.mwg:(gx + 1) * params.mwg,
             gy * params.nwg:(gy + 1) * params.nwg] = True
    return mask


def program_operands(program: SpecProgram):
    """Deterministic operands derived from the program's content digest."""
    import hashlib

    p = program.params
    M, N, K = program.shape
    digest = hashlib.sha256(
        f"{p.cache_key()}|{program.shape}|{program.origin}".encode()
    ).digest()
    seed = list(digest[:16])
    rng = np.random.default_rng(seed)
    dtype = np.float64 if p.precision == "d" else np.float32
    a = rng.standard_normal((K, M)).astype(dtype)
    b = rng.standard_normal((K, N)).astype(dtype)
    c = rng.standard_normal((M, N)).astype(dtype)
    return a, b, c


def run_spec_leg(
    program: SpecProgram,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    groups: Optional[Sequence[Tuple[int, int]]] = None,
    max_ops: Optional[int] = None,
) -> Tuple[np.ndarray, SpecOutcome, List[Tuple[int, int]]]:
    """Interpret the emitted source; returns (C, outcome, groups run).

    Cells owned by unsampled groups keep the host values of ``c``;
    poisoned cells surface as NaN in the returned matrix (the violation
    list is the authoritative UB record).
    """
    p = program.params
    M, N, K = program.shape
    source = emit_kernel_source(p)
    if p.use_images:
        abuf: object = SpecImage(a.tolist(), p.precision, "agm")
        bbuf: object = SpecImage(b.tolist(), p.precision, "bgm")
    else:
        abuf = SpecBuffer(
            pack_matrix(a, p.layout_a, p.kwg, p.mwg).tolist(), "agm")
        bbuf = SpecBuffer(
            pack_matrix(b, p.layout_b, p.kwg, p.nwg).tolist(), "bgm")
    cbuf = SpecBuffer(c.reshape(-1).tolist(), "cgm")
    if groups is None:
        groups = sample_groups(p, program.shape)
    outcome = run_kernel(
        source,
        [M, N, K, program.alpha, program.beta, abuf, bbuf, cbuf],
        groups=groups,
        max_ops=max_ops,
    )
    dtype = np.float64 if p.precision == "d" else np.float32
    values = [v if isinstance(v, (int, float)) else math.nan
              for v in cbuf.values]
    return np.array(values, dtype=dtype).reshape(M, N), outcome, list(groups)


def run_clsim_leg(program: SpecProgram, a: np.ndarray, b: np.ndarray,
                  c: np.ndarray, device: str = "tahiti") -> np.ndarray:
    """Execute the same launch through the simulator (WORKGROUP mode)."""
    import repro.clsim as cl
    from repro.clsim.queue import ExecutionMode
    from repro.devices import get_device_spec

    p = program.params
    M, N, K = program.shape
    spec = get_device_spec(device)
    dev = cl.Device(spec)
    ctx = cl.Context([dev])
    queue = cl.CommandQueue(ctx, dev, measurement_noise=False,
                            execution_mode=ExecutionMode.WORKGROUP)
    if p.use_images:
        abuf = cl.Image2D(ctx, width=M, height=K, dtype=a.dtype, hostbuf=a)
        bbuf = cl.Image2D(ctx, width=N, height=K, dtype=b.dtype, hostbuf=b)
    else:
        abuf = cl.Buffer(ctx, hostbuf=pack_matrix(a, p.layout_a, p.kwg, p.mwg))
        bbuf = cl.Buffer(ctx, hostbuf=pack_matrix(b, p.layout_b, p.kwg, p.nwg))
    cbuf = cl.Buffer(ctx, hostbuf=c.copy())
    kernel = cl.Program(ctx, emit_kernel_source(p)).build().get_kernel("gemm_atb")
    kernel.set_args(M, N, K, program.alpha, program.beta, abuf, bbuf, cbuf)
    queue.launch(kernel, kernel.expected_global_size(), kernel.plan.local_size())
    return cbuf.read().reshape(M, N)


@dataclass
class ProgramRecord:
    """Classified outcome of one program through the harness."""

    index: int
    origin: str
    description: str
    classification: str
    detail: str = ""
    coverage: Set[str] = field(default_factory=set)
    spec_violations: Tuple[str, ...] = ()
    errors: Dict[str, float] = field(default_factory=dict)

    @property
    def is_disagreement(self) -> bool:
        return self.classification != "agree"


@dataclass
class DifferentialReport:
    records: List[ProgramRecord] = field(default_factory=list)

    def by_class(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.classification] = out.get(r.classification, 0) + 1
        return dict(sorted(out.items()))

    def disagreements(self) -> List[ProgramRecord]:
        return [r for r in self.records if r.is_disagreement]

    def coverage_by_origin(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for r in self.records:
            bucket = out.setdefault(r.origin, {})
            for key in r.coverage:
                bucket[key] = bucket.get(key, 0) + 1
        return out

    def coverage_scorecard(self) -> Dict[str, List[str]]:
        """Construct classes reached by each corpus, and the deltas."""
        cov = self.coverage_by_origin()
        mbt = set(cov.get("mbt", ()))
        fuzz = set(cov.get("fuzz", ()))
        return {
            "mbt_only": sorted(mbt - fuzz),
            "fuzz_only": sorted(fuzz - mbt),
            "both": sorted(mbt & fuzz),
        }

    def to_dict(self) -> dict:
        payload = {
            "programs": len(self.records),
            "by_class": self.by_class(),
            "disagreements": [
                {
                    "index": r.index,
                    "origin": r.origin,
                    "description": r.description,
                    "classification": r.classification,
                    "detail": r.detail,
                    "spec_violations": list(r.spec_violations),
                    "errors": r.errors,
                }
                for r in self.disagreements()
            ],
            "coverage": self.coverage_by_origin(),
        }
        if {r.origin for r in self.records} >= {"mbt", "fuzz"}:
            payload["scorecard"] = self.coverage_scorecard()
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _masked_error(result: np.ndarray, reference: np.ndarray,
                  mask: np.ndarray) -> float:
    r = result[mask]
    if np.isnan(r).any():
        return math.inf
    return relative_error(r, reference[mask])


def classify_program(
    program: SpecProgram,
    device: str = "tahiti",
    analyzer_device: Optional[str] = None,
    max_ops: Optional[int] = None,
    analysis_samples: int = 32,
) -> ProgramRecord:
    """Run one program through all legs and classify the outcome."""
    from repro.analyze.verifier import analyze_params

    p = program.params
    tol = TOLERANCES[p.precision]
    coverage = construct_keys(p, program.shape)
    record = ProgramRecord(
        index=program.index,
        origin=program.origin,
        description=program.describe(),
        classification="agree",
        coverage=coverage,
    )

    a, b, c = program_operands(program)
    dtype = a.dtype.type
    reference = (dtype(program.alpha) * (a.T @ b)
                 + dtype(program.beta) * c).astype(a.dtype)

    analyzer_errors: List[str] = []
    try:
        report = analyze_params(p, device=analyzer_device,
                                samples=analysis_samples)
        analyzer_errors = [d.rule for d in report.errors]
    except ReproError as exc:  # pragma: no cover - analyzer crash
        analyzer_errors = [f"analyzer-crash:{exc}"]

    try:
        spec_c, outcome, groups = run_spec_leg(program, a, b, c,
                                               max_ops=max_ops)
    except SpecError as exc:
        record.classification = "spec_error"
        record.detail = str(exc)
        return record
    except ReproError as exc:
        record.classification = "reject:spec"
        record.detail = str(exc)
        return record
    record.coverage = coverage | set(outcome.coverage)
    record.spec_violations = outcome.kinds()

    try:
        clsim_c = run_clsim_leg(program, a, b, c, device=device)
    except ReproError as exc:
        record.classification = "reject:clsim"
        record.detail = str(exc)
        return record

    if outcome.violations:
        flagged = bool(analyzer_errors)
        kinds = ",".join(outcome.kinds())
        record.classification = (
            f"spec_ub_flagged:{kinds}" if flagged
            else f"spec_ub_unflagged:{kinds}"
        )
        record.detail = "; ".join(
            f"{v.kind} at {v.site} (wi {v.wi}, phase {v.phase}): {v.detail}"
            for v in outcome.violations[:5]
        )
        return record

    mask = group_mask(p, program.shape, groups)
    spec_vs_ref = _masked_error(spec_c, reference, mask)
    clsim_vs_ref = _masked_error(clsim_c, reference, mask)
    spec_vs_clsim = _masked_error(spec_c, clsim_c, mask)
    record.errors = {
        "spec_vs_ref": spec_vs_ref,
        "clsim_vs_ref": clsim_vs_ref,
        "spec_vs_clsim": spec_vs_clsim,
    }

    spec_ok = spec_vs_ref <= tol
    clsim_ok = clsim_vs_ref <= tol
    if spec_vs_clsim <= tol and spec_ok and clsim_ok:
        if analyzer_errors:
            record.classification = "analyzer_spurious"
            record.detail = ", ".join(analyzer_errors)
        return record
    if spec_ok and not clsim_ok:
        record.classification = "value_mismatch:clsim"
    elif clsim_ok and not spec_ok:
        record.classification = "value_mismatch:source"
    else:
        record.classification = "value_mismatch:both"
    record.detail = (
        f"spec_vs_ref={spec_vs_ref:.3e} clsim_vs_ref={clsim_vs_ref:.3e} "
        f"spec_vs_clsim={spec_vs_clsim:.3e} tol={tol:g}"
    )
    return record


def run_differential(
    programs: Sequence[SpecProgram],
    device: str = "tahiti",
    analyzer_device: Optional[str] = None,
    max_ops: Optional[int] = None,
    progress=None,
) -> DifferentialReport:
    """Classify a corpus; ``progress`` (if given) is called per record."""
    report = DifferentialReport()
    for program in programs:
        record = classify_program(
            program, device=device, analyzer_device=analyzer_device,
            max_ops=max_ops,
        )
        report.records.append(record)
        if progress is not None:
            progress(record)
    return report
