"""Executable semantics for the emitted OpenCL subset (the "sloppy VM").

This is the spec half of the differential harness: a deliberately slow,
deliberately literal interpreter for the kernel *source text* that
:func:`repro.codegen.emitter.emit_kernel_source` produces.  Where the
simulator executes a plan reconstructed from the metadata header, the
spec executes the C — so the two agree only if the emitted text itself
is correct.

Semantics implemented (simplifications are documented in
``docs/spec_testing.md``):

* **Work-items and phases** — every work-item of a work-group runs
  lock-step between barriers.  Work-items are advanced sequentially
  within a phase; this is sound because any same-phase conflicting
  access pair to local memory is reported as a race, making the
  interleaving unobservable for race-free programs.
* **Barriers** — all live work-items must arrive at the *same* barrier
  call site, or all must finish; anything else is divergent-barrier UB
  and is reported.
* **Address spaces** — ``__global`` buffers (host-initialised),
  ``__local`` arrays (group-shared, poison until written) and private
  arrays/scalars (per-work-item, poison until written).  Reads of
  uninitialised local/private cells return poison *and* record a
  violation; poison that reaches a global store, a branch condition, an
  index or an image coordinate is a separate escape violation.
* **Races** — per-cell last-reader/last-writer tracking with the phase
  counter flags same-phase cross-work-item R/W, W/R and W/W pairs on
  local memory, and cross-work-item W/W on global memory.
* **Arithmetic** — fp64 is Python float (IEEE binary64) exactly; fp32
  rounds *every* operation result through binary32
  (``struct`` round-trip), including each ``mad`` step; integer ``/``
  and ``%`` use C truncating semantics.
* **Vectors** — ``vloadN``/``vstoreN`` on ``&buf[i]`` pointers, vector
  constructors, ``.x/.xy/.sN`` component access; a vector whose lanes
  include poison collapses to poison.
* **Images** — ``read_imagef``/``read_imageui`` with
  ``CLK_ADDRESS_NONE`` (out-of-range is UB: violation + poison),
  ``CLK_ADDRESS_CLAMP`` (zero border) and ``CLK_ADDRESS_CLAMP_TO_EDGE``
  (coordinate clamp); the fp64 idiom
  ``as_double(read_imageui(...).xy)`` reassembles the double from its
  two little-endian 32-bit halves.
"""

from __future__ import annotations

import math
import re
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.spec.cparse import (
    AddrOf,
    Assign,
    Barrier,
    Bin,
    Block,
    Call,
    Cond,
    Construct,
    Continue,
    DeclArray,
    DeclVar,
    Deref,
    ExprStmt,
    For,
    If,
    Index,
    KernelDef,
    Member,
    Num,
    SpecParseError,
    Un,
    Var,
    parse_kernel_source,
)

__all__ = [
    "SpecError",
    "Poison",
    "Vec",
    "SpecBuffer",
    "SpecImage",
    "LocalArray",
    "PrivateArray",
    "SpecViolation",
    "SpecOutcome",
    "Machine",
    "run_kernel",
    "OPENCL_CONSTANTS",
    "fp32",
]


class SpecError(ReproError):
    """The spec interpreter could not execute the program."""


_F32 = struct.Struct("<f")
_U32X2 = struct.Struct("<II")
_F64 = struct.Struct("<d")


def fp32(x: float) -> float:
    """Round ``x`` to the nearest IEEE binary32 value (round-to-nearest-even)."""
    try:
        return _F32.unpack(_F32.pack(x))[0]
    except OverflowError:
        return math.inf if x > 0 else -math.inf


class Poison:
    """An indeterminate value (uninitialised read / UB result)."""

    __slots__ = ("origin",)

    def __init__(self, origin: str):
        self.origin = origin

    def __repr__(self) -> str:
        return f"<poison from {self.origin}>"


class Vec:
    """An OpenCL vector value: a flat list of scalar lanes."""

    __slots__ = ("v",)

    def __init__(self, comps: List[object]):
        self.v = comps

    def __repr__(self) -> str:
        return f"Vec({self.v!r})"


class _Uninit:
    __slots__ = ()

    def __repr__(self) -> str:
        return "<uninit>"


UNINIT = _Uninit()
CONTINUE = object()  # statement result sentinel for C `continue`

#: Spec-internal encodings for the OpenCL named constants the emitted
#: source uses.  The *values* are private to the spec (a real OpenCL
#: implementation defines its own); only the decode in `_read_image`
#: depends on them.
OPENCL_CONSTANTS: Dict[str, int] = {
    "CLK_LOCAL_MEM_FENCE": 1,
    "CLK_GLOBAL_MEM_FENCE": 2,
    "CLK_NORMALIZED_COORDS_FALSE": 0,
    "CLK_NORMALIZED_COORDS_TRUE": 1,
    "CLK_ADDRESS_NONE": 1 << 4,
    "CLK_ADDRESS_CLAMP": 2 << 4,
    "CLK_ADDRESS_CLAMP_TO_EDGE": 3 << 4,
    "CLK_ADDRESS_REPEAT": 4 << 4,
    "CLK_FILTER_NEAREST": 0,
    "CLK_FILTER_LINEAR": 1 << 8,
}

_ADDRESS_NAMES = {1: "none", 2: "clamp", 3: "clamp_to_edge", 4: "repeat"}


@dataclass(frozen=True)
class SpecViolation:
    kind: str
    site: str
    wi: Tuple[int, ...]
    phase: int
    detail: str = ""


@dataclass
class SpecOutcome:
    violations: List[SpecViolation]
    coverage: Dict[str, int]
    ops: int
    groups: List[Tuple[int, int]]

    @property
    def ok(self) -> bool:
        return not self.violations

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({v.kind for v in self.violations}))


class Machine:
    """Shared interpreter state for one kernel launch."""

    def __init__(self, precision: str, max_ops: Optional[int] = None):
        self.precision = precision
        self.round32 = precision == "s"
        self.wi: Tuple[int, ...] = (0, 0)  # local id within the group
        self.gwi: Tuple[int, ...] = (0, 0, 0, 0)  # global identity
        self.phase = 0
        self.group_locals: Dict[str, "LocalArray"] = {}
        self.violations: List[SpecViolation] = []
        self._seen: set = set()
        self.coverage: Dict[str, int] = {}
        self.ops = 0
        self.max_ops = max_ops

    def violate(self, kind: str, site: str, detail: str = "") -> None:
        key = (kind, site)
        if key in self._seen:
            return
        self._seen.add(key)
        if len(self.violations) < 200:
            self.violations.append(
                SpecViolation(kind=kind, site=site, wi=self.wi,
                              phase=self.phase, detail=detail)
            )

    def cov(self, key: str, n: int = 1) -> None:
        self.coverage[key] = self.coverage.get(key, 0) + n

    def tick(self, n: int = 1) -> None:
        self.ops += n
        if self.max_ops is not None and self.ops > self.max_ops:
            raise SpecError(
                f"spec interpreter exceeded its operation budget "
                f"({self.max_ops} ops)"
            )


# ---------------------------------------------------------------------------
# Memory objects
# ---------------------------------------------------------------------------

class SpecBuffer:
    """A ``__global`` buffer; host-initialised, flat scalar storage."""

    __slots__ = ("name", "values", "readonly", "_writer")

    def __init__(self, values: Sequence[float], name: str = "buf",
                 readonly: bool = False):
        self.name = name
        self.values: List[object] = list(values)
        self.readonly = readonly
        self._writer: Dict[int, Tuple[int, ...]] = {}

    def load(self, i: object, m: Machine) -> object:
        if type(i) is not int:
            m.violate("noninteger_index", f"read {self.name}")
            return Poison(f"{self.name}[non-int]")
        if not 0 <= i < len(self.values):
            m.violate("global_oob_read", f"{self.name}[{i}]",
                      f"size {len(self.values)}")
            return Poison(f"{self.name}[{i}] out of bounds")
        m.tick()
        return self.values[i]

    def store(self, i: object, v: object, m: Machine) -> None:
        if type(i) is not int:
            m.violate("noninteger_index", f"write {self.name}")
            return
        if not 0 <= i < len(self.values):
            m.violate("global_oob_write", f"{self.name}[{i}]",
                      f"size {len(self.values)}")
            return
        if self.readonly:
            m.violate("readonly_write", f"{self.name}[{i}]")
            return
        if isinstance(v, Poison):
            m.violate("poison_escape", f"{self.name}[{i}]", v.origin)
        prev = self._writer.get(i)
        if prev is not None and prev != m.gwi:
            m.violate("global_write_race", f"{self.name}[{i}]",
                      f"written by work-items {prev} and {m.gwi}")
        self._writer[i] = m.gwi
        m.tick()
        self.values[i] = v


class LocalArray:
    """A ``__local`` array: group-shared, uninitialised, race-tracked."""

    __slots__ = ("name", "values", "_w_wi", "_w_ph", "_r_wi", "_r_ph")

    def __init__(self, name: str, size: int):
        self.name = name
        self.values: List[object] = [UNINIT] * size
        self._w_wi: List[object] = [None] * size
        self._w_ph = [-1] * size
        self._r_wi: List[object] = [None] * size
        self._r_ph = [-1] * size

    def load(self, i: object, m: Machine) -> object:
        if type(i) is not int:
            m.violate("noninteger_index", f"read {self.name}")
            return Poison(f"{self.name}[non-int]")
        if not 0 <= i < len(self.values):
            m.violate("local_oob_read", f"{self.name}[{i}]",
                      f"size {len(self.values)}")
            return Poison(f"{self.name}[{i}] out of bounds")
        if self._w_ph[i] == m.phase and self._w_wi[i] != m.wi:
            m.violate("local_race", f"{self.name}[{i}]",
                      f"read by {m.wi} races write by {self._w_wi[i]} "
                      f"in phase {m.phase}")
        self._r_wi[i] = m.wi
        self._r_ph[i] = m.phase
        m.tick()
        v = self.values[i]
        if v is UNINIT:
            m.violate("uninit_local_read", f"{self.name}[{i}]")
            return Poison(f"uninitialised {self.name}[{i}]")
        return v

    def store(self, i: object, v: object, m: Machine) -> None:
        if type(i) is not int:
            m.violate("noninteger_index", f"write {self.name}")
            return
        if not 0 <= i < len(self.values):
            m.violate("local_oob_write", f"{self.name}[{i}]",
                      f"size {len(self.values)}")
            return
        if self._w_ph[i] == m.phase and self._w_wi[i] != m.wi:
            m.violate("local_race", f"{self.name}[{i}]",
                      f"writes by {self._w_wi[i]} and {m.wi} "
                      f"in phase {m.phase}")
        if self._r_ph[i] == m.phase and self._r_wi[i] != m.wi:
            m.violate("local_race", f"{self.name}[{i}]",
                      f"write by {m.wi} races read by {self._r_wi[i]} "
                      f"in phase {m.phase}")
        self._w_wi[i] = m.wi
        self._w_ph[i] = m.phase
        m.tick()
        self.values[i] = v


class PrivateArray:
    """A per-work-item array; uninitialised cells read as poison."""

    __slots__ = ("name", "values")

    def __init__(self, name: str, size: int):
        self.name = name
        self.values: List[object] = [UNINIT] * size

    def load(self, i: object, m: Machine) -> object:
        if type(i) is not int:
            m.violate("noninteger_index", f"read {self.name}")
            return Poison(f"{self.name}[non-int]")
        if not 0 <= i < len(self.values):
            m.violate("private_oob_read", f"{self.name}[{i}]",
                      f"size {len(self.values)}")
            return Poison(f"{self.name}[{i}] out of bounds")
        m.tick()
        v = self.values[i]
        if v is UNINIT:
            m.violate("uninit_private_read", f"{self.name}[{i}]")
            return Poison(f"uninitialised {self.name}[{i}]")
        return v

    def store(self, i: object, v: object, m: Machine) -> None:
        if type(i) is not int:
            m.violate("noninteger_index", f"write {self.name}")
            return
        if not 0 <= i < len(self.values):
            m.violate("private_oob_write", f"{self.name}[{i}]",
                      f"size {len(self.values)}")
            return
        m.tick()
        self.values[i] = v


class SpecImage:
    """A 2-D read-only image: ``texel(x, y) == rows[y][x]``."""

    __slots__ = ("name", "width", "height", "rows", "precision")

    def __init__(self, rows: Sequence[Sequence[float]], precision: str,
                 name: str = "img"):
        self.name = name
        self.rows = [list(r) for r in rows]
        self.height = len(self.rows)
        self.width = len(self.rows[0]) if self.rows else 0
        self.precision = precision

    def load(self, i: object, m: Machine) -> object:  # pragma: no cover
        m.violate("image_subscript", self.name,
                  "images are read through read_image*, not subscripts")
        return Poison(f"{self.name} subscripted")

    def store(self, i: object, v: object, m: Machine) -> None:  # pragma: no cover
        m.violate("image_subscript", self.name)


class Ptr:
    """``&buf[i]`` — the only pointer value the subset produces."""

    __slots__ = ("arr", "base")

    def __init__(self, arr: object, base: int):
        self.arr = arr
        self.base = base


# ---------------------------------------------------------------------------
# Scalar / vector arithmetic
# ---------------------------------------------------------------------------

def _c_idiv(a: int, b: int, m: Machine, site: str) -> object:
    if b == 0:
        m.violate("division_by_zero", site)
        return Poison(f"{site}: division by zero")
    q = a // b
    if (a % b != 0) and ((a < 0) != (b < 0)):
        q += 1  # C rounds toward zero, Python toward -inf
    return q


def _scalar_op(op: str, a: object, b: object, m: Machine) -> object:
    if isinstance(a, Poison):
        return a
    if isinstance(b, Poison):
        return b
    if op == "+":
        r = a + b
    elif op == "-":
        r = a - b
    elif op == "*":
        r = a * b
    elif op == "/":
        if isinstance(a, int) and isinstance(b, int):
            return _c_idiv(a, b, m, "integer division")
        if b == 0:
            m.violate("division_by_zero", "fp division")
            try:
                r = math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
            except TypeError:  # pragma: no cover
                r = math.nan
        else:
            r = a / b
    elif op == "%":
        if not (isinstance(a, int) and isinstance(b, int)):
            m.violate("fp_modulo", "%")
            return Poison("% on non-integers")
        q = _c_idiv(a, b, m, "integer modulo")
        if isinstance(q, Poison):
            return q
        return a - q * b
    elif op == "==":
        return int(a == b)
    elif op == "!=":
        return int(a != b)
    elif op == "<":
        return int(a < b)
    elif op == ">":
        return int(a > b)
    elif op == "<=":
        return int(a <= b)
    elif op == ">=":
        return int(a >= b)
    elif op in ("|", "&", "^"):
        if not (isinstance(a, int) and isinstance(b, int)):
            m.violate("bitwise_on_float", op)
            return Poison("bitwise op on non-integers")
        r = a | b if op == "|" else (a & b if op == "&" else a ^ b)
    else:  # pragma: no cover
        raise SpecError(f"unknown binary operator {op!r}")
    if m.round32 and isinstance(r, float):
        r = fp32(r)
    return r


def _binop(op: str, a: object, b: object, m: Machine) -> object:
    av, bv = isinstance(a, Vec), isinstance(b, Vec)
    if not av and not bv:
        return _scalar_op(op, a, b, m)
    if isinstance(a, Poison):
        return a
    if isinstance(b, Poison):
        return b
    if av and bv:
        if len(a.v) != len(b.v):
            m.violate("vector_width_mismatch", op)
            return Poison("vector width mismatch")
        comps = [_scalar_op(op, x, y, m) for x, y in zip(a.v, b.v)]
    elif av:
        comps = [_scalar_op(op, x, b, m) for x in a.v]
    else:
        comps = [_scalar_op(op, a, y, m) for y in b.v]
    for c in comps:
        if isinstance(c, Poison):
            return c
    return Vec(comps)


def _is_poison(v: object) -> Optional[Poison]:
    if isinstance(v, Poison):
        return v
    if isinstance(v, Vec):
        for c in v.v:
            if isinstance(c, Poison):
                return c
    return None


def _truthy(v: object, m: Machine, site: str) -> bool:
    p = _is_poison(v)
    if p is not None:
        m.violate("poison_branch", site, p.origin)
        return False
    return v != 0


# ---------------------------------------------------------------------------
# Compiler: AST -> Python closures
# ---------------------------------------------------------------------------

_COMP_XYZW = {"x": 0, "y": 1, "z": 2, "w": 3}
_VEC_WIDTHS = (2, 4, 8, 16)


def _component_indices(name: str) -> List[int]:
    if name and name[0] == "s" and len(name) > 1 and \
            all(c in "0123456789abcdefABCDEF" for c in name[1:]):
        return [int(c, 16) for c in name[1:]]
    if name and all(c in _COMP_XYZW for c in name):
        return [_COMP_XYZW[c] for c in name]
    raise SpecParseError(f"unsupported vector component accessor .{name}")


class _Compiler:
    def __init__(self, m: Machine):
        self.m = m

    # -- expressions ----------------------------------------------------
    def expr(self, node: object):
        m = self.m
        if isinstance(node, Num):
            v = float(node.value) if node.is_float else int(node.value)
            if node.is_float and m.round32:
                v = fp32(v)
            return lambda env: v
        if isinstance(node, Var):
            name = node.name
            def var(env, _name=name):
                try:
                    return env[_name]
                except KeyError:
                    raise SpecError(f"undefined identifier {_name!r}")
            return var
        if isinstance(node, Bin):
            return self._bin(node)
        if isinstance(node, Un):
            return self._un(node)
        if isinstance(node, Cond):
            c = self.expr(node.cond)
            t = self.expr(node.then)
            o = self.expr(node.other)
            def cond(env):
                return t(env) if _truthy(c(env), m, "?:") else o(env)
            return cond
        if isinstance(node, Index):
            name = node.base
            idx = self.expr(node.index)
            def index(env):
                i = idx(env)
                p = _is_poison(i)
                if p is not None:
                    m.violate("poison_index", f"read {name}", p.origin)
                    return p
                return env[name].load(i, m)
            return index
        if isinstance(node, Member):
            base = self.expr(node.base)
            comps = _component_indices(node.name)
            single = comps[0] if len(comps) == 1 else None
            def member(env):
                v = base(env)
                if isinstance(v, Poison):
                    return v
                if not isinstance(v, Vec):
                    m.violate("component_of_scalar", f".{node.name}")
                    return Poison(f"component .{node.name} of a scalar")
                if max(comps) >= len(v.v):
                    m.violate("component_out_of_range", f".{node.name}")
                    return Poison(f".{node.name} out of range")
                if single is not None:
                    return v.v[single]
                return Vec([v.v[i] for i in comps])
            return member
        if isinstance(node, Construct):
            return self._construct(node)
        if isinstance(node, Call):
            return self._call(node)
        if isinstance(node, AddrOf):
            name = node.target.base
            idx = self.expr(node.target.index)
            def addrof(env):
                i = idx(env)
                p = _is_poison(i)
                if p is not None:
                    m.violate("poison_index", f"&{name}[...]", p.origin)
                    return p
                return Ptr(env[name], i)
            return addrof
        if isinstance(node, Deref):
            ptr = self.expr(node.pointer)
            def deref(env):
                p = ptr(env)
                if isinstance(p, Poison):
                    return p
                if not isinstance(p, Ptr):
                    raise SpecError("dereference of a non-pointer value")
                return p.arr.load(p.base, m)
            return deref
        raise SpecError(f"cannot compile expression node {node!r}")

    def _bin(self, node: Bin):
        m = self.m
        op = node.op
        left = self.expr(node.left)
        right = self.expr(node.right)
        if op == "&&":
            def land(env):
                a = left(env)
                p = _is_poison(a)
                if p is not None:
                    m.violate("poison_branch", "&&", p.origin)
                    return 0
                if a == 0:
                    return 0
                return 1 if _truthy(right(env), m, "&&") else 0
            return land
        if op == "||":
            def lor(env):
                a = left(env)
                p = _is_poison(a)
                if p is not None:
                    m.violate("poison_branch", "||", p.origin)
                    return 1
                if a != 0:
                    return 1
                return 1 if _truthy(right(env), m, "||") else 0
            return lor
        def bin_(env):
            return _binop(op, left(env), right(env), m)
        return bin_

    def _un(self, node: Un):
        m = self.m
        operand = self.expr(node.operand)
        op = node.op
        def un(env):
            v = operand(env)
            if isinstance(v, Poison):
                return v
            if isinstance(v, Vec):
                if op == "-":
                    return _binop("-", Vec([0] * len(v.v)), v, m)
                m.violate("unsupported_vector_unary", op)
                return Poison(f"unary {op} on a vector")
            if op == "-":
                r = -v
                if m.round32 and isinstance(r, float):
                    r = fp32(r)
                return r
            if op == "!":
                return int(v == 0)
            if op == "~":
                if not isinstance(v, int):
                    m.violate("bitwise_on_float", "~")
                    return Poison("~ on a non-integer")
                return ~v
            raise SpecError(f"unknown unary operator {op!r}")  # pragma: no cover
        return un

    def _construct(self, node: Construct):
        m = self.m
        ctype = node.ctype
        args = [self.expr(a) for a in node.args]
        vm = re.match(r"^(float|double|int|uint)(\d+)$", ctype)
        if vm:
            base, width = vm.group(1), int(vm.group(2))
            is_float = base in ("float", "double")
            def cast_lane(x):
                if isinstance(x, Poison):
                    return x
                if is_float:
                    x = float(x)
                    return fp32(x) if (base == "float" or m.round32) else x
                return int(x)
            if len(args) == 1:
                a0 = args[0]
                def broadcast(env):
                    v = a0(env)
                    if isinstance(v, Poison):
                        return v
                    if isinstance(v, Vec):
                        if len(v.v) != width:
                            m.violate("vector_width_mismatch", f"({ctype})")
                            return Poison("constructor width mismatch")
                        comps = [cast_lane(x) for x in v.v]
                    else:
                        comps = [cast_lane(v)] * width
                    for c in comps:
                        if isinstance(c, Poison):
                            return c
                    return Vec(comps)
                return broadcast
            if len(args) != width:
                raise SpecParseError(
                    f"({ctype}) constructor takes 1 or {width} arguments, "
                    f"got {len(args)}"
                )
            def construct(env):
                comps = []
                for a in args:
                    v = a(env)
                    if isinstance(v, Vec):
                        m.violate("nested_vector_constructor", f"({ctype})")
                        return Poison("vector inside vector constructor")
                    if isinstance(v, Poison):
                        return v
                    comps.append(cast_lane(v))
                return Vec(comps)
            return construct
        if len(args) != 1:
            raise SpecParseError(f"({ctype}) cast takes one operand")
        a0 = args[0]
        if ctype == "void":
            def void(env):
                a0(env)
                return None
            return void
        if ctype in ("float", "double"):
            def fcast(env):
                v = a0(env)
                if isinstance(v, Poison):
                    return v
                if isinstance(v, Vec):
                    m.violate("scalar_cast_of_vector", f"({ctype})")
                    return Poison("scalar cast of a vector")
                v = float(v)
                return fp32(v) if (ctype == "float" or m.round32) else v
            return fcast
        def icast(env):
            v = a0(env)
            if isinstance(v, Poison):
                return v
            if isinstance(v, Vec):
                m.violate("scalar_cast_of_vector", f"({ctype})")
                return Poison("scalar cast of a vector")
            return int(v)  # trunc toward zero, matching C conversions
        return icast

    def _call(self, node: Call):
        m = self.m
        name = node.name
        args = [self.expr(a) for a in node.args]
        if name in ("get_local_id", "get_group_id", "get_global_id",
                    "get_local_size", "get_global_size", "get_num_groups"):
            if len(args) != 1 or not isinstance(node.args[0], Num):
                raise SpecParseError(
                    f"line {node.line}: {name} wants a literal dimension"
                )
            d = int(node.args[0].value)
            if name == "get_local_id":
                return lambda env: env["__lid"][d]
            if name == "get_group_id":
                return lambda env: env["__gid"][d]
            if name == "get_global_id":
                return lambda env: (env["__gid"][d] * env["__lsz"][d]
                                    + env["__lid"][d])
            if name == "get_local_size":
                return lambda env: env["__lsz"][d]
            if name == "get_num_groups":
                return lambda env: env["__ngrp"][d]
            return lambda env: env["__ngrp"][d] * env["__lsz"][d]
        if name == "mad":
            if len(args) != 3:
                raise SpecParseError(f"line {node.line}: mad takes 3 arguments")
            a0, a1, a2 = args
            def mad(env):
                m.cov("mad")
                m.tick()
                return _binop("+", _binop("*", a0(env), a1(env), m),
                              a2(env), m)
            return mad
        vl = re.match(r"^vload(\d+)$", name)
        if vl:
            width = int(vl.group(1))
            if width not in _VEC_WIDTHS or len(args) != 2:
                raise SpecParseError(f"line {node.line}: bad {name} call")
            offc, ptrc = args
            def vload(env):
                off = offc(env)
                p = ptrc(env)
                if isinstance(p, Poison):
                    return p
                if isinstance(off, Poison):
                    m.violate("poison_index", name, off.origin)
                    return off
                if not isinstance(p, Ptr):
                    raise SpecError(f"{name}: second argument is not &buf[i]")
                base = p.base + off * width
                comps = [p.arr.load(base + j, m) for j in range(width)]
                m.cov(f"vload{width}")
                for c in comps:
                    if isinstance(c, Poison):
                        return c
                return Vec(comps)
            return vload
        vs = re.match(r"^vstore(\d+)$", name)
        if vs:
            width = int(vs.group(1))
            if width not in _VEC_WIDTHS or len(args) != 3:
                raise SpecParseError(f"line {node.line}: bad {name} call")
            valc, offc, ptrc = args
            def vstore(env):
                val = valc(env)
                off = offc(env)
                p = ptrc(env)
                if isinstance(p, Poison):
                    return None
                if isinstance(off, Poison):
                    m.violate("poison_index", name, off.origin)
                    return None
                if not isinstance(p, Ptr):
                    raise SpecError(f"{name}: third argument is not &buf[i]")
                if isinstance(val, Poison):
                    comps: List[object] = [val] * width
                elif isinstance(val, Vec) and len(val.v) == width:
                    comps = val.v
                else:
                    m.violate("vector_width_mismatch", name)
                    return None
                base = p.base + off * width
                m.cov(f"vstore{width}")
                for j, c in enumerate(comps):
                    p.arr.store(base + j, c, m)
                return None
            return vstore
        if name in ("read_imagef", "read_imageui"):
            if len(args) != 3:
                raise SpecParseError(f"line {node.line}: bad {name} call")
            imgc, smpc, coordc = args
            return self._read_image(name, imgc, smpc, coordc)
        if name == "as_double":
            if len(args) != 1:
                raise SpecParseError(f"line {node.line}: bad as_double call")
            a0 = args[0]
            def as_double(env):
                v = a0(env)
                p = _is_poison(v)
                if p is not None:
                    return p
                if not isinstance(v, Vec) or len(v.v) != 2:
                    m.violate("as_double_operand", "as_double",
                              "expects a uint2 (two 32-bit halves)")
                    return Poison("as_double of a non-uint2")
                lo, hi = int(v.v[0]) & 0xFFFFFFFF, int(v.v[1]) & 0xFFFFFFFF
                return _F64.unpack(_U32X2.pack(lo, hi))[0]
            return as_double
        if name == "barrier":
            raise SpecParseError(
                f"line {node.line}: barrier() in an expression context"
            )
        raise SpecParseError(
            f"line {node.line}: unsupported builtin {name!r}"
        )

    def _read_image(self, func: str, imgc, smpc, coordc):
        m = self.m
        def read(env):
            img = imgc(env)
            flags = smpc(env)
            coord = coordc(env)
            if not isinstance(img, SpecImage):
                raise SpecError(f"{func}: first argument is not an image")
            p = _is_poison(coord)
            if p is not None:
                m.violate("poison_index", func, p.origin)
                return p
            if not isinstance(coord, Vec) or len(coord.v) != 2:
                raise SpecError(f"{func}: coordinate is not an int2")
            x, y = int(coord.v[0]), int(coord.v[1])
            addressing = (int(flags) >> 4) & 0xF
            mode = _ADDRESS_NAMES.get(addressing, "none")
            m.cov(f"image:{func}:{mode}")
            m.tick()
            if int(flags) & OPENCL_CONSTANTS["CLK_FILTER_LINEAR"]:
                m.violate("unsupported_sampler", func, "CLK_FILTER_LINEAR")
                return Poison("linear filtering unsupported")
            oob = not (0 <= x < img.width and 0 <= y < img.height)
            if oob:
                if mode == "none":
                    m.violate("image_oob_read",
                              f"{img.name}({x}, {y})",
                              f"{img.width}x{img.height}, CLK_ADDRESS_NONE")
                    return Poison(f"OOB image read {img.name}({x}, {y})")
                if mode == "clamp":
                    return Vec([0, 0, 0, 0] if func == "read_imageui"
                               else [0.0, 0.0, 0.0, 0.0])
                if mode == "clamp_to_edge":
                    x = min(max(x, 0), img.width - 1)
                    y = min(max(y, 0), img.height - 1)
                else:
                    m.violate("unsupported_sampler", func, mode)
                    return Poison(f"sampler mode {mode} unsupported")
            v = img.rows[y][x]
            if func == "read_imagef":
                if img.precision != "s":
                    m.violate("image_channel_mismatch", func,
                              "read_imagef on a 64-bit-texel image")
                    return Poison("read_imagef on an fp64 image")
                return Vec([fp32(v), 0.0, 0.0, 1.0])
            if img.precision != "d":
                m.violate("image_channel_mismatch", func,
                          "read_imageui on a 32-bit float image")
                return Poison("read_imageui on an fp32 image")
            lo, hi = _U32X2.unpack(_F64.pack(float(v)))
            return Vec([lo, hi, 0, 1])
        return read

    # -- statements -----------------------------------------------------
    def has_barrier(self, node: object) -> bool:
        if isinstance(node, Barrier):
            return True
        if isinstance(node, Block):
            return any(self.has_barrier(s) for s in node.stmts)
        if isinstance(node, For):
            return self.has_barrier(node.body)
        if isinstance(node, If):
            return self.has_barrier(node.then) or (
                node.other is not None and self.has_barrier(node.other)
            )
        return False

    def block(self, node: Block) -> Tuple[bool, object]:
        parts = [self.stmt(s) for s in node.stmts]
        if not any(is_gen for is_gen, _ in parts):
            fns = [f for _, f in parts]
            def run(env):
                for f in fns:
                    if f(env) is CONTINUE:
                        return CONTINUE
                return None
            return False, run
        def gen(env):
            for is_gen, f in parts:
                r = (yield from f(env)) if is_gen else f(env)
                if r is CONTINUE:
                    return CONTINUE
            return None
        return True, gen

    def stmt(self, node: object) -> Tuple[bool, object]:
        m = self.m
        if isinstance(node, Block):
            return self.block(node)
        if isinstance(node, Barrier):
            site = node.site
            def barrier(env):
                m.cov("barrier")
                yield site
                return None
            return True, barrier
        if isinstance(node, Continue):
            return False, lambda env: CONTINUE
        if isinstance(node, DeclArray):
            size_c = self.expr(node.size)
            name = node.name
            if node.space == "local":
                def decl_local(env):
                    arr = m.group_locals.get(name)
                    if arr is None:
                        size = size_c(env)
                        if not isinstance(size, int) or size <= 0:
                            raise SpecError(
                                f"__local {name}: invalid size {size!r}"
                            )
                        arr = LocalArray(name, size)
                        m.group_locals[name] = arr
                    env[name] = arr
                    return None
                return False, decl_local
            def decl_private(env):
                size = size_c(env)
                if not isinstance(size, int) or size <= 0:
                    raise SpecError(f"array {name}: invalid size {size!r}")
                env[name] = PrivateArray(name, size)
                return None
            return False, decl_private
        if isinstance(node, DeclVar):
            init = self.expr(node.init)
            name = node.name
            ctype = node.ctype
            if ctype in ("float", "double"):
                def decl_f(env):
                    v = init(env)
                    if not isinstance(v, (Poison, Vec)):
                        v = float(v)
                        if ctype == "float" or m.round32:
                            v = fp32(v)
                    env[name] = v
                    return None
                return False, decl_f
            if ctype in ("int", "uint", "size_t", "long", "ulong", "short",
                         "ushort", "char"):
                def decl_i(env):
                    v = init(env)
                    if not isinstance(v, (Poison, Vec)):
                        v = int(v)
                    env[name] = v
                    return None
                return False, decl_i
            def decl_v(env):  # vector-typed scalar declarations
                env[name] = init(env)
                return None
            return False, decl_v
        if isinstance(node, Assign):
            value = self.expr(node.value)
            target = node.target
            if isinstance(target, Var):
                name = target.name
                def assign_var(env):
                    env[name] = value(env)
                    return None
                return False, assign_var
            if isinstance(target, Index):
                name = target.base
                idx = self.expr(target.index)
                def assign_idx(env):
                    i = idx(env)
                    p = _is_poison(i)
                    if p is not None:
                        m.violate("poison_index", f"write {name}", p.origin)
                        return None
                    env[name].store(i, value(env), m)
                    return None
                return False, assign_idx
            ptr = self.expr(target.pointer)
            def assign_deref(env):
                p = ptr(env)
                if isinstance(p, Poison):
                    return None
                if not isinstance(p, Ptr):
                    raise SpecError("assignment through a non-pointer")
                p.arr.store(p.base, value(env), m)
                return None
            return False, assign_deref
        if isinstance(node, ExprStmt):
            e = self.expr(node.expr)
            def exprstmt(env):
                e(env)
                return None
            return False, exprstmt
        if isinstance(node, For):
            return self._for(node)
        if isinstance(node, If):
            return self._if(node)
        raise SpecError(f"cannot compile statement {node!r}")

    def _for(self, node: For) -> Tuple[bool, object]:
        m = self.m
        var = node.var
        init = self.expr(node.init)
        cond = self.expr(node.cond)
        step = self.expr(node.step)
        is_gen, body = self.block(node.body)
        site = f"for@{node.line}"
        if not is_gen:
            def run(env):
                env[var] = int(init(env))
                while _truthy(cond(env), m, site):
                    m.tick()
                    body(env)  # CONTINUE lands here: proceed to the step
                    env[var] = env[var] + int(step(env))
                return None
            return False, run
        def gen(env):
            env[var] = int(init(env))
            while _truthy(cond(env), m, site):
                m.tick()
                yield from body(env)
                env[var] = env[var] + int(step(env))
            return None
        return True, gen

    def _if(self, node: If) -> Tuple[bool, object]:
        m = self.m
        cond = self.expr(node.cond)
        then_gen, then = self.block(node.then)
        if node.other is None:
            other_gen, other = False, None
        else:
            other_gen, other = self.block(node.other)
        site = f"if@{node.line}"
        if not then_gen and not other_gen:
            def run(env):
                if _truthy(cond(env), m, site):
                    return then(env)
                if other is not None:
                    return other(env)
                return None
            return False, run
        def gen(env):
            if _truthy(cond(env), m, site):
                r = (yield from then(env)) if then_gen else then(env)
                return r
            if other is not None:
                r = (yield from other(env)) if other_gen else other(env)
                return r
            return None
        return True, gen


# ---------------------------------------------------------------------------
# Launch: bind arguments, iterate work-groups, schedule barrier phases
# ---------------------------------------------------------------------------

def _detect_precision(kd: KernelDef) -> str:
    for arg in kd.args:
        if arg.kind == "double" or (arg.kind == "global" and arg.elem == "double"):
            return "d"
    return "s"


def _bind_args(kd: KernelDef, values: Sequence[object],
               round32: bool) -> Dict[str, object]:
    if len(values) != len(kd.args):
        raise SpecError(
            f"kernel {kd.name} takes {len(kd.args)} arguments, "
            f"got {len(values)}"
        )
    env: Dict[str, object] = {}
    for arg, v in zip(kd.args, values):
        if arg.kind == "global":
            if not isinstance(v, SpecBuffer):
                raise SpecError(f"argument {arg.name} must be a SpecBuffer")
            if arg.readonly:
                v.readonly = True
            env[arg.name] = v
        elif arg.kind == "image":
            if not isinstance(v, SpecImage):
                raise SpecError(f"argument {arg.name} must be a SpecImage")
            env[arg.name] = v
        elif arg.kind in ("float", "double"):
            fv = float(v)
            env[arg.name] = fp32(fv) if (arg.kind == "float" or round32) else fv
        else:
            env[arg.name] = int(v)
    return env


def run_kernel(
    source: str,
    args: Sequence[object],
    global_size: Optional[Tuple[int, int]] = None,
    local_size: Optional[Tuple[int, int]] = None,
    groups: Optional[Sequence[Tuple[int, int]]] = None,
    max_ops: Optional[int] = None,
    kernel_name: Optional[str] = None,
) -> SpecOutcome:
    """Interpret one kernel launch under the executable spec.

    ``groups`` selects which work-groups to actually execute (all by
    default).  Work-groups in the emitted subset are independent — they
    share no local memory and write disjoint C tiles — so sampling them
    is sound: every executed group sees exactly the state it would see
    in a full launch, and unexecuted groups simply leave their output
    cells untouched.
    """
    tu = parse_kernel_source(source)
    if kernel_name is None:
        if len(tu.kernels) != 1:
            raise SpecError(
                f"source defines {len(tu.kernels)} kernels; pass kernel_name"
            )
        kd = next(iter(tu.kernels.values()))
    else:
        if kernel_name not in tu.kernels:
            raise SpecError(f"no kernel named {kernel_name!r} in source")
        kd = tu.kernels[kernel_name]

    if local_size is None:
        if kd.reqd_size is None:
            raise SpecError("no local_size given and no reqd_work_group_size")
        local_size = (kd.reqd_size[0], kd.reqd_size[1])
    ls0, ls1 = int(local_size[0]), int(local_size[1])
    if ls0 <= 0 or ls1 <= 0:
        raise SpecError(f"invalid local size {local_size!r}")
    if kd.reqd_size is not None and (ls0, ls1) != kd.reqd_size[:2]:
        raise SpecError(
            f"local size {local_size!r} contradicts "
            f"reqd_work_group_size{kd.reqd_size!r}"
        )

    if groups is None:
        if global_size is None:
            raise SpecError("pass either global_size or groups")
        gs0, gs1 = int(global_size[0]), int(global_size[1])
        if gs0 % ls0 or gs1 % ls1:
            raise SpecError(
                f"global size {global_size!r} is not a multiple of the "
                f"local size {local_size!r}"
            )
        groups = [(gx, gy) for gy in range(gs1 // ls1)
                  for gx in range(gs0 // ls0)]
        ngrp = (gs0 // ls0, gs1 // ls1, 1)
    else:
        groups = [(int(g[0]), int(g[1])) for g in groups]
        ngrp = (max((g[0] for g in groups), default=0) + 1,
                max((g[1] for g in groups), default=0) + 1, 1)

    precision = _detect_precision(kd)
    m = Machine(precision, max_ops=max_ops)
    compiler = _Compiler(m)

    base_env: Dict[str, object] = dict(OPENCL_CONSTANTS)
    base_env.update(_bind_args(kd, args, m.round32))
    for smp in tu.samplers:
        base_env[smp.name] = compiler.expr(smp.expr)(base_env)
    base_env["__lsz"] = (ls0, ls1, 1)
    base_env["__ngrp"] = ngrp

    body_is_gen, body = compiler.block(kd.body)

    for gx, gy in groups:
        m.group_locals = {}
        m.phase = 0
        wi_ids = [(l0, l1) for l1 in range(ls1) for l0 in range(ls0)]
        envs = []
        for l0, l1 in wi_ids:
            env = dict(base_env)
            env["__lid"] = (l0, l1, 0)
            env["__gid"] = (gx, gy, 0)
            envs.append(env)

        if not body_is_gen:
            for (l0, l1), env in zip(wi_ids, envs):
                m.wi = (l0, l1)
                m.gwi = (gx, gy, l0, l1)
                body(env)
            continue

        gens = [body(env) for env in envs]
        live = list(range(len(gens)))
        while live:
            arrived: Dict[int, List[int]] = {}
            finished: List[int] = []
            for wi in live:
                l0, l1 = wi_ids[wi]
                m.wi = (l0, l1)
                m.gwi = (gx, gy, l0, l1)
                try:
                    site = next(gens[wi])
                except StopIteration:
                    finished.append(wi)
                else:
                    arrived.setdefault(site, []).append(wi)
            if arrived and finished:
                m.violate(
                    "barrier_divergence", f"group ({gx}, {gy})",
                    f"work-items {sorted(finished)} finished while "
                    f"{sorted(sum(arrived.values(), []))} wait at a barrier"
                )
                break
            if len(arrived) > 1:
                m.violate(
                    "barrier_divergence", f"group ({gx}, {gy})",
                    "work-items reached different barrier sites: "
                    + ", ".join(
                        f"site {s}: {sorted(w)}" for s, w in sorted(arrived.items())
                    )
                )
                break
            live = [wi for wi in live if wi not in finished]
            m.phase += 1

    return SpecOutcome(
        violations=list(m.violations),
        coverage=dict(m.coverage),
        ops=m.ops,
        groups=list(groups),
    )
