"""OpenCL C front end for the executable mini-spec.

This module turns the *text* of a generated kernel into an AST — it is
the independent half of the differential-testing loop.  The simulator
(:mod:`repro.clsim`) never reads the kernel body: its "compiler" parses
the metadata header and rebuilds an execution plan from the parameter
vector.  The spec interpreter instead parses and executes the emitted
OpenCL C itself, so an emitter bug (wrong index expression, misplaced
barrier, wrong loop base) produces observably different behaviour even
when the plan-driven simulator is right.

The supported language is the subset the emitter produces plus what the
hand-written conformance kernels in ``tests/spec`` need:

* preprocessor: object- and function-like ``#define`` (token-based
  expansion with rescanning), ``#pragma unroll`` (ignored) and
  ``#pragma OPENCL EXTENSION cl_khr_fp64 : enable`` (recorded);
* declarations: ``__local``/private arrays, ``const``/plain scalar
  variables, ``__constant sampler_t``, kernel signatures with
  ``__global``/``__read_only image2d_t`` arguments and an optional
  ``reqd_work_group_size`` attribute;
* statements: ``for`` (``++i`` / ``i += s`` forms), ``if``/``else``,
  ``continue``, ``barrier(...)``, assignment and expression statements;
* expressions: integer/float arithmetic, comparisons, ``&&``/``||``,
  the ternary operator, array subscripts, vector constructor casts
  (``(float4)(a, b, c, d)``), scalar casts, component access
  (``.x``/``.xy``/``.s0``..), address-of for ``vload``/``vstore``
  operands, and calls to the built-ins the machine implements.

Anything outside the subset raises :class:`SpecParseError` with the
offending line — the spec refuses rather than guesses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "SpecParseError",
    "Token",
    "preprocess",
    "tokenize",
    "parse_kernel_source",
    "TranslationUnit",
    "KernelDef",
    "KernelArg",
    "SamplerDecl",
    # expression nodes
    "Num",
    "Var",
    "Bin",
    "Un",
    "Cond",
    "Call",
    "Index",
    "Member",
    "Construct",
    "AddrOf",
    "Deref",
    # statement nodes
    "DeclArray",
    "DeclVar",
    "Assign",
    "ExprStmt",
    "For",
    "If",
    "Continue",
    "Barrier",
    "Block",
]


class SpecParseError(ReproError):
    """The source is outside the executable-spec language subset."""


# ---------------------------------------------------------------------------
# Tokens
# ---------------------------------------------------------------------------

_PUNCTS = (
    "||", "&&", "==", "!=", "<=", ">=", "++", "+=", "-=", "*=",
    "(", ")", "[", "]", "{", "}", ",", ";", ".", "?", ":", "|", "&",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "^",
)
_TOKEN_RE = re.compile(
    r"""
    (?P<num>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?[fF]?)
  | (?P<id>[A-Za-z_]\w*)
  | (?P<punct>%s)
  | (?P<ws>\s+)
  | (?P<bad>.)
    """ % "|".join(re.escape(p) for p in _PUNCTS),
    re.VERBOSE,
)

#: token kinds: "num", "id", "punct"
@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # compact for error messages
        return f"{self.text!r}@{self.line}"


def _strip_comments(source: str) -> str:
    """Remove ``/* */`` and ``//`` comments, preserving line numbers."""
    source = re.sub(
        r"/\*.*?\*/", lambda m: re.sub(r"[^\n]", " ", m.group()), source, flags=re.S
    )
    return re.sub(r"//[^\n]*", "", source)


@dataclass
class _Macro:
    name: str
    params: Optional[Tuple[str, ...]]  # None => object-like
    body: Tuple[Token, ...]


@dataclass
class Preprocessed:
    tokens: List[Token]
    extensions: Tuple[str, ...]
    macros: Dict[str, _Macro]


def tokenize(text: str, first_line: int = 1) -> List[Token]:
    out: List[Token] = []
    line = first_line
    for m in _TOKEN_RE.finditer(text):
        if m.lastgroup == "ws":
            line += m.group().count("\n")
            continue
        if m.lastgroup == "bad":
            raise SpecParseError(f"line {line}: unexpected character {m.group()!r}")
        out.append(Token(m.lastgroup, m.group(), line))
    return out


def preprocess(source: str) -> Preprocessed:
    """Comment stripping, directive handling and macro expansion."""
    text = _strip_comments(source)
    macros: Dict[str, _Macro] = {}
    extensions: List[str] = []
    body_lines: List[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("#"):
            body_lines.append(line)
            continue
        body_lines.append("")  # keep line numbers stable
        directive = stripped[1:].strip()
        if directive.startswith("define"):
            rest = directive[len("define"):].lstrip()
            m = re.match(r"([A-Za-z_]\w*)(\()?", rest)
            if not m:
                raise SpecParseError(f"line {lineno}: malformed #define: {stripped}")
            name = m.group(1)
            if m.group(2):  # function-like: '(' adjacent to the name
                after = rest[m.end(1):]
                close = after.index(")")
                params = tuple(
                    p.strip() for p in after[1:close].split(",") if p.strip()
                )
                body = after[close + 1:]
            else:
                params = None
                body = rest[m.end(1):]
            macros[name] = _Macro(name, params, tuple(tokenize(body, lineno)))
        elif directive.startswith("pragma"):
            pm = re.match(
                r"pragma\s+OPENCL\s+EXTENSION\s+(\w+)\s*:\s*enable", directive
            )
            if pm:
                extensions.append(pm.group(1))
            # all other pragmas (e.g. "#pragma unroll") are hints; ignored
        else:
            raise SpecParseError(
                f"line {lineno}: unsupported preprocessor directive: {stripped}"
            )
    tokens = tokenize("\n".join(body_lines))
    tokens = _expand(tokens, macros, frozenset())
    return Preprocessed(tokens=tokens, extensions=tuple(extensions), macros=macros)


def _expand(tokens: Sequence[Token], macros: Dict[str, _Macro],
            active: frozenset) -> List[Token]:
    """Token-level macro expansion with rescanning."""
    out: List[Token] = []
    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        macro = macros.get(tok.text) if tok.kind == "id" else None
        if macro is None or tok.text in active:
            out.append(tok)
            i += 1
            continue
        if macro.params is None:
            out.extend(
                _expand(
                    [Token(t.kind, t.text, tok.line) for t in macro.body],
                    macros, active | {macro.name},
                )
            )
            i += 1
            continue
        # function-like: require '(' — otherwise it is a plain identifier
        if i + 1 >= n or tokens[i + 1].text != "(":
            out.append(tok)
            i += 1
            continue
        args, nxt = _collect_args(tokens, i + 1, tok)
        if len(args) != len(macro.params):
            raise SpecParseError(
                f"line {tok.line}: macro {macro.name} expects "
                f"{len(macro.params)} argument(s), got {len(args)}"
            )
        # Arguments expand with the *outer* active set (C11 6.10.3.1):
        # TWICE(TWICE(1)) fully expands; only the replacement-list rescan
        # below paints the macro's own name blue.
        expanded_args = [_expand(a, macros, active) for a in args]
        substituted: List[Token] = []
        param_index = {p: j for j, p in enumerate(macro.params)}
        for t in macro.body:
            j = param_index.get(t.text) if t.kind == "id" else None
            if j is None:
                substituted.append(Token(t.kind, t.text, tok.line))
            else:
                substituted.extend(expanded_args[j])
        out.extend(_expand(substituted, macros, active | {macro.name}))
        i = nxt
    return out


def _collect_args(tokens: Sequence[Token], open_idx: int,
                  where: Token) -> Tuple[List[List[Token]], int]:
    """Arguments of a macro call; returns (args, index after ')')."""
    assert tokens[open_idx].text == "("
    depth = 0
    args: List[List[Token]] = [[]]
    i = open_idx
    while i < len(tokens):
        t = tokens[i]
        if t.text == "(":
            depth += 1
            if depth > 1:
                args[-1].append(t)
        elif t.text == ")":
            depth -= 1
            if depth == 0:
                return args, i + 1
            args[-1].append(t)
        elif t.text == "," and depth == 1:
            args.append([])
        elif depth >= 1:
            args[-1].append(t)
        i += 1
    raise SpecParseError(f"line {where.line}: unterminated macro call {where.text}")


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Num:
    value: object  # int or float
    is_float: bool


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Bin:
    op: str
    left: object
    right: object


@dataclass(frozen=True)
class Un:
    op: str
    operand: object


@dataclass(frozen=True)
class Cond:
    cond: object
    then: object
    other: object


@dataclass(frozen=True)
class Call:
    name: str
    args: Tuple[object, ...]
    line: int = 0


@dataclass(frozen=True)
class Index:
    base: str
    index: object


@dataclass(frozen=True)
class Member:
    base: object
    name: str


@dataclass(frozen=True)
class Construct:
    """Cast / constructor: ``(double2)(a, b)``, ``(size_t)x``, ``(void)x``."""

    ctype: str
    args: Tuple[object, ...]


@dataclass(frozen=True)
class AddrOf:
    target: Index


@dataclass(frozen=True)
class Deref:
    pointer: object


@dataclass(frozen=True)
class DeclArray:
    space: str  # "local" | "private"
    ctype: str
    name: str
    size: object
    line: int = 0


@dataclass(frozen=True)
class DeclVar:
    ctype: str
    name: str
    init: object
    const: bool


@dataclass(frozen=True)
class Assign:
    target: object  # Var | Index | Deref
    value: object
    line: int = 0


@dataclass(frozen=True)
class ExprStmt:
    expr: object


@dataclass(frozen=True)
class For:
    var: str
    init: object
    cond: object
    step: object  # expression for the increment amount
    body: "Block"
    line: int = 0


@dataclass(frozen=True)
class If:
    cond: object
    then: "Block"
    other: Optional["Block"]
    line: int = 0


@dataclass(frozen=True)
class Continue:
    line: int = 0


@dataclass(frozen=True)
class Barrier:
    flags: object
    site: int
    line: int = 0


@dataclass(frozen=True)
class Block:
    stmts: Tuple[object, ...]


@dataclass(frozen=True)
class KernelArg:
    name: str
    kind: str  # "int" | "float" | "double" | "global" | "image"
    elem: str = ""  # element type for "global" pointers
    readonly: bool = False


@dataclass(frozen=True)
class SamplerDecl:
    name: str
    expr: object


@dataclass(frozen=True)
class KernelDef:
    name: str
    args: Tuple[KernelArg, ...]
    body: Block
    reqd_size: Optional[Tuple[int, int, int]]
    barrier_sites: int
    line: int = 0


@dataclass
class TranslationUnit:
    kernels: Dict[str, KernelDef]
    samplers: Tuple[SamplerDecl, ...]
    extensions: Tuple[str, ...]


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_SCALAR_TYPES = {"int", "uint", "size_t", "float", "double", "void", "char",
                 "long", "ulong", "short", "ushort"}
_VEC_RE = re.compile(r"^(float|double|int|uint)(2|4|8|16)$")


def _is_type_name(text: str) -> bool:
    return text in _SCALAR_TYPES or bool(_VEC_RE.match(text))


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.toks = tokens
        self.pos = 0
        self.barrier_sites = 0

    # -- token helpers --------------------------------------------------
    def peek(self, offset: int = 0) -> Optional[Token]:
        i = self.pos + offset
        return self.toks[i] if i < len(self.toks) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise SpecParseError("unexpected end of source")
        self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise SpecParseError(
                f"line {tok.line}: expected {text!r}, found {tok.text!r}"
            )
        return tok

    def accept(self, text: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.text == text:
            self.pos += 1
            return True
        return False

    # -- top level ------------------------------------------------------
    def parse_unit(self, extensions: Tuple[str, ...]) -> TranslationUnit:
        kernels: Dict[str, KernelDef] = {}
        samplers: List[SamplerDecl] = []
        while self.peek() is not None:
            tok = self.peek()
            if tok.text == "__constant":
                samplers.append(self.parse_sampler())
            elif tok.text == "__kernel":
                k = self.parse_kernel()
                kernels[k.name] = k
            else:
                raise SpecParseError(
                    f"line {tok.line}: unexpected top-level token {tok.text!r}"
                )
        if not kernels:
            raise SpecParseError("source contains no __kernel function")
        return TranslationUnit(
            kernels=kernels, samplers=tuple(samplers), extensions=extensions
        )

    def parse_sampler(self) -> SamplerDecl:
        self.expect("__constant")
        self.expect("sampler_t")
        name = self.next()
        self.expect("=")
        expr = self.parse_expr()
        self.expect(";")
        return SamplerDecl(name=name.text, expr=expr)

    def _skip_attribute(self) -> Optional[Tuple[int, int, int]]:
        """``__attribute__((reqd_work_group_size(a, b, c)))`` (optional)."""
        if not self.accept("__attribute__"):
            return None
        self.expect("(")
        self.expect("(")
        reqd: Optional[Tuple[int, int, int]] = None
        if self.peek().text == "reqd_work_group_size":
            self.next()
            self.expect("(")
            dims = []
            for i in range(3):
                tok = self.next()
                if tok.kind != "num":
                    raise SpecParseError(
                        f"line {tok.line}: reqd_work_group_size wants integer "
                        f"literals, found {tok.text!r}"
                    )
                dims.append(int(tok.text))
                if i < 2:
                    self.expect(",")
            self.expect(")")
            reqd = tuple(dims)  # type: ignore[assignment]
        else:  # skip any other attribute body
            depth = 0
            while True:
                tok = self.next()
                if tok.text == "(":
                    depth += 1
                elif tok.text == ")":
                    if depth == 0:
                        self.pos -= 1
                        break
                    depth -= 1
        self.expect(")")
        self.expect(")")
        return reqd

    def parse_kernel(self) -> KernelDef:
        start = self.expect("__kernel")
        reqd = self._skip_attribute()
        self.expect("void")
        name = self.next()
        self.expect("(")
        args: List[KernelArg] = []
        if not self.accept(")"):
            while True:
                args.append(self.parse_kernel_arg())
                if self.accept(")"):
                    break
                self.expect(",")
        body = self.parse_block()
        return KernelDef(
            name=name.text,
            args=tuple(args),
            body=body,
            reqd_size=reqd,
            barrier_sites=self.barrier_sites,
            line=start.line,
        )

    def parse_kernel_arg(self) -> KernelArg:
        quals: List[str] = []
        while self.peek().text in (
            "const", "__global", "__local", "__read_only", "__write_only",
            "restrict", "volatile",
        ):
            quals.append(self.next().text)
        type_tok = self.next()
        tname = type_tok.text
        if tname == "image2d_t":
            arg = self.next()
            return KernelArg(
                name=arg.text, kind="image",
                readonly="__write_only" not in quals,
            )
        if not (_is_type_name(tname)):
            raise SpecParseError(
                f"line {type_tok.line}: unsupported argument type {tname!r}"
            )
        is_ptr = False
        while self.peek().text in ("*", "restrict", "const"):
            if self.next().text == "*":
                is_ptr = True
        arg = self.next()
        if is_ptr:
            if "__global" not in quals:
                raise SpecParseError(
                    f"line {arg.line}: only __global pointer arguments are "
                    f"supported, got {' '.join(quals)}"
                )
            return KernelArg(
                name=arg.text, kind="global", elem=tname,
                readonly="const" in quals,
            )
        return KernelArg(name=arg.text, kind=tname)

    # -- statements -----------------------------------------------------
    def parse_block(self) -> Block:
        self.expect("{")
        stmts: List[object] = []
        while not self.accept("}"):
            stmts.append(self.parse_stmt())
        return Block(stmts=tuple(stmts))

    def parse_stmt(self) -> object:
        tok = self.peek()
        if tok is None:
            raise SpecParseError("unexpected end of source in a block")
        if tok.text == "{":
            return self.parse_block()
        if tok.text == "for":
            return self.parse_for()
        if tok.text == "if":
            return self.parse_if()
        if tok.text == "continue":
            self.next()
            self.expect(";")
            return Continue(line=tok.line)
        if tok.text == "barrier":
            self.next()
            self.expect("(")
            flags = self.parse_expr()
            self.expect(")")
            self.expect(";")
            site = self.barrier_sites
            self.barrier_sites += 1
            return Barrier(flags=flags, site=site, line=tok.line)
        if tok.text in ("__local", "__private"):
            return self.parse_decl(space="local" if tok.text == "__local" else "private",
                                   skip_first=True)
        if tok.text == "const" or _is_type_name(tok.text):
            nxt = self.peek(1)
            # "(void)expr;" and "(double)(0)" start with '(' — handled in
            # expressions; a leading type name here means a declaration.
            if tok.text == "const" or (nxt is not None and nxt.kind == "id"):
                return self.parse_decl(space="private", skip_first=False)
        # assignment or expression statement
        expr = self.parse_expr()
        if self.accept("="):
            if not isinstance(expr, (Var, Index, Deref)):
                raise SpecParseError(
                    f"line {tok.line}: cannot assign to this expression"
                )
            value = self.parse_expr()
            self.expect(";")
            return Assign(target=expr, value=value, line=tok.line)
        self.expect(";")
        return ExprStmt(expr=expr)

    def parse_decl(self, space: str, skip_first: bool) -> object:
        start = self.peek()
        if skip_first:
            self.next()  # __local / __private
        const = False
        while self.peek().text in ("const", "volatile"):
            const = const or self.next().text == "const"
        type_tok = self.next()
        if not _is_type_name(type_tok.text) and type_tok.text != "sampler_t":
            raise SpecParseError(
                f"line {type_tok.line}: expected a type name, found "
                f"{type_tok.text!r}"
            )
        name = self.next()
        if self.accept("["):
            size = self.parse_expr()
            self.expect("]")
            self.expect(";")
            return DeclArray(
                space=space, ctype=type_tok.text, name=name.text, size=size,
                line=start.line,
            )
        init = None
        if self.accept("="):
            init = self.parse_expr()
        self.expect(";")
        if init is None:
            init = Num(0, is_float=type_tok.text in ("float", "double"))
        return DeclVar(ctype=type_tok.text, name=name.text, init=init, const=const)

    def parse_for(self) -> For:
        start = self.expect("for")
        self.expect("(")
        self.expect("int")
        var = self.next()
        self.expect("=")
        init = self.parse_expr()
        self.expect(";")
        cond = self.parse_expr()
        self.expect(";")
        tok = self.next()
        if tok.text == "++":
            stepped = self.next()
            step: object = Num(1, is_float=False)
        else:
            stepped = tok
            op = self.next()
            if op.text == "++":
                step = Num(1, is_float=False)
            elif op.text == "+=":
                step = self.parse_expr()
            else:
                raise SpecParseError(
                    f"line {op.line}: unsupported for-step operator {op.text!r}"
                )
        if stepped.text != var.text:
            raise SpecParseError(
                f"line {stepped.line}: for-step must update the loop variable "
                f"{var.text!r}, found {stepped.text!r}"
            )
        self.expect(")")
        body = self._stmt_as_block()
        return For(var=var.text, init=init, cond=cond, step=step, body=body,
                   line=start.line)

    def parse_if(self) -> If:
        start = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self._stmt_as_block()
        other = None
        if self.accept("else"):
            other = self._stmt_as_block()
        return If(cond=cond, then=then, other=other, line=start.line)

    def _stmt_as_block(self) -> Block:
        if self.peek() is not None and self.peek().text == "{":
            return self.parse_block()
        return Block(stmts=(self.parse_stmt(),))

    # -- expressions (precedence climbing) ------------------------------
    def parse_expr(self) -> object:
        return self.parse_ternary()

    def parse_ternary(self) -> object:
        cond = self.parse_binary(0)
        if self.accept("?"):
            then = self.parse_expr()
            self.expect(":")
            other = self.parse_ternary()
            return Cond(cond=cond, then=then, other=other)
        return cond

    _LEVELS: Tuple[Tuple[str, ...], ...] = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def parse_binary(self, level: int) -> object:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        ops = self._LEVELS[level]
        left = self.parse_binary(level + 1)
        while True:
            tok = self.peek()
            if tok is None or tok.text not in ops:
                return left
            # '=' must not be eaten as a binary operator ('==' already is)
            self.next()
            right = self.parse_binary(level + 1)
            left = Bin(op=tok.text, left=left, right=right)

    def parse_unary(self) -> object:
        tok = self.peek()
        if tok.text in ("-", "!", "~"):
            self.next()
            return Un(op=tok.text, operand=self.parse_unary())
        if tok.text == "+":
            self.next()
            return self.parse_unary()
        if tok.text == "*":
            self.next()
            return Deref(pointer=self.parse_unary())
        if tok.text == "&":
            self.next()
            inner = self.parse_unary()
            if not isinstance(inner, Index):
                raise SpecParseError(
                    f"line {tok.line}: '&' is only supported on array "
                    f"subscripts (vload/vstore operands)"
                )
            return AddrOf(target=inner)
        return self.parse_postfix()

    def parse_postfix(self) -> object:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok is None:
                return expr
            if tok.text == "[":
                self.next()
                idx = self.parse_expr()
                self.expect("]")
                if isinstance(expr, Var):
                    expr = Index(base=expr.name, index=idx)
                else:
                    raise SpecParseError(
                        f"line {tok.line}: subscripts are only supported on "
                        f"named arrays"
                    )
            elif tok.text == ".":
                self.next()
                member = self.next()
                expr = Member(base=expr, name=member.text)
            else:
                return expr

    def parse_primary(self) -> object:
        tok = self.next()
        if tok.kind == "num":
            text = tok.text
            is_float = (
                "." in text or "e" in text or "E" in text
                or text.endswith(("f", "F"))
            )
            clean = text.rstrip("fF")
            return Num(float(clean) if is_float else int(clean), is_float=is_float)
        if tok.kind == "id":
            if self.peek() is not None and self.peek().text == "(":
                self.next()
                args: List[object] = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.accept(")"):
                            break
                        self.expect(",")
                return Call(name=tok.text, args=tuple(args), line=tok.line)
            return Var(name=tok.text)
        if tok.text == "(":
            nxt = self.peek()
            if nxt is not None and nxt.kind == "id" and _is_type_name(nxt.text) \
                    and self.peek(1) is not None and self.peek(1).text == ")":
                ctype = self.next().text
                self.expect(")")
                # "(T)(a, b, ...)" constructor or "(T)expr" cast
                if self.peek() is not None and self.peek().text == "(":
                    self.next()
                    args = []
                    if not self.accept(")"):
                        while True:
                            args.append(self.parse_expr())
                            if self.accept(")"):
                                break
                            self.expect(",")
                    return Construct(ctype=ctype, args=tuple(args))
                return Construct(ctype=ctype, args=(self.parse_unary(),))
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise SpecParseError(
            f"line {tok.line}: unexpected token {tok.text!r} in expression"
        )


def parse_kernel_source(source: str) -> TranslationUnit:
    """Full front end: preprocess, tokenize, expand macros, parse."""
    pp = preprocess(source)
    parser = _Parser(pp.tokens)
    return parser.parse_unit(pp.extensions)
