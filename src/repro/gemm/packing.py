"""Operand preparation: transposition, zero-padding and block-major packing.

"To make use of a fast ``A^T B + C`` kernel for GEMM routines, matrix
data have to be copied into extra allocated buffers in global memory
before executing the kernel. [...] If designated data layouts are not
row-major, matrix data are changed into the required layouts along with
the copying."  (paper Section III-D)

"When a matrix size is not in multiples of a blocking factor, we use a
zero padding technique."  (Section IV-B)

Zero padding is algebraically safe for GEMM: padded rows/columns of the
operands contribute zero products, and the padded region of C is cropped
before returning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.codegen.layouts import Layout, pack_matrix
from repro.codegen.params import KernelParams

__all__ = ["pad_to_multiple", "required_padding", "PackedOperand", "pack_operand",
           "prepare_c", "crop_c"]


def pad_to_multiple(n: int, multiple: int) -> int:
    """Smallest multiple of ``multiple`` that is >= ``n``."""
    if n <= 0 or multiple <= 0:
        raise ValueError(f"sizes must be positive (n={n}, multiple={multiple})")
    return ((n + multiple - 1) // multiple) * multiple


def required_padding(params: KernelParams, M: int, N: int, K: int) -> Tuple[int, int, int]:
    """Padded problem dimensions for a kernel's blocking factors.

    The pipelined algorithms (PL, DB) additionally need at least two
    k-iterations for their prologue/epilogue structure.
    """
    Mp = pad_to_multiple(M, params.mwg)
    Np = pad_to_multiple(N, params.nwg)
    Kp = pad_to_multiple(K, params.kwg)
    Kp = max(Kp, params.algorithm.min_k_iterations * params.kwg)
    return Mp, Np, Kp


@dataclass(frozen=True)
class PackedOperand:
    """A packed kernel operand plus the bookkeeping the routine needs."""

    flat: np.ndarray
    layout: Layout
    rows: int  # padded K
    cols: int  # padded M (for A^T) or N (for B)
    payload_bytes: int  # bytes actually copied (for copy-time accounting)


def _as_k_by_x(mat: np.ndarray, transpose: bool) -> np.ndarray:
    """Orient a 2-D array so axis 0 is the contraction (K) dimension."""
    if mat.ndim != 2:
        raise ValueError(f"GEMM operands must be 2-D, got shape {mat.shape}")
    return mat.T if transpose else mat


def pack_operand(
    mat: np.ndarray,
    *,
    transpose: bool,
    k_padded: int,
    x_padded: int,
    block_x: int,
    block_k: int,
    layout: Layout,
    dtype: np.dtype,
) -> PackedOperand:
    """Copy one operand into a padded, packed kernel buffer.

    ``mat`` oriented by ``transpose`` must be (K x X) where X is M for
    the A operand and N for the B operand.  The result is the flat
    packed buffer of shape ``k_padded * x_padded`` in ``layout``.
    """
    kx = _as_k_by_x(np.asarray(mat), transpose)
    K, X = kx.shape
    if K > k_padded or X > x_padded:
        raise ValueError(
            f"operand {kx.shape} larger than padded target ({k_padded}, {x_padded})"
        )
    staging = np.zeros((k_padded, x_padded), dtype=dtype)
    staging[:K, :X] = kx
    flat = pack_matrix(staging, layout, block_k, block_x)
    return PackedOperand(
        flat=flat,
        layout=layout,
        rows=k_padded,
        cols=x_padded,
        payload_bytes=kx.nbytes,
    )


def prepare_c(
    c: np.ndarray | None, M: int, N: int, Mp: int, Np: int, dtype: np.dtype
) -> np.ndarray:
    """Zero-padded row-major C working array (Mp x Np)."""
    out = np.zeros((Mp, Np), dtype=dtype)
    if c is not None:
        c = np.asarray(c)
        if c.shape != (M, N):
            raise ValueError(f"C has shape {c.shape}, expected ({M}, {N})")
        out[:M, :N] = c
    return out


def crop_c(c_padded: np.ndarray, M: int, N: int) -> np.ndarray:
    """Crop the padded result back to the user's M x N."""
    return np.ascontiguousarray(c_padded[:M, :N])
