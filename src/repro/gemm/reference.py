"""Reference GEMM (the BLAS definition, computed with numpy).

Used as ground truth by the test suite and by the tuner's kernel
verification stage ("failed in ... testing" candidates are discarded).
"""

from __future__ import annotations

import numpy as np

__all__ = ["reference_gemm", "relative_error"]

_VALID_OPS = {"N", "T"}


def reference_gemm(
    transa: str,
    transb: str,
    alpha: float,
    a: np.ndarray,
    b: np.ndarray,
    beta: float,
    c: np.ndarray | None = None,
) -> np.ndarray:
    """``C <- alpha * op(A) op(B) + beta * C`` (BLAS GEMM semantics).

    ``a`` and ``b`` are 2-D arrays already oriented so that ``op`` is a
    plain transpose flag; ``c`` may be None when ``beta == 0``.
    """
    transa, transb = transa.upper(), transb.upper()
    if transa not in _VALID_OPS or transb not in _VALID_OPS:
        raise ValueError(f"transa/transb must be 'N' or 'T', got {transa}/{transb}")
    opa = a.T if transa == "T" else a
    opb = b.T if transb == "T" else b
    if opa.shape[1] != opb.shape[0]:
        raise ValueError(
            f"inner dimensions disagree: op(A) is {opa.shape}, op(B) is {opb.shape}"
        )
    out = alpha * (opa @ opb)
    if beta != 0.0:
        if c is None:
            raise ValueError("beta != 0 requires a C operand")
        if c.shape != out.shape:
            raise ValueError(f"C has shape {c.shape}, expected {out.shape}")
        out += beta * c
    return out.astype(a.dtype, copy=False)


def relative_error(result: np.ndarray, reference: np.ndarray) -> float:
    """Max elementwise error relative to the reference's magnitude."""
    scale = max(float(np.abs(reference).max()), 1e-30)
    return float(np.abs(result - reference).max()) / scale
