"""Data-parallel GEMM across several simulated devices (extension).

OpenCL's portability makes heterogeneous fleets natural (the paper's
Table I machine hosts GPUs *and* CPUs); this module splits one GEMM's N
dimension across devices, proportionally to each device's tuned
throughput, runs the slices on per-device routines, and models the wall
time as the slowest device plus the PCIe distribution/collection.

Functionally exact: the concatenated slices equal the single-device
result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codegen.params import KernelParams
from repro.devices.catalog import get_device_spec
from repro.devices.specs import DeviceSpec
from repro.errors import ReproError
from repro.gemm.routine import GemmRoutine
from repro.perfmodel.model import estimate_kernel_time, estimate_transfer_time
from repro.tuner.pretuned import pretuned_params

__all__ = ["DeviceShare", "MultiDeviceResult", "MultiDeviceGemm"]


@dataclass(frozen=True)
class DeviceShare:
    """One device's slice of the batch: columns owned and timings."""

    device: str
    columns: Tuple[int, int]  # [start, stop) of N owned by this device
    compute_seconds: float
    transfer_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.transfer_seconds

    @property
    def width(self) -> int:
        return self.columns[1] - self.columns[0]


@dataclass(frozen=True)
class MultiDeviceResult:
    """Combined result of one multi-device GEMM."""

    c: np.ndarray
    shares: Tuple[DeviceShare, ...]
    M: int
    N: int
    K: int

    @property
    def flops(self) -> float:
        return 2.0 * self.M * self.N * self.K

    @property
    def wall_seconds(self) -> float:
        """Devices run concurrently: wall time is the slowest share."""
        return max(share.total_seconds for share in self.shares)

    @property
    def effective_gflops(self) -> float:
        return self.flops / self.wall_seconds / 1e9

    def share_of(self, device: str) -> DeviceShare:
        for share in self.shares:
            if share.device == device:
                return share
        raise KeyError(f"device {device!r} has no share in this result")


class MultiDeviceGemm:
    """Splits GEMMs across a fleet of simulated devices."""

    def __init__(
        self,
        devices: Sequence[Union[str, DeviceSpec]],
        precision: str = "d",
        params: Optional[Dict[str, KernelParams]] = None,
        **routine_kwargs,
    ):
        if not devices:
            raise ReproError("MultiDeviceGemm needs at least one device")
        self.specs: List[DeviceSpec] = [
            d if isinstance(d, DeviceSpec) else get_device_spec(d) for d in devices
        ]
        if len({s.codename for s in self.specs}) != len(self.specs):
            raise ReproError("duplicate devices in the fleet")
        self.precision = precision
        self.routines: Dict[str, GemmRoutine] = {}
        self._weights: Dict[str, float] = {}
        for spec in self.specs:
            p = (params or {}).get(spec.codename) or pretuned_params(
                spec.codename, precision
            )
            self.routines[spec.codename] = GemmRoutine(spec, p, **routine_kwargs)
            # Load-balancing weight: tuned throughput at the base size.
            base = 4096 if spec.is_gpu else 1536
            n = max(p.lcm, (base // p.lcm) * p.lcm)
            self._weights[spec.codename] = estimate_kernel_time(
                spec, p, n, n, n, noise=False
            ).gflops

    @property
    def weights(self) -> Dict[str, float]:
        """Tuned-throughput weights the column split follows."""
        return dict(self._weights)

    def partition(self, N: int) -> List[Tuple[str, int, int]]:
        """Split the N columns proportionally to device throughput."""
        total = sum(self._weights.values())
        bounds: List[Tuple[str, int, int]] = []
        start = 0
        for i, spec in enumerate(self.specs):
            if i == len(self.specs) - 1:
                stop = N
            else:
                stop = start + int(round(N * self._weights[spec.codename] / total))
                stop = min(max(stop, start), N)
            bounds.append((spec.codename, start, stop))
            start = stop
        return bounds

    def __call__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> MultiDeviceResult:
        """``alpha A B + beta C`` split by columns of B/C (NN only)."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ReproError(
                f"incompatible operands for NN GEMM: {a.shape} x {b.shape}"
            )
        M, K = a.shape
        N = b.shape[1]
        if beta != 0.0 and c is None:
            raise ReproError("beta != 0 requires a C operand")

        out = np.empty((M, N), dtype=self.routines[self.specs[0].codename].dtype)
        shares: List[DeviceShare] = []
        esize = out.dtype.itemsize
        for device, start, stop in self.partition(N):
            if stop == start:
                shares.append(DeviceShare(device, (start, stop), 0.0, 0.0))
                continue
            routine = self.routines[device]
            b_slice = np.ascontiguousarray(b[:, start:stop])
            c_slice = (
                np.ascontiguousarray(c[:, start:stop]) if c is not None else None
            )
            result = routine(a, b_slice, c_slice, alpha=alpha, beta=beta)
            out[:, start:stop] = result.c
            # Distribution: full A + the B slice in; collection: C slice out.
            spec = routine.device.spec
            xfer = estimate_transfer_time(
                spec, float((M * K + K * (stop - start)) * esize)
            ) + estimate_transfer_time(spec, float(M * (stop - start) * esize))
            shares.append(
                DeviceShare(device, (start, stop), result.timings.total_s, xfer)
            )
        return MultiDeviceResult(out, tuple(shares), M, N, K)

    def describe(self) -> str:
        lines = [f"fleet of {len(self.specs)} devices "
                 f"({'SGEMM' if self.precision == 's' else 'DGEMM'}):"]
        total = sum(self._weights.values())
        for spec in self.specs:
            w = self._weights[spec.codename]
            lines.append(
                f"  {spec.codename:12s} weight {w:8.1f} GFlop/s "
                f"({w / total:.0%} of columns)"
            )
        return "\n".join(lines)
