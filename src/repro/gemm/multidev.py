"""Data-parallel GEMM across several simulated devices (extension).

OpenCL's portability makes heterogeneous fleets natural (the paper's
Table I machine hosts GPUs *and* CPUs); this module splits one GEMM's N
dimension across devices, proportionally to each device's tuned
throughput, runs the slices on per-device routines, and models the wall
time as the slowest device plus the PCIe distribution/collection.

Functionally exact: the concatenated slices equal the single-device
result.

Under fault injection the fleet is *resilient*: a device that raises
:class:`~repro.errors.DeviceLostError` mid-batch is dropped and its
columns (plus everything not yet computed) are re-partitioned over the
surviving devices by their tuned-throughput weights.  When the entire
fleet is lost the remaining columns fall back to the host reference
GEMM, so the call still returns numerically exact results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codegen.params import KernelParams
from repro.devices.catalog import get_device_spec
from repro.devices.specs import DeviceSpec
from repro.errors import DeviceLostError, ReproError
from repro.gemm.reference import reference_gemm
from repro.gemm.routine import GemmRoutine
from repro.obs import NULL_OBS, bridge_queue
from repro.perfmodel.model import estimate_kernel_time, estimate_transfer_time
from repro.tuner.pretuned import pretuned_params

__all__ = ["DeviceShare", "MultiDeviceResult", "MultiDeviceGemm"]


@dataclass(frozen=True)
class DeviceShare:
    """One device's slice of the batch: columns owned and timings."""

    device: str
    columns: Tuple[int, int]  # [start, stop) of N owned by this device
    compute_seconds: float
    transfer_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.transfer_seconds

    @property
    def width(self) -> int:
        return self.columns[1] - self.columns[0]


@dataclass(frozen=True)
class MultiDeviceResult:
    """Combined result of one multi-device GEMM."""

    c: np.ndarray
    shares: Tuple[DeviceShare, ...]
    M: int
    N: int
    K: int
    #: Devices dropped mid-batch (DeviceLostError); their columns were
    #: re-partitioned over the survivors or the host reference path.
    lost_devices: Tuple[str, ...] = ()

    @property
    def flops(self) -> float:
        return 2.0 * self.M * self.N * self.K

    @property
    def wall_seconds(self) -> float:
        """Devices run concurrently: wall time is the slowest share."""
        return max((share.total_seconds for share in self.shares), default=0.0)

    @property
    def effective_gflops(self) -> float:
        return self.flops / self.wall_seconds / 1e9

    def share_of(self, device: str) -> DeviceShare:
        for share in self.shares:
            if share.device == device:
                return share
        raise KeyError(f"device {device!r} has no share in this result")


class MultiDeviceGemm:
    """Splits GEMMs across a fleet of simulated devices."""

    def __init__(
        self,
        devices: Sequence[Union[str, DeviceSpec]],
        precision: str = "d",
        params: Optional[Dict[str, KernelParams]] = None,
        fault_injector: Optional["object"] = None,
        on_device_lost: Optional[Callable[[str, int, int], None]] = None,
        obs=None,
        **routine_kwargs,
    ):
        if not devices:
            raise ReproError("MultiDeviceGemm needs at least one device")
        #: Telemetry (see :mod:`repro.obs`): one ``multidev.gemm`` span
        #: per call with per-device partition child spans.  Disabled by
        #: default.
        self.obs = obs if obs is not None else NULL_OBS
        #: Observer hook called as ``(device, start, stop)`` when a device
        #: is dropped mid-batch — the serving layer feeds its per-device
        #: circuit breakers from this instead of polling ``lost_devices``
        #: after the fact.
        self.on_device_lost = on_device_lost
        self.specs: List[DeviceSpec] = [
            d if isinstance(d, DeviceSpec) else get_device_spec(d) for d in devices
        ]
        if len({s.codename for s in self.specs}) != len(self.specs):
            raise ReproError("duplicate devices in the fleet")
        self.precision = precision
        #: Output element type is fixed by precision at construction so a
        #: later ``retire_device`` down to an empty fleet (host-reference
        #: fallback) still knows what to allocate.
        self.dtype = np.dtype(np.float32 if precision == "s" else np.float64)
        self.fault_injector = fault_injector
        self._routine_kwargs = dict(routine_kwargs)
        self.routines: Dict[str, GemmRoutine] = {}
        self._weights: Dict[str, float] = {}
        for spec in self.specs:
            self._build_member(spec, (params or {}).get(spec.codename))
        self._lost_counter = (
            self.obs.counter(
                "multidev_device_lost_total",
                "Devices dropped mid-batch (DeviceLostError), per device.",
                labelnames=("device",),
            )
            if self.obs.enabled else None
        )

    def _build_member(
        self, spec: DeviceSpec, params: Optional[KernelParams] = None
    ) -> None:
        """Create the routine and load-balancing weight for one device."""
        p = params or pretuned_params(spec.codename, self.precision)
        self.routines[spec.codename] = GemmRoutine(
            spec, p, fault_injector=self.fault_injector, **self._routine_kwargs
        )
        # Load-balancing weight: tuned throughput at the base size.
        base = 4096 if spec.is_gpu else 1536
        n = max(p.lcm, (base // p.lcm) * p.lcm)
        self._weights[spec.codename] = estimate_kernel_time(
            spec, p, n, n, n, noise=False
        ).gflops

    @property
    def weights(self) -> Dict[str, float]:
        """Tuned-throughput weights the column split follows."""
        return dict(self._weights)

    def admit_device(
        self,
        device: Union[str, DeviceSpec],
        params: Optional[KernelParams] = None,
    ) -> DeviceSpec:
        """Add a device to the fleet; later calls re-partition over it.

        The new member's column share follows the same tuned-throughput
        weight rule as construction.  Raises :class:`ReproError` if the
        device is already a member.
        """
        spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
        if any(s.codename == spec.codename for s in self.specs):
            raise ReproError(f"device {spec.codename!r} already in the fleet")
        self._build_member(spec, params)
        self.specs.append(spec)
        return spec

    def retire_device(self, device: str) -> None:
        """Remove a device; its share is re-normalised over the rest.

        Retiring the last member is allowed — calls then serve entirely
        through the host-reference fallback.  Raises :class:`KeyError`
        if the device is not a member.
        """
        if not any(s.codename == device for s in self.specs):
            raise KeyError(
                f"device {device!r} not in the fleet: "
                f"{[s.codename for s in self.specs]}"
            )
        self.specs = [s for s in self.specs if s.codename != device]
        del self.routines[device]
        del self._weights[device]

    def partition(self, N: int) -> List[Tuple[str, int, int]]:
        """Split the N columns proportionally to device throughput."""
        return self._partition_specs(self.specs, 0, N)

    def _partition_specs(
        self, specs: Sequence[DeviceSpec], start: int, stop: int
    ) -> List[Tuple[str, int, int]]:
        """Split the ``[start, stop)`` column range over ``specs`` by
        weight — the full fleet initially, the survivors on rebalance."""
        total = sum(self._weights[s.codename] for s in specs)
        width = stop - start
        bounds: List[Tuple[str, int, int]] = []
        cursor = start
        for i, spec in enumerate(specs):
            if i == len(specs) - 1:
                end = stop
            else:
                end = cursor + int(
                    round(width * self._weights[spec.codename] / total)
                )
                end = min(max(end, cursor), stop)
            bounds.append((spec.codename, cursor, end))
            cursor = end
        return bounds

    def __call__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> MultiDeviceResult:
        """``alpha A B + beta C`` split by columns of B/C (NN only)."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ReproError(
                f"incompatible operands for NN GEMM: {a.shape} x {b.shape}"
            )
        M, K = a.shape
        N = b.shape[1]
        if beta != 0.0 and c is None:
            raise ReproError("beta != 0 requires a C operand")

        out = np.empty((M, N), dtype=self.dtype)
        shares: List[DeviceShare] = []
        lost: List[str] = []
        esize = out.dtype.itemsize
        active: List[DeviceSpec] = list(self.specs)
        with self.obs.span("multidev.gemm", M=M, N=N, K=K,
                           fleet=len(self.specs)) as root:
            #: Column ranges not yet computed; grows when a device is lost.
            remaining: List[Tuple[int, int]] = [(0, N)]
            while remaining and active:
                segments, remaining = remaining, []
                for seg_start, seg_stop in segments:
                    for device, start, stop in self._partition_specs(
                        active, seg_start, seg_stop
                    ):
                        if stop == start:
                            shares.append(
                                DeviceShare(device, (start, stop), 0.0, 0.0)
                            )
                            continue
                        try:
                            shares.append(
                                self._run_slice(
                                    device, a, b, c, alpha, beta, start, stop,
                                    out, M, K, esize,
                                )
                            )
                        except DeviceLostError:
                            # Drop the device; its columns rejoin the queue
                            # and are re-partitioned over the survivors by
                            # weight.
                            lost.append(device)
                            root.event("device_lost", device=device,
                                       columns=f"{start}:{stop}")
                            if self._lost_counter is not None:
                                self._lost_counter.labels(device=device).inc()
                            active = [s for s in active if s.codename != device]
                            remaining.append((start, stop))
                            if self.on_device_lost is not None:
                                self.on_device_lost(device, start, stop)
            for start, stop in remaining:
                # The whole fleet is gone: exact but unaccelerated host path.
                with self.obs.span("host.fallback", columns=f"{start}:{stop}"):
                    c_slice = c[:, start:stop] if c is not None else None
                    out[:, start:stop] = reference_gemm(
                        "N", "N", alpha, a, b[:, start:stop], beta, c_slice
                    )
            if lost:
                root.set(lost_devices=",".join(lost))
        return MultiDeviceResult(
            out, tuple(shares), M, N, K, lost_devices=tuple(lost)
        )

    def _run_slice(
        self,
        device: str,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray],
        alpha: float,
        beta: float,
        start: int,
        stop: int,
        out: np.ndarray,
        M: int,
        K: int,
        esize: int,
    ) -> DeviceShare:
        routine = self.routines[device]
        b_slice = np.ascontiguousarray(b[:, start:stop])
        c_slice = (
            np.ascontiguousarray(c[:, start:stop]) if c is not None else None
        )
        with self.obs.span(f"partition:{device}",
                           columns=f"{start}:{stop}") as span:
            with bridge_queue(self.obs, routine.queue):
                result = routine(a, b_slice, c_slice, alpha=alpha, beta=beta)
            out[:, start:stop] = result.c
            # Distribution: full A + the B slice in; collection: C slice out.
            spec = routine.device.spec
            xfer = estimate_transfer_time(
                spec, float((M * K + K * (stop - start)) * esize)
            ) + estimate_transfer_time(spec, float(M * (stop - start) * esize))
            span.set(compute_s=round(result.timings.total_s, 9),
                     transfer_s=round(xfer, 9))
        return DeviceShare(device, (start, stop), result.timings.total_s, xfer)

    def describe(self) -> str:
        lines = [f"fleet of {len(self.specs)} devices "
                 f"({'SGEMM' if self.precision == 's' else 'DGEMM'}):"]
        total = sum(self._weights.values())
        for spec in self.specs:
            w = self._weights[spec.codename]
            lines.append(
                f"  {spec.codename:12s} weight {w:8.1f} GFlop/s "
                f"({w / total:.0%} of columns)"
            )
        return "\n".join(lines)
