"""The full GEMM routine: pack -> kernel -> crop.

Implements the paper's implementation strategy (Section IV-B): all four
multiplication types are reduced to the tuned ``C <- alpha A^T B + beta C``
kernel by copying the operands into padded block-major buffers with the
appropriate transposition.  The copies run *on the device* through
generated pack kernels (:mod:`repro.codegen.packers`), so their cost is
measured the same way the GEMM kernel's is.  The copy is O(N^2) against
the kernel's O(N^3): the routine is slow for small problems and
amortised for large ones — exactly the behaviour of the paper's
Figs. 9-10.

Column-major user data (the storage convention of the paper's Table III)
is handled transparently: numpy arrays carry their own layout, and the
packing stage touches every element exactly once either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

import repro.clsim as cl
from repro.clsim.queue import ExecutionMode
from repro.codegen.emitter import emit_kernel_source
from repro.codegen.layouts import Layout
from repro.codegen.packers import PackPlan, emit_pack_source
from repro.codegen.params import KernelParams
from repro.devices.specs import DeviceSpec
from repro.errors import InvalidRequestError, ReproError
from repro.gemm.packing import crop_c, prepare_c, required_padding
from repro.perfmodel.model import estimate_copy_time, estimate_pack_time

__all__ = [
    "GemmTimings",
    "GemmResult",
    "GemmRoutine",
    "predict_implementation",
    "validate_gemm_request",
]


def _validate_operand(name: str, mat: np.ndarray) -> np.ndarray:
    """One operand's structural checks; returns the array as ndarray."""
    mat = np.asanyarray(mat)
    if mat.dtype == object:
        raise InvalidRequestError(name, "object-dtype arrays are not supported")
    if np.issubdtype(mat.dtype, np.complexfloating):
        raise InvalidRequestError(
            name, f"complex dtype {mat.dtype} is not supported (GEMM is real)"
        )
    if not (np.issubdtype(mat.dtype, np.floating)
            or np.issubdtype(mat.dtype, np.integer)
            or np.issubdtype(mat.dtype, np.bool_)):
        raise InvalidRequestError(
            name, f"dtype {mat.dtype} cannot be cast to a GEMM precision"
        )
    if mat.ndim != 2:
        raise InvalidRequestError(
            name, f"must be a 2-D matrix, got ndim={mat.ndim}"
        )
    if mat.size == 0:
        raise InvalidRequestError(name, f"is empty (shape {mat.shape})")
    return mat


def validate_gemm_request(
    a: np.ndarray,
    b: np.ndarray,
    c: Optional[np.ndarray] = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: str = "N",
    transb: str = "N",
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], str, str]:
    """Validate one GEMM request up front, naming the offending argument.

    Checks shapes, dtypes (object/complex arrays are rejected with a
    typed error instead of a numpy cast failure deep in the pack path),
    operand compatibility, and that ``alpha``/``beta`` are finite real
    scalars.  Non-contiguous inputs are accepted — the staging path
    copies them — so no contiguity error can surface later.  Returns the
    operands as ndarrays plus the normalised ``transa``/``transb``.

    Raises :class:`~repro.errors.InvalidRequestError` on any violation.
    """
    if not isinstance(transa, str) or transa.upper() not in ("N", "T"):
        raise InvalidRequestError("transa", f"must be 'N' or 'T', got {transa!r}")
    if not isinstance(transb, str) or transb.upper() not in ("N", "T"):
        raise InvalidRequestError("transb", f"must be 'N' or 'T', got {transb!r}")
    transa, transb = transa.upper(), transb.upper()
    a = _validate_operand("a", a)
    b = _validate_operand("b", b)
    for name, value in (("alpha", alpha), ("beta", beta)):
        try:
            scalar = float(value)
        except (TypeError, ValueError):
            raise InvalidRequestError(
                name, f"must be a real scalar, got {type(value).__name__}"
            ) from None
        if not np.isfinite(scalar):
            raise InvalidRequestError(name, f"must be finite, got {scalar}")
    M, Ka = a.shape if transa == "N" else a.shape[::-1]
    Kb, N = b.shape if transb == "N" else b.shape[::-1]
    if Ka != Kb:
        raise InvalidRequestError(
            "b", f"inner dimensions disagree: op(A) gives K={Ka}, "
                 f"op(B) gives K={Kb}"
        )
    if float(beta) != 0.0 and c is None:
        raise InvalidRequestError("c", "beta != 0 requires a C operand")
    if c is not None:
        c = _validate_operand("c", c)
        if c.shape != (M, N):
            raise InvalidRequestError(
                "c", f"has shape {c.shape}, expected ({M}, {N})"
            )
    return a, b, c, transa, transb


@dataclass(frozen=True)
class GemmTimings:
    """Simulated time decomposition of one GEMM call."""

    copy_in_s: float
    kernel_s: float
    copy_out_s: float

    @property
    def total_s(self) -> float:
        return self.copy_in_s + self.kernel_s + self.copy_out_s


@dataclass(frozen=True)
class GemmResult:
    """Result of one GEMM call: the output matrix plus performance data."""

    c: np.ndarray
    M: int
    N: int
    K: int
    timings: GemmTimings
    #: Model cost breakdown of the kernel launch.
    kernel_breakdown: object

    @property
    def flops(self) -> float:
        return 2.0 * self.M * self.N * self.K

    @property
    def kernel_gflops(self) -> float:
        """Kernel-only rate (the paper's Fig. 7 / Table II numbers)."""
        return self.flops / self.timings.kernel_s / 1e9

    @property
    def effective_gflops(self) -> float:
        """Rate including the packing copies (Figs. 9-11 / Table III)."""
        return self.flops / self.timings.total_s / 1e9


def predict_implementation(
    spec: DeviceSpec,
    params: KernelParams,
    M: int,
    N: int,
    K: int,
    noise: bool = True,
) -> GemmTimings:
    """Model-only timing of one full GEMM call (pack + kernel + crop).

    Composes exactly the same cost terms :class:`GemmRoutine` charges,
    without materialising buffers or computing numerics — the benchmark
    harness uses this for the paper's large size sweeps.  The test suite
    asserts the two paths agree.
    """
    from repro.perfmodel.model import estimate_kernel_time

    if params.guard_edges:
        kernel_time = estimate_kernel_time(spec, params, M, N, K, noise=noise)
        return GemmTimings(0.0, kernel_time.total_seconds, 0.0)
    Mp, Np, Kp = required_padding(params, M, N, K)
    esize = params.element_size
    copy_in = estimate_pack_time(
        spec, M * K * esize, Kp * Mp * esize,
        transpose=True, block_major=params.layout_a.is_block_major,
    ) + estimate_pack_time(
        spec, K * N * esize, Kp * Np * esize,
        transpose=False, block_major=params.layout_b.is_block_major,
    )
    kernel = estimate_kernel_time(spec, params, Mp, Np, Kp, noise=noise).total_seconds
    copy_out = 0.0
    if (Mp, Np) != (M, N):
        copy_out = estimate_copy_time(spec, float(M * N * esize))
    return GemmTimings(copy_in_s=copy_in, kernel_s=kernel, copy_out_s=copy_out)


def _resolve_device(device: Union[str, cl.Device, DeviceSpec]) -> cl.Device:
    if isinstance(device, cl.Device):
        return device
    if isinstance(device, DeviceSpec):
        return cl.Device(device)
    return cl.get_device(device)


class GemmRoutine:
    """A reusable GEMM routine for one device and one kernel parameter set.

    Builds the GEMM kernel and its two pack kernels once; each call
    stages its operands through device buffers, launches, and returns a
    :class:`GemmResult`.  Use the auto-tuner (:mod:`repro.tuner`) to
    obtain good parameters, or :func:`repro.api.tuned_gemm` for the
    end-to-end convenience path.
    """

    def __init__(
        self,
        device: Union[str, cl.Device, DeviceSpec],
        params: KernelParams,
        execution_mode: ExecutionMode = ExecutionMode.AUTO,
        measurement_noise: bool = True,
        binary_cache: Optional["object"] = None,
        fault_injector: Optional["object"] = None,
    ):
        self.device = _resolve_device(device)
        self.params = params
        #: Optional :class:`repro.clsim.faults.FaultInjector`: the whole
        #: routine (pack kernels included) then runs under its fault plan.
        self.context = cl.Context([self.device], fault_injector=fault_injector)
        self.queue = cl.CommandQueue(
            self.context,
            self.device,
            profiling=True,
            execution_mode=execution_mode,
            measurement_noise=measurement_noise,
        )
        #: Optional :class:`repro.clsim.binary.BinaryCache`: programs are
        #: then fetched/stored as binaries instead of recompiled, the way
        #: long tuning sessions avoid the compiler.
        self.binary_cache = binary_cache
        self.source = emit_kernel_source(params)
        self.program = self._build(self.source)
        self.kernel = self.program.get_kernel("gemm_atb")
        self._pack_kernels: Dict[Tuple[bool, str, int, int], object] = {}

    def _build(self, source: str):
        if self.binary_cache is not None:
            return self.binary_cache.get_or_build(self.context, source)
        return cl.Program(self.context, source).build()

    @property
    def precision(self) -> str:
        return self.params.precision

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.precision == "s" else np.float64)

    # -- operand staging ---------------------------------------------------
    def _pack_kernel(self, transpose: bool, layout: Layout, block_k: int,
                     block_x: int):
        """Build (or reuse) the pack kernel for one operand shape."""
        key = (transpose, layout.value, block_k, block_x)
        if key not in self._pack_kernels:
            plan = PackPlan(
                precision=self.precision, transpose=transpose, layout=layout,
                block_k=block_k, block_x=block_x,
            )
            program = self._build(emit_pack_source(plan))
            self._pack_kernels[key] = program.get_kernel("pack_operand")
        return self._pack_kernels[key]

    def _prepare_operand(
        self,
        mat: np.ndarray,
        transpose: bool,
        k_padded: int,
        x_padded: int,
        block_x: int,
        layout: Layout,
    ) -> Tuple[cl.Buffer, float]:
        """Stage one operand: upload row-major, pack on device.

        Returns the packed device buffer and the simulated pack time.
        """
        rows, cols = mat.shape
        if self.params.use_images:
            # Image kernels read 2-D textures.  Orient (and, unless the
            # kernel is also edge-guarded, zero-pad) the operand into an
            # Image2D; the upload/repack cost matches a straight copy
            # pass (no block shuffle: textures are ROW-addressed).
            kx = np.ascontiguousarray(mat.T if transpose else mat,
                                      dtype=self.dtype)
            if self.params.guard_edges:
                height, width = kx.shape
                staged = kx
                seconds = 0.0
            else:
                height, width = k_padded, x_padded
                staged = np.zeros((height, width), dtype=self.dtype)
                staged[: kx.shape[0], : kx.shape[1]] = kx
                seconds = estimate_pack_time(
                    self.device.spec, float(kx.nbytes),
                    float(staged.nbytes), transpose=transpose,
                    block_major=False,
                )
            image = cl.Image2D(self.context, width=width, height=height,
                               dtype=self.dtype, hostbuf=staged)
            return image, seconds
        if self.params.guard_edges:
            # Guarded kernels read the operand as stored: upload the
            # exact K x X orientation, charge no pack time (this is the
            # whole point of the copy-free path).
            kx = mat.T if transpose else mat
            buf = cl.Buffer(
                self.context, cl.MemFlags.READ_ONLY,
                hostbuf=np.ascontiguousarray(kx, dtype=self.dtype),
            )
            return buf, 0.0
        src = cl.Buffer(self.context, cl.MemFlags.READ_ONLY,
                        hostbuf=np.ascontiguousarray(mat, dtype=self.dtype))
        dst = cl.Buffer(
            self.context, cl.MemFlags.READ_WRITE,
            size=k_padded * x_padded * self.dtype.itemsize, dtype=self.dtype,
        )
        try:
            kernel = self._pack_kernel(transpose, layout, self.params.kwg, block_x)
            kernel.set_args(rows, cols, k_padded, x_padded, src, dst)
            event = self.queue.launch(
                kernel, kernel.expected_global_size(), kernel.pack_plan.local_size()
            )
        except Exception:
            dst.release()
            raise
        finally:
            src.release()
        return dst, event.profile.duration * 1e-9

    # -- hooks for routine variants ---------------------------------------
    def _kernel_time_factor(self) -> float:
        """Multiplier on modelled kernel time (overridable)."""
        return 1.0

    # ------------------------------------------------------------------
    def _problem_dims(self, a: np.ndarray, b: np.ndarray, transa: str, transb: str):
        transa, transb = transa.upper(), transb.upper()
        if transa not in ("N", "T") or transb not in ("N", "T"):
            raise ReproError(f"transa/transb must be 'N' or 'T', got {transa}/{transb}")
        if a.ndim != 2 or b.ndim != 2:
            raise ReproError("GEMM operands must be 2-D arrays")
        M, Ka = a.shape if transa == "N" else a.shape[::-1]
        Kb, N = b.shape if transb == "N" else b.shape[::-1]
        if Ka != Kb:
            raise ReproError(
                f"inner dimensions disagree: op(A) gives K={Ka}, op(B) gives K={Kb}"
            )
        return M, N, Ka, transa, transb

    def __call__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
        transa: str = "N",
        transb: str = "N",
    ) -> GemmResult:
        """Compute ``alpha * op(A) op(B) + beta * C``.

        Returns a fresh ``M x N`` array; ``c`` (required when
        ``beta != 0``) is not modified.  Invalid inputs (mis-shaped,
        object/complex dtype, non-finite ``alpha``/``beta``) raise
        :class:`~repro.errors.InvalidRequestError` before any device
        work, with the offending argument named.
        """
        a, b, c, transa, transb = validate_gemm_request(
            a, b, c, alpha, beta, transa, transb
        )
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        M, N, K, transa, transb = self._problem_dims(a, b, transa, transb)

        p = self.params
        if p.guard_edges:
            # Bounds-checked kernels run on the exact problem: no padding.
            Mp, Np, Kp = M, N, K
        else:
            Mp, Np, Kp = required_padding(p, M, N, K)

        # -- copy step: transpose + pad + repack on the device -------------
        # The kernel consumes A as A^T (K x M): transpose unless the user
        # already asked for op(A) = A^T.
        abuf, t_pack_a = self._prepare_operand(
            a, transpose=(transa == "N"), k_padded=Kp, x_padded=Mp,
            block_x=p.mwg, layout=p.layout_a,
        )
        try:
            bbuf, t_pack_b = self._prepare_operand(
                b, transpose=(transb == "T"), k_padded=Kp, x_padded=Np,
                block_x=p.nwg, layout=p.layout_b,
            )
        except Exception:
            abuf.release()
            raise
        copy_in_s = t_pack_a + t_pack_b

        # -- kernel step -----------------------------------------------------
        c_work = prepare_c(c, M, N, Mp, Np, self.dtype)
        cbuf = cl.Buffer(self.context, cl.MemFlags.READ_WRITE, hostbuf=c_work)
        try:
            self.kernel.set_args(Mp, Np, Kp, float(alpha), float(beta),
                                 abuf, bbuf, cbuf)
            event = self.queue.launch(
                self.kernel,
                self.kernel.expected_global_size(),
                self.kernel.plan.local_size(),
            )
            kernel_s = event.profile.duration * 1e-9 * self._kernel_time_factor()
            out_padded = cbuf.read().reshape(Mp, Np)
        finally:
            for buf in (abuf, bbuf, cbuf):
                buf.release()

        # -- crop step ---------------------------------------------------------
        copy_out_s = 0.0
        if (Mp, Np) != (M, N):
            copy_out_s = estimate_copy_time(
                self.device.spec, float(M * N * self.dtype.itemsize)
            )
        result_c = crop_c(out_padded, M, N)

        return GemmResult(
            c=result_c,
            M=M, N=N, K=K,
            timings=GemmTimings(copy_in_s, kernel_s, copy_out_s),
            kernel_breakdown=event.breakdown,
        )

    def __repr__(self) -> str:
        return f"<GemmRoutine {self.device.codename} {self.params.summary()}>"
