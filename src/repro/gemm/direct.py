"""Copy-free GEMM for small problems (the paper's proposed future work).

"For small sizes, an overhead for the copying is relatively large;
therefore, the implementation does not run fast.  One possible solution
for such sizes is to use another GEMM kernel without the matrix copying.
A future work is to implement the kernel and combine it with the current
implementation."  (paper Section V)

This module implements both halves of that future work:

* :class:`DirectGemmRoutine` — a GEMM routine whose kernel reads the
  operands in their original row-major storage (transposing on the fly),
  so no packing copy is charged.  The kernel itself is slower: row-major
  access coalesces worse (modelled in :mod:`repro.perfmodel.memory`) and
  on-the-fly bounds/transpose handling costs issue slots.
* :func:`select_routine` — the crossover dispatcher that picks the
  direct routine below a model-predicted break-even size and the packed
  routine above it.
"""

from __future__ import annotations

from typing import Tuple, Union

import repro.clsim as cl
from repro.codegen.layouts import Layout
from repro.codegen.params import KernelParams
from repro.devices.specs import DeviceSpec
from repro.gemm.routine import GemmRoutine
from repro.perfmodel.model import estimate_kernel_time

__all__ = ["DirectGemmRoutine", "select_routine", "direct_params"]


def direct_params(params: KernelParams) -> KernelParams:
    """Derive the copy-free kernel's parameters from a tuned set.

    The direct kernel must read the operands as the user stored them
    (ROW layouts) and bounds-check its edges (``guard_edges``) since no
    padding pass runs; everything else (blocking, vectors, algorithm)
    is inherited.  The guard cost is part of the performance model.
    """
    return params.replace(
        layout_a=Layout.ROW, layout_b=Layout.ROW, guard_edges=True
    )


class DirectGemmRoutine(GemmRoutine):
    """GEMM without the packing copy (for small problem sizes).

    The real direct kernel reads the user's row-major storage in place;
    in the simulator the operand still has to reach a device buffer, so
    staging happens functionally on the host but **no pack-kernel time
    is charged**, and the GEMM kernel pays the on-the-fly
    transpose/bounds overhead instead.
    """

    def __init__(self, device, params: KernelParams, **kwargs):
        super().__init__(device, direct_params(params), **kwargs)

    def _prepare_operand(self, mat, transpose, k_padded, x_padded, block_x, layout):
        import numpy as np

        import repro.clsim as cl

        # The guarded kernel reads the exact K x X row-major operand: no
        # padding, no repack, no charged time.  (Transposition is the
        # host handing over the already-transposed orientation; the real
        # kernel would fold it into READ_A's index expression.)
        kx = mat.T if transpose else mat
        buf = cl.Buffer(
            self.context, cl.MemFlags.READ_ONLY,
            hostbuf=np.ascontiguousarray(kx, dtype=self.dtype),
        )
        return buf, 0.0


def predict_times(
    spec: DeviceSpec, params: KernelParams, M: int, N: int, K: int
) -> Tuple[float, float]:
    """Model-predicted total seconds of (packed, direct) for one problem."""
    from repro.gemm.routine import predict_implementation

    t_packed = predict_implementation(spec, params, M, N, K, noise=False).total_s

    dparams = direct_params(params)
    direct_kernel = estimate_kernel_time(spec, dparams, M, N, K, noise=False)
    return t_packed, direct_kernel.total_seconds


def select_routine(
    device: Union[str, cl.Device, DeviceSpec],
    params: KernelParams,
    M: int,
    N: int,
    K: int,
    **kwargs,
) -> GemmRoutine:
    """Crossover dispatch: the faster of packed vs direct for this size."""
    dev = device if isinstance(device, cl.Device) else (
        cl.Device(device) if isinstance(device, DeviceSpec) else cl.get_device(device)
    )
    t_packed, t_direct = predict_times(dev.spec, params, M, N, K)
    if t_direct < t_packed:
        return DirectGemmRoutine(dev, params, **kwargs)
    return GemmRoutine(dev, params, **kwargs)


def crossover_size(
    spec: DeviceSpec, params: KernelParams, max_size: int = 4096
) -> int:
    """Smallest square size at which the packed routine wins.

    Returns ``max_size`` if the packed routine never wins below it.
    """
    lcm = params.lcm
    n = lcm
    while n <= max_size:
        t_packed, t_direct = predict_times(spec, params, n, n, n)
        if t_packed <= t_direct:
            return n
        n += lcm
    return max_size
