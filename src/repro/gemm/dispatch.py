"""Per-size kernel selection (a dispatch table over tuned kernels).

The paper tunes one kernel per device and precision at large sizes and
notes its weakness at small ones (copy overhead, tail waves).  Vendor
libraries solve this with a *selection table*: several tuned kernels,
each owning a size range.  :class:`KernelSelector` builds such a table
from tuning results — measuring every finalist across the size grid and
keeping, for each size band, whichever kernel (packed or the copy-free
direct variant) the model predicts fastest — and dispatches GEMM calls
through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analyze.verifier import StaticVerifier
from repro.codegen.params import KernelParams
from repro.devices.catalog import get_device_spec
from repro.devices.specs import DeviceSpec
from repro.errors import BuildError, LaunchError, ParameterError, ReproError
from repro.gemm.direct import direct_params
from repro.gemm.routine import GemmResult, GemmRoutine, predict_implementation
from repro.gemm.direct import DirectGemmRoutine
from repro.obs import NULL_OBS, bridge_queue
from repro.perfmodel.model import estimate_kernel_time
from repro.tuner.search import TuningResult

__all__ = ["DispatchEntry", "KernelSelector"]


@dataclass(frozen=True)
class DispatchEntry:
    """One row of the selection table: a size band and its kernel."""

    max_size: int  # inclusive upper bound of the band (geometric-mean size)
    params: KernelParams
    direct: bool  # use the copy-free routine for this band

    def describe(self) -> str:
        kind = "direct" if self.direct else "packed"
        return f"<= {self.max_size:5d}: {kind} {self.params.summary()}"


def _predict_total(spec: DeviceSpec, params: KernelParams, n: int,
                   direct: bool) -> float:
    if direct:
        dparams = direct_params(params)
        t = estimate_kernel_time(spec, dparams, n, n, n, noise=False)
        return t.total_seconds
    return predict_implementation(spec, params, n, n, n, noise=False).total_s


class KernelSelector:
    """Builds and dispatches through a per-size kernel table."""

    #: Default size-band boundaries (geometric-mean problem size).
    DEFAULT_BANDS = (128, 256, 512, 1024, 2048, 4096, 1 << 30)

    def __init__(
        self,
        device: Union[str, DeviceSpec],
        candidates: Sequence[KernelParams],
        bands: Sequence[int] = DEFAULT_BANDS,
        include_direct: bool = True,
        precision: Optional[str] = None,
        obs=None,
        **routine_kwargs,
    ):
        self.spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
        #: Telemetry (see :mod:`repro.obs`): a ``gemm.dispatch`` span per
        #: call with the selected band and bridged kernel launches.
        self.obs = obs if obs is not None else NULL_OBS
        candidates = list(candidates)
        #: Fallbacks taken while building the table (empty finalist sets,
        #: bands with no viable candidate) — callers inspect/log these.
        self.degradations: List[str] = []
        if not candidates:
            if precision is None:
                raise ReproError(
                    "KernelSelector needs at least one candidate kernel"
                )
            fallback = self._fallback_params(precision)
            if fallback is None:
                raise ReproError(
                    "KernelSelector needs at least one candidate kernel "
                    f"(and no pretuned fallback exists for "
                    f"{self.spec.codename!r}/{precision!r})"
                )
            candidates = [fallback]
            self.degradations.append(
                f"no candidates supplied; fell back to the pretuned "
                f"{self.spec.codename}/{precision} kernel for all bands"
            )
        precisions = {p.precision for p in candidates}
        if len(precisions) != 1:
            raise ReproError(f"candidates mix precisions: {sorted(precisions)}")
        self.precision = precisions.pop()
        self._verifier = StaticVerifier(self.spec)
        candidates = self._reject_unsafe(candidates)
        if not candidates:
            fallback = self._fallback_params(self.precision)
            if fallback is None or self._verifier.gate(fallback) is not None:
                raise ReproError(
                    f"every candidate kernel failed static analysis on "
                    f"{self.spec.codename} and no safe pretuned fallback "
                    f"exists"
                )
            candidates = [fallback]
            self.degradations.append(
                f"every candidate rejected by static analysis; fell back to "
                f"the pretuned {self.spec.codename}/{self.precision} kernel"
            )
        self._routine_kwargs = routine_kwargs
        self._routines: Dict[Tuple, GemmRoutine] = {}
        self.table = self._build_table(candidates, list(bands), include_direct)

    def _reject_unsafe(
        self, candidates: List[KernelParams]
    ) -> List[KernelParams]:
        """Refuse candidates the static verifier proves unsafe here.

        ``_predict_total`` models time, not validity — a kernel the
        device would refuse to launch (e.g. the Bulldozer PL-DGEMM
        quirk) can still "win" a band on predicted speed.  Gating on the
        constraint prover keeps such kernels out of the table; each
        rejection is recorded as a degradation for the caller's log.
        """
        admitted: List[KernelParams] = []
        for params in candidates:
            rule = self._verifier.gate(params)
            if rule is None:
                admitted.append(params)
            else:
                self.degradations.append(
                    f"candidate rejected by static analysis ({rule}): "
                    f"{params.summary()}"
                )
        return admitted

    def _fallback_params(self, precision: str) -> Optional[KernelParams]:
        """The shipped pretuned kernel, as a last-resort table entry."""
        from repro.tuner.pretuned import pretuned_params

        try:
            return pretuned_params(self.spec.codename, precision)
        except KeyError:
            return None

    @classmethod
    def from_tuning_result(
        cls, device: Union[str, DeviceSpec], result: TuningResult,
        max_candidates: int = 8, **kwargs,
    ) -> "KernelSelector":
        """Build the table from a search's leading finalists.

        A result with *no* finalists (every candidate failed or was
        quarantined) degrades gracefully: the selector falls back to the
        shipped pretuned kernel instead of raising at dispatch time, and
        records the degradation in :attr:`degradations`.
        """
        candidates = [mk.params for mk in result.finalists[:max_candidates]]
        return cls(device, candidates, precision=result.precision, **kwargs)

    # ------------------------------------------------------------------
    def _build_table(
        self,
        candidates: List[KernelParams],
        bands: List[int],
        include_direct: bool,
    ) -> List[DispatchEntry]:
        table: List[DispatchEntry] = []
        for band in sorted(bands):
            probe = min(band, 8192)  # model probe size for the open band
            best: Optional[Tuple[float, KernelParams, bool]] = None
            for params in candidates:
                options = [(False, params)]
                if include_direct:
                    options.append((True, params))
                for direct, p in options:
                    try:
                        t = _predict_total(self.spec, p, probe, direct)
                    except (ParameterError, BuildError, LaunchError):
                        # The pure perf model rejects an infeasible
                        # (params, size) pair; never a transient fault.
                        continue
                    if best is None or t < best[0]:
                        best = (t, p, direct)
            if best is None:
                # No supplied candidate is viable for this band: degrade
                # to the shipped pretuned kernel's guarded direct variant
                # (works at any size, no padding constraints) instead of
                # shipping a table that IndexErrors at dispatch.
                fallback = self._fallback_params(candidates[0].precision)
                if fallback is None:
                    raise ReproError(
                        f"no candidate kernel is viable on {self.spec.codename}"
                        f" for band <= {band} and no pretuned fallback exists"
                    )
                self.degradations.append(
                    f"band <= {band}: no viable candidate; fell back to the "
                    f"pretuned direct kernel"
                )
                best = (float("inf"), fallback, True)
            table.append(DispatchEntry(band, best[1], best[2]))
        # Merge adjacent bands that picked the same configuration.
        merged: List[DispatchEntry] = []
        for entry in table:
            if merged and merged[-1].params == entry.params \
                    and merged[-1].direct == entry.direct:
                merged[-1] = DispatchEntry(entry.max_size, entry.params, entry.direct)
            else:
                merged.append(entry)
        return merged

    def entry_for(self, M: int, N: int, K: int) -> DispatchEntry:
        """The table row owning a problem (by geometric-mean size)."""
        if not self.table:
            raise ReproError(
                "kernel selection table is empty — the selector was built "
                "from a result with no finalists and no pretuned fallback"
            )
        size = (M * N * K) ** (1.0 / 3.0)
        for entry in self.table:
            if size <= entry.max_size:
                return entry
        return self.table[-1]

    def _routine(self, entry: DispatchEntry) -> GemmRoutine:
        key = (entry.params.cache_key(), entry.direct)
        if key not in self._routines:
            cls = DirectGemmRoutine if entry.direct else GemmRoutine
            self._routines[key] = cls(self.spec, entry.params, **self._routine_kwargs)
        return self._routines[key]

    # ------------------------------------------------------------------
    def __call__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
        transa: str = "N",
        transb: str = "N",
    ) -> GemmResult:
        """GEMM through whichever kernel owns this problem's size band."""
        transa, transb = transa.upper(), transb.upper()
        M = a.shape[0] if transa == "N" else a.shape[1]
        N = b.shape[1] if transb == "N" else b.shape[0]
        K = a.shape[1] if transa == "N" else a.shape[0]
        entry = self.entry_for(M, N, K)
        with self.obs.span("gemm.dispatch", M=M, N=N, K=K,
                           band=entry.max_size, direct=entry.direct):
            routine = self._routine(entry)
            with bridge_queue(self.obs, routine.queue):
                return routine(a, b, c, alpha=alpha, beta=beta,
                               transa=transa, transb=transb)

    def describe(self) -> str:
        """The selection table as text."""
        lines = [f"kernel selection table for {self.spec.codename} "
                 f"({'SGEMM' if self.precision == 's' else 'DGEMM'}):"]
        lines.extend("  " + entry.describe() for entry in self.table)
        return "\n".join(lines)

    # -- persistence ---------------------------------------------------------
    def save(self, path: str) -> str:
        """Write the selection table to JSON (how a library would ship it)."""
        from repro.persist import dump_json_atomic

        payload = {
            "format": "repro-kernel-selector/1",
            "device": self.spec.codename,
            "precision": self.precision,
            "table": [
                {
                    "max_size": entry.max_size,
                    "direct": entry.direct,
                    "params": entry.params.to_dict(),
                }
                for entry in self.table
            ],
        }
        return dump_json_atomic(path, payload, indent=2)

    @classmethod
    def load(cls, path: str, obs=None, **routine_kwargs) -> "KernelSelector":
        """Re-create a selector from a saved table (no re-tuning)."""
        import json

        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("format") != "repro-kernel-selector/1":
            raise ReproError(f"{path} is not a kernel-selector table")
        self = cls.__new__(cls)
        self.obs = obs if obs is not None else NULL_OBS
        self.spec = get_device_spec(payload["device"])
        self.precision = payload["precision"]
        self._routine_kwargs = routine_kwargs
        self._routines = {}
        self.degradations = []
        self._verifier = StaticVerifier(self.spec)
        table = [
            DispatchEntry(
                max_size=int(entry["max_size"]),
                params=KernelParams.from_dict(entry["params"]),
                direct=bool(entry["direct"]),
            )
            for entry in payload["table"]
        ]
        # A saved table may predate a device-spec or generator change;
        # re-prove every row rather than trusting the file.
        self.table = []
        for entry in table:
            rule = self._verifier.gate(entry.params)
            if rule is None:
                self.table.append(entry)
            else:
                self.degradations.append(
                    f"saved entry <= {entry.max_size} rejected by static "
                    f"analysis ({rule}): {entry.params.summary()}"
                )
        if not self.table:
            raise ReproError(
                f"{path} holds an empty selection table"
                if not table else
                f"every entry of {path} failed static analysis on "
                f"{self.spec.codename}"
            )
        return self
