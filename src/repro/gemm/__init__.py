"""High-level GEMM routines built on the fast ``A^T B`` kernel.

The paper's implementation strategy (Section III / IV-B): copy the user
matrices into padded, block-major buffers — transposing as required by
the multiplication type — and run the tuned ``C <- alpha A^T B + beta C``
kernel.  This package provides that routine for all four types
(NN/NT/TN/TT), both precisions, row- and column-major user data, plus
the paper's proposed *future work*: a copy-free direct kernel for small
sizes and a crossover dispatcher.
"""

from repro.gemm.packing import (
    PackedOperand,
    pack_operand,
    pad_to_multiple,
    required_padding,
)
from repro.gemm.reference import reference_gemm
from repro.gemm.routine import GemmResult, GemmRoutine, GemmTimings
from repro.gemm.direct import DirectGemmRoutine, select_routine
from repro.gemm.dispatch import KernelSelector
from repro.gemm.batched import BatchedGemm, BatchedGemmResult
from repro.gemm.multidev import MultiDeviceGemm, MultiDeviceResult

__all__ = [
    "PackedOperand",
    "pack_operand",
    "pad_to_multiple",
    "required_padding",
    "reference_gemm",
    "GemmRoutine",
    "GemmResult",
    "GemmTimings",
    "DirectGemmRoutine",
    "select_routine",
    "KernelSelector",
    "BatchedGemm",
    "BatchedGemmResult",
    "MultiDeviceGemm",
    "MultiDeviceResult",
]
