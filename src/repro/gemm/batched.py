"""Batched GEMM: many small multiplications through one tuned kernel.

Small problems cannot amortise per-launch and packing overheads one at a
time (the paper's small-size weakness); batching them reuses one routine
and, on out-of-order capable devices, models the launch-overhead saving
of submitting the whole batch back to back.  Functionally each member
is computed exactly — bit-identically to a stand-alone
:class:`~repro.gemm.routine.GemmRoutine` call, which is what lets the
serving scheduler coalesce independent requests without changing their
answers.  Timing follows the pipeline model: the first member pays its
full launch latency; every later member's launches (2 packs + 1 kernel)
are hidden behind the previous member's execution, so the batch costs
one pipeline fill plus the members' pure device-occupancy time.

Members may differ in shape, transpose, alpha, and beta: ``alpha``,
``beta``, ``transa`` and ``transb`` accept either one value for the
whole batch or one value per member.  All batch-level structure and
every member's operands are validated up front
(:class:`~repro.errors.InvalidBatchError`) so a malformed batch never
computes a partial prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codegen.params import KernelParams
from repro.errors import InvalidBatchError, InvalidRequestError
from repro.gemm.routine import (
    GemmResult,
    GemmRoutine,
    validate_gemm_request,
)

__all__ = ["BatchedGemmResult", "BatchedGemm"]

def _member_launches(result: GemmResult) -> int:
    """Device launches one member enqueued, derived from its timing
    decomposition: two pack kernels when packing time was charged (the
    direct routine charges none), the GEMM kernel itself, and the crop
    copy-out when the problem was padded."""
    timings = result.timings
    return (
        (2 if timings.copy_in_s > 0.0 else 0)
        + 1
        + (1 if timings.copy_out_s > 0.0 else 0)
    )


def _per_member(name: str, value, n: int) -> List:
    """Broadcast a scalar batch argument, or validate a per-member list."""
    if isinstance(value, (list, tuple)):
        if len(value) != n:
            raise InvalidBatchError(
                f"{name} has {len(value)} entries for {n} members"
            )
        return list(value)
    return [value] * n


@dataclass(frozen=True)
class BatchedGemmResult:
    """Results and aggregate accounting of one batch."""

    results: Tuple[GemmResult, ...]
    #: Simulated wall time with back-to-back (pipelined) submission.
    batched_seconds: float
    #: Simulated wall time if each member were run stand-alone.
    unbatched_seconds: float

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i: int) -> GemmResult:
        return self.results[i]

    @property
    def matrices(self) -> List[np.ndarray]:
        return [r.c for r in self.results]

    @property
    def flops(self) -> float:
        return sum(r.flops for r in self.results)

    @property
    def effective_gflops(self) -> float:
        return self.flops / self.batched_seconds / 1e9

    @property
    def batching_speedup(self) -> float:
        return self.unbatched_seconds / self.batched_seconds

    def member_seconds(self) -> List[float]:
        """The batch wall time attributed back to each member.

        Shares are proportional to each member's stand-alone time, so
        they sum to ``batched_seconds`` exactly and a request-level
        accountant can charge every member its fair slice of the batch.
        """
        if not self.results:
            return []
        totals = [r.timings.total_s for r in self.results]
        denom = sum(totals) or 1.0
        return [self.batched_seconds * t / denom for t in totals]


class BatchedGemm:
    """Runs batches of (A, B[, C]) problems through one GEMM routine."""

    def __init__(self, routine: Union[GemmRoutine, str],
                 params: Optional[KernelParams] = None, **routine_kwargs):
        if isinstance(routine, GemmRoutine):
            self.routine = routine
        else:
            from repro.api import tuned_gemm

            precision = params.precision if params is not None else "d"
            self.routine = tuned_gemm(routine, precision, params=params,
                                      **routine_kwargs)

    @property
    def launch_overhead_s(self) -> float:
        return self.routine.device.spec.model.launch_overhead_us * 1e-6

    def _validate(self, a_list, b_list, c_list, alphas, betas,
                  transas, transbs) -> None:
        """Prove the whole batch well-formed before computing member 0."""
        for i, (a, b) in enumerate(zip(a_list, b_list)):
            c = c_list[i] if c_list is not None else None
            try:
                validate_gemm_request(
                    a, b, c, alphas[i], betas[i], transas[i], transbs[i]
                )
            except InvalidRequestError as exc:
                raise InvalidBatchError(
                    f"member {i}: {exc}", member=i
                ) from exc

    def __call__(
        self,
        a_list: Sequence[np.ndarray],
        b_list: Sequence[np.ndarray],
        c_list: Optional[Sequence[Optional[np.ndarray]]] = None,
        alpha: Union[float, Sequence[float]] = 1.0,
        beta: Union[float, Sequence[float]] = 0.0,
        transa: Union[str, Sequence[str]] = "N",
        transb: Union[str, Sequence[str]] = "N",
    ) -> BatchedGemmResult:
        if len(a_list) != len(b_list):
            raise InvalidBatchError(
                f"batch size mismatch: {len(a_list)} A operands, "
                f"{len(b_list)} B operands"
            )
        if not a_list:
            raise InvalidBatchError("empty batch")
        if c_list is not None and len(c_list) != len(a_list):
            raise InvalidBatchError(
                f"C operand list length {len(c_list)} must match the "
                f"batch size {len(a_list)}"
            )
        n = len(a_list)
        alphas = _per_member("alpha", alpha, n)
        betas = _per_member("beta", beta, n)
        transas = _per_member("transa", transa, n)
        transbs = _per_member("transb", transb, n)
        self._validate(a_list, b_list, c_list, alphas, betas,
                       transas, transbs)

        results = []
        for i, (a, b) in enumerate(zip(a_list, b_list)):
            c = c_list[i] if c_list is not None else None
            results.append(
                self.routine(a, b, c, alpha=alphas[i], beta=betas[i],
                             transa=transas[i], transb=transbs[i])
            )

        unbatched = sum(r.timings.total_s for r in results)
        # Pipeline model: the batch pays one pipeline fill (the deepest
        # member's launch latency), after which every launch overlaps
        # the previous command's execution, leaving each member's pure
        # device-occupancy time (total minus its hidden launches,
        # floored at zero for members that are nothing *but* launch
        # overhead).
        oh = self.launch_overhead_s
        fill = max(_member_launches(r) for r in results) * oh
        occupancy = sum(
            max(r.timings.total_s - _member_launches(r) * oh, 0.0)
            for r in results
        )
        batched = min(fill + occupancy, unbatched)
        return BatchedGemmResult(tuple(results), batched, unbatched)
