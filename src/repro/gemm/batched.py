"""Batched GEMM: many small multiplications through one tuned kernel.

Small problems cannot amortise per-launch and packing overheads one at a
time (the paper's small-size weakness); batching them reuses one routine
and, on out-of-order capable devices, models the launch-overhead saving
of submitting the whole batch back to back.  Functionally each problem
is computed exactly; timing aggregates the member calls and discounts
all but the first launch overhead (the queue pipeline keeps the device
busy between members).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codegen.params import KernelParams
from repro.errors import ReproError
from repro.gemm.routine import GemmResult, GemmRoutine, GemmTimings

__all__ = ["BatchedGemmResult", "BatchedGemm"]


@dataclass(frozen=True)
class BatchedGemmResult:
    """Results and aggregate accounting of one batch."""

    results: Tuple[GemmResult, ...]
    #: Simulated wall time with back-to-back submission.
    batched_seconds: float
    #: Simulated wall time if each member were run stand-alone.
    unbatched_seconds: float

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i: int) -> GemmResult:
        return self.results[i]

    @property
    def matrices(self) -> List[np.ndarray]:
        return [r.c for r in self.results]

    @property
    def flops(self) -> float:
        return sum(r.flops for r in self.results)

    @property
    def effective_gflops(self) -> float:
        return self.flops / self.batched_seconds / 1e9

    @property
    def batching_speedup(self) -> float:
        return self.unbatched_seconds / self.batched_seconds


class BatchedGemm:
    """Runs batches of (A, B[, C]) problems through one GEMM routine."""

    def __init__(self, routine: Union[GemmRoutine, str],
                 params: Optional[KernelParams] = None, **routine_kwargs):
        if isinstance(routine, GemmRoutine):
            self.routine = routine
        else:
            from repro.api import tuned_gemm

            precision = params.precision if params is not None else "d"
            self.routine = tuned_gemm(routine, precision, params=params,
                                      **routine_kwargs)

    @property
    def launch_overhead_s(self) -> float:
        return self.routine.device.spec.model.launch_overhead_us * 1e-6

    def __call__(
        self,
        a_list: Sequence[np.ndarray],
        b_list: Sequence[np.ndarray],
        c_list: Optional[Sequence[np.ndarray]] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
        transa: str = "N",
        transb: str = "N",
    ) -> BatchedGemmResult:
        if len(a_list) != len(b_list):
            raise ReproError(
                f"batch size mismatch: {len(a_list)} A operands, "
                f"{len(b_list)} B operands"
            )
        if not a_list:
            raise ReproError("empty batch")
        if c_list is not None and len(c_list) != len(a_list):
            raise ReproError("C operand list length must match the batch")

        results = []
        for i, (a, b) in enumerate(zip(a_list, b_list)):
            c = c_list[i] if c_list is not None else None
            results.append(
                self.routine(a, b, c, alpha=alpha, beta=beta,
                             transa=transa, transb=transb)
            )

        unbatched = sum(r.timings.total_s for r in results)
        # Back-to-back submission: every command after the first batch
        # member starts while the previous one runs, so per-member launch
        # latencies (2 packs + 1 kernel) are hidden behind execution.
        saved = 3 * self.launch_overhead_s * (len(results) - 1)
        batched = max(unbatched - saved, unbatched * 0.5)
        return BatchedGemmResult(tuple(results), batched, unbatched)
