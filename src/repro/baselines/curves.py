"""Piecewise-linear performance curves.

A :class:`PerfCurve` maps problem size to GFlop/s by linear
interpolation between control points, with a configurable ramp below the
first point (library kernels have fixed launch/dispatch overheads, so
their throughput rises with size and saturates).  The vendor-library
control points are digitised from the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["PerfCurve"]


@dataclass(frozen=True)
class PerfCurve:
    """Monotone-size performance curve from (size, GFlop/s) control points."""

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ValueError("a PerfCurve needs at least one control point")
        sizes = [s for s, _ in self.points]
        if any(b <= a for a, b in zip(sizes, sizes[1:])):
            raise ValueError(f"control-point sizes must be increasing: {sizes}")
        if any(g < 0 for _, g in self.points):
            raise ValueError("GFlop/s control values must be non-negative")

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[float, float]]) -> "PerfCurve":
        return cls(tuple((float(s), float(g)) for s, g in pairs))

    def gflops(self, size: float) -> float:
        """Interpolated GFlop/s at a square problem size."""
        if size <= 0:
            return 0.0
        sizes = np.array([s for s, _ in self.points])
        values = np.array([g for _, g in self.points])
        if size < sizes[0]:
            # Launch-overhead ramp: throughput roughly proportional to
            # work per fixed overhead below the first control point.
            return float(values[0] * (size / sizes[0]) ** 1.5)
        return float(np.interp(size, sizes, values))

    def peak(self) -> float:
        """Maximum GFlop/s over the control points."""
        return max(g for _, g in self.points)

    def seconds(self, M: int, N: int, K: int) -> float:
        """Modelled wall time of one GEMM call (uses the geometric-mean
        size as the curve coordinate for non-square problems)."""
        size = (M * N * K) ** (1.0 / 3.0)
        rate = self.gflops(size)
        if rate <= 0:
            raise ZeroDivisionError("curve has zero throughput at this size")
        return 2.0 * M * N * K / (rate * 1e9)
