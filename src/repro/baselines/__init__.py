"""Vendor-library baselines for the paper's comparisons.

The evaluation compares the auto-tuned kernels against clBLAS, CUBLAS,
MAGMA, MKL, ACML and ATLAS, plus the authors' previous-generation
implementation.  Functionally these libraries are all GEMM (the numpy
reference); what distinguishes them is *performance*, which this package
models as per-library performance curves digitised from the paper's own
tables and figures (see DESIGN.md, "Substitutions").
"""

from repro.baselines.curves import PerfCurve
from repro.baselines.vendors import (
    VENDOR_LIBRARIES,
    VendorLibrary,
    get_library,
    libraries_for_device,
)

__all__ = [
    "PerfCurve",
    "VendorLibrary",
    "VENDOR_LIBRARIES",
    "get_library",
    "libraries_for_device",
]
