"""Heuristic enumeration of the code generator's parameter space.

The paper's search engine measures "tens of thousands of kernel variants
per single GEMM type on an OpenCL device", chosen heuristically
(Section III-F).  This module reproduces that: it enumerates blocking
combinations, attaches a deterministic heuristic sample of the secondary
parameters (vector width, stride, local-memory usage, layouts, algorithm)
to each, and yields only structurally valid :class:`KernelParams`.

:class:`SpaceRestrictions` can shrink the space to the *previous*
generator of reference [13] (power-of-two blocking only, no staging
reshape, no dual local staging, BA only) for the ablation experiment that
reproduces the paper's claimed improvement (863 vs 848 GFlop/s DGEMM,
3047 vs 2646 SGEMM on Tahiti).
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.codegen.algorithms import Algorithm
from repro.codegen.layouts import Layout
from repro.codegen.params import KernelParams, StrideMode
from repro.devices.specs import DeviceSpec, LocalMemType
from repro.errors import ParameterError

__all__ = ["SpaceRestrictions", "enumerate_space", "space_size_estimate", "seed_candidates"]


@dataclass(frozen=True)
class SpaceRestrictions:
    """Optional constraints on the enumerated space (for ablations)."""

    power_of_two_only: bool = False
    algorithms: Tuple[Algorithm, ...] = (Algorithm.BA, Algorithm.PL, Algorithm.DB)
    allow_dual_shared: bool = True
    allow_staging_reshape: bool = True
    layouts: Tuple[Layout, ...] = (Layout.ROW, Layout.CBL, Layout.RBL)
    vector_widths: Tuple[int, ...] = (1, 2, 4, 8)
    allow_nonunit_stride: bool = True
    forced_shared: Optional[Tuple[bool, bool]] = None
    forced_algorithm: Optional[Algorithm] = None
    forced_layouts: Optional[Tuple[Layout, Layout]] = None
    #: Include image-object (texture) kernel variants.  Off by default:
    #: the paper's generator "does not use image objects currently"
    #: (Section III-F); the image-path ablation turns this on.
    allow_images: bool = False
    forced_images: Optional[bool] = None
    #: Include edge-guarded (bounds-checked, padding-free) variants.
    allow_guarded: bool = False
    forced_guarded: Optional[bool] = None

    @classmethod
    def previous_generator(cls) -> "SpaceRestrictions":
        """The space of the authors' earlier generator (reference [13]).

        Six blocking parameters (no ``MdimA``/``NdimB`` reshape), each a
        power of two, BA only, and no kernels staging *both* matrices
        through local memory ("the previous generator was incomplete on
        such kernel production", Section III-F).
        """
        return cls(
            power_of_two_only=True,
            algorithms=(Algorithm.BA,),
            allow_dual_shared=False,
            allow_staging_reshape=False,
        )


# Candidate pools.  The non-power-of-two entries (48, 96, 24, ...) exist
# because the improved generator lifted the power-of-two limitation
# (Section III-F) and the paper's best kernels use them (Table II).
_MWG_NWG = (16, 32, 48, 64, 96, 128)
_KWG = (8, 16, 32, 48, 64, 96, 192)
_DIMC = (4, 8, 16, 24, 32)
_KWI = (1, 2, 4, 8, 16, 24)
_POW2_MWG_NWG = (16, 32, 64, 128)
_POW2_KWG = (8, 16, 32, 64)
_POW2_DIMC = (4, 8, 16, 32)
_POW2_KWI = (1, 2, 4, 8, 16)

_SHARED_OPTIONS = ((False, False), (False, True), (True, False), (True, True))
_LAYOUT_PAIRS = (
    (Layout.ROW, Layout.ROW),
    (Layout.CBL, Layout.CBL),
    (Layout.RBL, Layout.RBL),
    (Layout.CBL, Layout.RBL),
    (Layout.RBL, Layout.CBL),
)
_STRIDES = (
    StrideMode(False, False),
    StrideMode(True, False),
    StrideMode(False, True),
    StrideMode(True, True),
)


def _blocking_pools(restrictions: SpaceRestrictions):
    if restrictions.power_of_two_only:
        return _POW2_MWG_NWG, _POW2_KWG, _POW2_DIMC, _POW2_KWI
    return _MWG_NWG, _KWG, _DIMC, _KWI


def _blocking_ok(device: DeviceSpec, mwg: int, nwg: int, kwg: int,
                 mdimc: int, ndimc: int, kwi: int) -> bool:
    """Cheap structural/heuristic filters applied before construction."""
    if mwg % mdimc or nwg % ndimc or kwg % kwi:
        return False
    wg = mdimc * ndimc
    if wg > device.model.max_workgroup_size:
        return False
    mwi, nwi = mwg // mdimc, nwg // ndimc
    if not (1 <= mwi <= 16 and 1 <= nwi <= 16):
        return False
    # Registers for the C accumulators alone must be plausible.
    if mwi * nwi > 96:
        return False
    if device.is_gpu:
        # Sub-wavefront work-groups waste SIMD lanes; never profitable.
        if wg < device.model.wavefront_size // 2:
            return False
    else:
        # CPUs: very large work-groups only add software-barrier overhead.
        if wg > 128:
            return False
    return True


def _secondary_options(
    device: DeviceSpec, restrictions: SpaceRestrictions
) -> List[Tuple]:
    """All (vw, stride, shared, layouts, algorithm) combinations allowed."""
    strides = [s for s in _STRIDES
               if restrictions.allow_nonunit_stride or not (s.m or s.n)]
    shared_opts = [
        s for s in _SHARED_OPTIONS
        if restrictions.allow_dual_shared or not (s[0] and s[1])
    ]
    if restrictions.forced_shared is not None:
        shared_opts = [restrictions.forced_shared]
    layout_pairs = list(
        lp for lp in _LAYOUT_PAIRS
        if lp[0] in restrictions.layouts and lp[1] in restrictions.layouts
    )
    if restrictions.forced_layouts is not None:
        layout_pairs = [restrictions.forced_layouts]
    algorithms = list(restrictions.algorithms)
    if restrictions.forced_algorithm is not None:
        algorithms = [restrictions.forced_algorithm]
    image_opts = [False]
    if restrictions.allow_images:
        image_opts = [False, True]
    if restrictions.forced_images is not None:
        image_opts = [restrictions.forced_images]
    guard_opts = [False]
    if restrictions.allow_guarded:
        guard_opts = [False, True]
    if restrictions.forced_guarded is not None:
        guard_opts = [restrictions.forced_guarded]
    out = []
    for vw, stride, shared, layouts, alg in itertools.product(
        restrictions.vector_widths, strides, shared_opts, layout_pairs, algorithms
    ):
        for use_images in image_opts:
            if use_images and layouts != (Layout.ROW, Layout.ROW):
                continue  # textures are addressed 2-D; host layout is moot
            for guard in guard_opts:
                if guard and layouts != (Layout.ROW, Layout.ROW):
                    continue  # guarded kernels read unpacked operands
                out.append((vw, stride, shared, layouts, alg, use_images, guard))
    return out


def _staging_widths(
    wg: int, mwg: int, kwg: int, allow_reshape: bool, default: int
) -> List[int]:
    """Valid MdimA (NdimB) values for staging one tile with a wg-size grid."""
    if not allow_reshape:
        return [default] if _staging_valid(wg, mwg, kwg, default) else []
    out = []
    for cand in (default, 8, 16, 32, 64):
        if cand in out:
            continue
        if _staging_valid(wg, mwg, kwg, cand):
            out.append(cand)
    return out


def _staging_valid(wg: int, mwg: int, kwg: int, dim_major: int) -> bool:
    if dim_major <= 0 or wg % dim_major:
        return False
    dim_k = wg // dim_major
    return mwg % dim_major == 0 and kwg % dim_k == 0


def _seed_admissible(params: KernelParams, r: SpaceRestrictions) -> bool:
    """Whether a curated seed lies inside a (possibly restricted) space."""
    if r.power_of_two_only:
        values = (params.mwg, params.nwg, params.kwg, params.mdimc,
                  params.ndimc, params.kwi)
        if any(v & (v - 1) for v in values):
            return False
    if params.algorithm not in r.algorithms:
        return False
    if r.forced_algorithm is not None and params.algorithm is not r.forced_algorithm:
        return False
    if params.vw not in r.vector_widths:
        return False
    if not r.allow_dual_shared and params.shared_a and params.shared_b:
        return False
    if not r.allow_staging_reshape and (
        params.mdima not in (0, params.mdimc) or params.ndimb not in (0, params.ndimc)
    ):
        return False
    if r.forced_shared is not None and (params.shared_a, params.shared_b) != r.forced_shared:
        return False
    if r.forced_layouts is not None and (params.layout_a, params.layout_b) != r.forced_layouts:
        return False
    if params.layout_a not in r.layouts or params.layout_b not in r.layouts:
        return False
    if not r.allow_nonunit_stride and (params.stride.m or params.stride.n):
        return False
    images_allowed = r.allow_images or r.forced_images is True
    if params.use_images and not images_allowed:
        return False
    if r.forced_images is not None and params.use_images is not r.forced_images:
        return False
    guards_allowed = r.allow_guarded or r.forced_guarded is True
    if params.guard_edges and not guards_allowed:
        return False
    if r.forced_guarded is not None and params.guard_edges is not r.forced_guarded:
        return False
    return True


def _combo_digest(*parts) -> int:
    payload = ",".join(str(p) for p in parts).encode()
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


def enumerate_space(
    device: DeviceSpec,
    precision: str,
    restrictions: SpaceRestrictions | None = None,
    limit: Optional[int] = None,
    per_blocking: int = 8,
    seed: int = 0,
    include_seeds: bool = True,
) -> Iterator[KernelParams]:
    """Yield valid candidate kernels for one device and precision.

    For every admissible blocking combination, a deterministic
    hash-seeded sample of ``per_blocking`` secondary-parameter
    combinations is attached (the paper's "heuristically chosen"
    variants).  ``limit`` caps the total yield; curated seed candidates
    (known-good shapes) are yielded first unless ``include_seeds`` is
    False.
    """
    restrictions = restrictions or SpaceRestrictions()
    pool_mn, pool_k, pool_dim, pool_kwi = _blocking_pools(restrictions)
    secondary = _secondary_options(device, restrictions)
    emitted = 0
    seen = set()

    def _yield(params: KernelParams):
        nonlocal emitted
        key = params.cache_key()
        if key in seen:
            return None
        seen.add(key)
        emitted += 1
        return params

    if include_seeds:
        for params in seed_candidates(device, precision):
            if not _seed_admissible(params, restrictions):
                continue
            out = _yield(params)
            if out is not None:
                yield out
            if limit is not None and emitted >= limit:
                return

    for mwg, nwg, kwg, mdimc, ndimc, kwi in itertools.product(
        pool_mn, pool_mn, pool_k, pool_dim, pool_dim, pool_kwi
    ):
        if not _blocking_ok(device, mwg, nwg, kwg, mdimc, ndimc, kwi):
            continue
        rng = random.Random(_combo_digest(mwg, nwg, kwg, mdimc, ndimc, kwi, seed))
        picks = rng.sample(secondary, k=min(per_blocking, len(secondary)))
        wg = mdimc * ndimc
        for vw, stride, (sha, shb), (la, lb), alg, use_images, guard in picks:
            mdima_opts = (
                _staging_widths(wg, mwg, kwg, restrictions.allow_staging_reshape, mdimc)
                if sha else [0]
            )
            ndimb_opts = (
                _staging_widths(wg, nwg, kwg, restrictions.allow_staging_reshape, ndimc)
                if shb else [0]
            )
            if sha and not mdima_opts:
                continue
            if shb and not ndimb_opts:
                continue
            mdima = rng.choice(mdima_opts)
            ndimb = rng.choice(ndimb_opts)
            try:
                params = KernelParams(
                    precision=precision,
                    mwg=mwg, nwg=nwg, kwg=kwg,
                    mdimc=mdimc, ndimc=ndimc, kwi=kwi, vw=vw,
                    stride=stride, shared_a=sha, shared_b=shb,
                    mdima=mdima if sha else 0, ndimb=ndimb if shb else 0,
                    layout_a=la, layout_b=lb, algorithm=alg,
                    use_images=use_images, guard_edges=guard,
                )
            except ParameterError:
                continue  # "failed in code generation" — not counted
            if params.local_memory_bytes() > device.local_mem_bytes:
                continue
            out = _yield(params)
            if out is not None:
                yield out
            if limit is not None and emitted >= limit:
                return


def space_size_estimate(
    device: DeviceSpec,
    precision: str,
    restrictions: SpaceRestrictions | None = None,
    per_blocking: int = 8,
) -> int:
    """Count the candidates :func:`enumerate_space` would yield (no limit)."""
    return sum(
        1
        for _ in enumerate_space(
            device, precision, restrictions, per_blocking=per_blocking,
            include_seeds=False,
        )
    )


def seed_candidates(device: DeviceSpec, precision: str) -> List[KernelParams]:
    """Curated known-good starting shapes, always fed to the search.

    Real auto-tuners seed their search with configurations that worked on
    related hardware; ours seeds with shapes in the neighbourhood of the
    paper's Table II winners (adapted per device family), which keeps the
    default scaled-down search budgets honest.
    """
    is_cpu = device.local_mem_type is LocalMemType.GLOBAL
    out: List[KernelParams] = []

    def add(**kw) -> None:
        try:
            params = KernelParams(precision=precision, **kw)
        except ParameterError:
            return
        if params.local_memory_bytes() <= device.local_mem_bytes:
            out.append(params)

    if not is_cpu:
        # Tahiti-like winners (Table II, first column).
        if precision == "d":
            add(mwg=96, nwg=32, kwg=48, mdimc=16, ndimc=16, kwi=2, vw=2,
                shared_b=True, ndimb=16,
                layout_a=Layout.CBL, layout_b=Layout.CBL, algorithm=Algorithm.BA)
        else:
            add(mwg=96, nwg=96, kwg=16, mdimc=16, ndimc=16, kwi=2, vw=1,
                stride=StrideMode(m=True), shared_a=True, shared_b=True,
                mdima=16, ndimb=16,
                layout_a=Layout.CBL, layout_b=Layout.CBL, algorithm=Algorithm.BA)
        # Cayman-like (no local memory, bigger kwi, vectors).
        add(mwg=64, nwg=32, kwg=48, mdimc=16, ndimc=8, kwi=24, vw=2,
            stride=StrideMode(n=True),
            layout_a=Layout.CBL, layout_b=Layout.CBL, algorithm=Algorithm.BA)
        add(mwg=128, nwg=64, kwg=96, mdimc=16, ndimc=8, kwi=24, vw=4,
            stride=StrideMode(n=True),
            layout_a=Layout.CBL, layout_b=Layout.CBL, algorithm=Algorithm.PL)
        # Kepler/Fermi-like (small kwg, dual local staging, non-unit stride).
        add(mwg=32, nwg=64, kwg=8, mdimc=16, ndimc=16, kwi=4, vw=1,
            stride=StrideMode(n=True), shared_a=True, shared_b=True,
            mdima=32, ndimb=32,
            layout_a=Layout.CBL, layout_b=Layout.CBL, algorithm=Algorithm.BA)
        add(mwg=64, nwg=64, kwg=8, mdimc=8, ndimc=16, kwi=8, vw=2,
            stride=StrideMode(m=True), shared_a=True, shared_b=True,
            mdima=32, ndimb=32,
            layout_a=Layout.CBL, layout_b=Layout.CBL, algorithm=Algorithm.PL)
        add(mwg=64, nwg=64, kwg=8, mdimc=16, ndimc=16, kwi=2, vw=1,
            stride=StrideMode(n=True), shared_b=True, ndimb=64,
            layout_a=Layout.CBL, layout_b=Layout.RBL, algorithm=Algorithm.PL)
        add(mwg=64, nwg=64, kwg=16, mdimc=8, ndimc=16, kwi=16, vw=2,
            stride=StrideMode(m=True, n=True), shared_a=True, shared_b=True,
            mdima=32, ndimb=16,
            layout_a=Layout.CBL, layout_b=Layout.CBL, algorithm=Algorithm.BA)
        # Image-path (texture) seeds: the staged variant and the
        # Nakasato-style cache-streaming variant.  Only admissible when
        # the space allows image kernels.
        if precision == "d":
            add(mwg=64, nwg=32, kwg=48, mdimc=16, ndimc=8, kwi=24, vw=2,
                stride=StrideMode(n=True), use_images=True,
                layout_a=Layout.ROW, layout_b=Layout.ROW, algorithm=Algorithm.BA)
            add(mwg=96, nwg=32, kwg=48, mdimc=16, ndimc=16, kwi=2, vw=2,
                shared_b=True, ndimb=16, use_images=True,
                layout_a=Layout.ROW, layout_b=Layout.ROW, algorithm=Algorithm.BA)
        else:
            add(mwg=96, nwg=96, kwg=16, mdimc=16, ndimc=16, kwi=2, vw=1,
                stride=StrideMode(m=True), shared_a=True, shared_b=True,
                mdima=16, ndimb=16, use_images=True,
                layout_a=Layout.ROW, layout_b=Layout.ROW, algorithm=Algorithm.BA)
            add(mwg=128, nwg=64, kwg=96, mdimc=16, ndimc=8, kwi=24, vw=4,
                stride=StrideMode(n=True), use_images=True,
                layout_a=Layout.ROW, layout_b=Layout.ROW, algorithm=Algorithm.PL)
    else:
        # CPU winners (Table II, last two columns).
        if precision == "d":
            add(mwg=64, nwg=32, kwg=64, mdimc=16, ndimc=4, kwi=4, vw=4,
                shared_b=True, ndimb=4,
                layout_a=Layout.RBL, layout_b=Layout.RBL, algorithm=Algorithm.DB)
            add(mwg=48, nwg=32, kwg=96, mdimc=24, ndimc=4, kwi=16, vw=2,
                stride=StrideMode(m=True), shared_b=True, ndimb=2,
                layout_a=Layout.CBL, layout_b=Layout.RBL, algorithm=Algorithm.DB)
        else:
            add(mwg=64, nwg=64, kwg=64, mdimc=8, ndimc=8, kwi=8, vw=8,
                stride=StrideMode(m=True),
                layout_a=Layout.RBL, layout_b=Layout.RBL, algorithm=Algorithm.BA)
            add(mwg=32, nwg=48, kwg=192, mdimc=8, ndimc=4, kwi=4, vw=4,
                stride=StrideMode(m=True),
                layout_a=Layout.CBL, layout_b=Layout.CBL, algorithm=Algorithm.BA)
    return out
