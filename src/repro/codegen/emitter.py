"""OpenCL C source emission for generated GEMM kernels.

The emitter turns a validated :class:`~repro.codegen.params.KernelParams`
into OpenCL C source for a ``C <- alpha * A^T B + beta * C`` kernel over
packed row-major / block-major operands (paper Section III).  The first
source line is a machine-readable metadata header,

``// GEMMGEN-META: {"generator": ..., "params": {...}}``

which the simulator's compiler (:class:`repro.clsim.Program`) parses to
reconstruct the execution plan — playing the role a real OpenCL compiler
front-end plays for the paper's generator.

The emitted source is structurally faithful: blocking factors appear as
``#define``s; with ``vw > 1`` the accumulators and B fragments are vector
variables (``float4``/``double2``/...) loaded and stored with
``vload``/``vstore``; local-memory tiles and
``barrier(CLK_LOCAL_MEM_FENCE)`` appear exactly when a matrix is shared;
the inner loop is unrolled ``Kwi`` deep under ``#pragma unroll``; and the
three algorithms produce the loop structures of the paper's Figs. 4-6.
"""

from __future__ import annotations

import json
import textwrap
from typing import List

from repro.codegen.algorithms import Algorithm
from repro.codegen.layouts import Layout
from repro.codegen.params import KernelParams
from repro.errors import BuildError

__all__ = [
    "emit_kernel_source",
    "parse_meta_header",
    "parse_any_meta",
    "KERNEL_NAME",
    "META_PREFIX",
]

KERNEL_NAME = "gemm_atb"
META_PREFIX = "// GEMMGEN-META: "
GENERATOR_VERSION = "repro-gemmgen/1.2.0"

#: Base of the last staged K-tile: ``KWG * floor((kSizeK - 1) / KWG)``.
#: For K a multiple of KWG (the only launchable case for unguarded
#: PL/DB) this equals ``kSizeK - KWG``; for guarded kernels with ragged
#: K it is the base the prologue/steady-state staging actually used for
#: the final tile, where the naive ``kSizeK - KWG`` would misalign the
#: direct-loaded operand against the staged tile (double-counting some k
#: and, for K < KWG, reading negative indices).
_LAST_TILE_BASE = "((kSizeK - 1) / KWG) * KWG"


class _Src:
    """Tiny indented source builder."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str = "") -> None:
        for line in text.splitlines() or [""]:
            self.lines.append(("  " * self.depth + line).rstrip())

    def open(self, text: str) -> None:
        self.emit(text)
        self.depth += 1

    def close(self, text: str = "}") -> None:
        self.depth -= 1
        self.emit(text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _base_type(precision: str) -> str:
    return "float" if precision == "s" else "double"


def _vec_type(precision: str, vw: int) -> str:
    base = _base_type(precision)
    return base if vw == 1 else f"{base}{vw}"


def _offset_expr(layout: Layout, k: str, m: str, K: str, M: str, bk: int, bm: int) -> str:
    """Flat-offset expression matching :func:`repro.codegen.layouts.element_offsets`."""
    if layout is Layout.ROW:
        return f"(({k}) * ({M}) + ({m}))"
    if layout is Layout.CBL:
        return f"((({m}) / {bm}) * (({K}) * {bm}) + ({k}) * {bm} + (({m}) % {bm}))"
    return (
        f"((({k}) / {bk}) * ({bk} * ({M})) + (({m}) / {bm}) * ({bk} * {bm})"
        f" + (({k}) % {bk}) * {bm} + (({m}) % {bm}))"
    )


def _row_expr(p: KernelParams, a: str) -> str:
    """C-tile row owned by lane ``i0``, element ``a`` (ownership map)."""
    if p.stride.m:
        return f"(({a}) / VW) * (VW * MDIMC) + i0 * VW + (({a}) % VW)"
    return f"i0 * MWI + ({a})"


def _colv_expr(p: KernelParams, bv: str) -> str:
    """First C-tile column of vector slot ``bv`` owned by lane ``j0``.

    Columns are handled in aligned groups of ``VW``; under non-unit N
    stride the groups interleave across lanes with stride ``VW * NDIMC``
    (paper Fig. 2b with vector variables).
    """
    if p.stride.n:
        return f"({bv}) * (VW * NDIMC) + j0 * VW"
    return f"j0 * NWI + ({bv}) * VW"


def _emit_defines(s: _Src, p: KernelParams) -> None:
    s.emit("/* Work-group blocking (paper Fig. 1) */")
    s.emit(f"#define MWG {p.mwg}")
    s.emit(f"#define NWG {p.nwg}")
    s.emit(f"#define KWG {p.kwg}")
    s.emit("/* Work-item blocking (paper Fig. 2) */")
    s.emit(f"#define MDIMC {p.mdimc}")
    s.emit(f"#define NDIMC {p.ndimc}")
    s.emit(f"#define MWI {p.mwi}")
    s.emit(f"#define NWI {p.nwi}")
    s.emit(f"#define KWI {p.kwi}")
    s.emit("/* Local-memory staging reshape (paper Section III-C) */")
    s.emit(f"#define MDIMA {p.effective_mdima}")
    s.emit(f"#define KDIMA {p.kdima}")
    s.emit(f"#define KDIMB {p.kdimb}")
    s.emit(f"#define NDIMB {p.effective_ndimb}")
    s.emit(f"#define MWIA {p.mwia}")
    s.emit(f"#define KWIA {p.kwia}")
    s.emit(f"#define KWIB {p.kwib}")
    s.emit(f"#define NWIB {p.nwib}")
    s.emit(f"#define VW {p.vw}")
    s.emit(f"#define NWIV {p.nwi // p.vw}  /* NWI in vector units */")
    s.emit("")


def _emit_read_macros(s: _Src, p: KernelParams, real: str) -> None:
    """READ_A/READ_B: one macro per operand for all global reads.

    Buffer kernels expand to offset arithmetic in the operand's layout;
    image kernels expand to texture fetches (``read_imagef`` for single
    precision; the ``as_double(read_imageui(...).xy)`` idiom for double,
    since OpenCL images have no native fp64 format).
    """
    if p.use_images:
        s.emit("__constant sampler_t SMP = CLK_NORMALIZED_COORDS_FALSE |")
        s.emit("                            CLK_ADDRESS_NONE | CLK_FILTER_NEAREST;")
        s.emit("/* operands read through the texture cache (image objects) */")
        if p.precision == "d":
            fetch_a = "as_double(read_imageui(agm, SMP, (int2)((m), (k))).xy)"
            fetch_b = "as_double(read_imageui(bgm, SMP, (int2)((n), (k))).xy)"
        else:
            fetch_a = "read_imagef(agm, SMP, (int2)((m), (k))).x"
            fetch_b = "read_imagef(bgm, SMP, (int2)((n), (k))).x"
        if p.guard_edges:
            # CLK_ADDRESS_NONE leaves out-of-range texel fetches undefined,
            # so guarded kernels must bounds-check image reads too.
            s.emit("/* bounds-checked: CLK_ADDRESS_NONE makes OOB fetches undefined */")
            fetch_a = f"(((k) < kSizeK && (m) < kSizeM) ? {fetch_a} : ({real})(0))"
            fetch_b = f"(((k) < kSizeK && (n) < kSizeN) ? {fetch_b} : ({real})(0))"
        s.emit(f"#define READ_A(k, m) {fetch_a}")
        s.emit(f"#define READ_B(k, n) {fetch_b}")
    elif p.guard_edges:
        off_a = _offset_expr(p.layout_a, "(k)", "(m)", "kSizeK", "kSizeM", p.kwg, p.mwg)
        off_b = _offset_expr(p.layout_b, "(k)", "(n)", "kSizeK", "kSizeN", p.kwg, p.nwg)
        s.emit("/* bounds-checked reads: edge tiles are handled in place, no padding */")
        s.emit(f"#define READ_A(k, m) (((k) < kSizeK && (m) < kSizeM) ? agm[{off_a}] : ({real})(0))")
        s.emit(f"#define READ_B(k, n) (((k) < kSizeK && (n) < kSizeN) ? bgm[{off_b}] : ({real})(0))")
    else:
        off_a = _offset_expr(p.layout_a, "(k)", "(m)", "kSizeK", "kSizeM", p.kwg, p.mwg)
        off_b = _offset_expr(p.layout_b, "(k)", "(n)", "kSizeK", "kSizeN", p.kwg, p.nwg)
        s.emit(f"#define READ_A(k, m) agm[{off_a}]")
        s.emit(f"#define READ_B(k, n) bgm[{off_b}]")
    s.emit("")


def _emit_local_decls(s: _Src, p: KernelParams, real: str) -> None:
    copies = p.algorithm.local_buffer_copies
    if p.shared_a:
        if copies == 2:
            s.emit(f"__local {real} alm0[(KWG / 2) * MWG];")
            s.emit(f"__local {real} alm1[(KWG / 2) * MWG];")
        else:
            s.emit(f"__local {real} alm[KWG * MWG];")
    if p.shared_b:
        if copies == 2:
            s.emit(f"__local {real} blm0[(KWG / 2) * NWG];")
            s.emit(f"__local {real} blm1[(KWG / 2) * NWG];")
        else:
            s.emit(f"__local {real} blm[KWG * NWG];")


def _emit_private_decls(s: _Src, p: KernelParams, real: str, realv: str) -> None:
    s.emit(f"{realv} cpm[MWI * NWIV]; /* accumulators, vectorised along N */")
    s.emit(f"{real} apm[MWI * KWI];")
    s.emit(f"{realv} bpm[KWI * NWIV];")
    if p.algorithm.uses_private_staging:
        if p.shared_a:
            s.emit(f"{real} apm0[MWIA * KWIA]; /* PL prefetch staging for A */")
        if p.shared_b:
            s.emit(f"{real} bpm0[KWIB * NWIB]; /* PL prefetch staging for B */")


def _emit_stage_to_local(
    s: _Src, p: KernelParams, matrix: str, buf: str, khalf: bool, koff: str
) -> None:
    """Cooperative global -> local staging loop for one tile.

    ``matrix`` is 'a' or 'b'; the work-group's items form the reshaped
    ``MDIMA x KDIMA`` (or ``NDIMB x KDIMB``) loader grid of Section III-C
    and each copies its ``MWIA x KWIA`` (``NWIB x KWIB``) sub-tile.
    ``khalf`` selects half-height staging for DB half-buffers.
    """
    if matrix == "a":
        dim_major, wi_major, wi_k = "MDIMA", "MWIA", "KWIA"
        extent, read = "MWG", "READ_A"
        gdim = "get_group_id(0)"
    else:
        dim_major, wi_major, wi_k = "NDIMB", "NWIB", "KWIB"
        extent, read = "NWG", "READ_B"
        gdim = "get_group_id(1)"
    height = f"{wi_k} / 2" if khalf else wi_k
    s.emit(
        f"/* stage {matrix.upper()} tile to local memory "
        f"({dim_major} x {'KDIM' + matrix.upper()} loader grid) */"
    )
    s.open(f"for (int li = 0; li < {height}; ++li) {{")
    s.open(f"for (int lj = 0; lj < {wi_major}; ++lj) {{")
    s.emit(f"const int kk = (tid / {dim_major}) * ({height}) + li;")
    s.emit(f"const int mm = (tid % {dim_major}) * {wi_major} + lj;")
    s.emit(f"const int gk = ({koff}) + kk;")
    s.emit(f"const int gm = {gdim} * {extent} + mm;")
    s.emit(f"{buf}[kk * {extent} + mm] = {read}(gk, gm);")
    s.close("}")
    s.close("}")


def _emit_load_a(s: _Src, p: KernelParams, buf: str, kbase: str, from_local: bool) -> None:
    s.open("for (int kk = 0; kk < KWI; ++kk) {")
    s.open("for (int a = 0; a < MWI; ++a) {")
    row = _row_expr(p, "a")
    if from_local:
        s.emit(f"apm[a * KWI + kk] = {buf}[({kbase} + kk) * MWG + ({row})];")
    else:
        s.emit(f"const int gk = {kbase} + kk;")
        s.emit(f"const int gm = get_group_id(0) * MWG + ({row});")
        s.emit("apm[a * KWI + kk] = READ_A(gk, gm);")
    s.close("}")
    s.close("}")


def _emit_load_b(s: _Src, p: KernelParams, buf: str, kbase: str, from_local: bool) -> None:
    vload = f"vload{p.vw}" if p.vw > 1 else ""
    s.open("for (int kk = 0; kk < KWI; ++kk) {")
    s.open("for (int bv = 0; bv < NWIV; ++bv) {")
    col = _colv_expr(p, "bv")
    if from_local:
        src = f"&{buf}[({kbase} + kk) * NWG + ({col})]"
        if p.vw > 1:
            s.emit(f"bpm[kk * NWIV + bv] = {vload}(0, {src});")
        else:
            s.emit(f"bpm[kk * NWIV + bv] = *({src});")
    else:
        s.emit(f"const int gk = {kbase} + kk;")
        s.emit(f"const int gn = get_group_id(1) * NWG + ({col});")
        if p.vw > 1 and (p.use_images or p.guard_edges):
            # Per-lane gather: images have no vector fetch, and a raw
            # vload would bypass the READ_B edge guard.
            lanes = ", ".join(f"READ_B(gk, gn + {i})" for i in range(p.vw))
            s.emit(f"bpm[kk * NWIV + bv] = ({_vec_type(p.precision, p.vw)})({lanes});")
        elif p.vw > 1:
            off = _offset_expr(p.layout_b, "gk", "gn", "kSizeK", "kSizeN", p.kwg, p.nwg)
            s.emit(f"bpm[kk * NWIV + bv] = {vload}(0, &bgm[{off}]);")
        else:
            s.emit("bpm[kk * NWIV + bv] = READ_B(gk, gn);")
    s.close("}")
    s.close("}")


def _emit_multiply_add(s: _Src, p: KernelParams, realv: str) -> None:
    s.emit("/* rank-KWI update of the accumulators (fully unrolled) */")
    s.emit("#pragma unroll")
    s.open("for (int kk = 0; kk < KWI; ++kk) {")
    s.emit("#pragma unroll")
    s.open("for (int a = 0; a < MWI; ++a) {")
    s.emit(f"const {realv} aval = ({realv})(apm[a * KWI + kk]);")
    s.emit("#pragma unroll")
    s.open("for (int bv = 0; bv < NWIV; ++bv) {")
    s.emit("cpm[a * NWIV + bv] = mad(aval, bpm[kk * NWIV + bv], cpm[a * NWIV + bv]);")
    s.close("}")
    s.close("}")
    s.close("}")


def _emit_inner_loop(
    s: _Src,
    p: KernelParams,
    realv: str,
    kstart: str,
    kend: str,
    local_a: str,
    local_b: str,
    kglobal_base: str = "pwg",
    local_koff: str = "0",
) -> None:
    """The ``pwi`` loop over one staged tile (paper Fig. 4 lines 6-10).

    ``local_koff`` rebases ``pwi`` for local reads when the staged
    buffer holds only part of the k-range (DB half-buffers: the second
    half iterates ``pwi`` over ``[KWG/2, KWG)`` but its buffer rows
    start at 0).
    """
    local_k = "pwi" if local_koff == "0" else f"pwi - ({local_koff})"
    s.open(f"for (int pwi = {kstart}; pwi < {kend}; pwi += KWI) {{")
    if p.shared_a:
        _emit_load_a(s, p, local_a, local_k, from_local=True)
    else:
        _emit_load_a(s, p, "", f"{kglobal_base} + pwi", from_local=False)
    if p.shared_b:
        _emit_load_b(s, p, local_b, local_k, from_local=True)
    else:
        _emit_load_b(s, p, "", f"{kglobal_base} + pwi", from_local=False)
    _emit_multiply_add(s, p, realv)
    s.close("}")


def _emit_barrier(s: _Src) -> None:
    s.emit("barrier(CLK_LOCAL_MEM_FENCE);")


def _emit_merge(s: _Src, p: KernelParams, real: str) -> None:
    s.emit("/* merge accumulators into C with alpha/beta (Fig. 4 line 13) */")
    s.open("for (int a = 0; a < MWI; ++a) {")
    s.open("for (int bv = 0; bv < NWIV; ++bv) {")
    s.emit(f"const int gi = get_group_id(0) * MWG + ({_row_expr(p, 'a')});")
    s.emit(f"const int gj = get_group_id(1) * NWG + ({_colv_expr(p, 'bv')});")
    if p.guard_edges and p.vw > 1:
        # A vector store of VW lanes may straddle the right edge even when
        # its first lane is in range, so the guard must be per lane
        # (vector components are addressed .s0../.sf; OpenCL C forbids
        # dynamic component indices, hence the unrolled lanes).
        s.emit("if (gi >= kSizeM) continue; /* edge guard (row) */")
        for lane in range(p.vw):
            s.open(f"if (gj + {lane} < kSizeN) {{ /* edge guard (lane) */")
            s.emit(f"const size_t ci = (size_t)gi * kSizeN + (gj + {lane});")
            s.emit(
                f"cgm[ci] = alpha * cpm[a * NWIV + bv].s{lane:x} + beta * cgm[ci];"
            )
            s.close("}")
    else:
        if p.guard_edges:
            s.emit("if (gi >= kSizeM || gj >= kSizeN) continue; /* edge guard */")
        s.emit("const size_t ci = (size_t)gi * kSizeN + gj;")
        if p.vw > 1:
            s.emit(f"const {_vec_type(p.precision, p.vw)} cold = vload{p.vw}(0, &cgm[ci]);")
            s.emit(
                f"vstore{p.vw}(alpha * cpm[a * NWIV + bv] + beta * cold, 0, &cgm[ci]);"
            )
        else:
            s.emit("cgm[ci] = alpha * cpm[a * NWIV + bv] + beta * cgm[ci];")
    s.close("}")
    s.close("}")


def _emit_body_ba(s: _Src, p: KernelParams, realv: str) -> None:
    uses_local = p.shared_a or p.shared_b
    s.open("for (int pwg = 0; pwg < kSizeK; pwg += KWG) {")
    if p.shared_a:
        _emit_stage_to_local(s, p, "a", "alm", False, "pwg")
    if p.shared_b:
        _emit_stage_to_local(s, p, "b", "blm", False, "pwg")
    if uses_local:
        _emit_barrier(s)
    _emit_inner_loop(s, p, realv, "0", "KWG", "alm", "blm")
    if uses_local:
        _emit_barrier(s)
    s.close("}")


def _emit_prefetch_private(s: _Src, p: KernelParams, matrix: str, koff: str) -> None:
    """PL: fetch the next global tile into private staging registers."""
    if matrix == "a":
        dim_major, wi_major, wi_k, extent = "MDIMA", "MWIA", "KWIA", "MWG"
        pmbuf, read = "apm0", "READ_A"
        gdim = "get_group_id(0)"
    else:
        dim_major, wi_major, wi_k, extent = "NDIMB", "NWIB", "KWIB", "NWG"
        pmbuf, read = "bpm0", "READ_B"
        gdim = "get_group_id(1)"
    s.emit(f"/* PL prefetch: next {matrix.upper()} tile -> private (Fig. 5 lines 6-7) */")
    s.open(f"for (int li = 0; li < {wi_k}; ++li) {{")
    s.open(f"for (int lj = 0; lj < {wi_major}; ++lj) {{")
    s.emit(f"const int gk = ({koff}) + (tid / {dim_major}) * {wi_k} + li;")
    s.emit(f"const int gm = {gdim} * {extent} + (tid % {dim_major}) * {wi_major} + lj;")
    s.emit(f"{pmbuf}[li * {wi_major} + lj] = {read}(gk, gm);")
    s.close("}")
    s.close("}")


def _emit_commit_local(s: _Src, p: KernelParams, matrix: str) -> None:
    """PL: store the prefetched private tile into local memory."""
    if matrix == "a":
        dim_major, wi_major, wi_k, extent, pmbuf, lbuf = (
            "MDIMA", "MWIA", "KWIA", "MWG", "apm0", "alm",
        )
    else:
        dim_major, wi_major, wi_k, extent, pmbuf, lbuf = (
            "NDIMB", "NWIB", "KWIB", "NWG", "bpm0", "blm",
        )
    s.emit(f"/* PL commit: private -> local for {matrix.upper()} (Fig. 5 lines 15-16) */")
    s.open(f"for (int li = 0; li < {wi_k}; ++li) {{")
    s.open(f"for (int lj = 0; lj < {wi_major}; ++lj) {{")
    s.emit(f"const int kk = (tid / {dim_major}) * {wi_k} + li;")
    s.emit(f"const int mm = (tid % {dim_major}) * {wi_major} + lj;")
    s.emit(f"{lbuf}[kk * {extent} + mm] = {pmbuf}[li * {wi_major} + lj];")
    s.close("}")
    s.close("}")


def _emit_body_pl(s: _Src, p: KernelParams, realv: str) -> None:
    """Software pipelining (paper Fig. 5)."""
    uses_local = p.shared_a or p.shared_b
    if not uses_local:
        # Degenerate PL: nothing to commit to local memory; the structure
        # collapses to BA with direct global loads.
        _emit_body_ba(s, p, realv)
        return
    s.emit("/* prologue: stage the first tiles (Fig. 5 lines 2-4) */")
    if p.shared_a:
        _emit_stage_to_local(s, p, "a", "alm", False, "0")
    if p.shared_b:
        _emit_stage_to_local(s, p, "b", "blm", False, "0")
    _emit_barrier(s)
    s.open("for (int pwg = 0; pwg < kSizeK - KWG; pwg += KWG) {")
    if p.shared_a:
        _emit_prefetch_private(s, p, "a", "pwg + KWG")
    if p.shared_b:
        _emit_prefetch_private(s, p, "b", "pwg + KWG")
    _emit_inner_loop(s, p, realv, "0", "KWG", "alm", "blm")
    _emit_barrier(s)
    if p.shared_a:
        _emit_commit_local(s, p, "a")
    if p.shared_b:
        _emit_commit_local(s, p, "b")
    _emit_barrier(s)
    s.close("}")
    s.emit("/* epilogue: last staged tiles (Fig. 5 lines 19-23) */")
    _emit_inner_loop(s, p, realv, "0", "KWG", "alm", "blm", _LAST_TILE_BASE)


def _emit_body_db(s: _Src, p: KernelParams, realv: str) -> None:
    """Double buffering (paper Fig. 6)."""
    la0, la1 = ("alm0", "alm1") if p.shared_a else ("alm", "alm")
    lb0, lb1 = ("blm0", "blm1") if p.shared_b else ("blm", "blm")
    s.emit("/* prologue: fill buffer 0 with the first half tile (Fig. 6 lines 2-3) */")
    if p.shared_a:
        _emit_stage_to_local(s, p, "a", la0, True, "0")
    if p.shared_b:
        _emit_stage_to_local(s, p, "b", lb0, True, "0")
    s.open("for (int pwg = 0; pwg < kSizeK - KWG; pwg += KWG) {")
    _emit_barrier(s)
    s.emit("/* load buffer 1 while computing on buffer 0 */")
    if p.shared_a:
        _emit_stage_to_local(s, p, "a", la1, True, "pwg + KWG / 2")
    if p.shared_b:
        _emit_stage_to_local(s, p, "b", lb1, True, "pwg + KWG / 2")
    _emit_inner_loop(s, p, realv, "0", "KWG / 2", la0, lb0)
    _emit_barrier(s)
    s.emit("/* load buffer 0 (next iteration) while computing on buffer 1 */")
    if p.shared_a:
        _emit_stage_to_local(s, p, "a", la0, True, "pwg + KWG")
    if p.shared_b:
        _emit_stage_to_local(s, p, "b", lb0, True, "pwg + KWG")
    _emit_inner_loop(s, p, realv, "KWG / 2", "KWG", la1, lb1, local_koff="KWG / 2")
    s.close("}")
    s.emit("/* epilogue (Fig. 6 lines 22-35) */")
    _emit_barrier(s)
    if p.shared_a:
        _emit_stage_to_local(s, p, "a", la1, True, f"{_LAST_TILE_BASE} + KWG / 2")
    if p.shared_b:
        _emit_stage_to_local(s, p, "b", lb1, True, f"{_LAST_TILE_BASE} + KWG / 2")
    _emit_inner_loop(s, p, realv, "0", "KWG / 2", la0, lb0, _LAST_TILE_BASE)
    _emit_barrier(s)
    _emit_inner_loop(
        s, p, realv, "KWG / 2", "KWG", la1, lb1, _LAST_TILE_BASE,
        local_koff="KWG / 2",
    )


def emit_kernel_source(params: KernelParams) -> str:
    """Emit OpenCL C source for one generated GEMM kernel.

    The source computes ``C <- alpha * A^T B + beta * C`` where the packed
    ``A^T`` (``K x M``) and ``B`` (``K x N``) operands are laid out per
    ``params.layout_a`` / ``params.layout_b`` and ``C`` is row-major.
    """
    p = params
    real = _base_type(p.precision)
    realv = _vec_type(p.precision, p.vw)
    meta = {
        "generator": GENERATOR_VERSION,
        "kernel": KERNEL_NAME,
        "params": p.to_dict(),
    }
    s = _Src()
    s.emit(META_PREFIX + json.dumps(meta, sort_keys=True))
    s.emit(
        textwrap.dedent(
            f"""\
            /*
             * Auto-generated GEMM kernel: C <- alpha * A^T B + beta * C
             *   {p.summary()}
             * A^T is kSizeK x kSizeM in {p.layout_a.value} layout;
             * B   is kSizeK x kSizeN in {p.layout_b.value} layout;
             * C   is kSizeM x kSizeN row-major.
             * Algorithm: {p.algorithm.description}
             */"""
        )
    )
    if p.precision == "d":
        s.emit("#pragma OPENCL EXTENSION cl_khr_fp64 : enable")
    s.emit("")
    _emit_defines(s, p)
    _emit_read_macros(s, p, real)
    if p.use_images:
        operand_a = "__read_only image2d_t agm"
        operand_b = "__read_only image2d_t bgm"
    else:
        operand_a = f"__global const {real}* restrict agm"
        operand_b = f"__global const {real}* restrict bgm"
    s.open(
        f"__kernel __attribute__((reqd_work_group_size(MDIMC, NDIMC, 1)))\n"
        f"void {KERNEL_NAME}(const int kSizeM, const int kSizeN, const int kSizeK,\n"
        f"                   const {real} alpha, const {real} beta,\n"
        f"                   {operand_a},\n"
        f"                   {operand_b},\n"
        f"                   __global {real}* cgm) {{"
    )
    s.emit("const int i0 = get_local_id(0);")
    s.emit("const int j0 = get_local_id(1);")
    s.emit("const int tid = j0 * MDIMC + i0;")
    s.emit("(void)tid;")
    _emit_local_decls(s, p, real)
    _emit_private_decls(s, p, real, realv)
    s.emit("")
    s.open("for (int q = 0; q < MWI * NWIV; ++q) {")
    s.emit(f"cpm[q] = ({realv})(0);")
    s.close("}")
    s.emit("")
    if p.algorithm is Algorithm.BA:
        _emit_body_ba(s, p, realv)
    elif p.algorithm is Algorithm.PL:
        _emit_body_pl(s, p, realv)
    else:
        _emit_body_db(s, p, realv)
    s.emit("")
    _emit_merge(s, p, real)
    s.close("}")
    return s.text()


def parse_any_meta(source: str) -> dict:
    """Extract the raw GEMMGEN metadata dict from any generated source."""
    for line in source.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith(META_PREFIX):
            try:
                return json.loads(line[len(META_PREFIX):])
            except json.JSONDecodeError as exc:
                raise BuildError(f"corrupt GEMMGEN metadata header: {exc}") from exc
        break
    raise BuildError(
        "source has no GEMMGEN-META header; only generator-produced kernels "
        "can be built by the simulator"
    )


def parse_meta_header(source: str) -> KernelParams:
    """Recover the generating parameters from emitted kernel source.

    This is the simulator compiler's front-end: it refuses sources that
    were not produced by this generator, mirroring a real compiler
    rejecting invalid programs.
    """
    for line in source.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith(META_PREFIX):
            try:
                meta = json.loads(line[len(META_PREFIX):])
                return KernelParams.from_dict(meta["params"])
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise BuildError(f"corrupt GEMMGEN metadata header: {exc}") from exc
        break
    raise BuildError(
        "source has no GEMMGEN-META header; only generator-produced kernels "
        "can be built by the simulator"
    )
