"""GEMM code generator (paper Section III).

Given a :class:`~repro.codegen.params.KernelParams` vector, the generator
produces an OpenCL C kernel computing ``C <- alpha * A^T B + beta * C``
(:mod:`repro.codegen.emitter`) together with an executable
:class:`~repro.codegen.plan.KernelPlan` the OpenCL simulator runs.
:mod:`repro.codegen.space` enumerates the heuristic search space the
auto-tuner explores.
"""

from repro.codegen.algorithms import Algorithm
from repro.codegen.layouts import Layout
from repro.codegen.params import KernelParams, StrideMode
from repro.codegen.emitter import emit_kernel_source, parse_meta_header
from repro.codegen.plan import KernelPlan, build_plan
from repro.codegen.space import (
    SpaceRestrictions,
    enumerate_space,
    seed_candidates,
    space_size_estimate,
)

__all__ = [
    "Algorithm",
    "Layout",
    "KernelParams",
    "StrideMode",
    "emit_kernel_source",
    "parse_meta_header",
    "KernelPlan",
    "build_plan",
    "SpaceRestrictions",
    "enumerate_space",
    "space_size_estimate",
]
