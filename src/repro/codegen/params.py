"""Kernel parameter vector (the code generator's input; paper Section III).

A :class:`KernelParams` instance fully determines one generated
``C <- alpha * A^T B + beta * C`` kernel:

====================  =====================================================
``mwg, nwg, kwg``     work-group blocking factors (Fig. 1)
``mdimc, ndimc``      work-group shape; the work-item blocking factors are
                      derived: ``mwi = mwg/mdimc``, ``nwi = nwg/ndimc``
``kwi``               unroll depth of the innermost loop (a blocking factor:
                      ``kwg % kwi == 0``)
``mdima, ndimb``      reshaped work-item assignment for staging A and B into
                      local memory (Section III-C); the companion dimensions
                      are derived: ``kdima = mdimc*ndimc/mdima``,
                      ``kdimb = mdimc*ndimc/ndimb``
``vw``                vector width of generated vector variables (III-B)
``stride_m/stride_n`` non-unit-stride C ownership per direction (III-B)
``shared_a/shared_b`` stage A / B tiles through local memory (III-C)
``layout_a/layout_b`` packed data layout per operand (III-D; Fig. 3)
``algorithm``         BA, PL or DB (III-E; Figs. 4-6)
``precision``         's' (SGEMM) or 'd' (DGEMM)
``use_images``        read operands through image objects / texture cache
                      (an extension; Section III-F notes the paper's
                      generator does not use images)
====================  =====================================================

Construction validates every structural constraint; invalid combinations
raise :class:`~repro.errors.ParameterError`, which the auto-tuner counts
as "failed in code generation".
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Tuple

from repro.codegen.algorithms import Algorithm
from repro.codegen.layouts import Layout
from repro.errors import ParameterError

__all__ = ["KernelParams", "StrideMode", "VALID_VECTOR_WIDTHS", "PRECISION_SIZES"]

VALID_VECTOR_WIDTHS = (1, 2, 4, 8)
PRECISION_SIZES: Dict[str, int] = {"s": 4, "d": 8}


@dataclass(frozen=True)
class StrideMode:
    """Which C-ownership directions use non-unit (interleaved) stride.

    With unit stride a work-item owns an adjacent ``mwi x nwi`` sub-block
    of the C tile (paper Fig. 2a); with non-unit stride its elements are
    interleaved across the work-group with stride ``mdimc`` (``ndimc``)
    in the M (N) direction (Fig. 2b).  When vector variables are used the
    interleaving granularity is ``vw`` elements.
    """

    m: bool = False
    n: bool = False

    def label(self) -> str:
        parts = [d for d, on in (("M", self.m), ("N", self.n)) if on]
        return ",".join(parts) if parts else "-"

    @classmethod
    def from_label(cls, label: str) -> "StrideMode":
        label = label.strip().upper()
        if label in ("", "-", "NONE"):
            return cls()
        parts = {p.strip() for p in label.split(",")}
        bad = parts - {"M", "N"}
        if bad:
            raise ParameterError(f"unknown stride directions {sorted(bad)}")
        return cls(m="M" in parts, n="N" in parts)


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ParameterError(message)


@dataclass(frozen=True)
class KernelParams:
    """A validated point in the code generator's parameter space."""

    precision: str
    mwg: int
    nwg: int
    kwg: int
    mdimc: int
    ndimc: int
    kwi: int = 1
    vw: int = 1
    stride: StrideMode = field(default_factory=StrideMode)
    shared_a: bool = False
    shared_b: bool = False
    mdima: int = 0  # 0 means "same as mdimc" (no reshape)
    ndimb: int = 0  # 0 means "same as ndimc"
    layout_a: Layout = Layout.ROW
    layout_b: Layout = Layout.ROW
    algorithm: Algorithm = Algorithm.BA
    #: Read A and B through image objects (texture cache) instead of
    #: buffers.  An extension beyond the paper's generator ("image
    #: objects ... are not used currently", Section III-F), modelled on
    #: Nakasato's texture-based kernels [18].
    use_images: bool = False
    #: Emit bounds checks so the kernel handles problem sizes that are
    #: not blocking multiples (the alternative to the paper's zero
    #: padding, and what its proposed copy-free small-size kernel
    #: needs).  Guarded kernels read operands in their original row-major
    #: storage.
    guard_edges: bool = False

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        _require(self.precision in PRECISION_SIZES, f"precision must be 's' or 'd', got {self.precision!r}")
        for name in ("mwg", "nwg", "kwg", "mdimc", "ndimc", "kwi"):
            _require(getattr(self, name) >= 1, f"{name} must be >= 1")
        _require(self.vw in VALID_VECTOR_WIDTHS, f"vector width {self.vw} not in {VALID_VECTOR_WIDTHS}")
        _require(self.mwg % self.mdimc == 0, f"mwg={self.mwg} not divisible by mdimc={self.mdimc}")
        _require(self.nwg % self.ndimc == 0, f"nwg={self.nwg} not divisible by ndimc={self.ndimc}")
        _require(self.kwg % self.kwi == 0, f"kwg={self.kwg} not divisible by kwi={self.kwi}")

        # Canonicalise the staging reshape parameters: they only exist for
        # matrices staged through local memory.
        if not self.shared_a:
            object.__setattr__(self, "mdima", 0)
        if not self.shared_b:
            object.__setattr__(self, "ndimb", 0)

        mwi, nwi = self.mwi, self.nwi
        if self.vw > 1:
            _require(mwi % self.vw == 0, f"mwi={mwi} not divisible by vector width {self.vw}")
            _require(nwi % self.vw == 0, f"nwi={nwi} not divisible by vector width {self.vw}")

        wg = self.workgroup_size
        if self.shared_a:
            mdima = self.effective_mdima
            _require(wg % mdima == 0, f"work-group size {wg} not divisible by mdima={mdima}")
            kdima = wg // mdima
            _require(self.mwg % mdima == 0, f"mwg={self.mwg} not divisible by mdima={mdima}")
            _require(self.kwg % kdima == 0, f"kwg={self.kwg} not divisible by kdima={kdima}")
        if self.shared_b:
            ndimb = self.effective_ndimb
            _require(wg % ndimb == 0, f"work-group size {wg} not divisible by ndimb={ndimb}")
            kdimb = wg // ndimb
            _require(self.nwg % ndimb == 0, f"nwg={self.nwg} not divisible by ndimb={ndimb}")
            _require(self.kwg % kdimb == 0, f"kwg={self.kwg} not divisible by kdimb={kdimb}")

        if self.use_images:
            # Image objects are addressed by 2-D texel coordinates, so
            # block-major host layouts are meaningless for them.
            _require(
                self.layout_a is Layout.ROW and self.layout_b is Layout.ROW,
                "image-object kernels address operands as 2-D textures; "
                "layouts must be ROW",
            )
        if self.guard_edges:
            # Partial tiles cannot be block-major packed: guarded kernels
            # read the operands as the user stored them.
            _require(
                self.layout_a is Layout.ROW and self.layout_b is Layout.ROW,
                "edge-guarded kernels read unpacked operands; layouts must be ROW",
            )

        if self.algorithm is Algorithm.DB:
            _require(
                self.shared_a or self.shared_b,
                "DB algorithm double-buffers local memory; at least one matrix must be shared",
            )
            half = self.kwg // 2
            _require(self.kwg % 2 == 0, "DB requires an even kwg (two half-buffers)")
            _require(half % self.kwi == 0, f"DB half-buffer kwg/2={half} not divisible by kwi={self.kwi}")
            if self.shared_a:
                kdima = self.workgroup_size // self.effective_mdima
                _require(
                    (half % kdima == 0),
                    "DB requires each half tile of A to be loadable by the work-group "
                    f"(kwg/2={half} not divisible by kdima={kdima})",
                )
            if self.shared_b:
                kdimb = self.workgroup_size // self.effective_ndimb
                _require(
                    (half % kdimb == 0),
                    "DB requires each half tile of B to be loadable by the work-group "
                    f"(kwg/2={half} not divisible by kdimb={kdimb})",
                )

    # -- derived quantities (paper notation) ----------------------------
    @property
    def mwi(self) -> int:
        """Work-item blocking factor in M: ``Mwi = Mwg / MdimC``."""
        return self.mwg // self.mdimc

    @property
    def nwi(self) -> int:
        """Work-item blocking factor in N: ``Nwi = Nwg / NdimC``."""
        return self.nwg // self.ndimc

    @property
    def workgroup_size(self) -> int:
        return self.mdimc * self.ndimc

    @property
    def effective_mdima(self) -> int:
        """Staging grid width for A (``MdimA``); defaults to ``MdimC``."""
        return self.mdima if self.mdima else self.mdimc

    @property
    def effective_ndimb(self) -> int:
        """Staging grid width for B (``NdimB``); defaults to ``NdimC``."""
        return self.ndimb if self.ndimb else self.ndimc

    @property
    def kdima(self) -> int:
        """``KdimA = (MdimC * NdimC) / MdimA`` (Section III-C)."""
        return self.workgroup_size // self.effective_mdima

    @property
    def kdimb(self) -> int:
        """``KdimB = (MdimC * NdimC) / NdimB`` (Section III-C)."""
        return self.workgroup_size // self.effective_ndimb

    @property
    def mwia(self) -> int:
        """Per-work-item A-staging tile width: ``MwiA = Mwg / MdimA``."""
        return self.mwg // self.effective_mdima

    @property
    def kwia(self) -> int:
        """Per-work-item A-staging tile height: ``KwiA = Kwg / KdimA``."""
        return self.kwg // self.kdima

    @property
    def kwib(self) -> int:
        """Per-work-item B-staging tile height: ``KwiB = Kwg / KdimB``."""
        return self.kwg // self.kdimb

    @property
    def nwib(self) -> int:
        """Per-work-item B-staging tile width: ``NwiB = Nwg / NdimB``."""
        return self.nwg // self.effective_ndimb

    @property
    def element_size(self) -> int:
        return PRECISION_SIZES[self.precision]

    @property
    def lcm(self) -> int:
        """Least common multiple of the work-group blocking factors.

        The tuner measures at problem sizes that are multiples of this
        (paper Section III-F); the GEMM routine zero-pads to it.
        """
        return math.lcm(self.mwg, self.nwg, self.kwg)

    # -- resource footprints --------------------------------------------
    def local_memory_bytes(self) -> int:
        """Local-memory footprint of one work-group."""
        copies = self.algorithm.local_buffer_copies
        total = 0
        if self.shared_a:
            total += self.mwg * self.kwg
        if self.shared_b:
            total += self.nwg * self.kwg
        return total * self.element_size * copies

    def private_elements(self) -> int:
        """Per-work-item private-memory footprint in matrix elements.

        Counts the C accumulators, the *live* A/B fragments of the inner
        loop (compilers recycle fragment registers across the unrolled
        ``Kwi`` steps, so at most ~2 k-slices are live at once), and —
        for PL — the prefetch staging registers, which must all stay
        live across the whole inner loop.
        """
        acc = self.mwi * self.nwi
        kwi_live = min(self.kwi, 2)
        frags = self.mwi * kwi_live + kwi_live * self.nwi
        staging = 0
        if self.algorithm.uses_private_staging:
            if self.shared_a:
                staging += self.mwia * self.kwia
            if self.shared_b:
                staging += self.kwib * self.nwib
        return acc + frags + staging

    def private_bytes(self) -> int:
        """Per-work-item private footprint in bytes (plus address overhead)."""
        scalar_overhead = 16 * 4  # loop counters, base pointers, ids
        return self.private_elements() * self.element_size + scalar_overhead

    def flops_per_workgroup_iteration(self) -> int:
        """FP operations one work-group performs per ``Kwg`` step."""
        return 2 * self.mwg * self.nwg * self.kwg

    # -- (de)serialisation -----------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        d = asdict(self)
        d["stride"] = self.stride.label()
        d["layout_a"] = self.layout_a.value
        d["layout_b"] = self.layout_b.value
        d["algorithm"] = self.algorithm.value
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "KernelParams":
        d = dict(d)
        d["stride"] = StrideMode.from_label(str(d.get("stride", "-")))
        d["layout_a"] = Layout(d.get("layout_a", "ROW"))
        d["layout_b"] = Layout(d.get("layout_b", "ROW"))
        d["algorithm"] = Algorithm(d.get("algorithm", "BA"))
        return cls(**d)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "KernelParams":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes) -> "KernelParams":
        """Return a validated copy with fields replaced."""
        return replace(self, **changes)

    # -- presentation ------------------------------------------------------
    def shared_label(self) -> str:
        parts = [m for m, on in (("A", self.shared_a), ("B", self.shared_b)) if on]
        return ",".join(parts) if parts else "-"

    def summary(self) -> str:
        """One-line summary in the style of the paper's Table II rows."""
        return (
            f"{self.precision}gemm "
            f"wg={self.mwg},{self.nwg},{self.kwg} "
            f"wi={self.mwi},{self.nwi},{self.kwi} "
            f"dimC={self.mdimc},{self.ndimc} "
            f"dimA={self.effective_mdima},{self.kdima} "
            f"dimB={self.kdimb},{self.effective_ndimb} "
            f"vw={self.vw} stride={self.stride.label()} "
            f"shared={self.shared_label()} "
            f"layout={self.layout_a.value},{self.layout_b.value} "
            f"alg={self.algorithm.value}"
            + (" img" if self.use_images else "")
            + (" guarded" if self.guard_edges else "")
        )

    def table2_cells(self) -> Dict[str, str]:
        """Cells for a Table II style report column."""
        return {
            "Mwg,Nwg,Kwg": f"{self.mwg},{self.nwg},{self.kwg}",
            "Mwi,Nwi,Kwi": f"{self.mwi},{self.nwi},{self.kwi}",
            "MdimC,NdimC": f"{self.mdimc},{self.ndimc}",
            "MdimA,KdimA": f"{self.effective_mdima},{self.kdima}",
            "KdimB,NdimB": f"{self.kdimb},{self.effective_ndimb}",
            "Vector": str(self.vw),
            "Stride": self.stride.label(),
            "Shared": self.shared_label(),
            "Layout": f"{self.layout_a.value},{self.layout_b.value}",
            "Algorithm": self.algorithm.value,
        }

    def cache_key(self) -> Tuple:
        """Hashable identity for result databases."""
        return (
            self.precision, self.mwg, self.nwg, self.kwg, self.mdimc,
            self.ndimc, self.kwi, self.vw, self.stride.m, self.stride.n,
            self.shared_a, self.shared_b, self.mdima, self.ndimb,
            self.layout_a.value, self.layout_b.value, self.algorithm.value,
            self.use_images, self.guard_edges,
        )
