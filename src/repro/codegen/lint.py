"""Structural linting of generated OpenCL C.

A real OpenCL compiler front-end parses the source; the simulator's
compiler reconstructs the plan from metadata, so a generator bug could
in principle emit source that disagrees with the plan.  This linter
closes that gap with structural checks the test-suite and
``Program.build`` run over every emitted kernel: balanced delimiters,
unique macro definitions, macro-use-before-definition, barrier/local
consistency, and the presence of the advertised kernel entry point.
"""

from __future__ import annotations

import re
from typing import List

__all__ = ["lint_source"]

_DELIMS = {"{": "}", "(": ")", "[": "]"}
_CLOSERS = {v: k for k, v in _DELIMS.items()}
_DEFINE_RE = re.compile(r"^\s*#define\s+([A-Za-z_][A-Za-z_0-9]*)")
_MACRO_CALL_RE = re.compile(r"\b(READ_[AB])\s*\(")


def _strip_comments_and_strings(source: str) -> str:
    source = re.sub(r"/\*.*?\*/", " ", source, flags=re.DOTALL)
    source = re.sub(r"//[^\n]*", " ", source)
    source = re.sub(r'"(?:[^"\\]|\\.)*"', '""', source)
    return source


def lint_source(source: str) -> List[str]:
    """Return a list of diagnostics; an empty list means clean."""
    diagnostics: List[str] = []
    code = _strip_comments_and_strings(source)

    # 1. balanced delimiters
    stack: List[str] = []
    for ch in code:
        if ch in _DELIMS:
            stack.append(ch)
        elif ch in _CLOSERS:
            if not stack or stack[-1] != _CLOSERS[ch]:
                diagnostics.append(f"unbalanced delimiter {ch!r}")
                stack = []  # avoid cascading reports
                break
            stack.pop()
    if stack:
        diagnostics.append(f"unclosed delimiter {stack[-1]!r}")

    # 2. unique #define names
    defined = []
    for line in code.splitlines():
        m = _DEFINE_RE.match(line)
        if m:
            name = m.group(1)
            if name in defined:
                diagnostics.append(f"duplicate #define {name}")
            defined.append(name)

    # 3. READ_A/READ_B used only after definition
    define_pos = {
        name: code.find(f"#define {name}") for name in ("READ_A", "READ_B")
    }
    for m in _MACRO_CALL_RE.finditer(code):
        name = m.group(1)
        pos = define_pos.get(name, -1)
        if pos < 0:
            diagnostics.append(f"{name} used but never defined")
            break
        if m.start() < pos:
            diagnostics.append(f"{name} used before its definition")
            break

    # 4. barriers imply local memory (and a sampler implies images)
    if "barrier(CLK_LOCAL_MEM_FENCE)" in code and "__local" not in code:
        diagnostics.append("barrier without any __local declaration")
    if "read_image" in code and "sampler_t" not in code:
        diagnostics.append("image read without a sampler")

    # 5. a kernel entry point exists
    if "__kernel" not in code:
        diagnostics.append("no __kernel entry point")

    return diagnostics
