"""Structural linting of generated OpenCL C.

A real OpenCL compiler front-end parses the source; the simulator's
compiler reconstructs the plan from metadata, so a generator bug could
in principle emit source that disagrees with the plan.  This linter
closes that gap with structural checks the test-suite and
``Program.build`` run over every emitted kernel: balanced delimiters,
unique macro definitions, macro-use-before-definition, barrier/local
consistency, and the presence of the advertised kernel entry point.
"""

from __future__ import annotations

import re
from typing import List

__all__ = ["lint_source"]

_DELIMS = {"{": "}", "(": ")", "[": "]"}
_CLOSERS = {v: k for k, v in _DELIMS.items()}
_DEFINE_RE = re.compile(r"^\s*#define\s+([A-Za-z_][A-Za-z_0-9]*)")
#: calls of function-like macros we know the generator defines; the
#: use-before-definition check applies to every defined macro, this set
#: only marks the ones that MUST exist in any generated kernel.
_REQUIRED_MACROS = ("READ_A", "READ_B")
_MACRO_CALL_RE = re.compile(r"\b([A-Z][A-Z_0-9]*)\s*\(")


def _strip_comments_and_strings(source: str) -> str:
    source = re.sub(r"/\*.*?\*/", " ", source, flags=re.DOTALL)
    source = re.sub(r"//[^\n]*", " ", source)
    source = re.sub(r'"(?:[^"\\]|\\.)*"', '""', source)
    return source


def lint_source(source: str) -> List[str]:
    """Return a list of diagnostics; an empty list means clean."""
    diagnostics: List[str] = []
    code = _strip_comments_and_strings(source)

    # 1. balanced delimiters
    stack: List[str] = []
    for ch in code:
        if ch in _DELIMS:
            stack.append(ch)
        elif ch in _CLOSERS:
            if not stack or stack[-1] != _CLOSERS[ch]:
                diagnostics.append(f"unbalanced delimiter {ch!r}")
                stack = []  # avoid cascading reports
                break
            stack.pop()
    if stack:
        diagnostics.append(f"unclosed delimiter {stack[-1]!r}")

    # 2. unique #define names (set membership: O(n) over n defines)
    defined: set = set()
    for line in code.splitlines():
        m = _DEFINE_RE.match(line)
        if m:
            name = m.group(1)
            if name in defined:
                diagnostics.append(f"duplicate #define {name}")
            defined.add(name)

    # 3. no function-like macro used before its definition.  Applies to
    # every #define in the source, not just READ_A/READ_B; the required
    # macros are additionally flagged when missing entirely.
    define_pos = {name: code.find(f"#define {name}") for name in defined}
    for name in _REQUIRED_MACROS:
        define_pos.setdefault(name, -1)
    flagged: set = set()
    for m in _MACRO_CALL_RE.finditer(code):
        name = m.group(1)
        if name not in define_pos or name in flagged:
            continue  # not a generator macro (e.g. CLK_*, builtin calls)
        pos = define_pos[name]
        if pos < 0:
            diagnostics.append(f"{name} used but never defined")
            flagged.add(name)
        elif m.start() < pos:
            diagnostics.append(f"{name} used before its definition")
            flagged.add(name)

    # 4. barriers imply local memory (and a sampler implies images)
    if "barrier(CLK_LOCAL_MEM_FENCE)" in code and "__local" not in code:
        diagnostics.append("barrier without any __local declaration")
    if "read_image" in code and "sampler_t" not in code:
        diagnostics.append("image read without a sampler")

    # 5. a kernel entry point exists
    if "__kernel" not in code:
        diagnostics.append("no __kernel entry point")

    return diagnostics
