"""Executable kernel plans.

A :class:`KernelPlan` is the structured, executable mirror of an emitted
OpenCL kernel: it precomputes the work-item ownership maps (which C
elements each work-item accumulates, under unit or non-unit stride), the
local-memory staging geometry, and the loop structure for the chosen
algorithm.  The OpenCL simulator (:mod:`repro.clsim`) executes plans; the
emitter embeds the plan's parameters in the kernel source so the
simulator's "compiler" can reconstruct it.

Building a plan *proves* structural correctness of the parameter vector:
the ownership maps are verified to be exact bijections onto the C tile,
and the staging grids are verified to cover the A/B tiles exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.codegen.algorithms import Algorithm
from repro.codegen.params import KernelParams
from repro.errors import LaunchError, ParameterError

__all__ = ["KernelPlan", "build_plan", "ownership_map"]


def ownership_map(dim: int, wi: int, vw: int, nonunit: bool) -> np.ndarray:
    """Map work-item lane ``i`` and element index ``a`` to a tile index.

    Returns an ``(dim, wi)`` integer array ``owner`` with
    ``owner[i, a]`` = the tile-local index (row or column) of the ``a``-th
    element owned by work-item lane ``i``.

    Unit stride (paper Fig. 2a): lane ``i`` owns the adjacent span
    ``[i*wi, (i+1)*wi)``.

    Non-unit stride (Fig. 2b): elements are interleaved across lanes with
    stride ``dim``; with vector variables (``vw >= 2``) the interleaving
    granularity is ``vw`` consecutive elements, so the stride becomes
    ``vw * dim``.
    """
    i = np.arange(dim)[:, None]
    a = np.arange(wi)[None, :]
    if not nonunit:
        return (i * wi + a).astype(np.int64)
    return ((a // vw) * (vw * dim) + i * vw + (a % vw)).astype(np.int64)


def _verify_bijection(owner: np.ndarray, extent: int, what: str) -> None:
    flat = np.sort(owner.reshape(-1))
    if flat.size != extent or not np.array_equal(flat, np.arange(extent)):
        raise ParameterError(
            f"{what} ownership map is not a bijection onto [0, {extent}): "
            f"covered {np.unique(owner).size} of {extent} indices"
        )


@dataclass(frozen=True)
class StagingGeometry:
    """How a work-group cooperatively loads one tile into local memory.

    The work-group's ``wg_size`` work-items are reshaped into a
    ``dim_major x dim_k`` grid (paper Section III-C); each work-item
    loads a ``wi_major x wi_k`` sub-tile.  The grid tiles the
    ``extent_k x extent_major`` tile exactly (verified at construction).
    """

    dim_major: int
    dim_k: int
    wi_major: int
    wi_k: int
    extent_major: int
    extent_k: int

    def __post_init__(self) -> None:
        if self.dim_major * self.wi_major != self.extent_major:
            raise ParameterError(
                f"staging grid does not cover tile width: "
                f"{self.dim_major} x {self.wi_major} != {self.extent_major}"
            )
        if self.dim_k * self.wi_k != self.extent_k:
            raise ParameterError(
                f"staging grid does not cover tile height: "
                f"{self.dim_k} x {self.wi_k} != {self.extent_k}"
            )

    @property
    def loads_per_workitem(self) -> int:
        return self.wi_major * self.wi_k


@dataclass(frozen=True)
class KernelPlan:
    """Executable description of one generated GEMM kernel."""

    params: KernelParams
    #: (mdimc, mwi) map: C-tile row owned by lane i, element a.
    row_owner: np.ndarray
    #: (ndimc, nwi) map: C-tile column owned by lane j, element b.
    col_owner: np.ndarray
    #: Staging geometry for A when ``shared_a`` (else None).
    staging_a: StagingGeometry | None
    #: Staging geometry for B when ``shared_b`` (else None).
    staging_b: StagingGeometry | None

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.params.precision == "s" else np.float64)

    @property
    def algorithm(self) -> Algorithm:
        return self.params.algorithm

    # ------------------------------------------------------------------
    def workgroup_grid(self, M: int, N: int) -> Tuple[int, int]:
        """Number of work-groups in (M, N).

        Guarded kernels cover partial edge tiles (ceil); unguarded ones
        require padded multiples (enforced by :meth:`check_problem`).
        """
        p = self.params
        if p.guard_edges:
            return -(-M // p.mwg), -(-N // p.nwg)
        return M // p.mwg, N // p.nwg

    def global_size(self, M: int, N: int) -> Tuple[int, int]:
        """OpenCL NDRange global size for a padded ``M x N`` output."""
        gm, gn = self.workgroup_grid(M, N)
        return gm * self.params.mdimc, gn * self.params.ndimc

    def local_size(self) -> Tuple[int, int]:
        return self.params.mdimc, self.params.ndimc

    def check_problem(self, M: int, N: int, K: int) -> None:
        """Validate that a (padded) problem is launchable with this plan.

        The generated kernels require each dimension to be a multiple of
        its work-group blocking factor (the GEMM routine layer zero-pads
        arbitrary sizes; Section IV-B), and the pipelined algorithms need
        at least two k-iterations for their prologue/epilogue.
        """
        p = self.params
        if not p.guard_edges and (M % p.mwg or N % p.nwg or K % p.kwg):
            raise LaunchError(
                f"problem {M}x{N}x{K} not divisible by blocking "
                f"{p.mwg}x{p.nwg}x{p.kwg}; pad inputs first "
                f"(or generate with guard_edges)"
            )
        # Guarded kernels degrade gracefully to a single k-iteration:
        # the pipelined loop body is empty and the epilogue consumes the
        # prologue's tile.  Unguarded PL/DB kernels are generated for
        # padded problems with at least two iterations (the paper's
        # Figs. 5-6 loop structure), which the padding layer guarantees.
        min_iters = 1 if p.guard_edges else p.algorithm.min_k_iterations
        k_iters = -(-K // p.kwg) if p.guard_edges else K // p.kwg
        if k_iters < min_iters:
            raise LaunchError(
                f"{p.algorithm.value} kernel needs K >= {min_iters}*Kwg "
                f"({min_iters * p.kwg}), got K={K}"
            )

    def row_permutation(self) -> np.ndarray:
        """C-tile rows in (lane, element) ownership order — a permutation."""
        return self.row_owner.reshape(-1)

    def col_permutation(self) -> np.ndarray:
        return self.col_owner.reshape(-1)


def build_plan(params: KernelParams) -> KernelPlan:
    """Construct and verify the executable plan for a parameter vector."""
    row_owner = ownership_map(params.mdimc, params.mwi, params.vw, params.stride.m)
    col_owner = ownership_map(params.ndimc, params.nwi, params.vw, params.stride.n)
    _verify_bijection(row_owner, params.mwg, "row (M)")
    _verify_bijection(col_owner, params.nwg, "column (N)")

    staging_a = None
    if params.shared_a:
        staging_a = StagingGeometry(
            dim_major=params.effective_mdima,
            dim_k=params.kdima,
            wi_major=params.mwia,
            wi_k=params.kwia,
            extent_major=params.mwg,
            extent_k=params.kwg,
        )
    staging_b = None
    if params.shared_b:
        staging_b = StagingGeometry(
            dim_major=params.effective_ndimb,
            dim_k=params.kdimb,
            wi_major=params.nwib,
            wi_k=params.kwib,
            extent_major=params.nwg,
            extent_k=params.kwg,
        )
    return KernelPlan(
        params=params,
        row_owner=row_owner,
        col_owner=col_owner,
        staging_a=staging_a,
        staging_b=staging_b,
    )
