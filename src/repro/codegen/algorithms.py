"""The three GEMM algorithms the generator can emit (paper Section III-E).

* **BA** — the basic algorithm (paper Fig. 4), similar to Volkov & Demmel's
  SC'08 kernel: stage tiles, barrier, unrolled inner multiply-add loop.
* **PL** — software pipelining (paper Fig. 5), after Nath/Tomov/Dongarra's
  MAGMA Fermi kernel: the loop body prefetches the *next* tiles from global
  memory into private registers while computing on the current tiles, then
  commits the prefetch to local memory.  Hides global-memory latency at the
  cost of extra private memory (registers).
* **DB** — double buffering (paper Fig. 6), a variant of Tan et al.'s SC'11
  DGEMM: two half-sized local-memory buffers alternate between being
  loaded and being computed on.  Needs less private memory than PL but
  twice the local-memory space.
"""

from __future__ import annotations

import enum

__all__ = ["Algorithm"]


class Algorithm(enum.Enum):
    """GEMM kernel algorithm selector (a code-generator parameter)."""

    BA = "BA"
    PL = "PL"
    DB = "DB"

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]

    @property
    def local_buffer_copies(self) -> int:
        """How many copies of each staged tile live in local memory."""
        return 2 if self is Algorithm.DB else 1

    @property
    def uses_private_staging(self) -> bool:
        """PL stages the next global tile in private memory (registers)."""
        return self is Algorithm.PL

    @property
    def requires_local_memory(self) -> bool:
        """DB double-buffers *local* tiles, so it needs at least one
        matrix staged through local memory; BA and PL degrade gracefully
        to direct global->private loads."""
        return self is Algorithm.DB

    @property
    def min_k_iterations(self) -> int:
        """PL and DB peel a prologue/epilogue, so they need at least two
        work-group k-iterations (``K >= 2 * Kwg``)."""
        return 2 if self in (Algorithm.PL, Algorithm.DB) else 1


_DESCRIPTIONS = {
    Algorithm.BA: "basic algorithm (Volkov & Demmel style; paper Fig. 4)",
    Algorithm.PL: "software pipelining (MAGMA Fermi style; paper Fig. 5)",
    Algorithm.DB: "double buffering in local memory (Tan et al. style; paper Fig. 6)",
}
