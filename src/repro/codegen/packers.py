"""Generated pack/transpose kernels.

"To make use of a fast ``A^T B + C`` kernel for GEMM routines, matrix
data have to be copied into extra allocated buffers in global memory
before executing the kernel" (Section III-D).  In the paper's
implementation that copy runs *on the device*; this module generates the
corresponding OpenCL pack kernels: each reads a row-major user matrix
(optionally transposing it) and writes the zero-padded, block-major
packed operand the GEMM kernel consumes.

Like the GEMM emitter, the source carries a ``GEMMGEN-META`` header that
the simulator's compiler parses back into an executable
:class:`PackPlan`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.codegen.emitter import META_PREFIX, GENERATOR_VERSION
from repro.codegen.layouts import Layout
from repro.errors import BuildError, LaunchError, ParameterError

__all__ = ["PackPlan", "emit_pack_source", "parse_pack_meta", "PACK_KERNEL_NAME"]

PACK_KERNEL_NAME = "pack_operand"

#: Work-group tile used by all pack kernels (a 16x16 copy tile is the
#: standard transpose work-group shape).
PACK_TILE = 16


@dataclass(frozen=True)
class PackPlan:
    """Executable description of one generated pack kernel.

    The kernel reads a ``rows x cols`` row-major source; with
    ``transpose`` its logical (K x X) orientation is the source's
    transpose.  It writes a ``k_padded x x_padded`` operand packed in
    ``layout`` with blocking ``(block_k, block_x)``, zero-filling the
    padding.  Dimensions are bound at launch, not generation: one pack
    kernel serves every problem size (as in the paper's implementation).
    """

    precision: str
    transpose: bool
    layout: Layout
    block_k: int
    block_x: int

    def __post_init__(self) -> None:
        if self.precision not in ("s", "d"):
            raise ParameterError(f"precision must be 's' or 'd', got {self.precision!r}")
        if self.block_k < 1 or self.block_x < 1:
            raise ParameterError("pack blocking factors must be >= 1")

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.precision == "s" else np.float64)

    def to_dict(self) -> dict:
        return {
            "precision": self.precision,
            "transpose": self.transpose,
            "layout": self.layout.value,
            "block_k": self.block_k,
            "block_x": self.block_x,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PackPlan":
        return cls(
            precision=str(d["precision"]),
            transpose=bool(d["transpose"]),
            layout=Layout(d["layout"]),
            block_k=int(d["block_k"]),
            block_x=int(d["block_x"]),
        )

    # -- launch geometry ---------------------------------------------------
    def global_size(self, k_padded: int, x_padded: int) -> Tuple[int, int]:
        """One work-item per destination element, rounded to the tile."""
        def up(n: int) -> int:
            return ((n + PACK_TILE - 1) // PACK_TILE) * PACK_TILE

        return up(k_padded), up(x_padded)

    def local_size(self) -> Tuple[int, int]:
        return PACK_TILE, PACK_TILE

    def check_destination(self, k_padded: int, x_padded: int) -> None:
        if x_padded % self.block_x:
            raise LaunchError(
                f"packed width {x_padded} not a multiple of block_x={self.block_x}"
            )
        if self.layout is Layout.RBL and k_padded % self.block_k:
            raise LaunchError(
                f"RBL packed height {k_padded} not a multiple of block_k={self.block_k}"
            )

    # -- functional execution ----------------------------------------------
    def execute(
        self,
        src: np.ndarray,
        rows: int,
        cols: int,
        k_padded: int,
        x_padded: int,
    ) -> np.ndarray:
        """Run the pack: returns the flat packed destination contents."""
        from repro.codegen.layouts import pack_matrix

        self.check_destination(k_padded, x_padded)
        mat = src.reshape(rows, cols)
        kx = mat.T if self.transpose else mat
        K, X = kx.shape
        if K > k_padded or X > x_padded:
            raise LaunchError(
                f"source {kx.shape} larger than packed destination "
                f"({k_padded}, {x_padded})"
            )
        staging = np.zeros((k_padded, x_padded), dtype=self.dtype)
        staging[:K, :X] = kx
        return pack_matrix(staging, self.layout, self.block_k, self.block_x)


def _offset_expr(layout: Layout, bk: int, bx: int) -> str:
    if layout is Layout.ROW:
        return "gk * xPadded + gx"
    if layout is Layout.CBL:
        return (
            f"(gx / {bx}) * (kPadded * {bx}) + gk * {bx} + (gx % {bx})"
        )
    return (
        f"(gk / {bk}) * ({bk} * xPadded) + (gx / {bx}) * ({bk} * {bx})"
        f" + (gk % {bk}) * {bx} + (gx % {bx})"
    )


def emit_pack_source(plan: PackPlan) -> str:
    """Emit OpenCL C for one pack/transpose kernel."""
    real = "float" if plan.precision == "s" else "double"
    meta = {
        "generator": GENERATOR_VERSION,
        "kernel": PACK_KERNEL_NAME,
        "pack": plan.to_dict(),
    }
    read = "src[(size_t)gx * srcCols + gk]" if plan.transpose else \
        "src[(size_t)gk * srcCols + gx]"
    in_bounds = "gx < srcRows && gk < srcCols" if plan.transpose else \
        "gk < srcRows && gx < srcCols"
    lines = [
        META_PREFIX + json.dumps(meta, sort_keys=True),
        "/*",
        f" * Pack kernel: row-major source -> {plan.layout.value} packed operand",
        f" * transpose={'yes' if plan.transpose else 'no'}, "
        f"blocking=({plan.block_k}, {plan.block_x}), zero padding.",
        " */",
    ]
    if plan.precision == "d":
        lines.append("#pragma OPENCL EXTENSION cl_khr_fp64 : enable")
    lines += [
        "",
        f"__kernel __attribute__((reqd_work_group_size({PACK_TILE}, {PACK_TILE}, 1)))",
        f"void {PACK_KERNEL_NAME}(const int srcRows, const int srcCols,",
        "                  const int kPadded, const int xPadded,",
        f"                  __global const {real}* restrict src,",
        f"                  __global {real}* dst) {{",
        "  const int gk = get_global_id(0);",
        "  const int gx = get_global_id(1);",
        "  if (gk >= kPadded || gx >= xPadded) return;",
        f"  {real} value = ({real})(0);",
        f"  if ({in_bounds}) {{",
        f"    value = {read};",
        "  }",
        f"  dst[{_offset_expr(plan.layout, plan.block_k, plan.block_x)}] = value;",
        "}",
    ]
    return "\n".join(lines) + "\n"


def parse_pack_meta(source: str) -> PackPlan:
    """Recover the PackPlan from an emitted pack-kernel source."""
    first = source.lstrip().splitlines()[0]
    if not first.startswith(META_PREFIX):
        raise BuildError("source has no GEMMGEN-META header")
    try:
        meta = json.loads(first[len(META_PREFIX):])
        if meta.get("kernel") != PACK_KERNEL_NAME:
            raise BuildError(f"not a pack kernel: {meta.get('kernel')!r}")
        return PackPlan.from_dict(meta["pack"])
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise BuildError(f"corrupt pack-kernel metadata: {exc}") from exc
