"""Matrix data layouts for the packed kernel operands (paper Section III-D).

The fast ``A^T B`` kernel reads its operands from packed buffers in global
memory.  A packed operand is logically a ``K x M`` matrix (the transposed
``A^T``; for ``B`` read ``K x N``) stored in one of three layouts,
parameterised by the work-group blocking factors ``(Kwg, Mwg)``:

* ``ROW`` — plain row-major: element ``(k, m)`` at offset ``k*M + m``.
* ``CBL`` — column-block-row-major (paper Fig. 3b): the matrix is split
  into ``K x Mwg`` column blocks; each block's data is contiguous and
  row-major inside the block.  All data a work-group needs for one column
  block of ``A^T`` is one contiguous span.
* ``RBL`` — row-block-row-major (paper Fig. 3c): the matrix is split into
  ``Kwg x M`` row blocks, each stored as a sequence of row-major
  ``Kwg x Mwg`` sub-blocks.  The data for one ``Kwg x Mwg`` multiplication
  step is one contiguous span.

Both block-major layouts improve spatial locality over ``ROW``; the paper
finds they are essential on the AMD GPUs and that ``ROW`` additionally
suffers memory-bank conflicts when the leading dimension is a multiple of
2048 (Section IV-A).
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["Layout", "pack_matrix", "unpack_matrix", "element_offsets", "tile_view"]


class Layout(enum.Enum):
    """Packed-operand data layout."""

    ROW = "ROW"
    CBL = "CBL"
    RBL = "RBL"

    @property
    def is_block_major(self) -> bool:
        return self is not Layout.ROW

    @property
    def contiguous_tile_elements(self) -> str:
        """Human description of which span is contiguous (for reports)."""
        return {
            Layout.ROW: "single rows",
            Layout.CBL: "K x Mwg column blocks",
            Layout.RBL: "Kwg x Mwg sub-blocks",
        }[self]


def _check_blocking(K: int, M: int, bk: int, bm: int, layout: Layout) -> None:
    if M % bm != 0:
        raise ValueError(f"{layout.value}: M={M} not a multiple of block width {bm}")
    if layout is Layout.RBL and K % bk != 0:
        raise ValueError(f"RBL: K={K} not a multiple of block height {bk}")


def pack_matrix(mat: np.ndarray, layout: Layout, bk: int, bm: int) -> np.ndarray:
    """Pack a ``K x M`` row-major matrix into ``layout``.

    Returns a flat 1-D array of ``K*M`` elements in packed order.  ``bk``
    and ``bm`` are the blocking factors ``(Kwg, Mwg)``; ``bk`` is ignored
    for ``ROW`` and ``CBL``.
    """
    if mat.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {mat.shape}")
    K, M = mat.shape
    mat = np.ascontiguousarray(mat)
    if layout is Layout.ROW:
        return mat.reshape(-1).copy()
    _check_blocking(K, M, bk, bm, layout)
    if layout is Layout.CBL:
        # (K, M) -> (M/bm, K, bm): column blocks, row-major inside.
        blocked = mat.reshape(K, M // bm, bm).transpose(1, 0, 2)
        return np.ascontiguousarray(blocked).reshape(-1)
    # RBL: (K, M) -> (K/bk, M/bm, bk, bm)
    blocked = mat.reshape(K // bk, bk, M // bm, bm).transpose(0, 2, 1, 3)
    return np.ascontiguousarray(blocked).reshape(-1)


def unpack_matrix(
    flat: np.ndarray, layout: Layout, K: int, M: int, bk: int, bm: int
) -> np.ndarray:
    """Inverse of :func:`pack_matrix`: recover the ``K x M`` matrix."""
    if flat.size != K * M:
        raise ValueError(f"flat buffer has {flat.size} elements, expected {K * M}")
    if layout is Layout.ROW:
        return flat.reshape(K, M).copy()
    _check_blocking(K, M, bk, bm, layout)
    if layout is Layout.CBL:
        blocked = flat.reshape(M // bm, K, bm)
        return np.ascontiguousarray(blocked.transpose(1, 0, 2)).reshape(K, M)
    blocked = flat.reshape(K // bk, M // bm, bk, bm)
    return np.ascontiguousarray(blocked.transpose(0, 2, 1, 3)).reshape(K, M)


def element_offsets(
    layout: Layout,
    k: np.ndarray,
    m: np.ndarray,
    K: int,
    M: int,
    bk: int,
    bm: int,
) -> np.ndarray:
    """Flat offsets of elements ``(k, m)`` in a packed buffer.

    This is the address arithmetic the emitted OpenCL code performs; the
    executor and the emitter must agree with :func:`pack_matrix`, which
    the test suite checks property-style.
    """
    k = np.asarray(k, dtype=np.int64)
    m = np.asarray(m, dtype=np.int64)
    if layout is Layout.ROW:
        return k * M + m
    if layout is Layout.CBL:
        return (m // bm) * (K * bm) + k * bm + (m % bm)
    return (
        (k // bk) * (bk * M)
        + (m // bm) * (bk * bm)
        + (k % bk) * bm
        + (m % bm)
    )


def tile_view(
    flat: np.ndarray,
    layout: Layout,
    kb: int,
    mb: int,
    K: int,
    M: int,
    bk: int,
    bm: int,
) -> np.ndarray:
    """Return the ``bk x bm`` tile at block coordinates ``(kb, mb)``.

    ``kb`` indexes ``Kwg``-tall row blocks, ``mb`` indexes ``Mwg``-wide
    column blocks.  For the block-major layouts this is a cheap numpy view
    (no copy), mirroring the contiguous access the layouts exist to
    provide; for ``ROW`` it is a strided view.
    """
    if not (0 <= kb < K // bk) or not (0 <= mb < M // bm):
        raise IndexError(
            f"tile ({kb}, {mb}) out of range for {K}x{M} with blocks {bk}x{bm}"
        )
    if layout is Layout.ROW:
        return flat.reshape(K, M)[kb * bk : (kb + 1) * bk, mb * bm : (mb + 1) * bm]
    if layout is Layout.CBL:
        return flat.reshape(M // bm, K, bm)[mb, kb * bk : (kb + 1) * bk, :]
    return flat.reshape(K // bk, M // bm, bk, bm)[kb, mb]
