"""Exception hierarchy for the repro package.

The hierarchy mirrors the failure classes an OpenCL-based auto-tuner
observes in practice (paper, Section III-F: "kernels which are failed in
code generation, compilation or testing are not counted").  Generation
failures are :class:`ParameterError`, compilation failures are
:class:`BuildError` (typically a :class:`ResourceError` from the resource
checker), and testing failures are :class:`LaunchError` /
:class:`ValidationError`.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "ParameterError",
    "CLError",
    "BuildError",
    "ResourceError",
    "LaunchError",
    "ValidationError",
    "TransientError",
    "DeviceLostError",
    "MeasurementTimeout",
    "CorruptStateError",
    "DeterminismViolation",
    "TuningError",
    "SearchInterrupted",
    "InvalidRequestError",
    "InvalidBatchError",
    "AdmissionError",
    "ResultCorruptionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParameterError(ReproError, ValueError):
    """An invalid kernel parameter combination (code-generation failure).

    Raised when a :class:`~repro.codegen.params.KernelParams` instance
    violates a structural constraint (divisibility, overlay coverage,
    vector-width alignment, ...).  The auto-tuner treats these candidates
    as "failed in code generation".
    """


class CLError(ReproError):
    """Base class for errors raised by the OpenCL simulator (clsim)."""


class BuildError(CLError):
    """Program compilation failed (the paper's "failed in compilation")."""

    def __init__(self, message: str, build_log: str = "") -> None:
        super().__init__(message)
        #: Compiler diagnostics, mirroring ``clGetProgramBuildInfo``.
        self.build_log = build_log or message


class ResourceError(BuildError):
    """A device resource limit was exceeded (local memory, registers,
    work-group size).  A subclass of :class:`BuildError` because OpenCL
    compilers reject such kernels at build or launch time."""


class LaunchError(CLError):
    """Kernel launch failed (bad ND-range, arguments, or a device-specific
    execution fault such as the Bulldozer PL-DGEMM failure the paper
    reports)."""


class ValidationError(ReproError):
    """A kernel produced numerically wrong results during tuner testing."""


class TransientError(CLError):
    """A recoverable, non-deterministic runtime fault.

    Real OpenCL stacks intermittently fail compilations and launches that
    succeed on retry (driver resets, ICD races, ECC scrubs) — the class of
    failure the paper's tuner silently absorbs by "not counting" failed
    kernels (Section III-F).  The fault-injection layer raises these for
    faults tagged transient; :mod:`repro.tuner.resilience` retries them
    with backoff instead of discarding the candidate.
    """

    def __init__(self, message: str, fault_kind: str = "transient") -> None:
        super().__init__(message)
        #: The injected fault class ("build", "launch", "device_lost", ...),
        #: used for the tuner's faults-by-class accounting.
        self.fault_kind = fault_kind


class DeviceLostError(TransientError):
    """The device disappeared mid-command (``CL_DEVICE_NOT_AVAILABLE``).

    The closest real-world analogue of the paper's Bulldozer PL-DGEMM
    execution fault escalated to device scope: a driver reset or hung
    board takes every in-flight command with it.  Tuner evaluations treat
    it as transient (the simulated device "comes back"); the multi-device
    GEMM layer instead drops the device from the fleet and re-partitions
    its work onto the survivors.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, fault_kind="device_lost")


class MeasurementTimeout(ReproError):
    """A measurement exceeded the wall-clock watchdog budget.

    Hung kernels (infinite loops from miscompiled control flow, deadlocked
    barriers) are a standard auto-tuner hazard — CLTune-style tuners kill
    and discount them.  Raised by the watchdog in
    :mod:`repro.tuner.resilience`; treated as a transient failure for
    retry purposes.
    """


class CorruptStateError(ReproError):
    """A persisted state file (cache, checkpoint, database) failed
    integrity checks — truncated JSON, a torn write, or a checksum
    mismatch.  Loaders quarantine the offending file and resume from
    scratch instead of crashing (see :mod:`repro.persist`)."""


class DeterminismViolation(ReproError):
    """Repro code read a nondeterminism source under the sanitizer.

    Raised by :class:`repro.testing.sanitize.DeterminismSanitizer` when
    code inside the ``repro`` package calls a patched wall-clock or
    global-RNG entry point (``time.time``, ``random.random``,
    ``uuid.uuid4``, ...) outside the allowlisted stats-timing set.  The
    static counterpart is ``repro lint``'s ``host.time.wallclock`` /
    ``host.rng.unseeded`` rules; the sanitizer catches what static
    analysis cannot see (dynamic dispatch, getattr, third-party
    callbacks).
    """


class InvalidRequestError(ReproError, ValueError):
    """A GEMM request failed up-front validation.

    Raised *before* any device work happens, with the offending argument
    named, instead of letting a mis-shaped, mis-typed, or non-finite
    input propagate as a confusing numpy error from deep inside the
    pack/launch path.  ``argument`` carries the name of the bad input
    (``"a"``, ``"alpha"``, ``"c"``, ...).
    """

    def __init__(self, argument: str, message: str) -> None:
        super().__init__(f"invalid GEMM request: argument {argument!r}: {message}")
        #: Name of the request argument that failed validation.
        self.argument = argument


class InvalidBatchError(ReproError, ValueError):
    """A batched-GEMM request failed up-front batch validation.

    Raised by :class:`repro.gemm.batched.BatchedGemm` *before* any
    member is computed — an empty batch, mismatched operand-list
    lengths, or a member whose shapes/dtype fail
    :func:`~repro.gemm.routine.validate_gemm_request` — instead of
    failing mid-batch with some members already served.  ``member`` is
    the index of the offending batch member (``None`` for batch-level
    problems such as emptiness).
    """

    def __init__(self, message: str, member: Optional[int] = None) -> None:
        super().__init__(f"invalid GEMM batch: {message}")
        #: Index of the offending member, or None for batch-level errors.
        self.member = member


class AdmissionError(ReproError):
    """A request was shed by the serving layer's admission control.

    The bounded queue in front of :class:`repro.serve.GemmService` (or a
    tenant's bounded queue in the async scheduler) was full, so the
    request was rejected instead of queued — load shedding keeps tail
    latency bounded for the requests that *are* admitted.

    ``retry_after_s`` is the shedder's estimate, derived from the
    backlog drain rate, of how many simulated seconds until capacity
    frees up; a cooperative client that resubmits after that delay is
    counted as *shed-then-retried* rather than hard-shed.  ``None``
    means the shedder offers no hint (e.g. the scheduler is draining
    for shutdown and will never re-admit).
    """

    def __init__(self, message: str,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        #: Estimated simulated seconds until the backlog drains enough
        #: to admit a resubmission (None: no retry will ever succeed).
        self.retry_after_s = retry_after_s


class ResultCorruptionError(ReproError):
    """A served result failed probabilistic (Freivalds) verification.

    Signals the silent result corruption the fault plan's ``result``
    rules inject: the kernel reported success but the output is wrong.
    The serving layer quarantines the offending kernel and re-serves the
    request through the next degradation-ladder rung; user code only
    sees this error if every rung (including the host reference, which
    cannot corrupt) somehow failed — i.e. never in practice.
    """


class TuningError(ReproError):
    """The search engine could not produce a result (e.g. empty space)."""


class SearchInterrupted(TuningError):
    """A staged search was aborted mid-stage.

    Raised by the engine's abort hook after the latest checkpoint has
    been written; a subsequent run with ``resume=True`` restarts from
    that checkpoint instead of from scratch.
    """
