"""Exception hierarchy for the repro package.

The hierarchy mirrors the failure classes an OpenCL-based auto-tuner
observes in practice (paper, Section III-F: "kernels which are failed in
code generation, compilation or testing are not counted").  Generation
failures are :class:`ParameterError`, compilation failures are
:class:`BuildError` (typically a :class:`ResourceError` from the resource
checker), and testing failures are :class:`LaunchError` /
:class:`ValidationError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "CLError",
    "BuildError",
    "ResourceError",
    "LaunchError",
    "ValidationError",
    "TuningError",
    "SearchInterrupted",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParameterError(ReproError, ValueError):
    """An invalid kernel parameter combination (code-generation failure).

    Raised when a :class:`~repro.codegen.params.KernelParams` instance
    violates a structural constraint (divisibility, overlay coverage,
    vector-width alignment, ...).  The auto-tuner treats these candidates
    as "failed in code generation".
    """


class CLError(ReproError):
    """Base class for errors raised by the OpenCL simulator (clsim)."""


class BuildError(CLError):
    """Program compilation failed (the paper's "failed in compilation")."""

    def __init__(self, message: str, build_log: str = "") -> None:
        super().__init__(message)
        #: Compiler diagnostics, mirroring ``clGetProgramBuildInfo``.
        self.build_log = build_log or message


class ResourceError(BuildError):
    """A device resource limit was exceeded (local memory, registers,
    work-group size).  A subclass of :class:`BuildError` because OpenCL
    compilers reject such kernels at build or launch time."""


class LaunchError(CLError):
    """Kernel launch failed (bad ND-range, arguments, or a device-specific
    execution fault such as the Bulldozer PL-DGEMM failure the paper
    reports)."""


class ValidationError(ReproError):
    """A kernel produced numerically wrong results during tuner testing."""


class TuningError(ReproError):
    """The search engine could not produce a result (e.g. empty space)."""


class SearchInterrupted(TuningError):
    """A staged search was aborted mid-stage.

    Raised by the engine's abort hook after the latest checkpoint has
    been written; a subsequent run with ``resume=True`` restarts from
    that checkpoint instead of from scratch.
    """
