"""Crash-safe JSON persistence for tuner state.

Every file the tuning pipeline persists — the measurement cache, search
checkpoints, the tuned-kernel database — is written through
:func:`dump_json_atomic`: serialise to a temporary file in the same
directory, ``fsync`` it, then ``os.replace`` over the destination.  A
``SIGKILL`` (or power cut, modulo disk caches) at any instant therefore
leaves either the previous complete file or the new complete file, never
a torn one.

Corruption that slips through anyway (a partial write from an older
version, bit rot, a foreign truncated file) is caught on load:
:func:`load_json_checked` verifies an embedded BLAKE2b checksum and
tolerates undecodable or zero-byte files by *quarantining* them — the bad
file is renamed to ``<path>.corrupt`` and the loader reports "no state"
so the caller starts fresh, instead of aborting the run with a
``json.JSONDecodeError``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

__all__ = [
    "CHECKSUM_KEY",
    "payload_checksum",
    "atomic_write",
    "atomic_write_bytes",
    "dump_json_atomic",
    "load_json_checked",
    "quarantine_file",
]

#: Top-level key carrying the integrity checksum inside persisted objects.
CHECKSUM_KEY = "checksum"


def payload_checksum(payload: dict) -> str:
    """BLAKE2b digest of the payload's canonical JSON form.

    The checksum key itself is excluded, so verification recomputes the
    digest of exactly what was checksummed at write time regardless of
    on-disk formatting (indentation, key order).
    """
    body = {k: v for k, v in payload.items() if k != CHECKSUM_KEY}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def _fsync_dir(path: str) -> None:
    """Persist the directory entry so the rename itself survives."""
    dirname = os.path.dirname(os.path.abspath(path))
    try:
        dir_fd = os.open(dirname, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def atomic_write_bytes(path: str, data: bytes, fsync: bool = True) -> str:
    """Atomically write raw bytes at ``path`` (write-tmp/fsync/rename).

    The byte-level primitive behind every persisted artifact: a crash
    mid-write leaves the previous file intact, a crash mid-rename is
    resolved by the filesystem (``os.replace`` is atomic), and the fsync
    bounds the window in which a completed rename can still lose data
    to the page cache.
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(path)
    return path


def atomic_write(
    path: str, text: str, encoding: str = "utf-8", fsync: bool = True
) -> str:
    """Atomically write a text artifact (reports, rendered JSON, tables).

    The crash-safe replacement for ``open(path, "w")`` — the host-layer
    lint (``host.persist.raw-write``) rejects raw write-mode opens
    everywhere outside this module.
    """
    return atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def dump_json_atomic(
    path: str,
    payload: dict,
    indent: Optional[int] = None,
    fsync: bool = True,
    checksum: bool = True,
) -> str:
    """Atomically persist ``payload`` as JSON at ``path``.

    Serialisation happens before any file is touched; the write itself
    goes through :func:`atomic_write`.  With ``checksum`` (default), an
    integrity digest is embedded under :data:`CHECKSUM_KEY` for
    :func:`load_json_checked` to verify.
    """
    if checksum:
        payload = dict(payload)
        payload[CHECKSUM_KEY] = payload_checksum(payload)
    text = json.dumps(payload, indent=indent, sort_keys=True)
    return atomic_write(path, text, fsync=fsync)


def quarantine_file(path: str) -> str:
    """Move a corrupt state file aside (to ``<path>.corrupt``).

    Quarantining instead of deleting keeps the evidence for post-mortems
    while guaranteeing the next load starts from a clean slate.  An
    existing quarantine file is overwritten (latest corruption wins).
    """
    target = path + ".corrupt"
    os.replace(path, target)
    return target


def load_json_checked(path: str, quarantine: bool = True) -> Optional[dict]:
    """Load a JSON state file, tolerating corruption.

    Returns the decoded payload, or ``None`` when the file is missing,
    empty, undecodable, not a JSON object, or fails its embedded
    checksum — after renaming the bad file to ``<path>.corrupt`` (unless
    ``quarantine=False``).  Payloads without a checksum entry (written
    before integrity checking existed) load as-is.

    Callers interpret ``None`` as "no persisted state": a tuner resumes
    from scratch rather than crashing on a torn file.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return None
    corrupt_reason: Optional[str] = None
    payload: Optional[dict] = None
    if not raw.strip():
        corrupt_reason = "empty file"
    else:
        try:
            decoded = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            corrupt_reason = f"undecodable JSON ({exc})"
        else:
            if not isinstance(decoded, dict):
                corrupt_reason = "top-level value is not an object"
            else:
                payload = decoded
    if payload is not None and CHECKSUM_KEY in payload:
        if payload[CHECKSUM_KEY] != payload_checksum(payload):
            corrupt_reason = "checksum mismatch"
            payload = None
    if corrupt_reason is not None:
        if quarantine:
            quarantine_file(path)
        return None
    return payload
