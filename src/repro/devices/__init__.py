"""Device catalog: the processors evaluated in the paper.

This package provides :class:`~repro.devices.specs.DeviceSpec` — a structured
description of an OpenCL device combining the paper's Table I specification
rows with the microarchitectural parameters the performance model needs —
and a catalog of the six evaluated processors (plus the AMD Cypress and the
GeForce GTX 680 referenced in Section IV-C).
"""

from repro.devices.specs import DeviceModelParams, DeviceSpec, DeviceType, LocalMemType
from repro.devices.catalog import (
    CATALOG,
    EVALUATED_DEVICES,
    get_device_spec,
    list_device_names,
)

__all__ = [
    "DeviceSpec",
    "DeviceModelParams",
    "DeviceType",
    "LocalMemType",
    "CATALOG",
    "EVALUATED_DEVICES",
    "get_device_spec",
    "list_device_names",
]
