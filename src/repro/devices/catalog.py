"""Catalog of the processors evaluated in the paper.

The six primary devices are the rows of the paper's Table I.  Two more
devices referenced in Section IV-C are included: the AMD Cypress
(Radeon HD 5870), on which the paper's tuner reaches 495 GFlop/s DGEMM,
and the GeForce GTX 680 used by Kurzak et al.'s Kepler study.

Published specification values come straight from Table I.  Model
parameters (register file, wavefront width, barrier cost, ...) are public
microarchitectural facts; calibration multipliers were fitted once so the
tuned kernels land on the paper's measured GFlop/s (see
``repro/perfmodel/calibration.py``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.devices.specs import (
    DeviceModelParams,
    DeviceSpec,
    DeviceType,
    LocalMemType,
)

__all__ = [
    "CATALOG",
    "DEVICE_ZONES",
    "EVALUATED_DEVICES",
    "devices_in_zone",
    "get_device_spec",
    "get_device_zone",
    "list_device_names",
    "nearest_devices",
    "spec_features",
]


TAHITI = DeviceSpec(
    codename="tahiti",
    product_name="Radeon HD 7970",
    vendor="AMD",
    device_type=DeviceType.GPU,
    clock_ghz=0.925,
    compute_units=32,
    dp_ops_per_clock=1024,
    sp_ops_per_clock=4096,
    peak_dp_gflops=947.0,
    peak_sp_gflops=3789.0,
    global_mem_gb=3.0,
    bandwidth_gbs=264.0,
    l3_cache_kb=0.0,
    l2_cache_kb=768.0,
    l1_cache_kb=16.0,
    local_mem_kb=64.0,
    local_mem_type=LocalMemType.SCRATCHPAD,
    opencl_sdk="AMD APP 2.6",
    driver_version="Catalyst 12.3",
    model=DeviceModelParams(
        registers_per_cu_kb=256.0,
        wavefront_size=64,
        max_workgroup_size=256,
        max_workgroups_per_cu=16,
        simd_width_sp=1,
        simd_width_dp=2,
        coalesce_bytes=64,
        local_bw_bytes_per_clock_cu=128.0,
        barrier_cost_cycles=32.0,
        latency_hiding_occupancy=4.0,
        cache_effective_kb=16.0,
        # Staging through LDS pays on GCN: the paper's Tahiti SGEMM
        # gained 2646 -> 3047 GFlop/s by staging both matrices.
        nolocal_alu_factor=0.932,
        # GCN prefers LDS staging over texture reads.
        texture_read_factor=0.94,
        max_private_bytes_per_workitem=1024.0,
        # GCN sustains near-peak DP issue; SP caps ~85% (paper: 80% achieved).
        compiler_efficiency_sp=0.85,
        compiler_efficiency_dp=0.96,
        unit_stride_bonus=1.0,
        nonunit_stride_bonus=0.96,
        launch_overhead_us=8.0,
        calibration_sp=0.974,
        calibration_dp=0.973,
    ),
)

CAYMAN = DeviceSpec(
    codename="cayman",
    product_name="Radeon HD 6970",
    vendor="AMD",
    device_type=DeviceType.GPU,
    clock_ghz=0.88,
    compute_units=24,
    dp_ops_per_clock=768,
    sp_ops_per_clock=3072,
    peak_dp_gflops=676.0,
    peak_sp_gflops=2703.0,
    global_mem_gb=1.0,
    bandwidth_gbs=176.0,
    l3_cache_kb=0.0,
    l2_cache_kb=512.0,
    l1_cache_kb=8.0,
    local_mem_kb=32.0,
    local_mem_type=LocalMemType.SCRATCHPAD,
    opencl_sdk="AMD APP 2.6",
    driver_version="Catalyst 11.11",
    model=DeviceModelParams(
        registers_per_cu_kb=256.0,
        wavefront_size=64,
        max_workgroup_size=256,
        max_workgroups_per_cu=16,
        # VLIW4: packed vector operations are required for ALU utilisation.
        simd_width_sp=4,
        simd_width_dp=2,
        coalesce_bytes=64,
        local_bw_bytes_per_clock_cu=128.0,
        # The paper: "The Cayman runs slower when the local memory is
        # utilized, probably because the cost for barrier synchronizations
        # is too large."
        barrier_cost_cycles=768.0,
        latency_hiding_occupancy=4.0,
        # Texture/L1 caches serve A/B reuse well enough without LDS.
        cache_effective_kb=24.0,
        cache_hit_bw_factor=6.0,
        nolocal_alu_factor=1.0,
        # VLIW texture caches stream operands nearly for free.
        texture_read_factor=0.97,
        max_private_bytes_per_workitem=1024.0,
        # VLIW4 packing limits sustained issue (paper: 86% DP, 80% SP).
        compiler_efficiency_sp=0.88,
        compiler_efficiency_dp=0.92,
        unit_stride_bonus=1.0,
        nonunit_stride_bonus=0.96,
        launch_overhead_us=8.0,
        quirks=frozenset({"expensive_barrier"}),
        calibration_sp=0.903,
        calibration_dp=0.921,
    ),
)

KEPLER = DeviceSpec(
    codename="kepler",
    product_name="GeForce GTX 670 OC",
    vendor="NVIDIA",
    device_type=DeviceType.GPU,
    clock_ghz=1.085,
    compute_units=7,
    dp_ops_per_clock=112,
    sp_ops_per_clock=2688,
    peak_dp_gflops=122.0,
    peak_sp_gflops=2916.0,
    global_mem_gb=2.0,
    bandwidth_gbs=192.0,
    l3_cache_kb=0.0,
    l2_cache_kb=512.0,
    l1_cache_kb=16.0,
    local_mem_kb=48.0,
    local_mem_type=LocalMemType.SCRATCHPAD,
    opencl_sdk="CUDA 5.0 RC",
    driver_version="304.33",
    model=DeviceModelParams(
        registers_per_cu_kb=256.0,
        wavefront_size=32,
        max_workgroup_size=1024,
        max_workgroups_per_cu=16,
        simd_width_sp=2,
        simd_width_dp=1,
        coalesce_bytes=128,
        local_bw_bytes_per_clock_cu=256.0,
        barrier_cost_cycles=48.0,
        # SMX needs many resident warps; static-issue scheduling limits
        # achievable SGEMM efficiency (~49% in the paper).
        latency_hiding_occupancy=10.0,
        cache_effective_kb=12.0,
        # Without shared-memory staging Kepler SGEMM drops 1440 -> 1150
        # GFlop/s (Section IV-A); its L1 recovers little reuse.
        nolocal_alu_factor=0.894,
        texture_read_factor=0.90,
        max_private_bytes_per_workitem=1024.0,
        # SMX static dual-issue limits compiled SGEMM (~49% in the paper); the few DP units saturate easily.
        compiler_efficiency_sp=0.55,
        compiler_efficiency_dp=1.0,
        unit_stride_bonus=0.96,
        nonunit_stride_bonus=1.0,
        launch_overhead_us=7.0,
        # GPU Boost raises the core clock above the listed base clock, so
        # DGEMM efficiency against the listed peak exceeds 100% (Table II).
        boost_factor=1.10,
        calibration_sp=0.858,
        calibration_dp=0.959,
    ),
)

FERMI = DeviceSpec(
    codename="fermi",
    product_name="Tesla M2090",
    vendor="NVIDIA",
    device_type=DeviceType.GPU,
    clock_ghz=1.3,
    compute_units=16,
    dp_ops_per_clock=512,
    sp_ops_per_clock=1024,
    peak_dp_gflops=665.0,
    peak_sp_gflops=1331.0,
    global_mem_gb=6.0,
    bandwidth_gbs=177.0,
    l3_cache_kb=0.0,
    l2_cache_kb=768.0,
    l1_cache_kb=16.0,
    local_mem_kb=48.0,
    local_mem_type=LocalMemType.SCRATCHPAD,
    opencl_sdk="CUDA 4.1.28",
    driver_version="285.05",
    model=DeviceModelParams(
        registers_per_cu_kb=128.0,
        wavefront_size=32,
        max_workgroup_size=1024,
        max_workgroups_per_cu=8,
        simd_width_sp=2,
        simd_width_dp=1,
        coalesce_bytes=128,
        local_bw_bytes_per_clock_cu=128.0,
        barrier_cost_cycles=64.0,
        latency_hiding_occupancy=6.0,
        cache_effective_kb=12.0,
        nolocal_alu_factor=0.92,
        # 63 x 32-bit registers per thread: large private tiles spill,
        # which is why Fermi's best kernels use small Mwi x Nwi blocks.
        texture_read_factor=0.92,
        max_private_bytes_per_workitem=320.0,
        # Section III-B: "a non-unit stride memory access is utilized for
        # performance optimization on Fermi GPUs".
        # Tan et al.: >70% DP utilisation impossible from CUDA C/PTX; 'also valid for OpenCL'.
        compiler_efficiency_sp=0.74,
        compiler_efficiency_dp=0.62,
        unit_stride_bonus=0.92,
        nonunit_stride_bonus=1.0,
        launch_overhead_us=7.0,
        calibration_sp=0.929,
        calibration_dp=0.929,
    ),
)

SANDY_BRIDGE = DeviceSpec(
    codename="sandybridge",
    product_name="Core i7 3960X",
    vendor="Intel",
    device_type=DeviceType.CPU,
    clock_ghz=3.3,
    compute_units=6,
    dp_ops_per_clock=48,
    sp_ops_per_clock=96,
    peak_dp_gflops=158.4,
    peak_sp_gflops=316.8,
    global_mem_gb=16.0,
    bandwidth_gbs=51.2,
    l3_cache_kb=15 * 1024.0,
    l2_cache_kb=256.0,
    l1_cache_kb=32.0,
    local_mem_kb=32.0,
    local_mem_type=LocalMemType.GLOBAL,
    opencl_sdk="Intel SDK 2013 beta",
    driver_version="-",
    model=DeviceModelParams(
        registers_per_cu_kb=1.0,  # 16 AVX ymm registers per core
        wavefront_size=1,
        max_workgroup_size=1024,
        max_workgroups_per_cu=1,
        simd_width_sp=8,
        simd_width_dp=4,
        coalesce_bytes=64,
        local_bw_bytes_per_clock_cu=32.0,
        barrier_cost_cycles=400.0,
        latency_hiding_occupancy=1.0,
        cache_effective_kb=256.0,
        cache_hit_bw_factor=12.0,
        # Big L2/L3 caches recover reuse without local-memory staging, so
        # "a prominent performance difference can not be seen on the CPUs
        # depending on the local memory usage" (Section IV-A).
        nolocal_alu_factor=1.0,
        # Images are software-emulated on CPUs.
        texture_read_factor=0.80,
        max_private_bytes_per_workitem=1024.0,
        # "current OpenCL compilers for CPUs are not as mature as for GPUs"
        compiler_efficiency_sp=0.50,
        compiler_efficiency_dp=0.46,
        unit_stride_bonus=1.0,
        nonunit_stride_bonus=0.97,
        launch_overhead_us=25.0,
        # No PCIe hop: the "device" is the host CPU itself.
        pcie_bandwidth_gbs=20.0,
        pcie_latency_us=0.5,
        calibration_sp=0.889,
        calibration_dp=0.875,
    ),
)

BULLDOZER = DeviceSpec(
    codename="bulldozer",
    product_name="FX-8150",
    vendor="AMD",
    device_type=DeviceType.CPU,
    clock_ghz=3.6,
    compute_units=8,
    dp_ops_per_clock=32,
    sp_ops_per_clock=64,
    peak_dp_gflops=115.2,
    peak_sp_gflops=230.4,
    global_mem_gb=16.0,
    bandwidth_gbs=25.6,
    l3_cache_kb=8 * 1024.0,
    l2_cache_kb=2048.0,
    l1_cache_kb=16.0,
    local_mem_kb=32.0,
    local_mem_type=LocalMemType.GLOBAL,
    opencl_sdk="AMD APP 2.7",
    driver_version="-",
    model=DeviceModelParams(
        registers_per_cu_kb=1.0,
        wavefront_size=1,
        max_workgroup_size=1024,
        max_workgroups_per_cu=1,
        simd_width_sp=4,
        simd_width_dp=2,
        coalesce_bytes=64,
        local_bw_bytes_per_clock_cu=32.0,
        barrier_cost_cycles=500.0,
        latency_hiding_occupancy=1.0,
        cache_effective_kb=256.0,
        cache_hit_bw_factor=10.0,
        nolocal_alu_factor=1.0,
        texture_read_factor=0.80,
        max_private_bytes_per_workitem=1024.0,
        compiler_efficiency_sp=0.44,
        compiler_efficiency_dp=0.38,
        unit_stride_bonus=1.0,
        nonunit_stride_bonus=0.97,
        launch_overhead_us=25.0,
        # No PCIe hop: the "device" is the host CPU itself.
        pcie_bandwidth_gbs=12.0,
        pcie_latency_us=0.5,
        # Paper, Section IV-A: "DGEMM kernels with PL algorithm always
        # fail to execute on the Bulldozer."
        quirks=frozenset({"pl_dgemm_fails"}),
        calibration_sp=0.856,
        calibration_dp=0.85,
    ),
)

CYPRESS = DeviceSpec(
    codename="cypress",
    product_name="Radeon HD 5870",
    vendor="AMD",
    device_type=DeviceType.GPU,
    clock_ghz=0.85,
    compute_units=20,
    dp_ops_per_clock=640,
    sp_ops_per_clock=3200,
    peak_dp_gflops=544.0,
    peak_sp_gflops=2720.0,
    global_mem_gb=1.0,
    bandwidth_gbs=153.6,
    l3_cache_kb=0.0,
    l2_cache_kb=512.0,
    l1_cache_kb=8.0,
    local_mem_kb=32.0,
    local_mem_type=LocalMemType.SCRATCHPAD,
    opencl_sdk="AMD APP 2.5",
    driver_version="-",
    model=DeviceModelParams(
        registers_per_cu_kb=256.0,
        wavefront_size=64,
        max_workgroup_size=256,
        max_workgroups_per_cu=16,
        simd_width_sp=4,  # VLIW5
        simd_width_dp=2,
        coalesce_bytes=64,
        local_bw_bytes_per_clock_cu=128.0,
        barrier_cost_cycles=512.0,
        latency_hiding_occupancy=4.0,
        cache_effective_kb=20.0,
        cache_hit_bw_factor=6.0,
        nolocal_alu_factor=0.97,
        # Nakasato's image-based kernels match buffer kernels here.
        texture_read_factor=0.975,
        max_private_bytes_per_workitem=1024.0,
        # VLIW5; Nakasato's IL kernel reaches 92% DP, OpenCL slightly below.
        compiler_efficiency_sp=0.8,
        compiler_efficiency_dp=0.95,
        unit_stride_bonus=1.0,
        nonunit_stride_bonus=0.96,
        launch_overhead_us=8.0,
        quirks=frozenset({"expensive_barrier"}),
        calibration_sp=1.0,
        calibration_dp=1.007,
    ),
)

GTX680 = DeviceSpec(
    codename="gtx680",
    product_name="GeForce GTX 680",
    vendor="NVIDIA",
    device_type=DeviceType.GPU,
    clock_ghz=1.006,
    compute_units=8,
    dp_ops_per_clock=128,
    sp_ops_per_clock=3072,
    peak_dp_gflops=128.8,
    peak_sp_gflops=3090.0,
    global_mem_gb=2.0,
    bandwidth_gbs=192.3,
    l3_cache_kb=0.0,
    l2_cache_kb=512.0,
    l1_cache_kb=16.0,
    local_mem_kb=48.0,
    local_mem_type=LocalMemType.SCRATCHPAD,
    opencl_sdk="CUDA 5.0 RC",
    driver_version="-",
    model=DeviceModelParams(
        registers_per_cu_kb=256.0,
        wavefront_size=32,
        max_workgroup_size=1024,
        max_workgroups_per_cu=16,
        simd_width_sp=2,
        simd_width_dp=1,
        coalesce_bytes=128,
        local_bw_bytes_per_clock_cu=256.0,
        barrier_cost_cycles=48.0,
        latency_hiding_occupancy=10.0,
        cache_effective_kb=12.0,
        nolocal_alu_factor=0.894,
        texture_read_factor=0.90,
        max_private_bytes_per_workitem=1024.0,
        # GTX 680 SMX, as GTX 670 (Kurzak et al. reach ~37% SP in CUDA).
        compiler_efficiency_sp=0.47,
        compiler_efficiency_dp=1.0,
        unit_stride_bonus=0.96,
        nonunit_stride_bonus=1.0,
        launch_overhead_us=7.0,
        boost_factor=1.06,
        calibration_sp=0.858,
        calibration_dp=0.959,
    ),
)


#: All known devices, keyed by codename.
CATALOG: Dict[str, DeviceSpec] = {
    spec.codename: spec
    for spec in (
        TAHITI,
        CAYMAN,
        KEPLER,
        FERMI,
        SANDY_BRIDGE,
        BULLDOZER,
        CYPRESS,
        GTX680,
    )
}

#: The six processors of the paper's main evaluation, in Table I order.
EVALUATED_DEVICES: List[str] = [
    "tahiti",
    "cayman",
    "kepler",
    "fermi",
    "sandybridge",
    "bulldozer",
]


#: Failure-domain ("zone") membership for correlated-chaos modelling.
#: Devices sharing a zone share a power/driver/interconnect blast
#: radius: a ``zone_outage`` fault takes all of them down together and
#: a ``brownout`` degrades them together (see ``repro.clsim.faults``).
#: The grouping follows the vendor driver stacks of Table I — one AMD
#: GPU zone, one NVIDIA GPU zone, one host-CPU zone.
DEVICE_ZONES: Dict[str, str] = {
    "tahiti": "zone-amd",
    "cayman": "zone-amd",
    "cypress": "zone-amd",
    "kepler": "zone-nvidia",
    "fermi": "zone-nvidia",
    "gtx680": "zone-nvidia",
    "sandybridge": "zone-cpu",
    "bulldozer": "zone-cpu",
}


def get_device_zone(name: str) -> str:
    """Return the failure zone of a device (``"default"`` if unmapped)."""
    return DEVICE_ZONES.get(name.strip().lower(), "default")


def devices_in_zone(zone: str) -> List[str]:
    """Return the catalog codenames belonging to a zone, sorted."""
    return sorted(d for d, z in DEVICE_ZONES.items() if z == zone)


def get_device_spec(name: str) -> DeviceSpec:
    """Look up a device by codename (case-insensitive).

    Raises ``KeyError`` with the list of known names on a miss.
    """
    key = name.strip().lower()
    try:
        return CATALOG[key]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known devices: {sorted(CATALOG)}"
        ) from None


def list_device_names(evaluated_only: bool = False) -> List[str]:
    """Return catalog codenames, optionally only the paper's six."""
    if evaluated_only:
        return list(EVALUATED_DEVICES)
    return sorted(CATALOG)


def spec_features(spec: DeviceSpec) -> List[float]:
    """Numeric feature vector for spec-space device similarity.

    The axes are the published-specification quantities that shape which
    kernel configurations win (Table I plus the execution-width facts):
    throughput ratios, memory system, and the local-memory/SIMD
    character that separates the paper's device families.  Logs compress
    the orders-of-magnitude spread so one axis cannot dominate.
    """
    import math

    m = spec.model
    return [
        math.log2(spec.clock_ghz),
        math.log2(spec.compute_units),
        math.log2(spec.peak_sp_gflops),
        math.log2(max(spec.peak_dp_gflops, 1.0)),
        math.log2(spec.bandwidth_gbs),
        # Compute/bandwidth balance decides blocking depth.
        math.log2(spec.peak_sp_gflops / spec.bandwidth_gbs),
        math.log2(max(spec.local_mem_kb, 1.0)),
        1.0 if spec.local_mem_type is LocalMemType.SCRATCHPAD else 0.0,
        1.0 if spec.device_type is DeviceType.CPU else 0.0,
        math.log2(m.wavefront_size),
        math.log2(m.simd_width_sp),
        math.log2(m.max_workgroup_size),
    ]


def nearest_devices(name: str, k: int = 3) -> List[str]:
    """The ``k`` catalogued devices most similar to ``name``, closest
    first, by z-scored Euclidean distance in :func:`spec_features`
    space.  This is the transfer-tuning neighbour table: a new device
    warm-starts its search from the tuned winners of these neighbours.
    """
    target = get_device_spec(name).codename
    names = sorted(CATALOG)
    table = {n: spec_features(CATALOG[n]) for n in names}
    dims = len(table[target])
    means = [sum(table[n][d] for n in names) / len(names) for d in range(dims)]
    stds = []
    for d in range(dims):
        var = sum((table[n][d] - means[d]) ** 2 for n in names) / len(names)
        stds.append(var ** 0.5 or 1.0)

    def dist(other: str) -> float:
        return sum(
            ((table[target][d] - table[other][d]) / stds[d]) ** 2
            for d in range(dims)
        )

    ranked = sorted(
        (n for n in names if n != target), key=lambda n: (dist(n), n)
    )
    return ranked[: max(0, k)]
