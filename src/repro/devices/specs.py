"""Device specification dataclasses.

A :class:`DeviceSpec` carries two groups of information:

* the *published specification* — the rows of the paper's Table I
  (clock speed, compute units, peak throughput, memory sizes, SDK), and
* the *model parameters* (:class:`DeviceModelParams`) — microarchitectural
  quantities the analytical performance model needs (register file size,
  wavefront width, coalescing granularity, barrier cost, ...).  These are
  not in Table I but are public knowledge for each microarchitecture.

All sizes are stored in explicit units named in the attribute
(``*_kb``, ``*_gb``, ``*_ghz``, ``*_gbs``) to avoid ambiguity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import FrozenSet

__all__ = ["DeviceType", "LocalMemType", "DeviceModelParams", "DeviceSpec"]


class DeviceType(enum.Enum):
    """Kind of OpenCL device (``CL_DEVICE_TYPE_*`` analogue)."""

    GPU = "gpu"
    CPU = "cpu"


class LocalMemType(enum.Enum):
    """OpenCL ``CL_DEVICE_LOCAL_MEM_TYPE``.

    ``SCRATCHPAD`` corresponds to ``CL_LOCAL`` (dedicated on-chip memory);
    ``GLOBAL`` means local memory is emulated in (cached) global memory,
    which is the case on both evaluated CPUs (Table I, "Local memory type").
    """

    SCRATCHPAD = "scratchpad"
    GLOBAL = "global"


@dataclass(frozen=True)
class DeviceModelParams:
    """Microarchitectural parameters consumed by :mod:`repro.perfmodel`.

    Attributes
    ----------
    registers_per_cu_kb:
        Size of the per-compute-unit register file available to kernels.
    wavefront_size:
        Hardware SIMD execution width in work-items (AMD wavefront = 64,
        NVIDIA warp = 32; CPUs execute work-items in software loops, 1).
    max_workgroup_size:
        ``CL_DEVICE_MAX_WORK_GROUP_SIZE``.
    max_workgroups_per_cu:
        Scheduler limit on concurrently resident work-groups per CU.
    simd_width_sp / simd_width_dp:
        Native per-lane vector width the ALUs prefer, in elements.  Used
        to score how well a kernel's vector width ``vw`` maps onto the
        hardware (e.g. Cayman's VLIW4 wants packed 4-wide operations;
        AVX CPUs want 8-wide SP / 4-wide DP).
    coalesce_bytes:
        Memory-transaction granularity for global accesses.
    local_bw_bytes_per_clock_cu:
        Local (LDS / shared) memory bandwidth per compute unit.
    barrier_cost_cycles:
        Cost of one work-group barrier.  Cayman's is large — the paper
        attributes its slowdown with local memory to barrier cost.
    latency_hiding_occupancy:
        Number of resident wavefronts per CU needed to fully overlap
        memory latency with computation.
    cache_effective_kb:
        Effective per-CU read cache capacity serving global-memory reuse
        when local memory staging is *not* used.
    cache_hit_bw_factor:
        Bandwidth amplification of a cache hit relative to DRAM.
    nolocal_alu_factor:
        Issue-efficiency multiplier applied once per operand that is
        *not* staged through local memory: inner-loop loads then come
        straight from global memory, whose latency and address arithmetic
        steal issue slots from the MAD stream.  1.0 on devices whose
        cache/clause hierarchy streams global reads for free (Cayman's
        VLIW clauses, CPUs), below 1.0 where LDS staging measurably pays
        (paper Section IV-A: Tahiti SGEMM 2646 -> 3047 and Kepler SGEMM
        1150 -> 1440 once local memory is used).  This is what makes
        local memory worth its barriers on some devices and not others.
    texture_read_factor:
        Issue-efficiency multiplier per operand read through an *image
        object* (texture cache) instead of a buffer.  The paper's
        generator "does not use image objects currently" (Section
        III-F); this parameter powers the image-path extension, whose
        reference point is Nakasato's texture-based Cypress kernels
        (Section IV-C) that essentially match buffer kernels there.
    max_private_bytes_per_workitem:
        Per-work-item register allocation cap (e.g. 63 x 32-bit registers
        on Fermi).  Private footprints beyond it spill with a performance
        penalty; footprints beyond twice it fail to build.
    compiler_efficiency_sp / compiler_efficiency_dp:
        Ceiling on achievable ALU utilisation imposed by the OpenCL
        compiler stack and the instruction-issue limits of the ISA.  Low
        on CPUs ("current OpenCL compilers for CPUs are not as mature as
        for GPUs" — Section IV-B); below 1.0 on GPUs whose schedulers
        cannot sustain peak issue from compiled kernels (e.g. Fermi:
        Tan et al. argue >70% utilisation is impossible from CUDA C or
        PTX, which the paper says "is also valid for OpenCL").
    boost_factor:
        Dynamic-clock headroom relative to the listed base clock; the
        Kepler board's boost lets measured efficiency exceed 100% of the
        listed peak (Section IV, Table II footnote discussion).
    launch_overhead_us:
        Fixed kernel-launch cost in microseconds.
    unit_stride_bonus / nonunit_stride_bonus:
        Relative efficiency of the two C-ownership stride modes
        (Section III-B; Fermi-class GPUs favour non-unit stride).
    quirks:
        Free-form behavioural flags, e.g. ``"pl_dgemm_fails"`` reproduces
        the paper's "DGEMM kernels with PL algorithm always fail to
        execute on the Bulldozer".
    calibration_sp / calibration_dp:
        Final multiplicative calibration of modelled throughput so the
        tuned maxima land on the paper's measured GFlop/s.
    """

    registers_per_cu_kb: float
    wavefront_size: int
    max_workgroup_size: int
    max_workgroups_per_cu: int = 8
    simd_width_sp: int = 1
    simd_width_dp: int = 1
    coalesce_bytes: int = 64
    local_bw_bytes_per_clock_cu: float = 128.0
    barrier_cost_cycles: float = 64.0
    latency_hiding_occupancy: float = 4.0
    cache_effective_kb: float = 16.0
    cache_hit_bw_factor: float = 4.0
    nolocal_alu_factor: float = 0.95
    texture_read_factor: float = 0.93
    max_private_bytes_per_workitem: float = 1024.0
    compiler_efficiency_sp: float = 1.0
    compiler_efficiency_dp: float = 1.0
    boost_factor: float = 1.0
    launch_overhead_us: float = 8.0
    #: Host<->device interconnect bandwidth.  PCIe 2.0 x16 for the era's
    #: GPUs (~6 GB/s effective); CPUs share the host's memory, so their
    #: "transfer" is a cache-speed copy.
    pcie_bandwidth_gbs: float = 6.0
    pcie_latency_us: float = 10.0
    unit_stride_bonus: float = 1.0
    nonunit_stride_bonus: float = 1.0
    quirks: FrozenSet[str] = field(default_factory=frozenset)
    calibration_sp: float = 1.0
    calibration_dp: float = 1.0

    def has_quirk(self, name: str) -> bool:
        """Return whether a behavioural quirk flag is set."""
        return name in self.quirks


@dataclass(frozen=True)
class DeviceSpec:
    """Full description of an OpenCL device (paper Table I + model params)."""

    # -- identity ---------------------------------------------------------
    codename: str
    product_name: str
    vendor: str
    device_type: DeviceType

    # -- Table I rows ------------------------------------------------------
    clock_ghz: float
    compute_units: int
    dp_ops_per_clock: int
    sp_ops_per_clock: int
    peak_dp_gflops: float
    peak_sp_gflops: float
    global_mem_gb: float
    bandwidth_gbs: float
    l3_cache_kb: float
    l2_cache_kb: float
    l1_cache_kb: float
    local_mem_kb: float
    local_mem_type: LocalMemType
    opencl_sdk: str
    driver_version: str

    # -- model ------------------------------------------------------------
    model: DeviceModelParams = field(
        default_factory=lambda: DeviceModelParams(
            registers_per_cu_kb=256.0, wavefront_size=64, max_workgroup_size=256
        )
    )

    # ----------------------------------------------------------------------
    def peak_gflops(self, precision: str) -> float:
        """Peak throughput for ``precision`` in {'s', 'd'} (GFlop/s)."""
        if precision == "s":
            return self.peak_sp_gflops
        if precision == "d":
            return self.peak_dp_gflops
        raise ValueError(f"unknown precision {precision!r} (expected 's' or 'd')")

    def ops_per_clock(self, precision: str) -> int:
        """Device-wide floating-point operations per clock cycle."""
        return self.sp_ops_per_clock if precision == "s" else self.dp_ops_per_clock

    @property
    def is_gpu(self) -> bool:
        return self.device_type is DeviceType.GPU

    @property
    def is_cpu(self) -> bool:
        return self.device_type is DeviceType.CPU

    @property
    def local_mem_bytes(self) -> int:
        return int(self.local_mem_kb * 1024)

    @property
    def registers_per_cu_bytes(self) -> int:
        return int(self.model.registers_per_cu_kb * 1024)

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbs * 1e9

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    def with_model(self, **overrides) -> "DeviceSpec":
        """Return a copy with some model parameters replaced.

        Used by calibration and by ablation experiments (e.g. swapping the
        Sandy Bridge compiler-efficiency to the older Intel SDK 2012 level
        for Figure 11).
        """
        return replace(self, model=replace(self.model, **overrides))

    def validate(self) -> None:
        """Sanity-check internal consistency of the published numbers."""
        if self.clock_ghz <= 0 or self.compute_units <= 0:
            raise ValueError(f"{self.codename}: non-positive clock or CU count")
        for prec in ("s", "d"):
            derived = self.clock_ghz * self.ops_per_clock(prec)
            listed = self.peak_gflops(prec)
            # Allow ~15% slack: some boards list boost-clock or rounded peaks.
            if listed > 0 and abs(derived - listed) / listed > 0.15:
                raise ValueError(
                    f"{self.codename}: peak {prec.upper()}GEMM {listed} GFlop/s "
                    f"inconsistent with clock*ops/clk = {derived:.1f}"
                )
        if self.local_mem_kb < 0 or self.bandwidth_gbs <= 0:
            raise ValueError(f"{self.codename}: bad memory specification")
