"""Command-line interface: ``repro-gemm`` / ``python -m repro``.

Subcommands
-----------
``info``    — list simulated devices (Table I) or show one device.
``tune``    — run the staged auto-tuner for a device and precision.
``gemm``    — run one GEMM call with the tuned kernel and report rates.
``serve``   — drive the resilient serving layer with a seeded workload.
``soak``    — long chaos soak of the serving layer (ground-truth checked).
``trace``   — render an observability trace as a timeline tree.
``metrics`` — export the metrics registry (Prometheus text or JSON).
``bench``   — regenerate one (or all) paper tables/figures.
``emit``    — print the generated OpenCL C for the tuned kernel.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gemm",
        description=(
            "Auto-tuned OpenCL GEMM (simulated) — reproduction of "
            "Matsumoto et al., SC Companion 2012."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="list or show simulated devices")
    p_info.add_argument("device", nargs="?", help="codename (omit to list all)")

    p_tune = sub.add_parser("tune", help="run the staged kernel search")
    p_tune.add_argument("device")
    p_tune.add_argument("--precision", choices=["s", "d"], default="d")
    p_tune.add_argument(
        "--budget", default="4000",
        help="stage-1 candidate budget, or 'full' for the whole space",
    )
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument("--strategy", default="exhaustive",
                        choices=["exhaustive", "random", "annealing", "pso",
                                 "surrogate"],
                        help="stage-1 search strategy (see "
                             "docs/search_strategies.md)")
    p_tune.add_argument("--transfer", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="warm-start the strategy from tuned winners of "
                             "the nearest catalogued devices "
                             "(--no-transfer disables)")
    p_tune.add_argument("--shape", nargs=3, type=int, metavar=("M", "N", "K"),
                        help="tune for a rectangular target shape")
    p_tune.add_argument("--images", action="store_true",
                        help="restrict the search to image-object kernels")
    p_tune.add_argument("--guarded", action="store_true",
                        help="restrict the search to bounds-checked kernels")
    p_tune.add_argument("--no-refine", action="store_true",
                        help="disable hill climbing (the paper's pure search)")
    p_tune.add_argument("--no-static-gate", action="store_true",
                        help="measure statically rejectable candidates "
                             "anyway (same winner, more evaluations; see "
                             "docs/static_analysis.md)")
    p_tune.add_argument("--save", metavar="DB.json",
                        help="store the winner in a tuned-kernel database")
    p_tune.add_argument("--workers", type=int, default=1, metavar="N",
                        help="evaluate candidates over N parallel workers "
                             "(deterministic: same winner as serial)")
    p_tune.add_argument("--cache", metavar="CACHE.json",
                        help="measurement cache file; warm re-runs perform "
                             "zero re-measurements")
    p_tune.add_argument("--checkpoint", metavar="CKPT.json",
                        help="write periodic search checkpoints to this file")
    p_tune.add_argument("--resume", action="store_true",
                        help="resume from --checkpoint if it matches this search")
    p_tune.add_argument("--inject-faults", metavar="PLAN",
                        help="chaos-test the search under a fault plan: "
                             "'kind:rate[,kind:rate...]' "
                             "(kinds: build launch device_lost timing result "
                             "hang), '@plan.json', or a canned plan name "
                             "such as 'bulldozer-pl-dgemm'")
    p_tune.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the fault plan's decision hash")
    p_tune.add_argument("--max-retries", type=int, default=2, metavar="N",
                        help="retry budget for transient faults per candidate")
    p_tune.add_argument("--measure-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock watchdog per measurement "
                             "(kills hung kernels)")
    p_tune.add_argument("--measure-samples", type=int, default=3, metavar="K",
                        help="timing samples per measurement, aggregated "
                             "median-of-k with outlier rejection")
    p_tune.add_argument("--stats-json", metavar="STATS.json",
                        help="dump the search telemetry (incl. fault/retry "
                             "counters) as JSON")
    p_tune.add_argument("--trace-json", metavar="TRACE.json",
                        help="persist the per-stage observability trace "
                             "(render with 'repro trace TRACE.json')")
    p_tune.add_argument("--metrics-json", metavar="METRICS.json",
                        help="persist the metrics-registry snapshot "
                             "(render with 'repro metrics METRICS.json')")

    p_gemm = sub.add_parser("gemm", help="run one GEMM with the tuned kernel")
    p_gemm.add_argument("device")
    p_gemm.add_argument("--precision", choices=["s", "d"], default="d")
    p_gemm.add_argument("--size", type=int, default=1024, help="square M=N=K")
    p_gemm.add_argument("--transa", choices=["N", "T"], default="N")
    p_gemm.add_argument("--transb", choices=["N", "T"], default="N")

    def add_serve_options(p, default_requests: int) -> None:
        p.add_argument("device", nargs="+",
                       help="device codename(s) forming the serving fleet")
        p.add_argument("--precision", choices=["s", "d"], default="d")
        p.add_argument("--requests", type=int, default=default_requests,
                       metavar="N", help="seeded workload size")
        p.add_argument("--seed", type=int, default=0,
                       help="workload + service decision seed")
        p.add_argument("--inject-faults", metavar="PLAN",
                       help="serve under a fault plan (same specs as "
                            "'tune --inject-faults'; try 'serve-chaos')")
        p.add_argument("--fault-seed", type=int, default=0)
        p.add_argument("--verify-rate", type=float, default=1.0,
                       metavar="FRACTION",
                       help="fraction of responses Freivalds-verified")
        p.add_argument("--max-backlog", type=float, default=0.5,
                       metavar="SECONDS",
                       help="admission-control backlog budget "
                            "(simulated seconds of queued work)")
        p.add_argument("--deadline", type=float, default=0.5,
                       metavar="SECONDS",
                       help="per-request deadline; 0 disables")
        p.add_argument("--canary-interval", type=int, default=None,
                       metavar="N",
                       help="known-answer canary cadence for quarantined "
                            "kernels (0 disables; default 50, or 3 with "
                            "--async where ticks advance per batch)")
        p.add_argument("--attempt-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock watchdog per ladder-rung attempt")
        p.add_argument("--incident-log", metavar="LOG.json",
                       help="persist the structured incident log")
        p.add_argument("--counters-json", metavar="COUNTERS.json",
                       help="persist the service counters")
        p.add_argument("--report-json", metavar="REPORT.json",
                       help="persist the full soak report")
        p.add_argument("--trace-json", metavar="TRACE.json",
                       help="persist the kept per-request traces "
                            "(render with 'repro trace TRACE.json')")
        p.add_argument("--metrics-json", metavar="METRICS.json",
                       help="persist the metrics-registry snapshot "
                            "(render with 'repro metrics METRICS.json')")
        p.add_argument("--trace-limit", type=int, default=256, metavar="N",
                       help="per-request traces kept in memory (oldest "
                            "dropped first)")
        # -- async multi-tenant mode (repro.serve.sched) ----------------
        p.add_argument("--async", dest="async_mode", action="store_true",
                       help="serve through the async multi-tenant "
                            "scheduler (fair queueing, coalesced "
                            "batching, sharding, graceful drain)")
        p.add_argument("--tenants", type=int, default=None, metavar="N",
                       help="tenant count for the async workload "
                            "(implies --async; default 4)")
        p.add_argument("--interarrival", type=float, default=2.5e-5,
                       metavar="SECONDS",
                       help="mean simulated inter-arrival of the merged "
                            "async workload")
        p.add_argument("--max-batch", type=int, default=24, metavar="N",
                       help="coalescing cap for same-shape small requests")
        p.add_argument("--bench-json", metavar="BENCH.json",
                       help="persist the async serving benchmark "
                            "(BENCH_serving.json payload)")
        p.add_argument("--tenant-latency-json", metavar="FILE.json",
                       help="persist per-tenant latency histograms")
        # -- elastic fleet mode (repro.serve.fleet) ---------------------
        p.add_argument("--fleet", action="store_true",
                       help="serve under the elastic fleet manager: "
                            "health-checked membership, failure "
                            "detection, autoscaling (implies --async)")
        p.add_argument("--fleet-json", metavar="BENCH.json",
                       help="persist the churn-soak report "
                            "(BENCH_fleet.json payload; implies --fleet)")
        p.add_argument("--scale-log", metavar="FILE.json",
                       help="persist the autoscale event log "
                            "(implies --fleet)")
        p.add_argument("--max-devices", type=int, default=6, metavar="N",
                       help="autoscaler fleet ceiling (with --fleet)")
        p.add_argument("--grow-depth", type=float, default=48.0,
                       metavar="REQUESTS",
                       help="queue depth above which the fleet grows")
        p.add_argument("--shrink-depth", type=float, default=16.0,
                       metavar="REQUESTS",
                       help="queue depth below which the fleet shrinks")
        p.add_argument("--scale-interval", type=float, default=0.002,
                       metavar="SECONDS",
                       help="autoscaler evaluation cadence (simulated)")
        p.add_argument("--scale-cooldown", type=float, default=0.02,
                       metavar="SECONDS",
                       help="post-event decision freeze, both directions")
        p.add_argument("--load-cycle", type=float, default=0.25,
                       metavar="SECONDS",
                       help="demand-wave period of the fleet workload: "
                            "the second half of each cycle stretches "
                            "arrival gaps (with --fleet; 0 disables)")
        p.add_argument("--load-calm", type=float, default=4.0,
                       metavar="FACTOR",
                       help="arrival-gap stretch during calm half-cycles "
                            "(with --fleet)")

    p_serve = sub.add_parser(
        "serve", help="run the resilient GEMM serving layer"
    )
    add_serve_options(p_serve, default_requests=100)

    p_soak = sub.add_parser(
        "soak", help="chaos soak: every response checked against ground truth"
    )
    add_serve_options(p_soak, default_requests=1000)

    p_trace = sub.add_parser(
        "trace", help="render an observability trace as a timeline tree"
    )
    p_trace.add_argument(
        "file", nargs="?",
        help="trace file written by --trace-json (omit to trace one demo "
             "request through the serve-chaos plan)",
    )
    p_trace.add_argument("--index", type=int, default=-1,
                         help="which trace in the file (default: last)")
    p_trace.add_argument("--all", action="store_true",
                         help="render every trace in the file")
    p_trace.add_argument("--no-events", action="store_true",
                         help="hide span events (e.g. device_lost)")
    p_trace.add_argument("--seed", type=int, default=0,
                         help="demo request seed (without FILE)")
    p_trace.add_argument("--json", metavar="OUT.json", dest="out_json",
                         help="also persist the rendered trace(s)")

    p_metrics = sub.add_parser(
        "metrics", help="export the metrics registry"
    )
    p_metrics.add_argument(
        "file", nargs="?",
        help="metrics snapshot written by --metrics-json (omit to run a "
             "deterministic demo workload: chaos serving plus a tiny "
             "cached tuner run)",
    )
    p_metrics.add_argument("--format", choices=["prometheus", "json"],
                           default="prometheus")
    p_metrics.add_argument("--seed", type=int, default=0,
                           help="demo workload seed (without FILE)")

    p_bench = sub.add_parser("bench", help="regenerate paper tables/figures")
    p_bench.add_argument("experiment", nargs="?", default="all",
                         help="experiment id or 'all'")
    p_bench.add_argument("--quick", action="store_true",
                         help="reduced tuning budgets")
    p_bench.add_argument("--plot", action="store_true",
                         help="render figures as terminal line plots")

    p_analyze = sub.add_parser(
        "analyze",
        help="explain a tuned kernel and statically verify kernels "
             "(constraints, index bounds, races, source cross-checks)",
    )
    p_analyze.add_argument(
        "device", nargs="?",
        help="codename scoping the device rules (required except with "
             "--catalog, which defaults to every shipped device)",
    )
    p_analyze.add_argument("--precision", choices=["s", "d"], default="d")
    p_analyze.add_argument(
        "--params", metavar="JSON|@FILE",
        help="statically analyze one raw parameter vector (inline JSON "
             "or @file) instead of the pretuned kernel",
    )
    p_analyze.add_argument(
        "--catalog", action="store_true",
        help="statically analyze every shipped pretuned kernel; exits "
             "non-zero unless all are clean (the CI gate)",
    )
    p_analyze.add_argument(
        "--space", action="store_true",
        help="statically analyze a deterministic sample of the device's "
             "search space; exits non-zero on any finding beyond the "
             "device-budget rules",
    )
    p_analyze.add_argument("--sample", type=int, default=500, metavar="N",
                           help="space sample size for --space")
    p_analyze.add_argument("--seed", type=int, default=0,
                           help="space sample seed for --space")
    p_analyze.add_argument(
        "--samples", type=int, default=64, metavar="N",
        help="random samples per source-level bounded-evaluation check",
    )
    p_analyze.add_argument("--json", metavar="OUT.json", dest="out_json",
                           help="persist the diagnostic reports as JSON")
    p_analyze.add_argument("--verbose", action="store_true",
                           help="include passing rules in the report")

    p_report = sub.add_parser(
        "report", help="run all experiments and write a reproduction report"
    )
    p_report.add_argument("--output", default="REPORT.md")
    p_report.add_argument("--quick", action="store_true")
    p_report.add_argument("--plot", action="store_true",
                          help="embed terminal line plots in the report")

    p_emit = sub.add_parser("emit", help="print generated OpenCL C source")
    p_emit.add_argument("device")
    p_emit.add_argument("--precision", choices=["s", "d"], default="d")

    p_spec = sub.add_parser(
        "spec",
        help="model-based differential testing against the executable "
             "OpenCL mini-spec",
    )
    p_spec.add_argument("--enumerate", type=int, default=1000, metavar="N",
                        dest="enumerate_n",
                        help="run the cheapest N enumerated MBT programs "
                             "(default 1000)")
    p_spec.add_argument("--fuzz-corpus", action="store_true",
                        help="also replay the full random fuzz corpus "
                             "through the spec interpreter")
    p_spec.add_argument("--device", default="tahiti",
                        help="simulated device for the clsim leg")
    p_spec.add_argument("--max-ops", type=int, default=50_000_000,
                        help="per-run interpreter operation budget")
    p_spec.add_argument("--json", metavar="OUT.json", dest="out_json",
                        help="write the disagreement/coverage report as JSON")

    p_lint = sub.add_parser(
        "lint",
        help="run the host-layer invariant analyzer over repro's own "
             "Python sources",
    )
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: the "
                             "installed repro package)")
    p_lint.add_argument("--json", metavar="OUT.json", dest="out_json",
                        help="write the machine-readable report as JSON")
    p_lint.add_argument("--rule", action="append", dest="rules",
                        metavar="RULE-ID",
                        help="restrict to this rule id (repeatable)")
    p_lint.add_argument("--baseline", metavar="FILE",
                        help="grandfather-list file (default: "
                             "tools/host-lint-baseline.json when present)")
    p_lint.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    p_lint.add_argument("--verbose", action="store_true",
                        help="also print suppressed findings")
    return parser


def _cmd_info(args) -> int:
    from repro.bench.experiments import table1
    from repro.devices import CATALOG, get_device_spec

    if args.device:
        spec = get_device_spec(args.device)
        print(f"{spec.codename}: {spec.vendor} {spec.product_name}")
        print(f"  type              : {spec.device_type.value}")
        print(f"  clock             : {spec.clock_ghz} GHz x {spec.compute_units} CUs")
        print(f"  peak DP / SP      : {spec.peak_dp_gflops} / {spec.peak_sp_gflops} GFlop/s")
        print(f"  memory bandwidth  : {spec.bandwidth_gbs} GB/s")
        print(f"  local memory      : {spec.local_mem_kb} kB ({spec.local_mem_type.value})")
        print(f"  OpenCL SDK        : {spec.opencl_sdk}")
    else:
        print(table1().render())
        extras = sorted(set(CATALOG) - {"tahiti", "cayman", "kepler", "fermi",
                                        "sandybridge", "bulldozer"})
        print(f"additional devices: {', '.join(extras)}")
    return 0


def _cmd_tune(args) -> int:
    from repro.testing.sanitize import sanitize_from_env

    with sanitize_from_env():
        return _tune_impl(args)


def _tune_impl(args) -> int:
    from repro.clsim.faults import FaultInjector, FaultPlan
    from repro.codegen.space import SpaceRestrictions
    from repro.devices import get_device_spec
    from repro.persist import dump_json_atomic
    from repro.tuner.analysis import render_stats
    from repro.tuner.cache import MeasurementCache
    from repro.tuner.resilience import ResilienceConfig
    from repro.tuner.results import ResultsDatabase
    from repro.tuner.search import SearchEngine, TuningConfig

    budget = None if args.budget == "full" else int(args.budget)
    config = TuningConfig(
        budget=budget,
        seed=args.seed,
        problem_shape=tuple(args.shape) if args.shape else None,
        refine_rounds=0 if args.no_refine else 1,
        strategy=args.strategy,
        transfer=args.transfer,
    )
    restrictions = SpaceRestrictions(
        forced_images=True if args.images else None,
        forced_guarded=True if args.guarded else None,
    )
    cache = MeasurementCache(args.cache) if args.cache else None
    injector = None
    resilience = None
    if args.inject_faults:
        plan = FaultPlan.parse(args.inject_faults, seed=args.fault_seed)
        injector = FaultInjector(plan)
        print(f"fault plan    : {args.inject_faults} "
              f"(seed {plan.seed}, digest {plan.digest()})")
    if injector is not None or args.measure_timeout is not None:
        resilience = ResilienceConfig(
            max_retries=args.max_retries,
            measure_timeout_s=args.measure_timeout,
            samples=args.measure_samples,
        )
    obs = None
    if args.trace_json or args.metrics_json:
        from repro.obs import Observability

        obs = Observability(seed=args.seed)
    engine = SearchEngine(
        args.device, args.precision, config, restrictions,
        cache=cache,
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        injector=injector,
        resilience=resilience,
        obs=obs,
        static_gate=not args.no_static_gate,
    )
    result = engine.run()
    spec = get_device_spec(args.device)
    print(f"device        : {result.device}")
    print(f"precision     : {result.precision}")
    print(f"best kernel   : {result.best.params.summary()}")
    print(f"best rate     : {result.best_gflops:.1f} GFlop/s "
          f"({result.efficiency(spec) * 100:.0f}% of peak) at N={result.best.size}")
    print(render_stats(result.stats))
    if cache is not None:
        cache.save(args.cache)
        print(f"cache         : {args.cache} ({len(cache)} entries)")
    if args.save:
        db = ResultsDatabase(args.save)
        db.put_result(result)
        db.save()
        print(f"saved         : {args.save}")
    if args.stats_json:
        # CI's chaos job archives these counters as its run artifact.
        payload = result.stats.as_dict()
        if result.stats.strategy_importance:
            # The surrogate's learned importances in the same shape as
            # the one-at-a-time sensitivity report (analysis module).
            from repro.tuner.analysis import surrogate_sensitivities

            payload["strategy_sensitivity"] = [
                {
                    "family": row.family,
                    "loss": row.loss(result.best_gflops),
                    "features": row.variants,
                }
                for row in surrogate_sensitivities(
                    result.stats.strategy_importance, result.best_gflops
                )
            ]
        dump_json_atomic(args.stats_json, payload, indent=2)
        print(f"stats         : {args.stats_json}")
    if obs is not None:
        from repro.obs import save_metrics, save_traces

        if args.trace_json:
            save_traces(args.trace_json, list(obs.traces))
            print(f"trace         : {args.trace_json} "
                  f"({len(obs.traces)} traces)")
        if args.metrics_json:
            save_metrics(args.metrics_json, obs.metrics)
            print(f"metrics       : {args.metrics_json}")
    return 0


def _cmd_gemm(args) -> int:
    from repro.api import tuned_gemm
    from repro.gemm.reference import reference_gemm, relative_error

    routine = tuned_gemm(args.device, args.precision)
    n = args.size
    rng = np.random.default_rng(0)
    shape_a = (n, n)
    a = rng.standard_normal(shape_a).astype(routine.dtype)
    b = rng.standard_normal((n, n)).astype(routine.dtype)
    result = routine(a, b, transa=args.transa, transb=args.transb)
    err = relative_error(
        result.c, reference_gemm(args.transa, args.transb, 1.0, a, b, 0.0)
    )
    print(f"{args.transa}{args.transb} {n}x{n}x{n} on {args.device} "
          f"({'SGEMM' if args.precision == 's' else 'DGEMM'})")
    print(f"  kernel    : {result.kernel_gflops:8.1f} GFlop/s (simulated)")
    print(f"  effective : {result.effective_gflops:8.1f} GFlop/s incl. copies")
    print(f"  max error : {err:.2e} vs numpy reference")
    return 0


def _run_serving(args, check_clean: bool) -> int:
    from repro.clsim.faults import FaultInjector, FaultPlan
    from repro.obs import Observability, save_metrics, save_traces
    from repro.persist import dump_json_atomic
    from repro.serve import GemmService, ServiceConfig, SoakConfig, run_soak

    fleet_mode = bool(args.fleet or args.fleet_json or args.scale_log)
    async_mode = args.async_mode or args.tenants is not None or fleet_mode
    injector = None
    if args.inject_faults:
        plan = FaultPlan.parse(args.inject_faults, seed=args.fault_seed)
        injector = FaultInjector(plan)
        print(f"fault plan    : {args.inject_faults} "
              f"(seed {plan.seed}, digest {plan.digest()})")
    canary_interval = args.canary_interval
    if canary_interval is None:
        # Ticks advance once per dispatch; with coalesced batches a tick
        # covers many requests, so async mode canaries far more often.
        canary_interval = 3 if async_mode else 50
    config = ServiceConfig(
        seed=args.seed,
        max_backlog_s=args.max_backlog,
        # In async mode the scheduler owns deadlines (per tenant or per
        # request); the service-level default would double-count them.
        default_deadline_s=(None if async_mode
                            else args.deadline if args.deadline > 0
                            else None),
        verify_rate=args.verify_rate,
        canary_interval=canary_interval,
        canary_passes=1 if async_mode else 2,
        attempt_timeout_s=args.attempt_timeout,
    )
    obs = Observability(seed=args.seed, trace_limit=max(1, args.trace_limit))
    service = GemmService(
        args.device, args.precision, config=config, fault_injector=injector,
        obs=obs,
    )
    print(service.ladder.describe())
    if async_mode:
        report = _run_async_soak(args, service, fleet_mode)
    else:
        report = run_soak(
            service, SoakConfig(requests=args.requests, seed=args.seed)
        )
    print(report.render())
    print(service.counters.render())
    if args.incident_log:
        service.log.save(args.incident_log)
        print(f"incident log  : {args.incident_log} ({len(service.log)} incidents)")
    if args.counters_json:
        dump_json_atomic(args.counters_json, service.counters.as_dict(), indent=2)
        print(f"counters      : {args.counters_json}")
    if args.report_json:
        report.save(args.report_json)
        print(f"report        : {args.report_json}")
    if args.bench_json and hasattr(report, "aggregate_gflops"):
        report.save(args.bench_json)
        print(f"bench         : {args.bench_json}")
    if args.fleet_json and hasattr(report, "episodes"):
        report.save(args.fleet_json)
        print(f"fleet bench   : {args.fleet_json}")
    if args.scale_log and hasattr(report, "scale_events"):
        dump_json_atomic(args.scale_log, {
            "format": "repro-fleet-scale-log/1",
            "cooldown_s": report.cooldown_s,
            "events": report.scale_events,
            "flap_pairs": report.flap_pairs,
        }, indent=2)
        print(f"scale log     : {args.scale_log} "
              f"({len(report.scale_events)} events)")
    if args.tenant_latency_json and hasattr(report, "per_tenant"):
        dump_json_atomic(
            args.tenant_latency_json,
            {
                "format": "repro-tenant-latency/1",
                "tenants": {
                    name: {
                        "p50_ms": t["p50_ms"],
                        "p99_ms": t["p99_ms"],
                        "max_wait_ms": t["max_wait_ms"],
                        "latency_hist_ms": t["latency_hist_ms"],
                    }
                    for name, t in report.per_tenant.items()
                },
            },
            indent=2,
        )
        print(f"tenant latency: {args.tenant_latency_json}")
    if args.trace_json:
        save_traces(args.trace_json, list(obs.traces))
        print(f"trace         : {args.trace_json} ({len(obs.traces)} traces "
              f"kept, {obs.tracer.dropped} dropped)")
    if args.metrics_json:
        save_metrics(args.metrics_json, obs.metrics)
        print(f"metrics       : {args.metrics_json}")
    if check_clean and not report.clean:
        reasons = [f"{report.wrong_answers} numerically incorrect "
                   f"responses escaped the serving layer"]
        if getattr(report, "starved_tenants", None):
            reasons.append(
                f"starved tenants: {', '.join(report.starved_tenants)}"
            )
        print("FAILED: " + "; ".join(reasons))
        return 1
    return 0


def _run_async_soak(args, service, fleet_mode: bool = False):
    """The --async workload: N tenants over the default load mix."""
    from dataclasses import replace

    from repro.serve import AsyncSoakConfig, DEFAULT_TENANT_LOADS, run_async_soak

    count = args.tenants if args.tenants is not None else 4
    if count < 1:
        raise SystemExit("--tenants must be >= 1")
    # Cycle the canonical four-load mix, suffixing extra generations so
    # any tenant count keeps distinct names and deterministic streams.
    loads = tuple(
        base if i < len(DEFAULT_TENANT_LOADS)
        else replace(base, name=f"{base.name}{i // len(DEFAULT_TENANT_LOADS)}")
        for i, base in (
            (j, DEFAULT_TENANT_LOADS[j % len(DEFAULT_TENANT_LOADS)])
            for j in range(count)
        )
    )
    config = AsyncSoakConfig(
        requests=args.requests,
        seed=args.seed,
        tenants=loads,
        interarrival_s=args.interarrival,
        max_batch=args.max_batch,
        # The fleet manager suspends/resumes devices itself; a scheduled
        # hot swap against a parked device would test the collision.
        hot_swap_at=0.0 if fleet_mode else AsyncSoakConfig.hot_swap_at,
        # Only the churn soak cycles demand: a flat overload leaves the
        # autoscaler nothing to track but a single grow-to-max ramp.
        load_cycle_s=args.load_cycle if fleet_mode else 0.0,
        load_calm_factor=args.load_calm if fleet_mode else 1.0,
    )
    if fleet_mode:
        from repro.serve import (
            AutoscaleConfig,
            FleetConfig,
            FleetSoakConfig,
            run_fleet_soak,
        )

        fleet = FleetConfig(autoscale=AutoscaleConfig(
            max_devices=args.max_devices,
            grow_queue_depth=args.grow_depth,
            shrink_queue_depth=args.shrink_depth,
            eval_interval_s=args.scale_interval,
            cooldown_s=args.scale_cooldown,
        ))
        return run_fleet_soak(
            service, FleetSoakConfig(soak=config, fleet=fleet)
        )
    return run_async_soak(service, config)


def _cmd_serve(args) -> int:
    from repro.testing.sanitize import sanitize_from_env

    with sanitize_from_env():
        return _run_serving(args, check_clean=False)


def _cmd_soak(args) -> int:
    from repro.testing.sanitize import sanitize_from_env

    with sanitize_from_env():
        return _run_serving(args, check_clean=True)


def _demo_observability(seed: int, requests: int = 0):
    """A deterministic telemetry demo: chaos-served requests on tahiti.

    With ``requests == 0`` a single request is served (the ``repro
    trace`` demo); otherwise a seeded soak workload runs (the ``repro
    metrics`` demo needs enough traffic to populate the fallback
    series).
    """
    from repro.clsim.faults import FaultInjector, FaultPlan
    from repro.obs import Observability
    from repro.serve import GemmService, ServiceConfig, SoakConfig, run_soak

    obs = Observability(seed=seed, trace_limit=64)
    plan = FaultPlan.parse("serve-chaos", seed=seed)
    service = GemmService(
        "tahiti", "d", config=ServiceConfig(seed=seed),
        fault_injector=FaultInjector(plan), obs=obs,
    )
    if requests:
        run_soak(service, SoakConfig(requests=requests, seed=seed))
    else:
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        service.submit(a, b)
    return obs


def _cmd_trace(args) -> int:
    from repro.obs import load_traces, render_trace, save_traces

    if args.file:
        traces = load_traces(args.file)
        if traces is None:
            print(f"error: {args.file} is not a readable trace file",
                  file=sys.stderr)
            return 1
        if not traces:
            print(f"error: {args.file} holds no traces", file=sys.stderr)
            return 1
        shown = traces if args.all else [traces[args.index]]
    else:
        print("no trace file given; tracing one request through the "
              "serve-chaos plan\n")
        traces = list(_demo_observability(args.seed).traces)
        shown = traces
    for i, trace in enumerate(shown):
        if i:
            print()
        print(render_trace(trace, show_events=not args.no_events))
    if args.out_json:
        save_traces(args.out_json, traces)
        print(f"\nsaved {len(traces)} trace(s) to {args.out_json}")
    return 0


def _cmd_metrics(args) -> int:
    from repro.obs import load_metrics, render_prometheus

    if args.file:
        snapshot = load_metrics(args.file)
        if snapshot is None:
            print(f"error: {args.file} is not a readable metrics snapshot",
                  file=sys.stderr)
            return 1
    else:
        print("no snapshot given; running the demo workload "
              "(chaos serving + a tiny cached tuner run)\n", file=sys.stderr)
        from repro.tuner.cache import MeasurementCache
        from repro.tuner.search import SearchEngine, TuningConfig

        obs = _demo_observability(args.seed, requests=160)
        cache = MeasurementCache()
        for _ in range(2):  # the second, cache-warm run produces the hits
            SearchEngine(
                "tahiti", "d", TuningConfig(budget=48, seed=args.seed),
                cache=cache, obs=obs,
            ).run()
        snapshot = obs.metrics.snapshot()
    if args.format == "json":
        import json

        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(render_prometheus(snapshot), end="")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import EXPERIMENTS, run_experiment
    from repro.bench.figures import ascii_plot

    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for eid in ids:
        result = run_experiment(eid, quick=args.quick)
        print(result.render())
        if args.plot:
            for series, title in zip(result.figures, result.figure_titles):
                print(ascii_plot(series, title=title))
                print()
    return 0


def _finish_analyze(reports, args) -> int:
    """Render static-analysis reports, persist --json, set the exit code."""
    from repro.analyze import render_reports, reports_to_json
    from repro.persist import atomic_write

    print(render_reports(reports, verbose=args.verbose))
    if args.out_json:
        atomic_write(args.out_json, reports_to_json(reports))
        print(f"report        : {args.out_json}")
    return 0 if all(r.ok for r in reports) else 1


def _cmd_analyze(args) -> int:
    from repro.analyze import analyze_catalog, analyze_params, analyze_space_sample

    if args.catalog:
        reports = analyze_catalog(device=args.device, samples=args.samples)
        if not reports:
            print(f"error: no pretuned kernels for device {args.device!r}",
                  file=sys.stderr)
            return 1
        return _finish_analyze(reports, args)
    if args.device is None and not args.params:
        # --params alone is fine: the structural rules are
        # device-neutral, so a vector can be analyzed with no device.
        print("error: a device codename is required except with "
              "--catalog or --params", file=sys.stderr)
        return 2
    if args.space:
        reports = analyze_space_sample(
            args.device, args.precision,
            sample=args.sample, seed=args.seed, samples=args.samples,
        )
        return _finish_analyze(reports, args)
    if args.params:
        import json

        if args.params.startswith("@"):
            with open(args.params[1:], encoding="utf-8") as fh:
                raw = json.load(fh)
        else:
            raw = json.loads(args.params)
        report = analyze_params(raw, device=args.device, samples=args.samples)
        return _finish_analyze([report], args)

    from repro.perfmodel.roofline import roofline_point
    from repro.tuner.analysis import analyze_kernel
    from repro.tuner.pretuned import pretuned_params

    params = pretuned_params(args.device, args.precision)
    analysis = analyze_kernel(args.device, params)
    print(analysis.render())
    print()
    n = analysis.size
    print(roofline_point(args.device, params, n, n, n).render())
    print()
    report = analyze_params(params, device=args.device, samples=args.samples)
    return _finish_analyze([report], args)


def _cmd_report(args) -> int:
    from repro.bench.report import generate_report

    generate_report(args.output, quick=args.quick, plots=args.plot)
    print(f"wrote {args.output}")
    return 0


def _cmd_emit(args) -> int:
    from repro.codegen.emitter import emit_kernel_source
    from repro.tuner.pretuned import pretuned_params

    params = pretuned_params(args.device, args.precision)
    print(emit_kernel_source(params))
    return 0


def _cmd_spec(args) -> int:
    from repro.persist import dump_json_atomic
    from repro.spec.corpus import as_spec_programs, fuzz_cases
    from repro.spec.differential import run_differential
    from repro.spec.enumerate import enumerate_programs

    programs = list(enumerate_programs(limit=args.enumerate_n))
    print(f"enumerated MBT programs : {len(programs)}")
    if args.fuzz_corpus:
        cases = fuzz_cases()
        programs += list(as_spec_programs(cases))
        print(f"fuzz corpus replays     : {len(cases)}")

    done = {"n": 0}

    def progress(record) -> None:
        done["n"] += 1
        if record.is_disagreement:
            print(f"  [{record.origin}:{record.index}] "
                  f"{record.classification}: {record.description}")
        if done["n"] % 200 == 0:
            print(f"  ... {done['n']}/{len(programs)} programs classified")

    report = run_differential(
        programs, device=args.device, max_ops=args.max_ops,
        progress=progress,
    )
    print(f"classified              : {report.by_class()}")
    disagreements = report.disagreements()
    if args.fuzz_corpus:
        card = report.coverage_scorecard()
        print(f"constructs MBT-only     : {len(card['mbt_only'])} "
              f"{card['mbt_only'][:8]}")
        print(f"constructs fuzz-only    : {len(card['fuzz_only'])} "
              f"{card['fuzz_only'][:8]}")
        print(f"constructs shared       : {len(card['both'])}")
    if args.out_json:
        dump_json_atomic(args.out_json, report.to_dict(), indent=2)
        print(f"report                  : {args.out_json}")
    if disagreements:
        print(f"DISAGREEMENTS           : {len(disagreements)}")
        return 1
    print("all programs agree across spec / clsim / numpy / analyzer")
    return 0


def _cmd_lint(args) -> int:
    import os

    from repro.analyze.host import (
        DEFAULT_BASELINE_PATH,
        Baseline,
        lint_paths,
        lint_tree,
        rule_catalog,
    )
    from repro.persist import atomic_write

    if args.list_rules:
        for rule_id, description in rule_catalog():
            print(f"{rule_id:24s} {description}")
        return 0
    baseline = None
    if not args.no_baseline:
        path = args.baseline or (
            DEFAULT_BASELINE_PATH
            if os.path.exists(DEFAULT_BASELINE_PATH) else None
        )
        if path:
            baseline = Baseline.load(path)
    if args.paths:
        result = lint_paths(args.paths, baseline=baseline,
                            only_rules=args.rules)
    else:
        result = lint_tree(baseline=baseline, only_rules=args.rules)
    if args.out_json:
        atomic_write(args.out_json, result.to_json())
        print(f"report: {args.out_json}")
    print(result.render(verbose=args.verbose))
    return 0 if result.ok else 1


_COMMANDS = {
    "info": _cmd_info,
    "tune": _cmd_tune,
    "gemm": _cmd_gemm,
    "serve": _cmd_serve,
    "soak": _cmd_soak,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "bench": _cmd_bench,
    "analyze": _cmd_analyze,
    "report": _cmd_report,
    "emit": _cmd_emit,
    "spec": _cmd_spec,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
