"""Public test utilities for downstream users.

Anything that computes with this library should be able to verify
itself; this module packages the generators and assertions the internal
test-suite uses so that downstream code can do the same::

    from repro.testing import make_problem, assert_gemm_close

    problem = make_problem(200, 150, 80, precision="s", seed=7)
    result = my_routine(problem.a, problem.b, problem.c,
                        alpha=problem.alpha, beta=problem.beta)
    assert_gemm_close(result.c, problem.expected, "s")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.codegen.params import KernelParams
from repro.devices.specs import DeviceSpec
from repro.gemm.reference import reference_gemm, relative_error

__all__ = [
    "GemmProblem",
    "make_problem",
    "assert_gemm_close",
    "tolerance_for",
    "random_params",
]

#: Relative-error tolerances by precision for a verified GEMM result.
TOLERANCES = {"s": 5e-4, "d": 1e-10}


def tolerance_for(precision: str) -> float:
    """The acceptance tolerance the tuner's verification stage uses."""
    try:
        return TOLERANCES[precision]
    except KeyError:
        raise ValueError(f"precision must be 's' or 'd', got {precision!r}") from None


@dataclass(frozen=True)
class GemmProblem:
    """One reproducible GEMM problem with its reference answer."""

    a: np.ndarray
    b: np.ndarray
    c: Optional[np.ndarray]
    alpha: float
    beta: float
    transa: str
    transb: str
    expected: np.ndarray

    @property
    def shape(self):
        return self.expected.shape


def make_problem(
    M: int,
    N: int,
    K: int,
    precision: str = "d",
    alpha: float = 1.5,
    beta: float = -0.5,
    transa: str = "N",
    transb: str = "N",
    seed: int = 0,
) -> GemmProblem:
    """A reproducible random GEMM problem plus its numpy reference."""
    rng = np.random.default_rng(seed)
    dtype = np.float64 if precision == "d" else np.float32
    transa, transb = transa.upper(), transb.upper()
    a = rng.standard_normal((M, K) if transa == "N" else (K, M)).astype(dtype)
    b = rng.standard_normal((K, N) if transb == "N" else (N, K)).astype(dtype)
    c = rng.standard_normal((M, N)).astype(dtype) if beta != 0.0 else None
    expected = reference_gemm(transa, transb, alpha, a, b, beta, c)
    return GemmProblem(a, b, c, alpha, beta, transa, transb, expected)


def assert_gemm_close(
    result: np.ndarray,
    expected: np.ndarray,
    precision: str = "d",
    context: str = "",
) -> None:
    """Assert a GEMM result matches its reference within precision."""
    if result.shape != expected.shape:
        raise AssertionError(
            f"shape mismatch: {result.shape} vs {expected.shape}"
            + (f" ({context})" if context else "")
        )
    error = relative_error(result, expected)
    tol = tolerance_for(precision)
    if error > tol:
        raise AssertionError(
            f"GEMM result off by {error:.3e} (tolerance {tol:.1e})"
            + (f" ({context})" if context else "")
        )


def random_params(
    device: DeviceSpec,
    precision: str = "d",
    seed: int = 0,
    count: int = 1,
):
    """Structurally valid random kernel parameter vectors for a device.

    A runtime counterpart of the hypothesis strategies: drawn from the
    same heuristic space the tuner searches, so every vector builds and
    runs on ``device``.
    """
    from repro.codegen.space import enumerate_space

    out = []
    for params in enumerate_space(
        device, precision, seed=seed, include_seeds=False, limit=max(count * 7, 50)
    ):
        out.append(params)
    if len(out) < count:
        raise ValueError(f"could not draw {count} candidates for {device.codename}")
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(out), size=count, replace=False)
    chosen = [out[i] for i in picks]
    return chosen[0] if count == 1 else chosen
