"""Runtime determinism sanitizer and dynamic lock-order recorder.

The static rules in :mod:`repro.analyze.host` prove what the AST shows;
this module enforces the same invariants *dynamically*, catching what
static analysis cannot see (``getattr`` dispatch, third-party callbacks,
monkey-patched entry points):

:class:`DeterminismSanitizer`
    Patches the wall-clock and global-RNG entry points
    (``time.time``/``monotonic``/``perf_counter`` families, module-level
    ``random.*``, ``uuid.uuid4``, ``os.urandom``, numpy's legacy global
    RNG functions) so that a call *from repro code* raises
    :class:`~repro.errors.DeterminismViolation`.  Callers outside the
    package — pytest, stdlib internals such as
    ``ThreadPoolExecutor``'s own ``time.monotonic``, numpy — pass
    through untouched, as does the allowlisted stats-timing set (the
    same files ``host.time.wallclock`` exempts).

:class:`LockOrderRecorder`
    Wraps the ``threading.Lock``/``RLock`` factories to record, per
    thread, the order in which repro-created locks nest.  After a run,
    :meth:`LockOrderRecorder.assert_consistent` fails if two locks were
    ever taken in both orders — the dynamic witness for the
    ``host.lock.order`` static rule.

:func:`sanitize_from_env`
    The CI hook: returns an active sanitizer context when
    ``REPRO_SANITIZE`` is set (the chaos and serve-async jobs export
    it), a ``nullcontext`` otherwise — zero overhead by default.
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import DeterminismViolation

__all__ = [
    "DeterminismSanitizer",
    "LockOrderRecorder",
    "sanitize_from_env",
    "SANITIZE_ENV_VAR",
    "WALLCLOCK_RUNTIME_ALLOWLIST",
]

#: Environment variable that arms :func:`sanitize_from_env`.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

#: Path suffixes (within the package) allowed to read the wall clock at
#: runtime — must stay in sync with the static rule's
#: ``WALLCLOCK_ALLOWED_SUFFIXES``.
WALLCLOCK_RUNTIME_ALLOWLIST = (
    os.path.join("tuner", "search.py"),
)


def _package_dir() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__)) + os.sep


def _caller_filename(depth: int = 2) -> str:
    """Filename of the frame that called the patched entry point."""
    frame = sys._getframe(depth)
    return frame.f_code.co_filename


#: The sanitizer currently holding the global patches (one at a time;
#: nested instances become passive so wrappers never stack — a stacked
#: wrapper would itself be "repro code" and mis-attribute every caller).
_active_sanitizer: Optional["DeterminismSanitizer"] = None


class _Patch:
    """One (holder, attribute) replacement, reversible."""

    def __init__(self, holder, attr: str, wrapper_factory) -> None:
        self.holder = holder
        self.attr = attr
        self.original = getattr(holder, attr)
        self.wrapper = wrapper_factory(self.original)

    def apply(self) -> None:
        setattr(self.holder, self.attr, self.wrapper)

    def revert(self) -> None:
        setattr(self.holder, self.attr, self.original)


class DeterminismSanitizer(contextlib.AbstractContextManager):
    """Context manager that makes nondeterminism loud inside repro code.

    While active, wall-clock reads and unseeded global-RNG draws made by
    code under the ``repro`` package raise
    :class:`~repro.errors.DeterminismViolation` naming the entry point
    and the offending file.  All other callers get the original
    functions, so the interpreter, pytest, and libraries keep working.

    Use as::

        with DeterminismSanitizer():
            run_chaos_soak(...)

    Violations observed via :attr:`violations` survive the context exit
    for assertion messages.
    """

    #: (module name, attribute) wall-clock entry points to trap.
    WALL_CLOCK = (
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "process_time"),
        ("time", "process_time_ns"),
    )

    #: Module-level RNG entry points whose state no seed controls here.
    GLOBAL_RNG = (
        ("random", "random"),
        ("random", "randint"),
        ("random", "randrange"),
        ("random", "uniform"),
        ("random", "choice"),
        ("random", "choices"),
        ("random", "shuffle"),
        ("random", "sample"),
        ("random", "gauss"),
        ("random", "getrandbits"),
        ("uuid", "uuid4"),
        ("os", "urandom"),
    )

    #: numpy legacy global-RNG functions (the `np.random.*` module-level
    #: API backed by a hidden global RandomState).
    NUMPY_GLOBAL_RNG = (
        "rand", "randn", "random", "randint", "choice", "shuffle",
        "permutation", "standard_normal", "uniform", "normal", "bytes",
        "random_sample",
    )

    def __init__(self, allow_wallclock_suffixes: Tuple[str, ...] =
                 WALLCLOCK_RUNTIME_ALLOWLIST) -> None:
        self._allow = allow_wallclock_suffixes
        self._package = _package_dir()
        self._patches: List[_Patch] = []
        self._active = False
        #: (entry point, caller filename) pairs that raised.
        self.violations: List[Tuple[str, str]] = []

    # -- caller classification -------------------------------------------
    def _repro_caller(self, filename: str) -> bool:
        return filename.startswith(self._package)

    def _allowed_wallclock(self, filename: str) -> bool:
        return any(filename.endswith(sfx) for sfx in self._allow)

    # -- wrapper construction --------------------------------------------
    def _guard(self, label: str, original: Callable,
               allow_check: Optional[Callable[[str], bool]]) -> Callable:
        def wrapper(*a, **kw):
            caller = _caller_filename()
            if self._active and self._repro_caller(caller):
                if allow_check is None or not allow_check(caller):
                    self.violations.append((label, caller))
                    raise DeterminismViolation(
                        f"{label} called from repro code ({caller}) under "
                        "the determinism sanitizer; thread timing or seed "
                        "state would leak into results"
                    )
            return original(*a, **kw)

        wrapper.__name__ = getattr(original, "__name__", label)
        return wrapper

    def _build_patches(self) -> List[_Patch]:
        import importlib

        patches: List[_Patch] = []
        for mod_name, attr in self.WALL_CLOCK:
            mod = importlib.import_module(mod_name)
            patches.append(_Patch(
                mod, attr,
                lambda orig, label=f"{mod_name}.{attr}": self._guard(
                    label, orig, self._allowed_wallclock),
            ))
        for mod_name, attr in self.GLOBAL_RNG:
            mod = importlib.import_module(mod_name)
            patches.append(_Patch(
                mod, attr,
                lambda orig, label=f"{mod_name}.{attr}": self._guard(
                    label, orig, None),
            ))
        try:
            import numpy.random as npr
        except ImportError:  # pragma: no cover - numpy is a hard dep
            npr = None
        if npr is not None:
            for attr in self.NUMPY_GLOBAL_RNG:
                if hasattr(npr, attr):
                    patches.append(_Patch(
                        npr, attr,
                        lambda orig, label=f"numpy.random.{attr}":
                            self._guard(label, orig, None),
                    ))
        return patches

    # -- context protocol ------------------------------------------------
    def __enter__(self) -> "DeterminismSanitizer":
        global _active_sanitizer
        if self._active:
            raise RuntimeError("DeterminismSanitizer is not reentrant")
        if _active_sanitizer is not None:
            # Nested activation (a sanitizing test fixture running the
            # CLI, whose entry points sanitize again): the outer
            # instance keeps enforcing; this one stays passive.
            return self
        self._patches = self._build_patches()
        for patch in self._patches:
            patch.apply()
        # Enter/exit run on the one orchestrating thread; _active is
        # read by wrappers but only flips while it is the sole thread
        # in repro code.
        self._active = True
        _active_sanitizer = self
        return self

    def __exit__(self, *exc) -> None:
        global _active_sanitizer
        if _active_sanitizer is not self:
            return  # was passive: the outer instance owns the patches
        self._active = False
        for patch in reversed(self._patches):
            patch.revert()
        self._patches = []
        _active_sanitizer = None


class LockOrderRecorder(contextlib.AbstractContextManager):
    """Records the nesting order of repro-created locks per thread.

    While active, ``threading.Lock``/``RLock`` objects constructed *by
    repro code* are wrapped so every acquire/release updates a
    thread-local held-stack; each "acquire B while holding A" adds the
    edge ``A -> B`` to a global order graph.  After the workload,
    :meth:`assert_consistent` fails if any pair of locks was observed in
    both orders — the runtime analogue of ``host.lock.order``.

    Locks are labelled by the source location that created them, so a
    report reads ``sched.py:143 -> fleet.py:88``.
    """

    def __init__(self) -> None:
        self._package = _package_dir()
        self._graph_lock = threading.Lock()
        #: edge -> first witnessed (thread name) ; edge = (outer, inner).
        self.edges: Dict[Tuple[str, str], str] = {}
        self._held = threading.local()
        self._orig_lock = None
        self._orig_rlock = None
        self._active = False

    # -- bookkeeping -----------------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _on_acquire(self, label: str) -> None:
        stack = self._stack()
        with self._graph_lock:
            for outer in stack:
                if outer != label:
                    self.edges.setdefault(
                        (outer, label), threading.current_thread().name)
        stack.append(label)

    def _on_release(self, label: str) -> None:
        stack = self._stack()
        if label in stack:
            stack.reverse()
            stack.remove(label)
            stack.reverse()

    class _InstrumentedLock:
        """Proxy adding order bookkeeping around a real lock."""

        def __init__(self, inner, label: str,
                     recorder: "LockOrderRecorder") -> None:
            self._inner = inner
            self._label = label
            self._recorder = recorder

        def acquire(self, *a, **kw):
            got = self._inner.acquire(*a, **kw)
            if got:
                self._recorder._on_acquire(self._label)
            return got

        def release(self):
            self._recorder._on_release(self._label)
            return self._inner.release()

        def __enter__(self):
            self.acquire()
            return self

        def __exit__(self, *exc):
            self.release()

        def locked(self):
            return self._inner.locked()

        def __repr__(self):
            return f"<instrumented {self._label} {self._inner!r}>"

    def _factory(self, original):
        def make_lock(*a, **kw):
            inner = original(*a, **kw)
            caller = sys._getframe(1)
            filename = caller.f_code.co_filename
            if not filename.startswith(self._package):
                return inner
            label = (os.path.relpath(filename, self._package) +
                     f":{caller.f_lineno}")
            return self._InstrumentedLock(inner, label, self)

        return make_lock

    # -- context protocol ------------------------------------------------
    def __enter__(self) -> "LockOrderRecorder":
        if self._active:
            raise RuntimeError("LockOrderRecorder is not reentrant")
        # Enter/exit happen on the single orchestrating thread before
        # any workload thread exists; the recorder only shares `edges`
        # (guarded by _graph_lock) with instrumented threads.
        self._orig_lock = threading.Lock  # repro: allow(host.race.unlocked-attr)
        self._orig_rlock = threading.RLock  # repro: allow(host.race.unlocked-attr)
        threading.Lock = self._factory(self._orig_lock)  # type: ignore
        threading.RLock = self._factory(self._orig_rlock)  # type: ignore
        self._active = True  # repro: allow(host.race.unlocked-attr)
        return self

    def __exit__(self, *exc) -> None:
        threading.Lock = self._orig_lock  # type: ignore
        threading.RLock = self._orig_rlock  # type: ignore
        self._active = False  # repro: allow(host.race.unlocked-attr)

    # -- reporting -------------------------------------------------------
    def inversions(self) -> List[Tuple[str, str]]:
        """Lock pairs observed nesting in both orders (each pair once)."""
        seen: Set[Tuple[str, str]] = set(self.edges)
        out: List[Tuple[str, str]] = []
        for (a, b) in sorted(seen):
            if a < b and (b, a) in seen:
                out.append((a, b))
        return out

    def assert_consistent(self) -> None:
        """Raise ``AssertionError`` naming every order inversion."""
        bad = self.inversions()
        if bad:
            lines = [f"  {a} <-> {b}" for a, b in bad]
            raise AssertionError(
                "lock-acquisition-order inversions observed "
                "(potential ABBA deadlock):\n" + "\n".join(lines)
            )


def sanitize_from_env(
    env_var: str = SANITIZE_ENV_VAR,
) -> contextlib.AbstractContextManager:
    """An armed :class:`DeterminismSanitizer` when ``$REPRO_SANITIZE`` is
    set to a non-empty, non-"0" value; a ``nullcontext`` otherwise.

    The long-running CLI entry points (``repro tune``, ``repro serve``,
    ``repro soak``) wrap their bodies in this, so CI jobs opt in with
    one environment variable and local runs pay nothing.
    """
    value = os.environ.get(env_var, "")
    if value and value != "0":
        return DeterminismSanitizer()
    return contextlib.nullcontext()
