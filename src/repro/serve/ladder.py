"""The graceful-degradation ladder.

"A Few Fit Most" (Hochgraf & Pai, 2025) observes that production GEMM
serving keeps several kernel versions per device and a safe fallback;
this module arranges them as an ordered ladder of :class:`Rung`\\ s:

1. ``tuned``      — the service's primary kernel (explicit params, a
                    tuning result's winner, or the shipped pretuned set);
2. ``pretuned``   — the shipped pretuned parameters, when distinct from
                    the primary (a known-good configuration to fall back
                    to when the primary is quarantined);
3. ``direct``     — the copy-free bounds-checked routine: fewer moving
                    parts (no pack kernels), so it survives fault classes
                    that break the packed path;
4. ``reference``  — the host numpy GEMM: cannot fault, cannot corrupt,
                    and is the reason every admitted request returns a
                    numerically correct answer even with the whole
                    simulated fleet faulted out.

With a multi-device fleet, rungs 1-3 repeat per device (in the given
device order) before the single host rung.  Routines are built lazily:
a rung whose kernel fails to *build* (injected build faults) reports the
failure to the caller, which degrades past it and retries construction
on a later request.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.codegen.params import KernelParams
from repro.devices.catalog import get_device_spec
from repro.devices.specs import DeviceSpec
from repro.gemm.direct import DirectGemmRoutine, direct_params
from repro.gemm.reference import reference_gemm
from repro.gemm.routine import GemmRoutine, predict_implementation

__all__ = ["Rung", "DegradationLadder"]


class Rung:
    """One ladder step: a named way to compute a GEMM.

    ``call`` returns ``(c, simulated_seconds)``.  Device rungs build
    their :class:`GemmRoutine` on first use and re-raise construction
    failures (the caller treats them like launch failures); the host
    ``reference`` rung has no routine and cannot fail.
    """

    def __init__(
        self,
        name: str,
        device: str,
        precision: str,
        params: Optional[KernelParams],
        factory: Optional[Callable[[object], GemmRoutine]],
        spec: Optional[DeviceSpec] = None,
        host_gflops: float = 8.0,
    ) -> None:
        self.name = name
        self.device = device  # "" for the host reference rung
        self.precision = precision
        self.params = params
        self._factory = factory
        self._routine: Optional[GemmRoutine] = None
        self.spec = spec
        self.host_gflops = host_gflops

    @property
    def key(self) -> str:
        """Identity for quarantine bookkeeping."""
        return f"{self.device or 'host'}:{self.name}"

    @property
    def is_reference(self) -> bool:
        return self._factory is None

    def routine(self, injector=None) -> Optional[GemmRoutine]:
        """The underlying routine, built on first use (may raise).

        ``injector`` is the per-request (re-salted) fault injector: a
        construction attempt runs under it, so an injected *build* fault
        can clear on a later request's retry, and an already-built
        routine's context is re-pointed at it so launch/result decisions
        re-roll per request instead of freezing at construction time.
        """
        if self._factory is None:
            return None
        if self._routine is None:
            self._routine = self._factory(injector)
        else:
            self._routine.context.fault_injector = injector
        return self._routine

    def predict_s(self, M: int, N: int, K: int) -> float:
        """Modelled service time of this rung for one problem."""
        if self.is_reference:
            return 2.0 * M * N * K / (self.host_gflops * 1e9)
        return predict_implementation(
            self.spec, self.params, M, N, K, noise=False
        ).total_s

    def call(self, a, b, c, alpha, beta, transa, transb, injector=None):
        """Compute the GEMM through this rung; returns (c, seconds)."""
        if self.is_reference:
            out = reference_gemm(transa, transb, alpha, np.asarray(a),
                                 np.asarray(b), beta, c)
            M = out.shape[0]
            N = out.shape[1]
            K = a.shape[1] if transa.upper() == "N" else a.shape[0]
            return out, 2.0 * M * N * K / (self.host_gflops * 1e9)
        result = self.routine(injector)(
            a, b, c, alpha=alpha, beta=beta, transa=transa, transb=transb
        )
        return result.c, result.timings.total_s

    def __repr__(self) -> str:
        return f"<Rung {self.key}>"


class DegradationLadder:
    """Builds the ordered rung list for a fleet of devices."""

    def __init__(
        self,
        devices: Sequence[Union[str, DeviceSpec]],
        precision: str = "d",
        params: Optional[Dict[str, KernelParams]] = None,
        host_gflops: float = 8.0,
        **routine_kwargs,
    ) -> None:
        from repro.tuner.pretuned import pretuned_params

        self.precision = precision
        self.host_gflops = host_gflops
        #: Kept for rung rebuilds (hot swaps construct replacement
        #: routines with the same build options the ladder started with).
        self._routine_kwargs = dict(routine_kwargs)
        self.rungs: List[Rung] = []
        specs = [
            d if isinstance(d, DeviceSpec) else get_device_spec(d)
            for d in devices
        ]
        for spec in specs:
            self.rungs.extend(
                self._build_device_rungs(spec, (params or {}).get(spec.codename))
            )
        # The unconditional last resort: the host cannot fault or corrupt.
        self.rungs.append(Rung(
            "reference", "", precision, None, None, host_gflops=host_gflops,
        ))

    def _build_device_rungs(
        self, spec: DeviceSpec, explicit: Optional[KernelParams] = None
    ) -> List[Rung]:
        """The tuned/pretuned/direct rung group for one device.

        Empty when the device has nothing tuned at this precision — such
        a device cannot serve and the fleet manager must not admit it.
        """
        from repro.tuner.pretuned import pretuned_params

        precision = self.precision
        host_gflops = self.host_gflops
        routine_kwargs = self._routine_kwargs
        try:
            shipped = pretuned_params(spec.codename, precision)
        except KeyError:
            shipped = None
        primary = explicit or shipped
        if primary is None:
            return []  # nothing tuned for this device at this precision

        def make_factory(spec=spec, p=primary, cls=GemmRoutine):
            return lambda injector: cls(
                spec, p, fault_injector=injector, **routine_kwargs
            )

        rungs = [Rung(
            "tuned", spec.codename, precision, primary,
            make_factory(), spec=spec, host_gflops=host_gflops,
        )]
        if shipped is not None and shipped != primary:
            rungs.append(Rung(
                "pretuned", spec.codename, precision, shipped,
                make_factory(p=shipped), spec=spec,
                host_gflops=host_gflops,
            ))
        rungs.append(Rung(
            "direct", spec.codename, precision, direct_params(primary),
            make_factory(cls=DirectGemmRoutine), spec=spec,
            host_gflops=host_gflops,
        ))
        return rungs

    def device_rungs(self, device: str) -> List[Rung]:
        """All rungs serving ``device``, in ladder order."""
        return [r for r in self.rungs if r.device == device]

    def add_device(
        self,
        device: Union[str, DeviceSpec],
        params: Optional[KernelParams] = None,
    ) -> List[Rung]:
        """Build and append a device's rung group (before the host rung).

        Newly admitted devices rank *after* the incumbents — the ladder
        prefers devices that have been serving longest — but always
        before the host reference.  Returns the new rungs (empty if the
        device has nothing tuned, in which case nothing is added).
        Raises ``ValueError`` if the device already has rungs.
        """
        spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
        if self.device_rungs(spec.codename):
            raise ValueError(f"device {spec.codename!r} already on the ladder")
        rungs = self._build_device_rungs(spec, params)
        self.insert_device(rungs)
        return rungs

    def insert_device(self, rungs: Sequence[Rung]) -> None:
        """Re-insert a previously removed rung group before the host rung.

        Used on device resume: the parked :class:`Rung` objects keep
        their built routines, so recovery does not pay construction
        again.
        """
        index = len(self.rungs) - 1  # the host reference rung is last
        self.rungs[index:index] = list(rungs)

    def remove_device(self, device: str) -> List[Rung]:
        """Splice out and return all rungs serving ``device``.

        The returned group can be parked (suspected/draining devices)
        and later restored with :meth:`insert_device`.  Removing a
        device with no rungs returns ``[]``; the host reference rung is
        never removable.
        """
        removed = self.device_rungs(device)
        if removed:
            self.rungs = [r for r in self.rungs if r.device != device]
        return removed

    def primary_rung(self, device: str) -> Rung:
        """The ``tuned`` rung serving ``device`` (KeyError if absent)."""
        for rung in self.rungs:
            if rung.name == "tuned" and rung.device == device:
                return rung
        raise KeyError(f"no tuned rung for device {device!r}")

    def replace_primary(self, device: str, params: KernelParams) -> Rung:
        """Swap the ``tuned`` rung's kernel for ``device`` in place.

        Builds a fresh :class:`Rung` around ``params`` (same position,
        same build options, lazily constructed routine) and returns it.
        The old rung object — and any in-flight request already holding
        it — is untouched; only *future* dispatches see the new kernel.
        """
        old = self.primary_rung(device)
        index = self.rungs.index(old)
        spec = old.spec
        kwargs = self._routine_kwargs
        new = Rung(
            "tuned", device, self.precision, params,
            lambda injector: GemmRoutine(
                spec, params, fault_injector=injector, **kwargs
            ),
            spec=spec, host_gflops=self.host_gflops,
        )
        self.rungs[index] = new
        return new

    def describe(self) -> str:
        lines = ["degradation ladder:"]
        for i, rung in enumerate(self.rungs):
            where = rung.device or "host"
            lines.append(f"  {i}: {rung.name:9s} on {where}")
        return "\n".join(lines)
