"""Structured incident log and service counters.

Every robustness event the service handles — a shed request, a breaker
trip, a degradation, a caught corruption, a quarantine or re-admission —
is appended to the :class:`IncidentLog` as a typed :class:`Incident`
record, and aggregated into :class:`ServiceCounters`.  Both persist
crash-safe through :mod:`repro.persist` (atomic write + checksum), so a
soak run's artifact survives a SIGKILL mid-flush and a post-mortem can
account for every decision.

Determinism contract: under a fixed service seed, workload seed, and
fault plan, the incident sequence and the counters are bit-identical
run to run — the acceptance test diffs them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.persist import dump_json_atomic, load_json_checked

__all__ = ["Incident", "IncidentLog", "ServiceCounters", "INCIDENT_KINDS"]

#: The incident taxonomy (see docs/serving.md for the schema).
INCIDENT_KINDS = (
    "invalid",          # request failed validation
    "shed",             # admission control rejected the request
    "degraded",         # a ladder rung was skipped or failed over
    "breaker_trip",     # a device breaker opened
    "breaker_probe",    # a half-open probe was admitted
    "breaker_close",    # a breaker recovered to closed
    "corruption",       # Freivalds verification caught a wrong result
    "quarantine",       # a kernel was quarantined
    "canary_pass",      # a quarantined kernel passed a known-answer canary
    "canary_fail",      # a quarantined kernel failed a canary
    "readmit",          # a quarantined kernel was re-admitted
    "deadline_missed",  # the response came back after its deadline
    "static_reject",    # static analysis refused a ladder rung's kernel
    "batch",            # a coalesced batch was dispatched
    "shard",            # a large request was sharded across the fleet
    "hedge",            # a hedged re-launch was attempted
    "deadline_cancel",  # queued work provably unable to meet its deadline
    "shed_retry",       # a previously shed request was re-admitted
    "hot_swap",         # a serving kernel was hot-swapped in place
    "drain",            # the scheduler drained gracefully
    # -- elastic fleet lifecycle (see repro.serve.fleet) ----------------
    "fleet_admit",      # a device's rungs were admitted to the ladder
    "fleet_suspend",    # a device was parked off the ladder (suspected)
    "fleet_resume",     # a parked device was restored to the ladder
    "fleet_retire",     # a device was removed permanently
    "fleet_scale",      # the autoscaler grew or shrank the fleet
    "fleet_suspect",    # the failure detector suspected a device
    "fleet_recover",    # a suspected device passed its recovery probes
)


@dataclass(frozen=True)
class Incident:
    """One robustness event, in request order."""

    seq: int
    request_id: int
    kind: str
    device: str = ""
    rung: str = ""
    detail: str = ""
    #: The observability trace active when the incident was recorded
    #: (empty when the service runs without tracing) — joins the
    #: incident log to ``repro trace`` output and persisted trace files.
    trace_id: str = ""

    def __post_init__(self):
        if self.kind not in INCIDENT_KINDS:
            raise ValueError(
                f"unknown incident kind {self.kind!r} (one of {INCIDENT_KINDS})"
            )

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict) -> "Incident":
        return cls(**d)


@dataclass
class ServiceCounters:
    """Aggregate service health counters (the soak run's scoreboard)."""

    requests: int = 0
    admitted: int = 0
    #: Shed *events* (one request shed twice counts twice).
    shed: int = 0
    #: Requests that were shed at least once but later served on a
    #: retry after the shedder's ``retry_after_s`` hint — kept separate
    #: from ``shed`` so shed-rate numbers aren't double-counted: the
    #: hard-shed count is ``shed - (shed events of retried requests)``,
    #: which the async soak report derives per request.
    shed_retried: int = 0
    invalid: int = 0
    completed: int = 0
    degraded: int = 0
    breaker_trips: int = 0
    verified: int = 0
    corruption_caught: int = 0
    quarantined: int = 0
    readmitted: int = 0
    canaries_run: int = 0
    deadline_missed: int = 0
    static_rejects: int = 0
    # -- async scheduler accounting (see repro.serve.sched) -------------
    #: Coalesced batches dispatched, and the members they carried.
    batches: int = 0
    batched_members: int = 0
    #: Large requests sharded across the multi-device fleet.
    sharded: int = 0
    #: Hedged re-launches attempted after a risky (half-open) serve.
    hedges: int = 0
    #: Queued requests cancelled because they provably could not meet
    #: their deadline.
    cancelled: int = 0
    #: Serving kernels replaced in place by a hot swap.
    hot_swaps: int = 0
    # -- elastic fleet accounting (see repro.serve.fleet) ----------------
    #: Devices admitted to / retired from the serving ladder.
    fleet_admits: int = 0
    fleet_retires: int = 0
    #: Responses per ladder rung name ("tuned", "pretuned", "direct",
    #: "reference"), e.g. {"tuned": 950, "reference": 3}.
    served_by_rung: Dict[str, int] = field(default_factory=dict)

    #: Integer fields mirrored into a bound metrics registry, in the
    #: render order.  ``served_by_rung`` mirrors as a labeled series.
    COUNTER_FIELDS = (
        "requests", "admitted", "shed", "shed_retried", "invalid",
        "completed", "degraded", "breaker_trips", "verified",
        "corruption_caught", "quarantined", "readmitted", "canaries_run",
        "deadline_missed", "static_rejects", "batches", "batched_members",
        "sharded", "hedges", "cancelled", "hot_swaps",
        "fleet_admits", "fleet_retires",
    )

    def bind_registry(self, registry, prefix: str = "serve") -> None:
        """Mirror every counter into an obs metrics registry.

        The dataclass stays the source of truth and its API is unchanged
        — plain ``counters.shed += 1`` assignments write through to
        ``<prefix>_<field>_total`` counters (and ``count_rung`` to the
        ``<prefix>_served_by_rung_total{rung=...}`` series), so existing
        callers and the exporters see the same numbers.
        """
        mirrors = {
            name: registry.counter(
                f"{prefix}_{name}_total",
                f"ServiceCounters.{name} (see docs/serving.md).",
            )
            for name in self.COUNTER_FIELDS
        }
        rung_mirror = registry.counter(
            f"{prefix}_served_by_rung_total",
            "Responses per degradation-ladder rung.",
            labelnames=("rung",),
        )
        # Registry counters are cumulative across instances (Prometheus
        # semantics): each bind contributes on top of whatever earlier
        # services already mirrored, via a per-field base offset.
        bases = {name: mirrors[name].value for name in self.COUNTER_FIELDS}
        for name, mirror in mirrors.items():
            mirror.set_total(bases[name] + getattr(self, name))
        for rung, count in self.served_by_rung.items():
            child = rung_mirror.labels(rung=rung)
            child.set_total(child.value + count)
        self.__dict__["_mirrors"] = mirrors
        self.__dict__["_mirror_bases"] = bases
        self.__dict__["_rung_mirror"] = rung_mirror

    def __setattr__(self, name: str, value) -> None:
        super().__setattr__(name, value)
        mirrors = self.__dict__.get("_mirrors")
        if mirrors is not None and name in mirrors:
            mirrors[name].set_total(self.__dict__["_mirror_bases"][name] + value)

    def count_rung(self, rung: str) -> None:
        self.served_by_rung[rung] = self.served_by_rung.get(rung, 0) + 1
        rung_mirror = self.__dict__.get("_rung_mirror")
        if rung_mirror is not None:
            rung_mirror.labels(rung=rung).inc()

    def as_dict(self) -> Dict:
        return asdict(self)

    def render(self) -> str:
        lines = ["service counters:"]
        for name in self.COUNTER_FIELDS:
            lines.append(f"  {name:18s}: {getattr(self, name)}")
        for rung in sorted(self.served_by_rung):
            lines.append(f"  served by {rung:9s}: {self.served_by_rung[rung]}")
        return "\n".join(lines)


class IncidentLog:
    """Append-only log of :class:`Incident` records."""

    FORMAT = "repro-incident-log/1"

    def __init__(self) -> None:
        self._incidents: List[Incident] = []

    def record(self, request_id: int, kind: str, device: str = "",
               rung: str = "", detail: str = "", trace_id: str = "") -> Incident:
        incident = Incident(
            seq=len(self._incidents), request_id=request_id, kind=kind,
            device=device, rung=rung, detail=detail, trace_id=trace_id,
        )
        self._incidents.append(incident)
        return incident

    def __len__(self) -> int:
        return len(self._incidents)

    def __iter__(self):
        return iter(self._incidents)

    def by_kind(self, kind: str) -> List[Incident]:
        return [i for i in self._incidents if i.kind == kind]

    def by_trace(self, trace_id: str) -> List[Incident]:
        """All incidents stamped with one trace (the join to obs traces)."""
        return [i for i in self._incidents if i.trace_id == trace_id]

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for incident in self._incidents:
            counts[incident.kind] = counts.get(incident.kind, 0) + 1
        return counts

    # -- persistence (crash-safe, see repro.persist) --------------------
    def to_dict(self) -> Dict:
        return {
            "format": self.FORMAT,
            "incidents": [i.to_dict() for i in self._incidents],
        }

    def save(self, path: str) -> str:
        return dump_json_atomic(path, self.to_dict(), indent=2)

    @classmethod
    def load(cls, path: str) -> Optional["IncidentLog"]:
        """Load a persisted log; None for missing/corrupt files."""
        payload = load_json_checked(path)
        if payload is None or payload.get("format") != cls.FORMAT:
            return None
        log = cls()
        log._incidents = [
            Incident.from_dict(d) for d in payload.get("incidents", [])
        ]
        return log
