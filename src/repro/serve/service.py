"""The long-lived GEMM service.

:class:`GemmService` is the hardened front door to the tuned routines.
One request flows through five gates:

1. **validation** — shape/dtype/finiteness checks with typed errors
   (:class:`~repro.errors.InvalidRequestError`); invalid requests never
   touch a device.
2. **admission** — a bounded queue modelled in simulated time: each
   request drains its inter-arrival spacing from the backlog and adds
   its service time; when the backlog exceeds the budget the request is
   shed (:class:`~repro.errors.AdmissionError`) instead of queued, so
   admitted requests keep bounded latency.
3. **the degradation ladder** — rungs are tried in order; a rung is
   skipped when its kernel is quarantined, its device's circuit breaker
   is open, or its predicted time cannot meet the remaining deadline.
   Runtime faults (transient launches, device loss, watchdog timeouts)
   fail the rung over to the next one and feed the device's breaker.
4. **verification** — a seeded Freivalds check (sampling rate
   ``verify_rate``) catches silent result corruption; the offending
   rung is quarantined and the request re-served by the next rung.
5. **accounting** — counters, the incident log, and deadline tracking.

Periodic known-answer canary GEMMs probe quarantined kernels and
re-admit them after ``canary_passes`` consecutive clean runs.

Everything is deterministic under a fixed service seed and fault plan:
breakers run on the logical request clock, verification sampling and
Freivalds vectors are hashes of the request id, and routines are built
with ``measurement_noise=False`` — a seeded soak reproduces identical
counters and incident sequences run after run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.devices.specs import DeviceSpec
from repro.errors import (
    AdmissionError,
    CLError,
    InvalidRequestError,
    MeasurementTimeout,
)
from repro.clsim.trace import attach_tracer
from repro.gemm.reference import reference_gemm, relative_error
from repro.gemm.routine import validate_gemm_request
from repro.obs import NULL_OBS, Observability, bridge_records
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.incident import IncidentLog, ServiceCounters
from repro.serve.ladder import DegradationLadder, Rung
from repro.serve.verify import FreivaldsVerifier
from repro.tuner.resilience import call_with_timeout

__all__ = [
    "ServiceConfig", "ServeResult", "GemmCall", "GemmService",
    "BatchingAccount", "SMALL_GEMM_DIM",
]

#: Problems with every dimension at or below this are "small" for the
#: batching-throughput ledger — the size band where the paper's kernels
#: cannot amortise launch overhead and coalescing pays off.
SMALL_GEMM_DIM = 128


@dataclass
class BatchingAccount:
    """Small-GEMM throughput ledger: actual device seconds (pipelined
    when the member rode a coalesced batch) against what the very same
    members would have cost served stand-alone on the synchronous path.
    ``speedup`` is therefore the aggregate throughput lift coalescing
    delivered, measured over identical work."""

    members: int = 0
    flops: float = 0.0
    #: Actual seconds charged (a batch member's fair share of the
    #: pipelined batch wall time; a single's full service time).
    batched_s: float = 0.0
    #: Stand-alone seconds the same members cost on the sync path.
    sync_s: float = 0.0

    def add(self, flops: float, batched_s: float, sync_s: float) -> None:
        self.members += 1
        self.flops += flops
        self.batched_s += batched_s
        self.sync_s += sync_s

    @property
    def speedup(self) -> float:
        return self.sync_s / self.batched_s if self.batched_s > 0 else 1.0

    @property
    def sync_gflops(self) -> float:
        return self.flops / self.sync_s / 1e9 if self.sync_s > 0 else 0.0

    @property
    def batched_gflops(self) -> float:
        return (self.flops / self.batched_s / 1e9
                if self.batched_s > 0 else 0.0)

    def as_dict(self) -> Dict:
        return {
            "members": self.members,
            "flops": self.flops,
            "batched_s": self.batched_s,
            "sync_s": self.sync_s,
            "sync_gflops": self.sync_gflops,
            "batched_gflops": self.batched_gflops,
            "speedup": self.speedup,
        }


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving layer (defaults favour correctness)."""

    seed: int = 0
    # -- admission control --------------------------------------------
    #: Simulated backlog (queue depth in seconds of work) beyond which
    #: new requests are shed.
    max_backlog_s: float = 0.5
    #: Default simulated spacing between requests (the backlog drain).
    interarrival_s: float = 0.005
    #: Default per-request deadline; ``None`` disables deadline logic.
    default_deadline_s: Optional[float] = 0.5
    # -- result verification ------------------------------------------
    #: Fraction of device-served responses Freivalds-checked (1.0 = all).
    verify_rate: float = 1.0
    #: Independent Freivalds rounds per check.
    verify_rounds: int = 2
    #: Rounding-error allowance factor (see FreivaldsVerifier).
    verify_tol_factor: float = 64.0
    # -- circuit breakers ---------------------------------------------
    breaker_failure_threshold: int = 3
    breaker_cooldown: int = 25
    breaker_probe_successes: int = 2
    # -- quarantine canaries ------------------------------------------
    #: Run known-answer canaries every N requests (0 disables).
    canary_interval: int = 50
    #: Consecutive canary passes that re-admit a quarantined kernel.
    canary_passes: int = 2
    #: Canary problem size (kept small: canaries ride the request path).
    canary_size: int = 32
    # -- misc ----------------------------------------------------------
    #: Wall-clock watchdog per rung attempt (kills injected hangs).
    attempt_timeout_s: Optional[float] = None
    #: Modelled host GEMM rate for the reference rung's time accounting.
    host_gflops: float = 8.0


@dataclass(frozen=True)
class GemmCall:
    """One GEMM problem, as the batch path carries it.

    A value object the async scheduler queues and
    :meth:`GemmService.submit_batch` consumes; ``validate`` returns a
    normalized copy (arrays coerced, transposes upper-cased) or raises
    :class:`~repro.errors.InvalidRequestError`.
    """

    a: np.ndarray
    b: np.ndarray
    c: Optional[np.ndarray] = None
    alpha: float = 1.0
    beta: float = 0.0
    transa: str = "N"
    transb: str = "N"

    def validate(self) -> "GemmCall":
        a, b, c, transa, transb = validate_gemm_request(
            self.a, self.b, self.c, self.alpha, self.beta,
            self.transa, self.transb,
        )
        return GemmCall(a, b, c, self.alpha, self.beta, transa, transb)

    def dims(self) -> Tuple[int, int, int]:
        """Problem dimensions (M, N, K) after transpose resolution."""
        M, K = (self.a.shape if self.transa == "N" else self.a.shape[::-1])
        N = self.b.shape[1] if self.transb == "N" else self.b.shape[0]
        return M, N, K

    @property
    def flops(self) -> float:
        M, N, K = self.dims()
        return 2.0 * M * N * K


@dataclass
class ServeResult:
    """One served response plus its robustness trail."""

    c: np.ndarray
    request_id: int
    #: Ladder rung that produced the response ("tuned", "pretuned",
    #: "direct", "reference").
    rung: str
    device: str
    #: True when any rung above the serving one was skipped or failed.
    degraded: bool
    #: True when the response passed an explicit Freivalds check.
    verified: bool
    #: Simulated seconds of service (including failed/corrupt attempts).
    service_s: float
    #: Simulated seconds the request waited in the admission queue.
    queue_wait_s: float
    deadline_missed: bool = False
    #: Rungs skipped or failed before the serving one, with reasons.
    degradations: List[Tuple[str, str]] = field(default_factory=list)
    #: Members of the coalesced batch this response was served in
    #: (1: a stand-alone submission).
    batch_size: int = 1
    #: The request's observability trace ID ("" when tracing is off);
    #: joins the response to ``repro trace`` output and incident records.
    trace_id: str = ""


class GemmService:
    """A resilient GEMM front-end over one device or a fleet."""

    def __init__(
        self,
        devices: Union[str, DeviceSpec, Sequence[Union[str, DeviceSpec]]],
        precision: str = "d",
        config: Optional[ServiceConfig] = None,
        params: Optional[Dict] = None,
        fault_injector=None,
        obs: Optional[Observability] = None,
        **routine_kwargs,
    ) -> None:
        if isinstance(devices, (str, DeviceSpec)):
            devices = [devices]
        self.config = config or ServiceConfig()
        #: Telemetry spine (see :mod:`repro.obs`): per-request traces
        #: whose IDs stamp the incident log, plus the metrics registry
        #: the counters mirror into.  Defaults to the shared disabled
        #: instance — passing nothing costs one attribute check per hook.
        self.obs = obs if obs is not None else NULL_OBS
        self.precision = precision
        self.dtype = np.dtype(np.float32 if precision == "s" else np.float64)
        self._base_injector = fault_injector
        routine_kwargs.setdefault("measurement_noise", False)
        self.ladder = DegradationLadder(
            devices, precision, params,
            host_gflops=self.config.host_gflops, **routine_kwargs,
        )
        self.breakers: Dict[str, CircuitBreaker] = {}
        for rung in self.ladder.rungs:
            if rung.device and rung.device not in self.breakers:
                self.breakers[rung.device] = CircuitBreaker(
                    rung.device,
                    failure_threshold=self.config.breaker_failure_threshold,
                    cooldown_ticks=self.config.breaker_cooldown,
                    probe_successes=self.config.breaker_probe_successes,
                )
        self.verifier = FreivaldsVerifier(
            seed=self.config.seed,
            rounds=self.config.verify_rounds,
            tol_factor=self.config.verify_tol_factor,
        )
        self.log = IncidentLog()
        self.counters = ServiceCounters()
        self._trace_id = ""
        if self.obs.enabled:
            self.counters.bind_registry(self.obs.metrics)
            self._fallbacks = self.obs.counter(
                "serve_fallbacks_total",
                "Ladder rungs skipped or failed over, per rung key.",
                labelnames=("rung",),
            )
            self._service_hist = self.obs.histogram(
                "serve_service_seconds",
                "Simulated service seconds per completed request.",
            )
            self._wait_hist = self.obs.histogram(
                "serve_queue_wait_seconds",
                "Simulated admission-queue wait per completed request.",
            )
        else:
            self._fallbacks = None
            self._service_hist = None
            self._wait_hist = None
        #: rung.key -> consecutive canary passes since quarantine.
        self._quarantined: Dict[str, int] = {}
        #: device -> parked rung group (suspected/draining devices keep
        #: their built routines off the ladder until resumed or retired).
        self._parked: Dict[str, List[Rung]] = {}
        #: rung.key -> violated rule id, for rungs the static verifier
        #: refuses to serve through (see :mod:`repro.analyze`).  Filled
        #: at construction and again per admitted device: a rung's
        #: kernel never changes while it is on the ladder.
        self._static_rejected: Dict[str, str] = self._verify_rungs()
        self._tick = 0
        self._backlog_s = 0.0
        #: Small-GEMM throughput ledger (see :class:`BatchingAccount`).
        self.small_gemm = BatchingAccount()
        self._canary_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def _verify_rungs(self) -> Dict[str, str]:
        """Statically verify every device rung's kernel up front.

        A failing rung is never attempted — its launch failure is a
        foregone conclusion the prover can state in advance — and the
        refusal is incident-logged (request_id -1: a service-lifetime
        decision, not a per-request one) and counted.
        """
        rejected: Dict[str, str] = {}
        self._verify_rung_group(self.ladder.rungs, rejected)
        return rejected

    def _verify_rung_group(
        self, rungs: Sequence[Rung], rejected: Dict[str, str]
    ) -> None:
        """Run the static gate over ``rungs``, recording refusals."""
        from repro.analyze.verifier import StaticVerifier

        verifiers: Dict[str, StaticVerifier] = {}
        for rung in rungs:
            if rung.is_reference or rung.params is None:
                continue
            verifier = verifiers.setdefault(
                rung.device, StaticVerifier(rung.spec)
            )
            rule = verifier.gate(rung.params)
            if rule is not None:
                rejected[rung.key] = rule
                self.counters.static_rejects += 1
                self.log.record(
                    -1, "static_reject", device=rung.device, rung=rung.name,
                    detail=f"{rule}: {rung.params.summary()}",
                )

    # -- deterministic decisions ---------------------------------------
    def _unit(self, label: str, request_id: int) -> float:
        payload = f"serve|{self.config.seed}|{label}|{request_id}".encode()
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    def _salted_injector(self, salt: str):
        if self._base_injector is None:
            return None
        return self._base_injector.salted(salt)

    def set_fault_clock(self, now_s: float) -> None:
        """Advance the fault plan's simulated clock.

        Window-correlated fault kinds (``zone_outage``, ``brownout``)
        decide by *time*, not per-request hashing; the async scheduler
        calls this each step so every injector the service re-salts from
        here on carries the current simulated instant.  A no-op without
        a fault plan or with a plan of purely per-request kinds.
        """
        if self._base_injector is not None and hasattr(
                self._base_injector, "at_time"):
            self._base_injector = self._base_injector.at_time(now_s)

    @property
    def quarantined(self) -> Tuple[str, ...]:
        """Currently quarantined rung keys (e.g. ``("tahiti:tuned",)``)."""
        return tuple(sorted(self._quarantined))

    # -- the request path ----------------------------------------------
    def submit(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
        transa: str = "N",
        transb: str = "N",
        deadline_s: Optional[float] = None,
        arrival_dt_s: Optional[float] = None,
        request_id: Optional[int] = None,
    ) -> ServeResult:
        """Serve one GEMM request through all five gates.

        Raises :class:`InvalidRequestError` for malformed input and
        :class:`AdmissionError` when the request is shed; every admitted
        request returns a numerically correct :class:`ServeResult`.
        """
        self._tick += 1
        tick = self._tick
        rid = tick if request_id is None else request_id
        with self.obs.trace("serve.request", request_id=rid) as root:
            self._trace_id = root.trace_id
            try:
                result = self._submit_gates(
                    rid, tick, a, b, c, alpha, beta, transa, transb,
                    deadline_s, arrival_dt_s,
                )
                root.set(rung=result.rung, device=result.device,
                         degraded=result.degraded,
                         deadline_missed=result.deadline_missed)
            finally:
                self._trace_id = ""
        result.trace_id = root.trace_id
        return result

    __call__ = submit

    def _submit_gates(
        self, rid, tick, a, b, c, alpha, beta, transa, transb,
        deadline_s, arrival_dt_s,
    ) -> ServeResult:
        cfg = self.config
        self.counters.requests += 1

        # Gate 1: validation (typed errors, no device work).
        with self.obs.span("gate.validate"):
            try:
                a, b, c, transa, transb = validate_gemm_request(
                    a, b, c, alpha, beta, transa, transb
                )
            except InvalidRequestError as exc:
                self.counters.invalid += 1
                self.log.record(rid, "invalid", detail=str(exc),
                                trace_id=self._trace_id)
                raise
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if c is not None:
            c = np.asarray(c, dtype=self.dtype)
        M, K = (a.shape if transa == "N" else a.shape[::-1])
        N = b.shape[1] if transb == "N" else b.shape[0]

        # Gate 2: admission control (bounded simulated backlog).
        with self.obs.span("gate.admission") as admission:
            dt = cfg.interarrival_s if arrival_dt_s is None else arrival_dt_s
            self._backlog_s = max(0.0, self._backlog_s - max(0.0, dt))
            admission.set(backlog_ms=round(self._backlog_s * 1e3, 6))
            if self._backlog_s > cfg.max_backlog_s:
                self.counters.shed += 1
                admission.set(outcome="shed")
                self.log.record(
                    rid, "shed",
                    detail=(f"backlog {self._backlog_s * 1e3:.3f} ms exceeds "
                            f"budget {cfg.max_backlog_s * 1e3:.3f} ms"),
                    trace_id=self._trace_id,
                )
                # The backlog drains at one simulated second per second
                # of arrivals, so the excess over the budget *is* the
                # time until a resubmission clears admission.
                raise AdmissionError(
                    f"request {rid} shed: simulated backlog "
                    f"{self._backlog_s * 1e3:.3f} ms exceeds the "
                    f"{cfg.max_backlog_s * 1e3:.3f} ms budget",
                    retry_after_s=self._backlog_s - cfg.max_backlog_s,
                )
            admission.set(outcome="admitted")
        self.counters.admitted += 1
        queue_wait = self._backlog_s
        deadline = cfg.default_deadline_s if deadline_s is None else deadline_s

        # Quarantine maintenance: periodic known-answer canaries.
        self._maybe_canaries(tick, rid)

        # Gates 3+4: the ladder with verification.
        result = self._serve_ladder(
            rid, tick, a, b, c, alpha, beta, transa, transb,
            M, N, K, queue_wait, deadline,
        )

        # Gate 5: accounting.
        self._backlog_s += result.service_s
        self.counters.completed += 1
        self.counters.count_rung(result.rung)
        if result.degraded:
            self.counters.degraded += 1
        if self._service_hist is not None:
            self._service_hist.observe(result.service_s)
            self._wait_hist.observe(result.queue_wait_s)
        if deadline is not None and queue_wait + result.service_s > deadline:
            result.deadline_missed = True
            self.counters.deadline_missed += 1
            self.log.record(
                rid, "deadline_missed", device=result.device,
                rung=result.rung,
                detail=(f"served in {(queue_wait + result.service_s) * 1e3:.3f}"
                        f" ms against a {deadline * 1e3:.3f} ms deadline"),
                trace_id=self._trace_id,
            )
        return result

    def _serve_ladder(
        self, rid, tick, a, b, c, alpha, beta, transa, transb,
        M, N, K, queue_wait, deadline,
    ) -> ServeResult:
        cfg = self.config
        spent = 0.0
        degradations: List[Tuple[str, str]] = []

        def degrade(rung: Rung, reason: str) -> None:
            degradations.append((rung.key, reason))
            if self._fallbacks is not None:
                self._fallbacks.labels(rung=rung.key).inc()
            self.log.record(rid, "degraded", device=rung.device,
                            rung=rung.name, detail=reason,
                            trace_id=self._trace_id)

        for rung in self.ladder.rungs:
            with self.obs.span(f"rung:{rung.key}") as rung_span:
                if rung.key in self._static_rejected:
                    rung_span.set(outcome="skipped", reason="static_reject")
                    degrade(
                        rung,
                        "static analysis: "
                        f"{self._static_rejected[rung.key]}",
                    )
                    continue
                if rung.key in self._quarantined:
                    rung_span.set(outcome="skipped", reason="quarantined")
                    degrade(rung, "kernel quarantined")
                    continue
                breaker = self.breakers.get(rung.device) if rung.device else None
                if breaker is not None:
                    was_open = breaker.state is BreakerState.OPEN
                    allowed = breaker.allow(tick)
                    with self.obs.span("breaker", device=rung.device,
                                       state=breaker.state.value,
                                       allowed=allowed):
                        pass
                    if not allowed:
                        rung_span.set(outcome="skipped", reason="breaker_open")
                        degrade(rung, "circuit breaker open")
                        continue
                    if was_open and breaker.state is BreakerState.HALF_OPEN:
                        self.log.record(rid, "breaker_probe",
                                        device=rung.device, rung=rung.name,
                                        trace_id=self._trace_id)
                if deadline is not None and not rung.is_reference:
                    remaining = deadline - queue_wait - spent
                    predicted = rung.predict_s(M, N, K)
                    if predicted > remaining:
                        rung_span.set(outcome="skipped", reason="deadline")
                        degrade(
                            rung,
                            f"deadline: predicted {predicted * 1e3:.3f} ms > "
                            f"remaining {max(remaining, 0.0) * 1e3:.3f} ms",
                        )
                        continue
                injector = self._salted_injector(f"req:{rid}:rung:{rung.key}")
                attempt = self._rung_attempt(rung, injector, a, b, c,
                                             alpha, beta, transa, transb)
                try:
                    (out, seconds), records = call_with_timeout(
                        attempt, cfg.attempt_timeout_s
                    )
                except (CLError, MeasurementTimeout) as exc:
                    rung_span.set(outcome="failed",
                                  error=type(exc).__name__)
                    if breaker is not None and breaker.record_failure(tick):
                        self.counters.breaker_trips += 1
                        self.log.record(
                            rid, "breaker_trip", device=rung.device,
                            rung=rung.name,
                            detail=f"opened after: {exc}",
                            trace_id=self._trace_id,
                        )
                    degrade(rung, f"{type(exc).__name__}: {exc}")
                    continue
                bridge_records(self.obs, records)
                if breaker is not None:
                    prior = breaker.state
                    breaker.record_success(tick)
                    if (prior is BreakerState.HALF_OPEN
                            and breaker.state is BreakerState.CLOSED):
                        self.log.record(rid, "breaker_close",
                                        device=rung.device, rung=rung.name,
                                        trace_id=self._trace_id)

                # Gate 4: probabilistic result verification.
                verified = False
                if not rung.is_reference and (
                        self._unit("verify", rid) < cfg.verify_rate):
                    with self.obs.span("verify.freivalds",
                                       rounds=cfg.verify_rounds) as vspan:
                        check = self.verifier.check(
                            a, b, out, alpha, beta, c, transa, transb,
                            key=f"req:{rid}",
                        )
                        vspan.set(passed=check.passed)
                    if not check.passed:
                        rung_span.set(outcome="corrupt")
                        self.counters.corruption_caught += 1
                        self.log.record(
                            rid, "corruption", device=rung.device,
                            rung=rung.name,
                            detail=(f"Freivalds residual "
                                    f"{check.max_residual:.3e} "
                                    f"> tolerance {check.tolerance:.3e}"),
                            trace_id=self._trace_id,
                        )
                        self._quarantine(rung, rid)
                        spent += seconds  # the corrupt attempt burned real time
                        degrade(rung, "result corruption caught; re-serving")
                        continue
                    verified = True
                    self.counters.verified += 1
                rung_span.set(outcome="served", verified=verified,
                              service_ms=round((spent + seconds) * 1e3, 6))
                if not rung.is_reference and max(M, N, K) <= SMALL_GEMM_DIM:
                    # A stand-alone serve is its own sync baseline.
                    self.small_gemm.add(2.0 * M * N * K, seconds, seconds)
                return ServeResult(
                    c=out, request_id=rid, rung=rung.name, device=rung.device,
                    degraded=bool(degradations), verified=verified,
                    service_s=spent + seconds, queue_wait_s=queue_wait,
                    degradations=degradations,
                )
        # Unreachable: the reference rung cannot fault, cannot corrupt,
        # and is never quarantined, breaker-gated, or deadline-skipped.
        raise AssertionError("degradation ladder exhausted")

    def _rung_attempt(self, rung, injector, a, b, c, alpha, beta,
                      transa, transb):
        """Build the watchdogged attempt callable for one rung try.

        Returns ``((c, seconds), records)`` where *records* are the
        clsim commands traced during the attempt (empty with tracing off
        or on the host rung).  The command tracer detaches inside the
        callable, so a timed-out attempt leaves the queue unwrapped; the
        records are bridged into spans by the caller on the main thread.
        """
        if not self.obs.enabled or rung.is_reference:
            return lambda: (
                rung.call(a, b, c, alpha, beta, transa, transb,
                          injector=injector),
                (),
            )

        def attempt():
            routine = rung.routine(injector)  # may raise: a build fault
            tracer = attach_tracer(routine.queue)
            try:
                return (
                    rung.call(a, b, c, alpha, beta, transa, transb,
                              injector=injector),
                    tracer.records,
                )
            finally:
                tracer.detach()

        return attempt

    # -- the batch request path ----------------------------------------
    def submit_batch(
        self,
        members: Sequence[GemmCall],
        deadline_s: Optional[float] = None,
        arrival_dt_s: Optional[float] = None,
        request_ids: Optional[Sequence[int]] = None,
    ) -> List[ServeResult]:
        """Serve a coalesced batch of requests through the five gates.

        The whole batch is validated up front
        (:class:`~repro.errors.InvalidBatchError` before any device
        work), admitted as one unit, and launched back to back through
        one ladder rung via :class:`~repro.gemm.batched.BatchedGemm`,
        paying one pipeline fill instead of per-member launch latencies.
        Members may mix shapes, transposes, alpha and beta.  Every
        member is still individually Freivalds-sampled: a corrupt
        member quarantines the rung and is re-served by the rungs below
        it, exactly like a stand-alone request, so batching never
        weakens the correctness story.  Returns one
        :class:`ServeResult` per member, in order.
        """
        from repro.errors import InvalidBatchError
        from repro.gemm.batched import BatchedGemm

        cfg = self.config
        self._tick += 1
        tick = self._tick
        n = len(members)
        if n == 0:
            raise InvalidBatchError("empty batch")
        if request_ids is None:
            rids = [tick] * n
        else:
            rids = list(request_ids)
            if len(rids) != n:
                raise InvalidBatchError(
                    f"{len(rids)} request ids for {n} members"
                )
        self.counters.requests += n
        with self.obs.trace("serve.batch", members=n,
                            request_id=rids[0]) as root:
            self._trace_id = root.trace_id
            try:
                # Gate 1: the whole batch validates before any member runs.
                with self.obs.span("gate.validate", members=n):
                    normalized = []
                    for i, member in enumerate(members):
                        try:
                            normalized.append(member.validate())
                        except InvalidRequestError as exc:
                            self.counters.invalid += n
                            self.log.record(rids[i], "invalid",
                                            detail=f"batch member {i}: {exc}",
                                            trace_id=self._trace_id)
                            raise InvalidBatchError(
                                f"member {i}: {exc}", member=i
                            ) from exc

                # Gate 2: admission — the batch is one unit of backlog.
                with self.obs.span("gate.admission") as admission:
                    dt = (cfg.interarrival_s if arrival_dt_s is None
                          else arrival_dt_s)
                    self._backlog_s = max(0.0, self._backlog_s - max(0.0, dt))
                    admission.set(backlog_ms=round(self._backlog_s * 1e3, 6))
                    if self._backlog_s > cfg.max_backlog_s:
                        self.counters.shed += n
                        admission.set(outcome="shed")
                        self.log.record(
                            rids[0], "shed",
                            detail=(f"batch of {n} shed: backlog "
                                    f"{self._backlog_s * 1e3:.3f} ms exceeds "
                                    f"budget {cfg.max_backlog_s * 1e3:.3f} ms"),
                            trace_id=self._trace_id,
                        )
                        raise AdmissionError(
                            f"batch of {n} shed: simulated backlog "
                            f"{self._backlog_s * 1e3:.3f} ms exceeds the "
                            f"{cfg.max_backlog_s * 1e3:.3f} ms budget",
                            retry_after_s=self._backlog_s - cfg.max_backlog_s,
                        )
                    admission.set(outcome="admitted")
                self.counters.admitted += n
                queue_wait = self._backlog_s
                deadline = (cfg.default_deadline_s if deadline_s is None
                            else deadline_s)
                self._maybe_canaries(tick, rids[0])
                results = self._serve_batch_ladder(
                    BatchedGemm, tick, normalized, rids, queue_wait, deadline,
                )
                root.set(members=n, rung=results[0].rung)
            finally:
                self._trace_id = ""
        for result in results:
            result.trace_id = root.trace_id
        return results

    def _serve_batch_ladder(
        self, batched_cls, tick, members, rids, queue_wait, deadline,
    ) -> List[ServeResult]:
        """Gates 3-5 for a batch: one pipelined launch per rung, with
        per-member verification and per-member fallback on corruption."""
        cfg = self.config
        n = len(members)
        if n > 1:
            self.counters.batches += 1
            self.counters.batched_members += n
            shapes = sorted({f"{m.dims()[0]}x{m.dims()[1]}x{m.dims()[2]}"
                             for m in members})
            self.log.record(
                rids[0], "batch",
                detail=f"{n} members coalesced ({', '.join(shapes[:4])})",
                trace_id=self._trace_id,
            )
        pending = list(range(n))
        outs: List[Optional[ServeResult]] = [None] * n
        spent = [0.0] * n
        degradations: List[List[Tuple[str, str]]] = [[] for _ in range(n)]

        def degrade(rung: Rung, reason: str, indices) -> None:
            for i in indices:
                degradations[i].append((rung.key, reason))
            if self._fallbacks is not None:
                self._fallbacks.labels(rung=rung.key).inc(len(indices))
            self.log.record(rids[indices[0]], "degraded", device=rung.device,
                            rung=rung.name,
                            detail=f"{reason} ({len(indices)} members)",
                            trace_id=self._trace_id)

        def finish(i: int, rung: Rung, out, seconds: float,
                   verified: bool, standalone_s: Optional[float] = None) -> None:
            member = members[i]
            service_s = spent[i] + seconds
            if (not rung.is_reference
                    and max(member.dims()) <= SMALL_GEMM_DIM):
                self.small_gemm.add(
                    member.flops, seconds,
                    seconds if standalone_s is None else standalone_s,
                )
            self.counters.completed += 1
            self.counters.count_rung(rung.name)
            if degradations[i]:
                self.counters.degraded += 1
            if self._service_hist is not None:
                self._service_hist.observe(service_s)
                self._wait_hist.observe(queue_wait)
            result = ServeResult(
                c=out, request_id=rids[i], rung=rung.name, device=rung.device,
                degraded=bool(degradations[i]), verified=verified,
                service_s=service_s, queue_wait_s=queue_wait,
                degradations=degradations[i], batch_size=n,
            )
            if (deadline is not None
                    and queue_wait + service_s > deadline):
                result.deadline_missed = True
                self.counters.deadline_missed += 1
                self.log.record(
                    rids[i], "deadline_missed", device=rung.device,
                    rung=rung.name,
                    detail=(f"served in "
                            f"{(queue_wait + service_s) * 1e3:.3f} ms against "
                            f"a {deadline * 1e3:.3f} ms deadline"),
                    trace_id=self._trace_id,
                )
            outs[i] = result
            self._backlog_s += seconds

        for rung in self.ladder.rungs:
            if not pending:
                break
            with self.obs.span(f"rung:{rung.key}",
                               members=len(pending)) as rung_span:
                if rung.key in self._static_rejected:
                    rung_span.set(outcome="skipped", reason="static_reject")
                    degrade(rung, "static analysis: "
                            f"{self._static_rejected[rung.key]}", pending)
                    continue
                if rung.key in self._quarantined:
                    rung_span.set(outcome="skipped", reason="quarantined")
                    degrade(rung, "kernel quarantined", pending)
                    continue
                breaker = self.breakers.get(rung.device) if rung.device else None
                if breaker is not None and not breaker.allow(tick):
                    rung_span.set(outcome="skipped", reason="breaker_open")
                    degrade(rung, "circuit breaker open", pending)
                    continue
                if rung.is_reference:
                    # The host floor: serve each pending member exactly.
                    for i in pending:
                        m = members[i]
                        out, seconds = rung.call(
                            m.a, m.b, m.c, m.alpha, m.beta,
                            m.transa, m.transb,
                        )
                        finish(i, rung, out, seconds, verified=False)
                    pending = []
                    continue
                if deadline is not None:
                    # Conservative pipelined estimate for the batch.
                    predicted = sum(
                        rung.predict_s(*members[i].dims()) for i in pending
                    )
                    remaining = deadline - queue_wait - max(spent[i] for i in pending)
                    if predicted > remaining:
                        rung_span.set(outcome="skipped", reason="deadline")
                        degrade(
                            rung,
                            f"deadline: predicted {predicted * 1e3:.3f} ms > "
                            f"remaining {max(remaining, 0.0) * 1e3:.3f} ms",
                            pending,
                        )
                        continue
                injector = self._salted_injector(
                    f"req:{rids[pending[0]]}:batch:{rung.key}"
                )
                live = list(pending)

                def attempt(rung=rung, live=live, injector=injector):
                    routine = rung.routine(injector)
                    batched = batched_cls(routine)
                    return batched(
                        [members[i].a for i in live],
                        [members[i].b for i in live],
                        [members[i].c for i in live],
                        alpha=[members[i].alpha for i in live],
                        beta=[members[i].beta for i in live],
                        transa=[members[i].transa for i in live],
                        transb=[members[i].transb for i in live],
                    )

                try:
                    batch_result = call_with_timeout(
                        attempt, cfg.attempt_timeout_s
                    )
                except (CLError, MeasurementTimeout) as exc:
                    rung_span.set(outcome="failed", error=type(exc).__name__)
                    if breaker is not None and breaker.record_failure(tick):
                        self.counters.breaker_trips += 1
                        self.log.record(
                            rids[pending[0]], "breaker_trip",
                            device=rung.device, rung=rung.name,
                            detail=f"opened after: {exc}",
                            trace_id=self._trace_id,
                        )
                    degrade(rung, f"{type(exc).__name__}: {exc}", pending)
                    continue
                if breaker is not None:
                    breaker.record_success(tick)
                shares = batch_result.member_seconds()
                corrupt: List[int] = []
                for slot, i in enumerate(live):
                    m = members[i]
                    verified = False
                    if self._unit("verify", rids[i]) < cfg.verify_rate:
                        check = self.verifier.check(
                            m.a, m.b, batch_result[slot].c, m.alpha, m.beta,
                            m.c, m.transa, m.transb, key=f"req:{rids[i]}",
                        )
                        if not check.passed:
                            self.counters.corruption_caught += 1
                            self.log.record(
                                rids[i], "corruption", device=rung.device,
                                rung=rung.name,
                                detail=(f"Freivalds residual "
                                        f"{check.max_residual:.3e} "
                                        f"> tolerance {check.tolerance:.3e}"),
                                trace_id=self._trace_id,
                            )
                            # The corrupt attempt burned real device time:
                            # it counts against both the member's service
                            # accounting and the admission backlog.
                            spent[i] += shares[slot]
                            self._backlog_s += shares[slot]
                            corrupt.append(i)
                            continue
                        verified = True
                        self.counters.verified += 1
                    finish(i, rung, batch_result[slot].c, shares[slot],
                           verified,
                           standalone_s=batch_result[slot].timings.total_s)
                if corrupt:
                    rung_span.set(outcome="partial_corrupt",
                                  corrupt=len(corrupt))
                    self._quarantine(rung, rids[corrupt[0]])
                    degrade(rung, "result corruption caught; re-serving",
                            corrupt)
                else:
                    rung_span.set(outcome="served")
                pending = corrupt
        assert not pending, "batch ladder exhausted with members pending"
        return [r for r in outs if r is not None]

    # -- hot swap -------------------------------------------------------
    def hot_swap(self, device: str, params, request_id: int = -1) -> Rung:
        """Replace ``device``'s primary serving kernel in place.

        The background tuner calls this when it beats the serving
        configuration: the new kernel is statically verified first
        (a provably unsafe swap is refused with
        :class:`~repro.errors.ParameterError` and the old kernel keeps
        serving), then the ``tuned`` rung is rebuilt around the new
        parameters.  In-flight and queued requests are untouched — only
        future dispatches see the new kernel — and the rung's
        quarantine state is reset because it no longer describes the
        kernel now serving.
        """
        from repro.analyze.verifier import StaticVerifier
        from repro.errors import ParameterError

        old = self.ladder.primary_rung(device)
        rule = StaticVerifier(old.spec).gate(params)
        if rule is not None:
            self.log.record(
                request_id, "static_reject", device=device, rung="tuned",
                detail=f"hot swap refused: {rule}: {params.summary()}",
                trace_id=self._trace_id,
            )
            self.counters.static_rejects += 1
            raise ParameterError(
                f"hot swap refused: replacement kernel violates {rule}"
            )
        rung = self.ladder.replace_primary(device, params)
        self._quarantined.pop(rung.key, None)
        self._static_rejected.pop(rung.key, None)
        self.counters.hot_swaps += 1
        self.log.record(
            request_id, "hot_swap", device=device, rung="tuned",
            detail=f"serving kernel replaced: {params.summary()}",
            trace_id=self._trace_id,
        )
        return rung

    # -- fleet membership -----------------------------------------------
    @property
    def serving_devices(self) -> Tuple[str, ...]:
        """Devices with live rungs on the ladder, in ladder order."""
        seen: List[str] = []
        for rung in self.ladder.rungs:
            if rung.device and rung.device not in seen:
                seen.append(rung.device)
        return tuple(seen)

    @property
    def parked_devices(self) -> Tuple[str, ...]:
        """Devices suspended off the ladder (suspected/draining)."""
        return tuple(sorted(self._parked))

    def admit_device(self, device, params=None, request_id: int = -1):
        """Bring a new device onto the serving ladder.

        The device's rung group is built, statically verified (refused
        kernels are recorded exactly like construction-time ones), and
        appended after the incumbents; a circuit breaker is created for
        it.  Returns the new rungs — empty when the device has nothing
        tuned at this precision, in which case nothing is admitted.
        """
        rungs = self.ladder.add_device(device, params)
        if not rungs:
            self.log.record(
                request_id, "fleet_admit", device=str(device),
                detail="refused: nothing tuned at this precision",
                trace_id=self._trace_id,
            )
            return rungs
        self._verify_rung_group(rungs, self._static_rejected)
        name = rungs[0].device
        if name not in self.breakers:
            self.breakers[name] = CircuitBreaker(
                name,
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_ticks=self.config.breaker_cooldown,
                probe_successes=self.config.breaker_probe_successes,
            )
        self.counters.fleet_admits += 1
        self.log.record(
            request_id, "fleet_admit", device=name,
            detail=f"{len(rungs)} rungs admitted",
            trace_id=self._trace_id,
        )
        return rungs

    def suspend_device(self, device: str, request_id: int = -1,
                       reason: str = "suspected") -> None:
        """Park a device's rungs off the ladder (routing removal only).

        The rung objects — and their built routines — are kept, so
        :meth:`resume_device` restores service without paying kernel
        construction again.  Suspending a device that is already parked
        or has no rungs is a no-op.
        """
        rungs = self.ladder.remove_device(device)
        if not rungs:
            return
        self._parked[device] = rungs
        self.log.record(
            request_id, "fleet_suspend", device=device, detail=reason,
            trace_id=self._trace_id,
        )

    def resume_device(self, device: str, request_id: int = -1) -> None:
        """Restore a parked device's rungs to the ladder."""
        rungs = self._parked.pop(device, None)
        if not rungs:
            return
        self.ladder.insert_device(rungs)
        self.log.record(
            request_id, "fleet_resume", device=device,
            detail=f"{len(rungs)} rungs restored",
            trace_id=self._trace_id,
        )

    def retire_device(self, device: str, request_id: int = -1,
                      reason: str = "drained") -> None:
        """Remove a device permanently (ladder + parked + quarantine).

        The breaker object is kept — a later re-admission of the same
        codename inherits its failure history, which is exactly what a
        flapping device deserves.
        """
        removed = self.ladder.remove_device(device)
        removed.extend(self._parked.pop(device, []))
        for rung in removed:
            self._quarantined.pop(rung.key, None)
            self._static_rejected.pop(rung.key, None)
        if removed:
            self.counters.fleet_retires += 1
            self.log.record(
                request_id, "fleet_retire", device=device, detail=reason,
                trace_id=self._trace_id,
            )

    # -- quarantine and canaries ---------------------------------------
    def _maybe_canaries(self, tick: int, rid: int) -> None:
        cfg = self.config
        if (self._quarantined and cfg.canary_interval > 0
                and tick % cfg.canary_interval == 0):
            with self.obs.span("canaries",
                               quarantined=len(self._quarantined)):
                self._run_canaries(tick, rid)

    def _quarantine(self, rung: Rung, rid: int) -> None:
        if rung.key not in self._quarantined:
            self._quarantined[rung.key] = 0
            self.counters.quarantined += 1
            self.log.record(rid, "quarantine", device=rung.device,
                            rung=rung.name, trace_id=self._trace_id)

    def _canary_problem(self):
        """A fixed seeded known-answer GEMM (reference precomputed once)."""
        if self._canary_cache is None:
            n = self.config.canary_size
            rng = np.random.default_rng(self.config.seed + 0xCA0A)
            a = rng.standard_normal((n, n)).astype(self.dtype)
            b = rng.standard_normal((n, n)).astype(self.dtype)
            expected = reference_gemm("N", "N", 1.0, a, b, 0.0)
            self._canary_cache = (a, b, expected)
        return self._canary_cache

    def _run_canaries(self, tick: int, rid: int) -> None:
        """Probe each quarantined kernel with a known-answer GEMM."""
        a, b, expected = self._canary_problem()
        tol = 1e-4 if self.precision == "s" else 1e-10
        rungs = {rung.key: rung for rung in self.ladder.rungs}
        for key in sorted(self._quarantined):
            rung = rungs.get(key)
            if rung is None:
                # The rung's device is parked (suspected/warming): the
                # fleet manager probes it; quarantine state waits here.
                continue
            self.counters.canaries_run += 1
            injector = self._salted_injector(f"canary:{tick}:{key}")
            with self.obs.span(f"canary:{key}") as cspan:
                try:
                    out, _ = call_with_timeout(
                        lambda: rung.call(a, b, None, 1.0, 0.0, "N", "N",
                                          injector=injector),
                        self.config.attempt_timeout_s,
                    )
                    ok = bool(np.all(np.isfinite(out))) \
                        and relative_error(out, expected) < tol
                except (CLError, MeasurementTimeout):
                    ok = False
                cspan.set(passed=ok)
            if ok:
                self._quarantined[key] += 1
                self.log.record(
                    rid, "canary_pass", device=rung.device, rung=rung.name,
                    detail=f"pass {self._quarantined[key]}"
                           f"/{self.config.canary_passes}",
                    trace_id=self._trace_id,
                )
                if self._quarantined[key] >= self.config.canary_passes:
                    del self._quarantined[key]
                    self.counters.readmitted += 1
                    self.log.record(rid, "readmit", device=rung.device,
                                    rung=rung.name,
                                    trace_id=self._trace_id)
            else:
                self._quarantined[key] = 0
                self.log.record(rid, "canary_fail", device=rung.device,
                                rung=rung.name, trace_id=self._trace_id)

    # -- introspection --------------------------------------------------
    def describe(self) -> str:
        lines = [f"GemmService ({'SGEMM' if self.precision == 's' else 'DGEMM'})"]
        lines.append(self.ladder.describe())
        for breaker in self.breakers.values():
            lines.append("  " + breaker.describe())
        if self._quarantined:
            lines.append(f"  quarantined: {', '.join(sorted(self._quarantined))}")
        return "\n".join(lines)
