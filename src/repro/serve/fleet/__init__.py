"""Elastic fleet management for the serving layer.

The robustness subsystem that closes the ROADMAP's "autoscaling the
simulated fleet under load" item: per-device health scoring and failure
detection (:mod:`.health`), a lifecycle state machine with warm-up and
graceful drain (:mod:`.lifecycle`), a provably non-flapping autoscaler
(:mod:`.autoscale`), and the manager that executes it all against a
live scheduler (:mod:`.manager`).  See ``docs/serving.md``.
"""

from repro.serve.fleet.autoscale import Autoscaler, AutoscaleConfig, ScaleEvent
from repro.serve.fleet.health import DeviceHealth, HealthConfig
from repro.serve.fleet.lifecycle import (
    LEGAL_EDGES,
    DeviceLifecycle,
    DeviceState,
    Transition,
)
from repro.serve.fleet.manager import FleetConfig, FleetManager

__all__ = [
    "Autoscaler",
    "AutoscaleConfig",
    "ScaleEvent",
    "DeviceHealth",
    "HealthConfig",
    "DeviceLifecycle",
    "DeviceState",
    "Transition",
    "LEGAL_EDGES",
    "FleetConfig",
    "FleetManager",
]
