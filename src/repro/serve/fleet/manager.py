"""The elastic fleet manager.

:class:`FleetManager` ties the failure detector
(:mod:`~repro.serve.fleet.health`), the lifecycle machine
(:mod:`~repro.serve.fleet.lifecycle`), and the autoscaler
(:mod:`~repro.serve.fleet.autoscale`) to a live
:class:`~repro.serve.sched.AsyncScheduler`:

* ``observe(ticket, request)`` — chained onto the scheduler's
  completion hook — feeds each served request's latency into the
  serving device's health model and the p99 window;
* ``tick(now_s)`` — called after every scheduler step — scans the
  incident log (cursor-based, so each record is read once) for failure
  evidence, probes warming and suspected devices with known-answer
  canaries, executes lifecycle transitions through the service's
  membership API (admit / suspend / resume / retire), reconciles the
  shard fleet (:meth:`AsyncScheduler.sync_fleet`), and evaluates the
  autoscaler at its cadence.

Membership changes route traffic by *ladder surgery*: a suspected or
warming device's rungs are parked off the degradation ladder — so no
real request can reach it — while its built routines survive for canary
probing and an instant, construction-free restore.  Growth candidates
come from :data:`repro.devices.catalog.CATALOG`, restricted to devices
with pretuned parameters at the service precision; retired devices
re-enter the candidate pool (``retired -> provisioning``) carrying
their breaker history.

Everything is deterministic under a fixed seed: probes are salted with
the evaluation counter, signals are pure functions of the simulated
clock, and the scale-event/transition logs are bit-identical run to
run — the churn-soak acceptance test diffs them.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import CLError, MeasurementTimeout
from repro.gemm.reference import relative_error
from repro.serve.fleet.autoscale import Autoscaler, AutoscaleConfig, ScaleEvent
from repro.serve.fleet.health import DeviceHealth, HealthConfig
from repro.serve.fleet.lifecycle import DeviceLifecycle, DeviceState
from repro.tuner.resilience import call_with_timeout

__all__ = ["FleetConfig", "FleetManager"]

#: Incident kinds treated as failure evidence, with their weights.
_FAILURE_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("breaker_trip", 2.0),
    ("corruption", 1.5),
    ("canary_fail", 1.0),
    ("degraded", 1.0),  # only when the detail carries an exception name
)


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-manager policy knobs."""

    autoscale: AutoscaleConfig = field(default_factory=AutoscaleConfig)
    health: HealthConfig = field(default_factory=HealthConfig)
    #: Consecutive known-answer passes a warming device needs to serve.
    warm_passes: int = 2
    #: Consecutive clean probes a suspected device needs to recover
    #: (its health score must also clear ``health.recover_threshold``).
    recover_passes: int = 2
    #: Grow-candidate codenames in preference order (None: every
    #: catalog device with pretuned parameters at the precision).
    candidates: Optional[Tuple[str, ...]] = None
    #: Completed-request latencies kept for the fallback p99 signal.
    latency_window: int = 256


class FleetManager:
    """Health-checked elastic membership over one async scheduler."""

    def __init__(self, scheduler, config: Optional[FleetConfig] = None):
        self.scheduler = scheduler
        self.service = scheduler.service
        self.config = config or FleetConfig()
        self.obs = scheduler.obs
        self.autoscaler = Autoscaler(self.config.autoscale)
        #: device -> lifecycle (never deleted: retirement is a state).
        self.lifecycles: Dict[str, DeviceLifecycle] = {}
        self.healths: Dict[str, DeviceHealth] = {}
        #: device -> consecutive clean probes while warming/suspected.
        self._probe_passes: Dict[str, int] = {}
        self.scale_events: List[ScaleEvent] = []
        self._incident_cursor = len(self.service.log)
        self._last_eval_t: Optional[float] = None
        self._evals = 0
        #: device -> monotone sequence of its latest entry into serving
        #: (shrink ties retire the newest member first).
        self._admit_seq: Dict[str, int] = {}
        self._admit_counter = 0
        self._latencies: Deque[float] = deque(maxlen=self.config.latency_window)
        #: Cumulative sched_latency_seconds counts at the last eval
        #: (for the registry-delta p99 when obs is enabled).
        self._hist_snapshot: Optional[List[int]] = None
        for device in self.service.serving_devices:
            self.lifecycles[device] = DeviceLifecycle(
                device, DeviceState.SERVING, 0.0, "initial fleet"
            )
            self.healths[device] = DeviceHealth(device, self.config.health)
            self._admit_counter += 1
            self._admit_seq[device] = self._admit_counter
        self._candidates = (
            list(self.config.candidates)
            if self.config.candidates is not None
            else self._default_candidates()
        )
        if self.obs.enabled:
            self._state_gauge = self.obs.gauge(
                "fleet_devices",
                "Fleet members per lifecycle state.",
                labelnames=("state",),
            )
            self._score_gauge = self.obs.gauge(
                "fleet_health_score",
                "Failure-detector health score per device (1 = healthy).",
                labelnames=("device",),
            )
            self._scale_counter = self.obs.counter(
                "fleet_scale_events_total",
                "Autoscale events executed, by direction.",
                labelnames=("direction",),
            )
            self._refresh_gauges(0.0)
        else:
            self._state_gauge = None
            self._score_gauge = None
            self._scale_counter = None

    def _default_candidates(self) -> List[str]:
        """Catalog devices servable at this precision, paper order."""
        from repro.devices.catalog import EVALUATED_DEVICES, list_device_names
        from repro.tuner.pretuned import pretuned_params

        ordered = list(EVALUATED_DEVICES) + [
            d for d in list_device_names() if d not in EVALUATED_DEVICES
        ]
        names = []
        for device in ordered:
            try:
                pretuned_params(device, self.service.precision)
            except KeyError:
                continue
            names.append(device)
        return names

    # -- membership census ----------------------------------------------
    def devices_in(self, *states: DeviceState) -> List[str]:
        return [d for d, lc in self.lifecycles.items() if lc.state in states]

    @property
    def fleet_size(self) -> int:
        """Members the autoscaler counts: serving plus almost-serving.

        Warming devices are included — they will serve within a couple
        of evaluations, so growing again for the same backlog would
        overshoot.  Suspected devices are *excluded*: a zone outage
        must read as lost capacity for the autoscaler to backfill.
        """
        return len(self.devices_in(DeviceState.SERVING, DeviceState.WARMING))

    # -- signal plumbing -------------------------------------------------
    def observe(self, ticket, request) -> None:
        """Completion hook: fold one finished request into the signals."""
        if ticket.status != "served" or ticket.result is None:
            return
        if ticket.latency_s is not None:
            self._latencies.append(ticket.latency_s)
        device = ticket.result.device
        health = self.healths.get(device)
        if (health is not None
                and self.lifecycles[device].state is DeviceState.SERVING):
            health.observe_dispatch(
                ticket.completed_s or 0.0,
                ticket.result.service_s,
                getattr(request, "predicted_s", 0.0),
            )

    def _scan_incidents(self, now_s: float) -> None:
        """Read new incident records once, crediting failure evidence."""
        incidents = list(self.service.log)
        weights = dict(_FAILURE_WEIGHTS)
        for incident in incidents[self._incident_cursor:]:
            weight = weights.get(incident.kind)
            if weight is None:
                continue
            if incident.kind == "degraded":
                # Count only real runtime failures (an exception name
                # leads the detail), not routing skips like "circuit
                # breaker open" or "deadline: ..." — those are
                # consequences of evidence already accrued.
                head = incident.detail.split(":", 1)[0]
                if not head.endswith("Error"):
                    continue
            health = self.healths.get(incident.device)
            if health is not None:
                health.observe_failure(now_s, weight)
        self._incident_cursor = len(incidents)

    def _signals(self) -> Tuple[float, Optional[float]]:
        """(total queue depth, p99 latency) from the scheduler's series.

        With observability enabled these come from the exported
        ``sched_queue_depth`` gauges and the ``sched_latency_seconds``
        histogram (count deltas between evaluations); without it, from
        the queues and a sliding window of completed latencies — the
        same numbers, one source of truth less.
        """
        if self.obs.enabled:
            try:
                return self._registry_signals()
            except (KeyError, AttributeError):
                pass
        depth = float(sum(
            len(state.queue) for state in self.scheduler.queues
        ))
        return depth, self._window_p99()

    def _registry_signals(self) -> Tuple[float, Optional[float]]:
        registry = self.obs.metrics
        depth_gauge = registry.get("sched_queue_depth")
        depth = float(sum(
            child.value for _, child in depth_gauge.series_items()
        ))
        hist = registry.get("sched_latency_seconds")
        buckets: Optional[List[float]] = None
        totals: Optional[List[int]] = None
        for _, child in hist.series_items():
            if buckets is None:
                buckets = list(child.buckets)
                totals = [0] * len(child.counts)
            for i, count in enumerate(child.counts):
                totals[i] += count
        if totals is None:
            return depth, self._window_p99()
        previous = self._hist_snapshot or [0] * len(totals)
        if len(previous) != len(totals):
            previous = [0] * len(totals)
        delta = [t - p for t, p in zip(totals, previous)]
        self._hist_snapshot = totals
        observed = sum(delta)
        if observed <= 0:
            return depth, None  # nothing completed since the last eval
        rank = math.ceil(0.99 * observed)
        cumulative = 0
        for i, count in enumerate(delta):
            cumulative += count
            if cumulative >= rank:
                bound = buckets[i] if i < len(buckets) else buckets[-1]
                return depth, float(bound)
        return depth, float(buckets[-1])

    def _window_p99(self) -> Optional[float]:
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        index = min(len(ordered) - 1, math.ceil(0.99 * len(ordered)) - 1)
        return ordered[max(index, 0)]

    # -- the periodic tick ----------------------------------------------
    def tick(self, now_s: float) -> None:
        """One control-plane pass; the soak calls this after each step."""
        self._scan_incidents(now_s)
        interval = self.config.autoscale.eval_interval_s
        if (self._last_eval_t is not None
                and now_s - self._last_eval_t < interval):
            return
        self._last_eval_t = now_s
        self._evals += 1
        self._check_serving(now_s)
        self._probe_parked(now_s)
        depth, p99 = self._signals()
        direction = self.autoscaler.evaluate(
            now_s, depth, p99, self.fleet_size
        )
        if direction == "grow":
            self._grow(now_s, depth, p99)
        elif direction == "shrink":
            self._shrink(now_s, depth, p99)
        self._refresh_gauges(now_s)

    # -- failure detection ----------------------------------------------
    def _check_serving(self, now_s: float) -> None:
        """Suspend serving devices whose health score collapsed."""
        for device in self.devices_in(DeviceState.SERVING):
            health = self.healths[device]
            breaker = self.service.breakers.get(device)
            score = health.score(
                now_s, breaker.state if breaker is not None else None
            )
            if score >= self.config.health.suspect_threshold:
                continue
            self.lifecycles[device].transition(
                DeviceState.SUSPECTED, now_s,
                f"health score {score:.3f} < "
                f"{self.config.health.suspect_threshold}",
            )
            self._probe_passes[device] = 0
            self.service.suspend_device(
                device, reason=f"suspected: health score {score:.3f}"
            )
            self.service.log.record(
                -1, "fleet_suspect", device=device,
                detail=f"score {score:.3f} at t={now_s * 1e3:.3f} ms",
            )
            self.scheduler.sync_fleet()

    def _probe_parked(self, now_s: float) -> None:
        """Canary-probe warming and suspected devices (parked rungs).

        A probe is *clean* only when it is both correct and fast: a
        brownout-degraded device answers correctly at several times its
        predicted latency, and admitting it back on timing evidence it
        still fails would re-suspect it next evaluation — flapping by
        another name.  Slow-but-correct probes reset the pass streak
        without accruing failure load; their measured ratio feeds the
        latency EWMA, which is also how a recovered device's ratio
        drifts back down once the brownout window passes.
        """
        cfg = self.config
        slack = cfg.health.latency_slack
        for device in self.devices_in(DeviceState.WARMING,
                                      DeviceState.SUSPECTED):
            lifecycle = self.lifecycles[device]
            health = self.healths[device]
            correct, ratio = self._probe(device)
            clean = correct and ratio is not None and ratio < slack
            health.observe_probe(now_s, ratio, clean)
            if not correct:
                self._probe_passes[device] = 0
                health.observe_failure(now_s, 1.0)
                continue
            if not clean:
                self._probe_passes[device] = 0  # correct but degraded
                continue
            self._probe_passes[device] = self._probe_passes.get(device, 0) + 1
            if lifecycle.state is DeviceState.WARMING:
                if self._probe_passes[device] >= cfg.warm_passes:
                    lifecycle.transition(
                        DeviceState.SERVING, now_s,
                        f"{cfg.warm_passes} known-answer passes",
                    )
                    self.service.resume_device(device)
                    self._admit_counter += 1
                    self._admit_seq[device] = self._admit_counter
                    self.scheduler.sync_fleet()
            else:  # SUSPECTED
                score = self.healths[device].score(now_s)
                if (self._probe_passes[device] >= cfg.recover_passes
                        and score >= cfg.health.recover_threshold):
                    lifecycle.transition(
                        DeviceState.SERVING, now_s,
                        f"{cfg.recover_passes} clean probes, "
                        f"score {score:.3f}",
                    )
                    self.service.resume_device(device)
                    self.service.log.record(
                        -1, "fleet_recover", device=device,
                        detail=f"score {score:.3f} at t={now_s * 1e3:.3f} ms",
                    )
                    self.scheduler.sync_fleet()

    def _probe(self, device: str) -> Tuple[bool, Optional[float]]:
        """One known-answer canary against a parked device's best rung.

        Returns ``(correct, latency_ratio)`` where the ratio is the
        probe's simulated seconds over the rung's noise-free prediction
        (None when the probe faulted before timing anything).
        """
        rungs = self.service._parked.get(device)
        if not rungs:
            return False, None
        a, b, expected = self.service._canary_problem()
        n = self.service.config.canary_size
        injector = self.service._salted_injector(
            f"fleet:probe:{device}:{self._evals}"
        )
        tol = 1e-4 if self.service.precision == "s" else 1e-10
        try:
            (out, seconds) = call_with_timeout(
                lambda: rungs[0].call(a, b, None, 1.0, 0.0, "N", "N",
                                      injector=injector),
                self.service.config.attempt_timeout_s,
            )
        except (CLError, MeasurementTimeout):
            return False, None
        predicted = rungs[0].predict_s(n, n, n)
        ratio = seconds / predicted if predicted > 0 else None
        correct = bool(np.all(np.isfinite(out))) and (
            relative_error(out, expected) < tol
        )
        return correct, ratio

    # -- scaling ---------------------------------------------------------
    def _grow(self, now_s: float, depth: float, p99: Optional[float]) -> None:
        before = self.fleet_size
        limit = self.autoscaler.step_limit("grow", before)
        added: List[str] = []
        for _ in range(limit):
            device = self._next_candidate()
            if device is None:
                break
            with self.obs.span("fleet.scale", direction="grow",
                               device=device):
                rungs = self.service.admit_device(device)
                if not rungs:
                    # Nothing tuned after all: drop it from the pool.
                    self._candidates = [
                        c for c in self._candidates if c != device
                    ]
                    continue
                # Warming: parked off the ladder, canary traffic only.
                self.service.suspend_device(device, reason="warming")
                lifecycle = self.lifecycles.get(device)
                if lifecycle is None:
                    lifecycle = DeviceLifecycle(
                        device, DeviceState.PROVISIONING, now_s,
                        "autoscaler grow",
                    )
                    self.lifecycles[device] = lifecycle
                    self.healths[device] = DeviceHealth(
                        device, self.config.health
                    )
                else:
                    lifecycle.transition(
                        DeviceState.PROVISIONING, now_s, "recommissioned"
                    )
                    self.healths[device] = DeviceHealth(
                        device, self.config.health
                    )
                lifecycle.transition(
                    DeviceState.WARMING, now_s, "rungs built and verified"
                )
                self._probe_passes[device] = 0
                added.append(device)
        if added:
            self._record_event("grow", now_s, added, before, depth, p99)

    def _shrink(self, now_s: float, depth: float,
                p99: Optional[float]) -> None:
        before = self.fleet_size
        limit = self.autoscaler.step_limit("shrink", before)
        serving = self.devices_in(DeviceState.SERVING)
        if not serving or limit <= 0:
            return
        # Never drain below min_devices of *serving* capacity.
        limit = min(limit, max(0, len(serving) - self.config.autoscale.min_devices))
        if limit <= 0:
            return
        # Drain the least healthy first; ties leave the longest-serving
        # incumbents alone (LIFO on admission sequence).
        order = sorted(
            serving,
            key=lambda d: (
                self.healths[d].score(now_s),
                -self._admit_seq.get(d, 0),
            ),
        )
        removed: List[str] = []
        for device in order[:limit]:
            with self.obs.span("fleet.scale", direction="shrink",
                               device=device):
                lifecycle = self.lifecycles[device]
                lifecycle.transition(
                    DeviceState.DRAINING, now_s, "autoscaler shrink"
                )
                # The discrete-event loop has no in-flight work between
                # steps, so the graceful drain completes immediately:
                # the ladder stops routing to it and nothing is queued
                # on a device (queues are per-tenant, not per-device).
                lifecycle.transition(
                    DeviceState.RETIRED, now_s, "drain complete"
                )
                self.service.retire_device(
                    device, reason="autoscaler shrink"
                )
                removed.append(device)
            self.scheduler.sync_fleet()
        if removed:
            self._record_event("shrink", now_s, removed, before, depth, p99)

    def _next_candidate(self) -> Optional[str]:
        """The first candidate not currently occupying the fleet.

        Retired devices are eligible again — the pool cycles — but
        fresh candidates are preferred over recommissions.
        """
        active = set(self.devices_in(
            DeviceState.PROVISIONING, DeviceState.WARMING,
            DeviceState.SERVING, DeviceState.SUSPECTED, DeviceState.DRAINING,
        ))
        fresh = [c for c in self._candidates
                 if c not in active and c not in self.lifecycles]
        if fresh:
            return fresh[0]
        for candidate in self._candidates:
            if candidate not in active:
                return candidate
        return None

    def _record_event(self, direction: str, now_s: float,
                      devices: List[str], before: int,
                      depth: float, p99: Optional[float]) -> None:
        event = ScaleEvent(
            t_s=now_s, direction=direction, devices=tuple(devices),
            fleet_before=before, fleet_after=self.fleet_size,
            reason=(f"depth {depth:g}"
                    + (f", p99 {p99 * 1e3:.3f} ms" if p99 is not None
                       else "")),
        )
        self.scale_events.append(event)
        self.service.log.record(
            -1, "fleet_scale",
            device=",".join(devices),
            detail=(f"{direction} {len(devices)} at t={now_s * 1e3:.3f} ms "
                    f"({event.reason}); fleet {before} -> "
                    f"{event.fleet_after}"),
        )
        if self._scale_counter is not None:
            self._scale_counter.labels(direction=direction).inc()

    # -- telemetry / report ----------------------------------------------
    def _refresh_gauges(self, now_s: float) -> None:
        if self._state_gauge is None:
            return
        for state in DeviceState:
            self._state_gauge.labels(state=state.value).set(
                len(self.devices_in(state))
            )
        for device, health in self.healths.items():
            breaker = self.service.breakers.get(device)
            self._score_gauge.labels(device=device).set(
                round(health.score(
                    now_s, breaker.state if breaker is not None else None
                ), 6)
            )

    def summary(self, now_s: float) -> Dict:
        """The fleet section of the soak report (JSON-ready)."""
        return {
            "evaluations": self.autoscaler.evaluations,
            "scale_events": [e.to_dict() for e in self.scale_events],
            "grow_events": sum(
                1 for e in self.scale_events if e.direction == "grow"
            ),
            "shrink_events": sum(
                1 for e in self.scale_events if e.direction == "shrink"
            ),
            "devices": {
                device: {
                    "state": lifecycle.state.value,
                    "health_score": round(
                        self.healths[device].score(now_s), 6
                    ),
                    "dispatches": self.healths[device].dispatches,
                    "failure_events": self.healths[device].failure_events,
                    "transitions": [
                        t.to_dict() for t in lifecycle.transitions
                    ],
                }
                for device, lifecycle in sorted(self.lifecycles.items())
            },
            "final_serving": sorted(self.devices_in(DeviceState.SERVING)),
        }

    def describe(self) -> str:
        lines = [f"fleet manager: {self.fleet_size} active "
                 f"({len(self.scale_events)} scale events)"]
        for device, lifecycle in sorted(self.lifecycles.items()):
            lines.append(f"  {device:12s} {lifecycle.state.value}")
        return "\n".join(lines)
