"""The autoscaler: hysteresis, sustain, cooldown — provably no flap.

:class:`Autoscaler` is a pure decision function over the scheduler's
load signals (total queue depth and p99 latency); it owns no devices —
the :class:`~repro.serve.fleet.manager.FleetManager` executes whatever
it decides.  Three mechanisms make flapping *structurally* impossible
rather than merely unlikely:

1. **Hysteresis bands** — grow triggers above the high watermark
   (``grow_queue_depth``, optionally ``grow_p99_s``), shrink only
   below the separate low watermarks (``shrink_queue_depth``,
   ``shrink_p99_s``).  The dead band between them decides nothing.
2. **Sustain** — a breach must hold for ``sustain_evals`` *consecutive*
   evaluations before it acts; a single bursty sample resets to zero
   progress toward the opposite direction.
3. **Cooldown** — after any scale event, *every* decision (either
   direction) is suppressed for ``cooldown_s``.  This is the anti-flap
   proof: a grow at time ``t`` means no decision of any kind exists in
   ``(t, t + cooldown_s)``, so a grow+shrink pair inside one cooldown
   window cannot be constructed.  The property test pins this down.

Scale steps are bounded by ``max_step`` devices per event and the fleet
by ``[min_devices, max_devices]``.  Everything is pure arithmetic over
the sampled signals — no wall clock, no RNG — so a seeded soak decides
identically run after run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["AutoscaleConfig", "ScaleEvent", "Autoscaler"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Autoscaler policy knobs (times are simulated seconds)."""

    min_devices: int = 1
    max_devices: int = 6
    #: Evaluation cadence: signals are sampled at most this often.
    eval_interval_s: float = 0.005
    #: High watermark: total queued requests above this (sustained)
    #: grows the fleet.
    grow_queue_depth: float = 24.0
    #: Low watermark: total queued requests below this (sustained, with
    #: latency also calm) shrinks it.  Must sit below the high one.
    shrink_queue_depth: float = 4.0
    #: Optional p99 latency watermarks (None disables that signal).
    grow_p99_s: Optional[float] = None
    shrink_p99_s: Optional[float] = None
    #: Consecutive breached evaluations required before acting.
    sustain_evals: int = 2
    #: After any event, no decision of either kind for this long.
    cooldown_s: float = 0.05
    #: Devices added/removed per event.
    max_step: int = 1

    def __post_init__(self):
        if not 1 <= self.min_devices <= self.max_devices:
            raise ValueError("need 1 <= min_devices <= max_devices")
        if self.shrink_queue_depth >= self.grow_queue_depth:
            raise ValueError(
                "hysteresis requires shrink_queue_depth < grow_queue_depth"
            )
        if (self.grow_p99_s is not None and self.shrink_p99_s is not None
                and self.shrink_p99_s >= self.grow_p99_s):
            raise ValueError("hysteresis requires shrink_p99_s < grow_p99_s")
        if self.sustain_evals < 1:
            raise ValueError("sustain_evals must be >= 1")
        if self.cooldown_s < 0 or self.eval_interval_s <= 0:
            raise ValueError("cooldown_s >= 0 and eval_interval_s > 0")
        if self.max_step < 1:
            raise ValueError("max_step must be >= 1")


@dataclass(frozen=True)
class ScaleEvent:
    """One executed autoscale decision (recorded by the manager)."""

    t_s: float
    direction: str  # "grow" | "shrink"
    devices: Tuple[str, ...]
    fleet_before: int
    fleet_after: int
    reason: str

    def to_dict(self) -> Dict:
        return {
            "t_s": self.t_s,
            "direction": self.direction,
            "devices": list(self.devices),
            "fleet_before": self.fleet_before,
            "fleet_after": self.fleet_after,
            "reason": self.reason,
        }


class Autoscaler:
    """The decision core: signals in, ``"grow"``/``"shrink"``/None out."""

    def __init__(self, config: Optional[AutoscaleConfig] = None) -> None:
        self.config = config or AutoscaleConfig()
        self._high_streak = 0
        self._low_streak = 0
        self._last_event_t: Optional[float] = None
        self.evaluations = 0

    def in_cooldown(self, now_s: float) -> bool:
        return (self._last_event_t is not None
                and now_s - self._last_event_t < self.config.cooldown_s)

    def evaluate(
        self,
        now_s: float,
        queue_depth: float,
        p99_s: Optional[float],
        fleet_size: int,
    ) -> Optional[str]:
        """One evaluation; returns the direction to act on, if any.

        The caller (the fleet manager) owns the cadence — it calls this
        at ``eval_interval_s`` boundaries — and must execute a returned
        decision, because this method records the event time the
        cooldown is measured from.
        """
        cfg = self.config
        self.evaluations += 1
        high = queue_depth > cfg.grow_queue_depth or (
            cfg.grow_p99_s is not None and p99_s is not None
            and p99_s > cfg.grow_p99_s
        )
        low = queue_depth < cfg.shrink_queue_depth and (
            cfg.shrink_p99_s is None or p99_s is None
            or p99_s < cfg.shrink_p99_s
        )
        self._high_streak = self._high_streak + 1 if high else 0
        self._low_streak = self._low_streak + 1 if low else 0
        # Cooldown suppresses BOTH directions: no grow+shrink pair can
        # exist inside one cooldown window, by construction.
        if self.in_cooldown(now_s):
            return None
        if (self._high_streak >= cfg.sustain_evals
                and fleet_size < cfg.max_devices):
            self._note_event(now_s)
            return "grow"
        if (self._low_streak >= cfg.sustain_evals
                and fleet_size > cfg.min_devices):
            self._note_event(now_s)
            return "shrink"
        return None

    def step_limit(self, direction: str, fleet_size: int) -> int:
        """How many devices this event may add or remove."""
        cfg = self.config
        if direction == "grow":
            return max(0, min(cfg.max_step, cfg.max_devices - fleet_size))
        return max(0, min(cfg.max_step, fleet_size - cfg.min_devices))

    def _note_event(self, now_s: float) -> None:
        self._last_event_t = now_s
        self._high_streak = 0
        self._low_streak = 0
