"""Per-device health: a phi-accrual-style failure detector.

Classic phi-accrual (Hayashibara et al.) scores the suspicion that a
peer is down from the distribution of heartbeat gaps.  Serving GEMMs
has no heartbeats, but it has richer evidence: every dispatch yields an
observed/predicted latency ratio, every fault, breaker trip, or failed
Freivalds check is an explicit failure event, and the circuit breaker
publishes its state.  :class:`DeviceHealth` folds the three into one
suspicion level ``phi >= 0`` and a bounded ``score = 1 / (1 + phi)``
in ``(0, 1]``:

* failure events accrue a load that *decays per successful dispatch*
  (multiplied by ``1 - dispatch_decay`` each time the device completes
  work, by ``1 - probe_decay`` on each clean health probe).  Decaying
  per event rather than per second makes the detector measure the
  failure **fraction** — in the simulator thousands of dispatches fit
  in a millisecond, so any clock-based half-life would see baseline
  chaos (a few percent of injected faults) and a total outage as the
  same "many failures per second" and suspect everything.  Per-dispatch
  decay instead settles at ``weight * failure_fraction /
  dispatch_decay``: calm at baseline, saturating only when most of the
  work fails — i.e. during a real outage, when no successes arrive to
  decay it;
* sustained latency inflation — the brownout signature: slower, never
  lost — contributes ``max(0, EWMA(observed/predicted) - slack)``;
* an open breaker pins phi high, a half-open one moderately.

The fleet manager reads ``score`` against two thresholds with a gap
between them (suspect below ``suspect_threshold``, eligible to recover
above ``recover_threshold``), so a device hovering at the boundary
cannot oscillate between serving and suspected every evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.serve.breaker import BreakerState

__all__ = ["HealthConfig", "DeviceHealth"]


@dataclass(frozen=True)
class HealthConfig:
    """Failure-detector knobs."""

    #: Fraction of the failure load shed per successful dispatch.  The
    #: load settles at ``failure_fraction / dispatch_decay`` under
    #: steady traffic, so with the default a device must fail more
    #: than ~12% of its work (3 phi at suspect_threshold 0.25) before
    #: suspicion builds.
    dispatch_decay: float = 0.04
    #: Fraction shed per *clean* health probe — probes are deliberate
    #: known-answer checks, so each one is strong evidence: from the
    #: ``max_load`` ceiling, ``log(max_load) / probe_decay`` clean
    #: probes reach phi < 1.
    probe_decay: float = 0.5
    #: EWMA weight for the observed/predicted latency ratio.
    latency_alpha: float = 0.25
    #: Latency ratio below this contributes nothing to phi (tuned
    #: kernels routinely run a little off their noise-free prediction).
    latency_slack: float = 2.0
    #: Failure load saturates here, bounding post-outage recovery to a
    #: fixed number of clean probes regardless of outage length.
    max_load: float = 8.0
    #: Phi contribution of an open / half-open circuit breaker.
    breaker_open_phi: float = 4.0
    breaker_half_open_phi: float = 1.0
    #: Score below this suspects a serving device ...
    suspect_threshold: float = 0.25
    #: ... and only a score back above this (plus clean probes) recovers
    #: it — the hysteresis gap prevents suspect/recover oscillation.
    recover_threshold: float = 0.5

    def __post_init__(self):
        if not 0 < self.dispatch_decay < 1:
            raise ValueError("dispatch_decay must be in (0, 1)")
        if not 0 < self.probe_decay < 1:
            raise ValueError("probe_decay must be in (0, 1)")
        if not 0 < self.latency_alpha <= 1:
            raise ValueError("latency_alpha must be in (0, 1]")
        if not 0 < self.suspect_threshold <= self.recover_threshold <= 1:
            raise ValueError(
                "need 0 < suspect_threshold <= recover_threshold <= 1"
            )


@dataclass
class DeviceHealth:
    """Accrued health evidence for one device."""

    device: str
    config: HealthConfig = field(default_factory=HealthConfig)
    #: Failure load, decayed per successful dispatch / clean probe.
    _load: float = 0.0
    #: EWMA of observed/predicted dispatch latency.
    _ratio: float = 1.0
    # -- lifetime evidence counts ---------------------------------------
    dispatches: int = 0
    probes: int = 0
    failure_events: int = 0

    def observe_dispatch(
        self, now_s: float, observed_s: float, predicted_s: float
    ) -> None:
        """Fold one completed dispatch in: decay load, update the EWMA."""
        self.dispatches += 1
        self._load *= 1.0 - self.config.dispatch_decay
        if predicted_s <= 0.0 or observed_s < 0.0:
            return
        alpha = self.config.latency_alpha
        self._ratio += alpha * (observed_s / predicted_s - self._ratio)

    def observe_probe(
        self, now_s: float, ratio: Optional[float], clean: bool
    ) -> None:
        """Fold one health probe in (``ratio`` is observed/predicted).

        A clean probe (correct *and* fast) sheds ``probe_decay`` of the
        load — deliberate known-answer evidence outweighs one routine
        dispatch.  The measured ratio always feeds the latency EWMA,
        which is how a browned-out device's ratio relaxes back under
        the slack once the episode ends.  Probe *failures* are the
        caller's to report via :meth:`observe_failure`.
        """
        self.probes += 1
        if clean:
            self._load *= 1.0 - self.config.probe_decay
        if ratio is not None and ratio >= 0.0:
            alpha = self.config.latency_alpha
            self._ratio += alpha * (ratio - self._ratio)

    def observe_failure(self, now_s: float, weight: float = 1.0) -> None:
        """Accrue one failure event (breaker trip, fault, bad canary).

        The load saturates at ``max_load``: suspicion cannot grow
        without bound during a long outage, so the number of clean
        probes back to a recoverable score is bounded too.
        """
        self.failure_events += 1
        self._load = min(self._load + max(0.0, weight), self.config.max_load)

    def phi(self, now_s: float,
            breaker_state: Optional[BreakerState] = None) -> float:
        """Current suspicion level (0 = perfectly healthy)."""
        cfg = self.config
        value = self._load
        value += max(0.0, self._ratio - cfg.latency_slack)
        if breaker_state is BreakerState.OPEN:
            value += cfg.breaker_open_phi
        elif breaker_state is BreakerState.HALF_OPEN:
            value += cfg.breaker_half_open_phi
        return value

    def score(self, now_s: float,
              breaker_state: Optional[BreakerState] = None) -> float:
        """Bounded health score in (0, 1]; 1 is perfectly healthy."""
        return 1.0 / (1.0 + self.phi(now_s, breaker_state))

    @property
    def latency_ratio(self) -> float:
        """The current observed/predicted latency EWMA."""
        return self._ratio
