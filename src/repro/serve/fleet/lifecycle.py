"""The per-device lifecycle state machine.

A fleet member is always in exactly one state::

              provision              warm
    retired --------------> provisioning --> warming --> serving
       ^                                       |           |  ^
       |        failed warmup / drained        v           v  | recovered
       +---------------- draining <------- (retired)   suspected
                             ^                             |
                             +-----------------------------+

* ``provisioning`` — chosen by the autoscaler, not yet buildable;
* ``warming`` — rungs built and statically verified, parked off the
  ladder; the device takes only known-answer canary traffic until it
  passes ``warm_passes`` consecutive checks;
* ``serving`` — on the ladder, taking real traffic;
* ``suspected`` — the failure detector's score dropped below threshold;
  parked off the ladder, probed each evaluation, restored only after
  consecutive clean probes *and* a recovered score;
* ``draining`` — leaving gracefully (autoscaler shrink); new work is
  already routed elsewhere, in-flight work completes, then retirement;
* ``retired`` — off the fleet; may be recommissioned later (the
  ``retired -> provisioning`` edge), inheriting its breaker history.

Transitions not in :data:`LEGAL_EDGES` raise ``ValueError`` — state
bugs fail loudly instead of silently corrupting membership — and every
transition is appended to a log of ``(t_s, from, to, reason)`` the soak
report persists.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

__all__ = ["DeviceState", "Transition", "DeviceLifecycle", "LEGAL_EDGES"]


class DeviceState(str, Enum):
    PROVISIONING = "provisioning"
    WARMING = "warming"
    SERVING = "serving"
    DRAINING = "draining"
    SUSPECTED = "suspected"
    RETIRED = "retired"


#: The allowed edges of the state machine.
LEGAL_EDGES: Tuple[Tuple[DeviceState, DeviceState], ...] = (
    (DeviceState.PROVISIONING, DeviceState.WARMING),
    (DeviceState.WARMING, DeviceState.SERVING),
    (DeviceState.WARMING, DeviceState.RETIRED),
    (DeviceState.SERVING, DeviceState.SUSPECTED),
    (DeviceState.SERVING, DeviceState.DRAINING),
    (DeviceState.SUSPECTED, DeviceState.SERVING),
    (DeviceState.SUSPECTED, DeviceState.DRAINING),
    (DeviceState.SUSPECTED, DeviceState.RETIRED),
    (DeviceState.DRAINING, DeviceState.RETIRED),
    (DeviceState.RETIRED, DeviceState.PROVISIONING),
)


@dataclass(frozen=True)
class Transition:
    """One recorded lifecycle edge."""

    t_s: float
    source: DeviceState
    target: DeviceState
    reason: str

    def to_dict(self) -> Dict:
        return {
            "t_s": self.t_s,
            "from": self.source.value,
            "to": self.target.value,
            "reason": self.reason,
        }


class DeviceLifecycle:
    """One device's state plus its full transition history."""

    def __init__(
        self,
        device: str,
        initial: DeviceState = DeviceState.PROVISIONING,
        t_s: float = 0.0,
        reason: str = "created",
    ) -> None:
        self.device = device
        self.state = initial
        self.transitions: List[Transition] = []
        # The creation record: a self-edge documenting the bootstrap
        # state (the initial fleet starts directly in ``serving``).
        self.transitions.append(Transition(t_s, initial, initial, reason))

    def transition(self, target: DeviceState, t_s: float,
                   reason: str = "") -> Transition:
        """Move to ``target``; illegal edges raise ``ValueError``."""
        if (self.state, target) not in LEGAL_EDGES:
            raise ValueError(
                f"device {self.device!r}: illegal lifecycle transition "
                f"{self.state.value} -> {target.value}"
            )
        record = Transition(t_s, self.state, target, reason)
        self.state = target
        self.transitions.append(record)
        return record

    def can(self, target: DeviceState) -> bool:
        return (self.state, target) in LEGAL_EDGES

    @property
    def takes_traffic(self) -> bool:
        """True in the one state that serves real requests."""
        return self.state is DeviceState.SERVING

    def to_dict(self) -> Dict:
        return {
            "device": self.device,
            "state": self.state.value,
            "transitions": [t.to_dict() for t in self.transitions],
        }

    def __repr__(self) -> str:
        return f"<DeviceLifecycle {self.device}:{self.state.value}>"
