"""Freivalds probabilistic result verification.

A full correctness check of ``C = alpha op(A) op(B) + beta C0`` costs
another O(n^3) multiplication — as expensive as serving the request
twice.  Freivalds' algorithm (1977) checks the same identity in O(n^2)
per round: pick a random vector ``x``, compare ``C x`` against
``alpha op(A) (op(B) x) + beta (C0 x)``.  A correct result always
passes; a wrong one passes a single round with probability at most 1/2
for adversarial errors — and with probability ~0 for the fault
injector's NaN corruption, which poisons ``C x`` outright.  ``rounds``
independent vectors drive the adversarial escape probability to
``2^-rounds``.

GEMMbench (Lokhmotov, 2015) argues GEMM stacks need systematic
correctness checking alongside timing; this is the cheapest sound way
to get it on the serving hot path.  Every decision is seeded: the
random vectors are a pure function of ``(seed, key)``, so a soak run
re-verifies exactly the same responses with exactly the same vectors.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["FreivaldsCheck", "FreivaldsVerifier"]


@dataclass(frozen=True)
class FreivaldsCheck:
    """Outcome of one verification: verdict plus evidence."""

    passed: bool
    rounds: int
    #: Largest relative residual observed across rounds (inf for NaN).
    max_residual: float
    #: Residual threshold the verdict compared against.
    tolerance: float


def _derive_seed(seed: int, key: str) -> int:
    """A per-request RNG seed: pure function of the service seed + key."""
    digest = hashlib.blake2b(
        f"freivalds|{seed}|{key}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class FreivaldsVerifier:
    """Seeded Freivalds checker for GEMM responses.

    ``tol_factor`` scales the rounding-error allowance: the residual is
    compared against ``tol_factor * K * eps(dtype)`` relative to the
    magnitude of the reference projection.  The default is loose enough
    that honest float32 kernels never trip it (false-positive rate 0 on
    clean runs, asserted by the test suite) while NaN/garbage corruption
    overshoots it by many orders of magnitude.
    """

    def __init__(self, seed: int = 0, rounds: int = 2,
                 tol_factor: float = 64.0) -> None:
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.seed = seed
        self.rounds = rounds
        self.tol_factor = tol_factor

    def check(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c_out: np.ndarray,
        alpha: float = 1.0,
        beta: float = 0.0,
        c_in: Optional[np.ndarray] = None,
        transa: str = "N",
        transb: str = "N",
        key: str = "",
    ) -> FreivaldsCheck:
        """Verify one response; O(rounds * n^2), deterministic in ``key``."""
        opa = a.T if transa.upper() == "T" else a
        opb = b.T if transb.upper() == "T" else b
        K = opa.shape[1]
        # Non-finite output is wrong regardless of projection luck (a
        # Rademacher vector could cancel two NaN columns only in exact
        # arithmetic; NaN propagation makes the residual NaN anyway, but
        # the explicit scan gives a crisp verdict for free in O(n^2)).
        if not np.all(np.isfinite(c_out)):
            return FreivaldsCheck(False, 0, float("inf"), 0.0)
        eps = float(np.finfo(c_out.dtype).eps) if np.issubdtype(
            c_out.dtype, np.floating) else float(np.finfo(np.float64).eps)
        tolerance = self.tol_factor * max(K, 1) * eps
        # Project in float64 so the verifier's own rounding is far below
        # the kernel's; the kernel error budget lives in `tolerance`.
        opa64 = opa.astype(np.float64, copy=False)
        opb64 = opb.astype(np.float64, copy=False)
        c64 = c_out.astype(np.float64, copy=False)
        rng = np.random.default_rng(_derive_seed(self.seed, key))
        worst = 0.0
        for _ in range(self.rounds):
            # Rademacher vector: +-1 entries keep magnitudes comparable.
            x = rng.integers(0, 2, size=c_out.shape[1]).astype(np.float64)
            x = 2.0 * x - 1.0
            lhs = c64 @ x
            rhs = float(alpha) * (opa64 @ (opb64 @ x))
            if float(beta) != 0.0 and c_in is not None:
                rhs = rhs + float(beta) * (
                    c_in.astype(np.float64, copy=False) @ x
                )
            scale = max(float(np.abs(rhs).max(initial=0.0)),
                        float(np.abs(lhs).max(initial=0.0)), 1e-30)
            residual = float(np.abs(lhs - rhs).max(initial=0.0)) / scale
            worst = max(worst, residual)
            if residual > tolerance:
                return FreivaldsCheck(False, self.rounds, worst, tolerance)
        return FreivaldsCheck(True, self.rounds, worst, tolerance)
